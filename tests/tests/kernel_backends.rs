//! Golden bitwise regression for the kernel dispatch layer.
//!
//! The hashes below were captured from the pre-dispatch (scalar-only)
//! implementations on fixed seeds. The dispatch refactor's contract is that
//! *every* backend — scalar and SIMD — reproduces those outputs bit for bit,
//! so each test asserts the same hash for every backend available on the
//! host. The whole-pipeline checks at the bottom run on the process-selected
//! backend; CI re-runs the suite under `MMHAND_KERNEL_BACKEND=scalar` and
//! `=simd`, so both selections are held to the pre-refactor bits.

use mmhand_core::cube::{CubeBuilder, CubeConfig};
use mmhand_dsp::fft;
use mmhand_dsp::filter::ButterworthDesign;
use mmhand_hand::mano::ManoModel;
use mmhand_kernels::Kernels;
use mmhand_math::rng::{standard_normal, stream_rng};
use mmhand_math::{Complex, Vec3};
use mmhand_nn::Tensor;

/// Order-sensitive FNV-1a over `f32` bit patterns: any single-ULP change in
/// any element changes the hash.
fn bits(xs: &[f32]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(16777619);
        }
    }
    h
}

fn flat(xs: &[Complex]) -> Vec<f32> {
    xs.iter().flat_map(|c| [c.re, c.im]).collect()
}

/// Every backend available on this host, always including scalar.
fn backends() -> Vec<&'static dyn Kernels> {
    let mut all = vec![mmhand_kernels::scalar_kernels()];
    if let Some(simd) = mmhand_kernels::simd_kernels() {
        all.push(simd);
    }
    all
}

#[test]
fn gemm_reproduces_pre_dispatch_bits_on_every_backend() {
    let (m, k, n) = (9usize, 300usize, 33usize);
    let mut rng = stream_rng(11, "golden-gemm");
    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
    let b = Tensor::randn(&[k, n], 1.0, &mut rng);
    for kern in backends() {
        let name = kern.name();
        let mut c = vec![0.0f32; m * n];
        mmhand_nn::tensor::gemm_with(kern, a.data(), b.data(), &mut c, m, k, n);
        assert_eq!(bits(&c), 0x0e2c808f, "gemm hash ({name})");
        assert_eq!(c[0].to_bits(), 0x414c8afb, "gemm c[0] ({name})");
        assert_eq!(c[m * n - 1].to_bits(), 0x4201e09e, "gemm c[last] ({name})");

        let mut c2 = vec![0.0f32; m * n];
        mmhand_nn::tensor::gemm_at_b_with(kern, a.transposed().data(), b.data(), &mut c2, m, k, n);
        assert_eq!(bits(&c2), 0x0e2c808f, "gemm_at_b hash ({name})");

        let mut c3 = vec![0.0f32; m * n];
        mmhand_nn::tensor::gemm_a_bt_with(kern, a.data(), b.transposed().data(), &mut c3, m, k, n);
        assert_eq!(bits(&c3), 0x0e2c808f, "gemm_a_bt hash ({name})");
    }
}

#[test]
fn fft_reproduces_pre_dispatch_bits_on_every_backend() {
    let golden = [(64usize, 0xf0a85670u32, 0xbc062f06u32), (256, 0x110d0c80, 0x6f2cae3c)];
    for kern in backends() {
        let name = kern.name();
        for (n, fwd_hash, inv_hash) in golden {
            let mut rng = stream_rng(7, "golden-fft");
            let mut sig: Vec<Complex> = (0..n)
                .map(|_| Complex::new(standard_normal(&mut rng), standard_normal(&mut rng)))
                .collect();
            let plan = fft::plan(n);
            plan.forward_with(kern, &mut sig);
            assert_eq!(bits(&flat(&sig)), fwd_hash, "fft{n} hash ({name})");
            plan.inverse_with(kern, &mut sig);
            assert_eq!(bits(&flat(&sig)), inv_hash, "ifft{n} hash ({name})");
        }
    }
}

#[test]
fn filter_reproduces_pre_dispatch_bits_on_every_backend() {
    let mut filt = ButterworthDesign {
        order: 8,
        low_hz: 1_000.0,
        high_hz: 4_000.0,
        sample_rate_hz: 20_000.0,
    }
    .design()
    .expect("valid design");
    let mut rng = stream_rng(3, "golden-filter");
    let xs: Vec<Complex> = (0..512)
        .map(|_| Complex::new(standard_normal(&mut rng), standard_normal(&mut rng)))
        .collect();
    for kern in backends() {
        let mut scratch = Vec::new();
        let mut ys = Vec::new();
        filt.filter_complex_into_with(kern, &xs, &mut scratch, &mut ys);
        assert_eq!(bits(&flat(&ys)), 0x5648adc5, "filter hash ({})", kern.name());
    }
}

/// Whole-pipeline stages on the *process-selected* backend: a radar cube
/// built through the dispatched FFT/filter inner loops, and a posed MANO
/// mesh through the dispatched skinning kernel. Run under
/// `MMHAND_KERNEL_BACKEND=scalar` this is exactly the pre-refactor
/// regression; under `=simd` it proves the SIMD path leaves the pipeline
/// bit-identical.
#[test]
fn cube_and_mesh_reproduce_pre_dispatch_bits_on_selected_backend() {
    let builder = CubeBuilder::new(CubeConfig::default());
    let cfg = mmhand_radar::ChirpConfig::default();
    let array = mmhand_radar::VirtualArray::new(&cfg);
    let mut scene = mmhand_radar::Scene::new(0.02);
    scene.add_targets(vec![mmhand_radar::scene::PointTarget::fixed(
        Vec3::new(0.05, 0.3, 0.0),
        1.0,
    )]);
    let mut rng = stream_rng(5, "golden-cube");
    let frame = mmhand_radar::synth::synthesize_frame(&cfg, &array, &scene, &mut rng);
    let cube = builder.process_frame(&frame);
    let backend = builder.kernel_backend();
    assert_eq!(bits(&cube.data), 0xb5a8c95c, "cube hash ({backend})");

    let model = ManoModel::new();
    let mut theta = [Vec3::ZERO; 21];
    theta[5] = Vec3::new(0.9, 0.1, -0.2);
    theta[6] = Vec3::new(0.7, 0.0, 0.0);
    theta[9] = Vec3::new(0.5, -0.1, 0.0);
    let mesh = model.mesh(&[0.3, -0.2, 0.1, 0.0, 0.0, 0.4, 0.0, 0.0, -0.3, 0.0], &theta);
    let verts: Vec<f32> = mesh.vertices.iter().flat_map(|v| [v.x, v.y, v.z]).collect();
    assert_eq!(verts[0].to_bits(), 0x3d116c9a, "lbs v[0].x ({backend})");
    assert_eq!(bits(&verts), 0xc55587a6, "lbs hash ({backend})");
}
