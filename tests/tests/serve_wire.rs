//! End-to-end test of the binary wire protocol and the non-blocking
//! socket front end: a real TCP client streams radar frames to a
//! [`ServeServer`] wrapping a two-shard engine, all on one thread (the
//! client socket is non-blocking and the server is driven by
//! `poll_once`), and the skeletons read back off the wire are bitwise
//! identical to the sequential pipeline's.

use mmhand_core::cube::CubeConfig;
use mmhand_core::eval::{build_cohort, train_reference_model, DataConfig};
use mmhand_core::model::ModelConfig;
use mmhand_core::train::TrainConfig;
use mmhand_core::MmHandPipeline;
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment, RawFrame};
use mmhand_serve::wire::{encode, Decoder, WireMsg, MIN_WIRE_VERSION, WIRE_VERSION};
use mmhand_serve::{MeshPolicy, Precision, RejectCode, ServeConfig, ServeServer, ShardedServe};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

fn tiny_chirp() -> ChirpConfig {
    ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() }
}

fn tiny_cube() -> CubeConfig {
    CubeConfig {
        chirp: tiny_chirp(),
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    }
}

fn tiny_pipeline() -> MmHandPipeline {
    let cube = tiny_cube();
    let data = DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp: cube.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube: cube.clone(),
        seed: 29,
        ..Default::default()
    };
    let model_cfg = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };
    let seqs = build_cohort(&data);
    let model = train_reference_model(
        &seqs,
        &model_cfg,
        &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    );
    // Calibration is always supplied; the precision itself follows the
    // documented MMHAND_PRECISION fallback so CI's precision matrix can
    // drive this suite through both the f32 and int8 paths.
    let mut probe = MmHandPipeline::builder_for(model.clone())
        .cube_config(cube.clone())
        .build()
        .expect("tiny probe pipeline assembles");
    let calibration = probe.frames_to_segments(&stream(97, 12));
    MmHandPipeline::builder_for(model)
        .cube_config(cube)
        .calibration_segments(calibration)
        .build()
        .expect("tiny pipeline assembles")
}

fn stream(seed: u64, frames: usize) -> Vec<RawFrame> {
    let user = UserProfile::generate(seed as usize + 1, seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    record_session(
        &user,
        &track,
        frames,
        &CaptureConfig { chirp: tiny_chirp(), noise_sigma: 0.005, seed, ..Default::default() },
    )
    .frames
}

/// A single-threaded non-blocking wire client.
struct Client {
    stream: TcpStream,
    decoder: Decoder,
    inbox: Vec<WireMsg>,
}

impl Client {
    fn connect(server: &ServeServer) -> Client {
        let addr = server.local_addr().expect("server addr");
        let stream = TcpStream::connect(addr).expect("client connects");
        stream.set_nonblocking(true).expect("nonblocking client");
        // Without nodelay, Nagle holds every second small control message
        // in the send buffer until the previous packet is ACKed — which a
        // single-threaded poll loop may never see in time.
        stream.set_nodelay(true).expect("client nodelay");
        Client { stream, decoder: Decoder::new(), inbox: Vec::new() }
    }

    fn send(&mut self, msg: &WireMsg) {
        let mut bytes = Vec::new();
        encode(msg, &mut bytes);
        // The test payloads are far below the socket buffer size, so a
        // blocking-free write_all is safe here.
        self.stream.write_all(&bytes).expect("client write");
    }

    /// Reads whatever arrived and decodes complete messages.
    fn pump(&mut self) {
        let mut scratch = [0u8; 8192];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => self.decoder.push_bytes(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => panic!("client read: {e}"),
            }
        }
        while let Some(msg) = self.decoder.next_msg().expect("valid server stream") {
            self.inbox.push(msg);
        }
    }
}

/// Two sessions stream interleaved over one TCP connection to a two-shard
/// server; every skeleton read off the wire matches the sequential
/// pipeline bitwise.
#[test]
fn wire_results_match_sequential_pipeline_bitwise() {
    let n_sessions = 2;
    let frames_per_session = 8;
    let pipeline = tiny_pipeline();
    let st = pipeline.builder().config().frames_per_segment;
    let segments = frames_per_session / st;
    let streams: Vec<Vec<RawFrame>> =
        (0..n_sessions).map(|k| stream(50 + k as u64, frames_per_session)).collect();

    let reference: Vec<Vec<Vec<f32>>> = streams
        .iter()
        .map(|s| {
            let mut p = pipeline.clone();
            p.try_estimate(s).expect("reference estimate").skeletons
        })
        .collect();

    let serve = ShardedServe::new(
        pipeline,
        2,
        ServeConfig::new()
            .max_batch(n_sessions)
            .queue_capacity(frames_per_session)
            .mesh_policy(MeshPolicy::Never),
    )
    .expect("sharded serve builds");
    let mut server = ServeServer::bind("127.0.0.1:0", serve).expect("ephemeral bind");
    let mut client = Client::connect(&server);

    client.send(&WireMsg::Hello {
        version: WIRE_VERSION,
        precision: server.serve().precision(),
    });
    for _ in 0..n_sessions {
        client.send(&WireMsg::Open);
    }
    server.poll_once().expect("poll handles opens");
    client.pump();
    let ids: Vec<u64> = client
        .inbox
        .drain(..)
        .map(|m| match m {
            WireMsg::Opened { session } => session,
            other => panic!("expected Opened, got {other:?}"),
        })
        .collect();
    assert_eq!(ids.len(), n_sessions, "both sessions opened over the wire");

    // Stream all frames, interleaved across sessions, then poll the server
    // until every segment's result came back.
    for (k, &sid) in ids.iter().enumerate() {
        for f in &streams[k] {
            client.send(&WireMsg::Push { session: sid, frame: f.clone() });
        }
    }
    let mut collected: BTreeMap<u64, Vec<(u64, Vec<f32>)>> = BTreeMap::new();
    for _ in 0..(segments * 8) {
        server.poll_once().expect("poll streams");
        client.pump();
        for msg in client.inbox.drain(..) {
            match msg {
                WireMsg::Result { session, segment_index, skeleton, mesh_skipped } => {
                    assert!(mesh_skipped, "MeshPolicy::Never skips every mesh");
                    collected.entry(session).or_default().push((segment_index, skeleton));
                }
                other => panic!("unexpected server message: {other:?}"),
            }
        }
        if collected.values().map(|v| v.len()).sum::<usize>() == n_sessions * segments {
            break;
        }
    }

    for (k, &sid) in ids.iter().enumerate() {
        let got = collected.get(&sid).expect("session produced results");
        assert_eq!(got.len(), segments, "session {k} segment count over the wire");
        for (i, (segment_index, skeleton)) in got.iter().enumerate() {
            assert_eq!(*segment_index as usize, i, "segments arrive in order");
            assert_eq!(
                skeleton, &reference[k][i],
                "session {k} segment {i}: wire skeleton diverged from the sequential pipeline"
            );
        }
    }

    // Close both sessions; stats travel back over the wire.
    for &sid in &ids {
        client.send(&WireMsg::Close { session: sid });
    }
    for _ in 0..4 {
        server.poll_once().expect("poll handles closes");
        client.pump();
        if client.inbox.len() >= n_sessions {
            break;
        }
    }
    let mut closed = 0;
    for msg in client.inbox.drain(..) {
        match msg {
            WireMsg::Closed { stats, .. } => {
                assert_eq!(stats.frames_in, frames_per_session as u64);
                assert_eq!(stats.segments_out, segments as u64);
                closed += 1;
            }
            other => panic!("unexpected server message at close: {other:?}"),
        }
    }
    assert_eq!(closed, n_sessions);
    assert_eq!(server.serve().active_sessions(), 0);
}

/// Requests against a session id the connection does not own are answered
/// with a typed reject, not silence and not a disconnect.
#[test]
fn foreign_session_ids_get_typed_rejects() {
    let serve = ShardedServe::new(
        tiny_pipeline(),
        1,
        ServeConfig::new().mesh_policy(MeshPolicy::Never),
    )
    .expect("sharded serve builds");
    let mut server = ServeServer::bind("127.0.0.1:0", serve).expect("ephemeral bind");
    let mut client = Client::connect(&server);

    client.send(&WireMsg::Hello {
        version: WIRE_VERSION,
        precision: server.serve().precision(),
    });
    client.send(&WireMsg::Poll { session: 0xDEAD });
    client.send(&WireMsg::Close { session: 0xBEEF });
    for _ in 0..3 {
        server.poll_once().expect("poll handles rejects");
        client.pump();
        if client.inbox.len() >= 2 {
            break;
        }
    }
    assert_eq!(client.inbox.len(), 2);
    for msg in client.inbox.drain(..) {
        match msg {
            WireMsg::Reject { code, .. } => assert_eq!(code, RejectCode::UnknownSession),
            other => panic!("expected rejects, got {other:?}"),
        }
    }
    // The connection survives rejects — a new Open still works.
    client.send(&WireMsg::Open);
    for _ in 0..3 {
        server.poll_once().expect("poll handles open");
        client.pump();
        if !client.inbox.is_empty() {
            break;
        }
    }
    assert!(
        matches!(client.inbox.first(), Some(WireMsg::Opened { .. })),
        "connection stays usable after rejects"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every supported (version, precision) Hello survives an
    /// encode/decode round trip; v1 Hellos lose the precision byte and
    /// negotiate down to f32 by design.
    #[test]
    fn hello_round_trips_across_supported_versions(
        version in MIN_WIRE_VERSION..=WIRE_VERSION,
        int8 in 0u8..2,
    ) {
        let precision = if int8 == 1 { Precision::Int8 } else { Precision::F32 };
        let msg = WireMsg::Hello { version, precision };
        let mut bytes = Vec::new();
        encode(&msg, &mut bytes);
        let mut dec = Decoder::new();
        dec.push_bytes(&bytes);
        let got = dec.next_msg().expect("well-formed Hello decodes").expect("complete");
        let expected = if version >= 2 { precision } else { Precision::F32 };
        match got {
            WireMsg::Hello { version: v, precision: p } => {
                prop_assert_eq!(v, version);
                prop_assert_eq!(p, expected);
            }
            other => {
                prop_assert!(false, "expected Hello, decoded {other:?}");
            }
        }
        prop_assert!(dec.next_msg().expect("no trailing error").is_none());
    }

    /// Feeding any strict prefix of an encoded Hello never panics and
    /// never yields a message: the decoder just reports "incomplete".
    #[test]
    fn truncated_hellos_stay_incomplete_without_panicking(
        version in MIN_WIRE_VERSION..=WIRE_VERSION,
        int8 in 0u8..2,
        cut_fraction in 0.0f64..1.0,
    ) {
        let precision = if int8 == 1 { Precision::Int8 } else { Precision::F32 };
        let mut bytes = Vec::new();
        encode(&WireMsg::Hello { version, precision }, &mut bytes);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        let mut dec = Decoder::new();
        dec.push_bytes(&bytes[..cut]);
        prop_assert!(dec.next_msg().expect("prefix is never an error").is_none());
        // Delivering the remainder completes the message.
        dec.push_bytes(&bytes[cut..]);
        prop_assert!(dec.next_msg().expect("completed Hello decodes").is_some());
    }
}
