//! Golden bitwise regression for the training path across kernel backends.
//!
//! The training-side kernels (backward GEMM, fused elementwise backward,
//! the fused Adam update, the blocked gradient-norm reduction) run through
//! the same dispatch layer as inference. The contract mirrors
//! `kernel_backends.rs`: every backend reproduces the frozen pre-refactor
//! training trajectory bit for bit. The suite runs on the process-selected
//! backend; CI re-runs it under `MMHAND_KERNEL_BACKEND=scalar` and `=simd`,
//! so both selections are held to the same bits.
//!
//! The loss-trajectory and final-parameter hashes were captured from the
//! pre-dispatch (scalar-only) training loop on fixed seeds and must never
//! change. `grad_norm` is the one monitored value whose accumulation order
//! was redefined by the dispatch refactor (flat sequential sum → blocked
//! 16-lane reduction, identical in scalar and SIMD — see DESIGN.md §17);
//! its frozen hash pins the *new* canonical order on every backend. The
//! clip threshold sits ~70x above any norm this workload produces, so the
//! reduction-order change cannot reach the weights — which the unchanged
//! parameter hash proves.

use mmhand_core::cube::CubeConfig;
use mmhand_core::dataset::SegmentSequence;
use mmhand_core::model::ModelConfig;
use mmhand_core::train::{TrainConfig, Trainer};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment};

/// Order-sensitive FNV-1a over `f32` bit patterns: any single-ULP change in
/// any element changes the hash.
fn bits(xs: &[f32]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(16777619);
        }
    }
    h
}

/// The quick-scale training fixture: a tiny radar/cube/model stack seeded
/// identically to the `mmhand-core` training tests.
fn tiny_stack() -> (CubeConfig, ModelConfig) {
    let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
    let cube = CubeConfig {
        chirp,
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    };
    let model = ModelConfig {
        frames_per_segment: 2,
        doppler_bins: 4,
        range_bins: 8,
        angle_bins: 8,
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..ModelConfig::default()
    };
    (cube, model)
}

fn tiny_sequences(cube_cfg: &CubeConfig, n_frames: usize, user_seed: u64) -> Vec<SegmentSequence> {
    let user = UserProfile::generate(1, user_seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Fist, Gesture::Point],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    let capture = CaptureConfig {
        chirp: cube_cfg.chirp,
        environment: Environment::Playground,
        noise_sigma: 0.005,
        seed: user_seed,
        ..Default::default()
    };
    let session = record_session(&user, &track, n_frames, &capture);
    let builder = mmhand_core::cube::CubeBuilder::new(cube_cfg.clone());
    mmhand_core::dataset::session_to_sequences(&builder, &session, 2, 1)
}

/// Frozen pre-refactor hash of the 5-epoch `(loss, l3d, lkine)` trajectory.
const GOLDEN_TRAJECTORY: u32 = 0x1eefd26a;
/// Frozen pre-refactor hash of the final parameter snapshot.
const GOLDEN_PARAMS: u32 = 0x5a0eb259;
/// Frozen bits of the final pre-clip gradient norm (the blocked reduction's
/// canonical order; see the module docs). The pre-refactor flat sequential
/// sum produced `0x3cd9a87a` — the same value to 6 significant digits.
const GOLDEN_GRAD_NORM: u32 = 0x3cd9a898;

#[test]
fn five_epoch_training_reproduces_frozen_bits() {
    let (cube_cfg, model_cfg) = tiny_stack();
    let seqs = tiny_sequences(&cube_cfg, 40, 3);
    assert!(!seqs.is_empty());
    let trainer = Trainer::new(
        model_cfg,
        TrainConfig { epochs: 5, batch_size: 4, ..Default::default() },
    );
    let trained = trainer.train(&seqs);

    let traj: Vec<f32> = trained
        .history
        .iter()
        .flat_map(|e| [e.loss, e.l3d, e.lkine])
        .collect();
    assert_eq!(trained.history.len(), 5);
    let snapshot = trained.store.snapshot();
    let grad_norm = trained.store.grad_norm();

    let backend = mmhand_kernels::backend_name();
    assert_eq!(
        bits(&traj),
        GOLDEN_TRAJECTORY,
        "loss trajectory hash ({backend}); actual traj {traj:?}"
    );
    assert_eq!(
        bits(&snapshot),
        GOLDEN_PARAMS,
        "final parameter hash ({backend}); first params {:?}",
        &snapshot[..4]
    );
    assert_eq!(
        grad_norm.to_bits(),
        GOLDEN_GRAD_NORM,
        "final grad_norm bits ({backend}); actual {grad_norm} = {:#010x}",
        grad_norm.to_bits()
    );
}
