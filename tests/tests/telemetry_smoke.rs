//! Telemetry smoke tests: the no-op (disabled) mode must be cheap enough
//! to leave always-instrumented code paths in the hot pipeline, and the
//! global enable flag must actually gate recording.
//!
//! This file is its own test binary so it can toggle the process-global
//! telemetry switch without racing other integration tests.

use mmhand_core::cube::{CubeBuilder, CubeConfig};
use mmhand_core::eval::{build_cohort, DataConfig};
use mmhand_core::mesh::MeshReconstructor;
use mmhand_core::model::ModelConfig;
use mmhand_core::pipeline::MmHandPipeline;
use mmhand_core::train::{TrainConfig, Trainer};
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment};
use mmhand_telemetry as telemetry;
use std::time::Instant;

fn tiny_data_config() -> DataConfig {
    let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
    let cube = CubeConfig {
        chirp,
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.45,
        ..Default::default()
    };
    DataConfig {
        users: 1,
        frames_per_user: 24,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube,
        seed: 1234,
        ..Default::default()
    }
}

#[test]
fn noop_telemetry_overhead_is_under_two_percent_of_pipeline() {
    // Run the end-to-end flow (training + estimation) with telemetry in
    // its default enabled state, counting how many recording operations it
    // actually performs. Then replay at least that many operations in
    // no-op (disabled) mode and demand they cost < 2 % of the end-to-end
    // wall-clock: the price of leaving instrumentation compiled into the
    // hot paths when a deployment turns telemetry off.
    telemetry::reset();
    telemetry::set_enabled(true);
    let data = tiny_data_config();
    let model = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };

    let t0 = Instant::now();
    let sequences = build_cohort(&data);
    let trained = Trainer::new(
        model,
        TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    )
    .train(&sequences);
    let user = UserProfile::generate(1, data.seed);
    let track = user.random_track(Vec3::new(0.0, 0.3, 0.0), 2, 7);
    let session = record_session(&user, &track, 8, &data.capture);
    let mut pipeline = MmHandPipeline::new(
        CubeBuilder::new(data.cube.clone()),
        trained,
        MeshReconstructor::new(0),
    );
    let out = pipeline.estimate(&session.frames);
    assert!(!out.skeletons.is_empty());
    let end_to_end_ns = t0.elapsed().as_nanos();

    // Upper bound on recording ops the flow performed: every counter
    // increment contributes at least 1 to its value and every histogram /
    // span observation exactly 1 to its count, so value+count sums
    // overcount the true op count (counters may add more than 1 per op).
    // Byte-valued counters (`pool.bytes_reused`) are excluded: they add
    // buffer *sizes*, overcounting their one op per update by orders of
    // magnitude, and that op is already covered by the paired `pool.hits`
    // increment plus the 2× replay margin below.
    let snap = telemetry::snapshot();
    let counter_ops: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| !n.contains("bytes"))
        .map(|(_, v)| *v)
        .sum();
    let observe_ops: u64 = snap.histograms.iter().map(|(_, h)| h.count).sum();
    let ops = (counter_ops + observe_ops).max(1_000);

    telemetry::set_enabled(false);
    let c = telemetry::counter("smoke.noop.counter");
    let h = telemetry::size_histogram("smoke.noop.hist");
    let t1 = Instant::now();
    for i in 0..ops {
        // Each iteration performs two gated ops, doubling the replayed
        // op budget over the measured upper bound for extra margin.
        c.inc();
        h.observe(i as f64);
    }
    let noop_ns = t1.elapsed().as_nanos();
    telemetry::set_enabled(true);

    assert!(
        (noop_ns as f64) < 0.02 * end_to_end_ns as f64,
        "no-op telemetry too expensive: {ops} op-pairs took {noop_ns}ns \
         vs end-to-end pipeline {end_to_end_ns}ns"
    );
}

#[test]
fn disabled_mode_records_nothing_enabled_mode_records() {
    telemetry::reset();
    telemetry::set_enabled(false);
    let c = telemetry::counter("smoke.gate.counter");
    let h = telemetry::size_histogram("smoke.gate.hist");
    c.add(5);
    h.observe(3.0);
    let sp = telemetry::span("smoke.gate.span");
    // Spans still measure time (callers consume durations as data)…
    let _elapsed = sp.finish();
    let snap = telemetry::snapshot();
    assert_eq!(
        snap.counters.iter().find(|(n, _)| n == "smoke.gate.counter").map(|(_, v)| *v),
        Some(0),
        "disabled counter must stay at zero"
    );
    let hist_count: u64 = snap
        .histograms
        .iter()
        .filter(|(n, _)| n.starts_with("smoke.gate."))
        .map(|(_, s)| s.count)
        .sum();
    // …but nothing lands in the registry while disabled.
    assert_eq!(hist_count, 0, "disabled histograms must record nothing");

    telemetry::set_enabled(true);
    c.add(5);
    h.observe(3.0);
    let sp = telemetry::span("smoke.gate.span");
    let _ = sp.finish();
    let snap = telemetry::snapshot();
    assert_eq!(
        snap.counters.iter().find(|(n, _)| n == "smoke.gate.counter").map(|(_, v)| *v),
        Some(5)
    );
    let hist_count: u64 = snap
        .histograms
        .iter()
        .filter(|(n, _)| n.starts_with("smoke.gate."))
        .map(|(_, s)| s.count)
        .sum();
    assert_eq!(hist_count, 2, "enabled histogram + span must both record");
}
