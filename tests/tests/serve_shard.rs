//! Integration tests of the sharded serving router: bitwise identity
//! between sharded serving (widths 1/2/4) and the dedicated
//! single-session pipeline, and a long-run churn test proving that
//! engine-side memory — eviction tombstones, scratch-pool checkouts,
//! active session count — stays bounded under unbounded session turnover.

use mmhand_core::cube::CubeConfig;
use mmhand_core::eval::{build_cohort, train_reference_model, DataConfig};
use mmhand_core::model::ModelConfig;
use mmhand_core::train::TrainConfig;
use mmhand_core::MmHandPipeline;
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment, RawFrame};
use mmhand_serve::{FrameResult, MeshPolicy, ServeConfig, ServeError, ShardedServe};
use mmhand_telemetry as telemetry;

fn tiny_chirp() -> ChirpConfig {
    ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() }
}

fn tiny_cube() -> CubeConfig {
    CubeConfig {
        chirp: tiny_chirp(),
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    }
}

/// Trains the reference model once; shards and reference paths clone it,
/// which is exactly how the sharded router materialises per-shard engines.
fn tiny_pipeline() -> MmHandPipeline {
    let cube = tiny_cube();
    let data = DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp: cube.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube: cube.clone(),
        seed: 29,
        ..Default::default()
    };
    let model_cfg = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };
    let seqs = build_cohort(&data);
    let model = train_reference_model(
        &seqs,
        &model_cfg,
        &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    );
    // Calibration is always supplied; the precision itself follows the
    // documented MMHAND_PRECISION fallback so CI's precision matrix can
    // drive this suite through both the f32 and int8 paths.
    let mut probe = MmHandPipeline::builder_for(model.clone())
        .cube_config(cube.clone())
        .build()
        .expect("tiny probe pipeline assembles");
    let calibration = probe.frames_to_segments(&stream(97, 12));
    MmHandPipeline::builder_for(model)
        .cube_config(cube)
        .calibration_segments(calibration)
        .build()
        .expect("tiny pipeline assembles")
}

fn stream(seed: u64, frames: usize) -> Vec<RawFrame> {
    let user = UserProfile::generate(seed as usize + 1, seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    record_session(
        &user,
        &track,
        frames,
        &CaptureConfig { chirp: tiny_chirp(), noise_sigma: 0.005, seed, ..Default::default() },
    )
    .frames
}

/// Eight concurrent sessions served at shard widths 1, 2, and 4 must all
/// produce, per session, bitwise the same skeletons and mesh vertices as
/// the dedicated single-session pipeline — sharding relocates sessions,
/// it never changes their arithmetic.
#[test]
fn shard_widths_match_sequential_pipeline_bitwise() {
    let n_sessions = 8;
    let frames_per_session = 8;
    let pipeline = tiny_pipeline();
    let st = pipeline.builder().config().frames_per_segment;
    let segments = frames_per_session / st;
    let streams: Vec<Vec<RawFrame>> =
        (0..n_sessions).map(|k| stream(50 + k as u64, frames_per_session)).collect();

    // Reference skeletons + meshes from the sequential pipeline.
    let reference: Vec<_> = streams
        .iter()
        .map(|s| {
            let mut p = pipeline.clone();
            p.try_estimate(s).expect("reference estimate")
        })
        .collect();

    for width in [1usize, 2, 4] {
        let mut serve = ShardedServe::new(
            pipeline.clone(),
            width,
            ServeConfig::new()
                .max_sessions(n_sessions)
                .max_batch(n_sessions)
                .queue_capacity(frames_per_session),
        )
        .expect("sharded serve builds");
        let ids: Vec<u64> =
            (0..n_sessions).map(|_| serve.open_session().expect("session opens")).collect();
        for (k, &sid) in ids.iter().enumerate() {
            for f in &streams[k] {
                serve.push_frame(sid, f.clone()).expect("frame accepted");
            }
        }
        // Independent shards can drain at different rates; step until all
        // sessions produced their full segment count (bounded by a cap).
        let mut collected: Vec<Vec<FrameResult>> = (0..n_sessions).map(|_| Vec::new()).collect();
        for _ in 0..(segments * 4) {
            serve.step().expect("step runs");
            for (k, &sid) in ids.iter().enumerate() {
                collected[k].extend(serve.take_results(sid).expect("results drain"));
            }
            if collected.iter().all(|c| c.len() == segments) {
                break;
            }
        }

        for (k, results) in collected.iter().enumerate() {
            assert_eq!(
                results.len(),
                reference[k].skeletons.len(),
                "width {width}: session {k} segment count"
            );
            for (r, (ref_skel, ref_hand)) in
                results.iter().zip(reference[k].skeletons.iter().zip(&reference[k].hands))
            {
                assert_eq!(
                    r.skeleton, *ref_skel,
                    "width {width}: session {k} segment {} skeleton diverged",
                    r.segment_index
                );
                let hand = r.hand.as_ref().expect("mesh policy Always reconstructs");
                assert_eq!(
                    hand.mesh.vertices, ref_hand.mesh.vertices,
                    "width {width}: session {k} segment {} mesh diverged",
                    r.segment_index
                );
            }
        }
    }
}

/// Unbounded session churn — generations of sessions opening, streaming,
/// idling into eviction — must leave every engine-side memory axis
/// bounded: the tombstone ring at its configured capacity, no leaked
/// scratch-pool checkouts, and no residual active sessions. The old
/// unbounded `BTreeSet` tombstone store fails the tombstone assertion
/// (it retains one entry per evicted session forever).
#[test]
fn long_run_churn_keeps_memory_bounded() {
    let shards = 2;
    let tombstone_capacity = 16;
    let mut serve = ShardedServe::new(
        tiny_pipeline(),
        shards,
        ServeConfig::new()
            .max_sessions(8)
            .max_batch(4)
            .queue_capacity(8)
            .evict_after_idle_steps(1)
            .tombstone_capacity(tombstone_capacity)
            .mesh_policy(MeshPolicy::Never),
    )
    .expect("sharded serve builds");

    let frames = stream(7, 2); // one segment's worth
    let generations = 300;
    let mut evicted_total = 0usize;
    let mut served_total = 0usize;
    for gen in 0..generations {
        let sid = serve.open_session().expect("session opens");
        if gen % 2 == 0 {
            // Half the generations stream a segment and close cleanly.
            for f in &frames {
                serve.push_frame(sid, f.clone()).expect("frame accepted");
            }
            serve.step().expect("step runs");
            served_total += serve.take_results(sid).expect("results drain").len();
            serve.close_session(sid).expect("clean close");
        } else {
            // The other half go silent and are evicted by the idle budget.
            let report = serve.step().expect("step runs");
            evicted_total += report.evicted.len();
            // A post-eviction push gets the typed eviction error while the
            // tombstone is fresh.
            if let Err(e) = serve.push_frame(sid, frames[0].clone()) {
                assert!(
                    matches!(
                        e,
                        ServeError::SessionEvicted { .. } | ServeError::UnknownSession { .. }
                    ),
                    "unexpected post-eviction error: {e:?}"
                );
            }
        }
    }

    assert!(evicted_total > 2 * shards * tombstone_capacity, "churn must overflow the ring");
    assert!(served_total > 0, "serving generations must produce results");

    // Tombstone memory: bounded by the per-shard ring capacity, not by
    // the number of evictions ever performed.
    assert!(
        serve.evicted_tombstones() <= shards * tombstone_capacity,
        "tombstones leaked: {} retained after {evicted_total} evictions (bound {})",
        serve.evicted_tombstones(),
        shards * tombstone_capacity
    );

    // Session memory: nothing left active.
    assert_eq!(serve.active_sessions(), 0, "sessions leaked across churn");

    // Scratch-pool memory: every checkout the serve path took was
    // returned (outstanding is a process-global gauge; it must be zero
    // between steps regardless of what earlier tests ran).
    let snap = telemetry::snapshot();
    if let Some((_, v)) = snap.gauges.iter().find(|(n, _)| n == "pool.outstanding") {
        assert_eq!(*v, 0.0, "scratch-pool checkouts leaked across churn");
    }

    // The oldest tombstones degraded to UnknownSession; a session id from
    // the first generations is no longer remembered as evicted.
    // (Recently evicted ids keep the distinct error — covered above.)
    let old_sessions: Vec<u64> = (0..4).collect();
    for old in old_sessions {
        match serve.push_frame(old, frames[0].clone()) {
            Err(ServeError::UnknownSession { .. }) | Err(ServeError::SessionEvicted { .. }) => {}
            other => panic!("expected a typed miss for stale id {old}, got {other:?}"),
        }
    }
}

/// The sharded router's admission control spans shards: the global limit
/// is the per-shard limit times the width, and rejections surface as the
/// same typed error the single engine raises.
#[test]
fn sharded_admission_is_global_and_typed() {
    let mut serve = ShardedServe::new(
        tiny_pipeline(),
        4,
        ServeConfig::new().max_sessions(2).mesh_policy(MeshPolicy::Never),
    )
    .expect("sharded serve builds");
    assert_eq!(serve.max_sessions(), 8);
    let mut opened = Vec::new();
    loop {
        match serve.open_session() {
            Ok(id) => opened.push(id),
            Err(ServeError::SessionLimit { max_sessions }) => {
                assert_eq!(max_sessions, 8);
                break;
            }
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
    }
    assert_eq!(opened.len(), 8, "the global limit is width × per-shard limit");
    for id in opened {
        serve.close_session(id).expect("session closes");
    }
}
