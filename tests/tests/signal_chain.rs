//! Integration tests of the signal chain: articulated hand → scatterers →
//! FMCW synthesis → DSP → radar cube, verifying that physical ground truth
//! survives the whole chain (the property every downstream experiment
//! relies on).

use mmhand_core::cube::{CubeBuilder, CubeConfig};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::{swipe_track, GestureTrack};
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::scene::Environment;

fn capture(track: &GestureTrack, frames: usize, seed: u64) -> mmhand_radar::CaptureSession {
    let user = UserProfile::generate(1, seed);
    let cfg = CaptureConfig {
        environment: Environment::Playground,
        noise_sigma: 0.01,
        seed,
        ..Default::default()
    };
    record_session(&user, track, frames, &cfg)
}

fn cube_peak_range(builder: &mut CubeBuilder, frame: &mmhand_radar::RawFrame) -> f64 {
    let cube = builder.process_frame(frame);
    let profile = cube.range_profile();
    let best = (0..profile.len())
        .max_by(|&a, &b| profile[a].total_cmp(&profile[b]))
        .unwrap();
    builder.config().range_of_bin(best)
}

#[test]
fn cube_range_tracks_true_hand_range() {
    let mut builder = CubeBuilder::new(CubeConfig::default());
    for y in [0.25_f32, 0.35, 0.5] {
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm],
            Vec3::new(0.0, y, 0.0),
            1.0,
            0.1,
        );
        let session = capture(&track, 1, 7);
        let est = cube_peak_range(&mut builder, &session.frames[0]);
        assert!(
            (est - y as f64).abs() < 0.08,
            "estimated range {est} for hand at {y}"
        );
    }
}

#[test]
fn cube_azimuth_tracks_swipe() {
    // During a swipe the azimuth energy centroid must move with the hand.
    let mut builder = CubeBuilder::new(CubeConfig::default());
    let track = swipe_track(Vec3::new(0.0, 0.3, 0.0), 0.24, 2.0, 1);
    let session = capture(&track, 24, 8);
    let az_centroid = |frame: &mmhand_radar::RawFrame, b: &mut CubeBuilder| -> f32 {
        let cube = b.process_frame(frame);
        let [v_bins, d_bins, _] = cube.shape;
        let az_bins = b.config().azimuth_bins;
        let mut num = 0.0;
        let mut den = 0.0;
        for v in 0..v_bins {
            for d in 0..d_bins {
                for a in 0..az_bins {
                    let e = cube.at(v, d, a);
                    num += e * a as f32;
                    den += e;
                }
            }
        }
        num / den.max(1e-9)
    };
    // Sample when the hand is at the left and right extremes.
    let left = az_centroid(&session.frames[0], &mut builder);
    let right = az_centroid(&session.frames[20], &mut builder);
    let (lx, rx) = (session.truth[0][0].x, session.truth[20][0].x);
    assert!(rx > lx + 0.1, "track should have moved the hand: {lx} vs {rx}");
    assert!(
        right > left + 0.5,
        "azimuth centroid did not follow the hand: {left} vs {right}"
    );
}

#[test]
fn gesture_changes_are_visible_in_the_cube() {
    // Different gestures at the same position must produce measurably
    // different cubes — the information the network learns from.
    let builder = CubeBuilder::new(CubeConfig::default());
    let pos = Vec3::new(0.0, 0.3, 0.0);
    let mut cubes = Vec::new();
    for g in [Gesture::OpenPalm, Gesture::Fist] {
        let track = GestureTrack::from_gestures(&[g], pos, 1.0, 0.1);
        let session = capture(&track, 1, 9);
        let st = builder.config().frames_per_segment;
        let frames: Vec<_> = (0..st)
            .map(|_| builder.process_frame(&session.frames[0]))
            .collect();
        cubes.push(builder.segment_tensor(&frames));
    }
    let diff: f32 = cubes[0]
        .data()
        .iter()
        .zip(cubes[1].data())
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / cubes[0].len() as f32;
    assert!(diff > 0.05, "open palm and fist cubes nearly identical: {diff}");
}

#[test]
fn environment_clutter_barely_leaks_into_the_hand_band() {
    // The Butterworth band-pass is what makes mmHand environment-robust
    // (paper Fig. 24): classroom clutter must change the cube far less
    // than the hand itself does.
    let pos = Vec3::new(0.0, 0.3, 0.0);
    let track = GestureTrack::from_gestures(&[Gesture::OpenPalm], pos, 1.0, 0.1);
    let user = UserProfile::generate(1, 3);
    let builder = CubeBuilder::new(CubeConfig::default());
    let cube_for = |env: Environment| {
        let cfg = CaptureConfig { environment: env, noise_sigma: 0.0, seed: 3, ..Default::default() };
        let session = record_session(&user, &track, 1, &cfg);
        builder.process_frame(&session.frames[0])
    };
    let playground = cube_for(Environment::Playground);
    let classroom = cube_for(Environment::Classroom);
    let total: f32 = playground.data.iter().sum();
    let env_delta: f32 = playground
        .data
        .iter()
        .zip(&classroom.data)
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(
        env_delta < total * 0.25,
        "environment changed the hand band by {:.1}% of total energy",
        100.0 * env_delta / total
    );
}

#[test]
fn ground_truth_is_consistent_with_kinematics() {
    // Capture-session labels must satisfy the same rigidity invariants the
    // hand model guarantees.
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    let session = capture(&track, 12, 11);
    let user = UserProfile::generate(1, 11);
    let rest = mmhand_hand::pose::bone_lengths(
        &mmhand_hand::HandPose::open().joints(&user.shape),
    );
    for truth in &session.truth {
        let lens = mmhand_hand::pose::bone_lengths(truth);
        for (a, b) in lens.iter().zip(&rest) {
            assert!((a - b).abs() < 1e-4, "bone stretched: {a} vs {b}");
        }
    }
}
