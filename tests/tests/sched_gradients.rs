//! Training-level scheduler audit: gradients and trained parameters must
//! be bitwise identical at every effective thread width.
//!
//! The pool is configured 8 wide and one short training run is repeated
//! under `with_thread_cap` at widths 1, 2, 4 and 8. The cap changes the
//! task chunking (GEMM bands, shard fan-out) but — because every reduction
//! in the stack is fixed-order — must not change a single bit of the
//! resulting parameters, gradients or loss history.

use mmhand_core::eval::{build_cohort, DataConfig};
use mmhand_core::cube::CubeConfig;
use mmhand_core::model::ModelConfig;
use mmhand_core::train::{TrainConfig, TrainedModel, Trainer};
use mmhand_radar::capture::CaptureConfig;
use mmhand_radar::{ChirpConfig, Environment};

fn tiny_data_config() -> DataConfig {
    let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
    let cube = CubeConfig {
        chirp,
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.45,
        ..Default::default()
    };
    DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube,
        seed: 91,
        ..Default::default()
    }
}

fn tiny_model(data: &DataConfig) -> ModelConfig {
    ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    }
}

/// Everything bit-comparable about a finished run: parameter bits, the
/// final accumulated gradient bits, and the loss history bits.
type Fingerprint = (Vec<u32>, Vec<u32>, Vec<u32>);

fn fingerprint(trained: &TrainedModel) -> Fingerprint {
    let params: Vec<u32> = trained.store.snapshot().iter().map(|v| v.to_bits()).collect();
    let grads: Vec<u32> = trained
        .store
        .ids()
        .into_iter()
        .flat_map(|id| trained.store.grad(id).data().iter().map(|v| v.to_bits()))
        .collect();
    let history: Vec<u32> = trained
        .history
        .iter()
        .flat_map(|e| [e.loss.to_bits(), e.l3d.to_bits(), e.lkine.to_bits()])
        .collect();
    (params, grads, history)
}

#[test]
fn training_is_bitwise_identical_at_widths_1_2_4_8() {
    // First call wins; an 8-wide pool makes caps 2/4/8 genuinely distinct
    // even on a single-CPU CI runner.
    let _ = mmhand_parallel::configure_threads(8);
    let data = tiny_data_config();
    let sequences = build_cohort(&data);
    assert!(!sequences.is_empty());
    let model_cfg = tiny_model(&data);
    let train_cfg = TrainConfig { epochs: 2, batch_size: 4, ..Default::default() };

    let mut reference: Option<(usize, Fingerprint)> = None;
    for cap in [1usize, 2, 4, 8] {
        let trained = mmhand_parallel::with_thread_cap(cap, || {
            assert_eq!(mmhand_parallel::num_threads(), cap.min(8));
            Trainer::new(model_cfg.clone(), train_cfg.clone()).train(&sequences)
        });
        let fp = fingerprint(&trained);
        match &reference {
            None => reference = Some((cap, fp)),
            Some((ref_cap, ref_fp)) => {
                assert_eq!(
                    &fp.0, &ref_fp.0,
                    "parameters differ between widths {ref_cap} and {cap}"
                );
                assert_eq!(
                    &fp.1, &ref_fp.1,
                    "gradients differ between widths {ref_cap} and {cap}"
                );
                assert_eq!(
                    &fp.2, &ref_fp.2,
                    "loss history differs between widths {ref_cap} and {cap}"
                );
            }
        }
    }
}
