//! Regression tests for thread-count independence: the parallel execution
//! layer must not change any numeric result. Training, dataset synthesis,
//! and cross-validation all shard work in thread-count-independent units
//! and reduce in fixed order, so running with the pool engaged must match
//! a forced-sequential run exactly (we assert a 1e-4 tolerance as the
//! contract, though the design delivers bitwise equality).
//!
//! This binary configures a 4-thread pool up front — deliberately wider
//! than the single-CPU CI runner — so the parallel code paths (task
//! splitting, cross-thread reduction) are genuinely exercised even there.

use mmhand_core::cube::{CubeBuilder, CubeConfig};
use mmhand_core::dataset::session_to_sequences;
use mmhand_core::eval::{build_cohort, cross_validate, DataConfig};
use mmhand_core::metrics::JointGroup;
use mmhand_core::model::ModelConfig;
use mmhand_core::train::{TrainConfig, TrainedModel, Trainer};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment};

/// Forces the pool to 4 threads for every test in this binary (first call
/// wins; later calls are no-ops, which is fine — any >1 width does).
fn ensure_pool() {
    let _ = mmhand_parallel::configure_threads(4);
}

fn tiny_data_config() -> DataConfig {
    let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
    let cube = CubeConfig {
        chirp,
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.45,
        ..Default::default()
    };
    DataConfig {
        users: 2,
        frames_per_user: 24,
        gestures_per_track: 3,
        seq_len: 2,
        capture: CaptureConfig {
            chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube,
        seed: 77,
        ..Default::default()
    }
}

fn tiny_model(data: &DataConfig) -> ModelConfig {
    ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    }
}

fn train_tiny(data: &DataConfig) -> (TrainedModel, Vec<Vec<Vec<f32>>>) {
    let sequences = build_cohort(data);
    assert!(!sequences.is_empty());
    let trained = Trainer::new(
        tiny_model(data),
        TrainConfig { epochs: 6, batch_size: 4, ..Default::default() },
    )
    .train(&sequences);
    let preds = sequences
        .iter()
        .map(|s| trained.predict_sequence(&s.segments))
        .collect();
    (trained, preds)
}

#[test]
fn training_is_identical_across_thread_counts() {
    ensure_pool();
    let data = tiny_data_config();
    let (par_model, par_preds) = train_tiny(&data);
    let (seq_model, seq_preds) =
        mmhand_parallel::sequential_scope(|| train_tiny(&data));

    // The contract from ISSUE/DESIGN: joint predictions agree within 1e-4.
    for (p, s) in par_preds.iter().zip(&seq_preds) {
        for (pf, sf) in p.iter().zip(s) {
            for (a, b) in pf.iter().zip(sf) {
                assert!(
                    (a - b).abs() <= 1e-4,
                    "prediction diverged across thread counts: {a} vs {b}"
                );
            }
        }
    }
    // The implementation actually guarantees bitwise-equal parameters
    // (fixed shard size + fixed-order reduction); hold it to that.
    assert_eq!(
        par_model.store.snapshot(),
        seq_model.store.snapshot(),
        "trained parameters are not bitwise identical across thread counts"
    );
}

#[test]
fn cube_processing_is_identical_across_thread_counts() {
    ensure_pool();
    let data = tiny_data_config();
    let user = UserProfile::generate(1, data.seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Pinch],
        Vec3::new(0.0, 0.3, 0.0),
        1.0,
        0.1,
    );
    let session = record_session(&user, &track, 8, &data.capture);
    let builder = CubeBuilder::new(data.cube.clone());

    let par = session_to_sequences(&builder, &session, 2, 1);
    let seq = mmhand_parallel::sequential_scope(|| {
        session_to_sequences(&builder, &session, 2, 1)
    });
    assert_eq!(par.len(), seq.len());
    for (a, b) in par.iter().zip(&seq) {
        for (ta, tb) in a.segments.iter().zip(&b.segments) {
            assert_eq!(ta.data(), tb.data(), "cube tensors differ across thread counts");
        }
    }
}

#[test]
fn cross_validation_is_identical_across_thread_counts() {
    ensure_pool();
    let data = tiny_data_config();
    let data = DataConfig { users: 4, ..data };
    let sequences = build_cohort(&data);
    let model_cfg = tiny_model(&data);
    let train_cfg = TrainConfig { epochs: 2, batch_size: 4, ..Default::default() };

    let par = cross_validate(&sequences, &model_cfg, &train_cfg, 2);
    let seq = mmhand_parallel::sequential_scope(|| {
        cross_validate(&sequences, &model_cfg, &train_cfg, 2)
    });
    assert_eq!(par.per_user.len(), seq.per_user.len());
    let pm = par.overall.mpjpe(JointGroup::Overall);
    let sm = seq.overall.mpjpe(JointGroup::Overall);
    assert!(
        (pm - sm).abs() <= 1e-4,
        "cross-validation MPJPE diverged: {pm} vs {sm}"
    );
}
