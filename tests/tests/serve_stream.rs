//! Integration tests of the streaming inference service: bitwise identity
//! between micro-batched serving and the single-session pipeline, load
//! behaviour (zero rejects at nominal load, typed rejects at overload),
//! and property tests proving that malformed input through the full serve
//! ingress path produces `Err`, never a panic. The whole suite also runs
//! under `--features sanitize-numerics` in CI's sanitize job.

use mmhand_core::cube::CubeConfig;
use mmhand_core::eval::{build_cohort, train_reference_model, DataConfig};
use mmhand_core::model::ModelConfig;
use mmhand_core::train::TrainConfig;
use mmhand_core::{MmHandPipeline, PipelineError};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment, RawFrame};
use mmhand_serve::{FrameResult, MeshPolicy, ServeConfig, ServeEngine, ServeError};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

fn tiny_chirp() -> ChirpConfig {
    ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() }
}

fn tiny_cube() -> CubeConfig {
    CubeConfig {
        chirp: tiny_chirp(),
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    }
}

/// Trains the reference model deterministically — two calls produce
/// bitwise-identical parameters, which lets the identity test hold one
/// pipeline inside the engine and one outside.
fn tiny_pipeline() -> MmHandPipeline {
    let cube = tiny_cube();
    let data = DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp: cube.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube: cube.clone(),
        seed: 29,
        ..Default::default()
    };
    let model_cfg = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };
    let seqs = build_cohort(&data);
    let model = train_reference_model(
        &seqs,
        &model_cfg,
        &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    );
    // Calibration is always supplied; the precision itself follows the
    // documented MMHAND_PRECISION fallback so CI's precision matrix can
    // drive this suite through both the f32 and int8 paths.
    let mut probe = MmHandPipeline::builder_for(model.clone())
        .cube_config(cube.clone())
        .build()
        .expect("tiny probe pipeline assembles");
    let calibration = probe.frames_to_segments(&stream(97, 12));
    MmHandPipeline::builder_for(model)
        .cube_config(cube)
        .calibration_segments(calibration)
        .build()
        .expect("tiny pipeline assembles")
}

fn stream(seed: u64, frames: usize) -> Vec<RawFrame> {
    let user = UserProfile::generate(seed as usize + 1, seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    record_session(
        &user,
        &track,
        frames,
        &CaptureConfig { chirp: tiny_chirp(), noise_sigma: 0.005, seed, ..Default::default() },
    )
    .frames
}

/// Micro-batched concurrent sessions must produce, per session, bitwise
/// the same skeletons as the dedicated single-session pipeline fed the
/// same frames in one call.
#[test]
fn concurrent_sessions_match_sequential_pipeline_bitwise() {
    let n_sessions = 3;
    let frames_per_session = 12;
    let streams: Vec<Vec<RawFrame>> =
        (0..n_sessions).map(|k| stream(50 + k as u64, frames_per_session)).collect();

    // Serve path: interleaved pushes, shared micro-batched forward passes.
    let mut engine = ServeEngine::new(
        tiny_pipeline(),
        ServeConfig::new().max_batch(n_sessions).queue_capacity(frames_per_session),
    )
    .expect("engine builds");
    let ids: Vec<u64> =
        (0..n_sessions).map(|_| engine.open_session().expect("session opens")).collect();
    let st = engine.pipeline().builder().config().frames_per_segment;
    for round in 0..frames_per_session / st {
        for (k, &sid) in ids.iter().enumerate() {
            for f in &streams[k][round * st..(round + 1) * st] {
                engine.push_frame(sid, f.clone()).expect("frame accepted");
            }
        }
        let report = engine.step().expect("step runs");
        assert_eq!(report.batched, n_sessions, "all sessions batch together");
    }
    let served: Vec<Vec<FrameResult>> = ids
        .iter()
        .map(|&sid| engine.take_results(sid).expect("results drain"))
        .collect();

    // Reference path: one dedicated pipeline per session, whole stream in
    // one estimate call (the LSTM runs the same zero-state sequence).
    for (k, results) in served.iter().enumerate() {
        let mut reference = tiny_pipeline();
        let out = reference.try_estimate(&streams[k]).expect("reference estimate");
        assert_eq!(results.len(), out.skeletons.len());
        for (r, (ref_skel, ref_hand)) in
            results.iter().zip(out.skeletons.iter().zip(&out.hands))
        {
            assert_eq!(
                r.skeleton, *ref_skel,
                "session {k} segment {} diverged from the sequential pipeline",
                r.segment_index
            );
            let hand = r.hand.as_ref().expect("mesh policy Always reconstructs");
            assert_eq!(
                hand.mesh.vertices, ref_hand.mesh.vertices,
                "session {k} segment {} mesh diverged",
                r.segment_index
            );
        }
    }
}

/// At nominal load (a queue sized for the stream), 8 concurrent sessions
/// stream to completion with zero rejected frames.
#[test]
fn nominal_load_eight_sessions_zero_rejects() {
    let n_sessions = 8;
    let frames_per_session = 8;
    let mut engine = ServeEngine::new(
        tiny_pipeline(),
        ServeConfig::new()
            .max_sessions(n_sessions)
            .max_batch(n_sessions)
            .queue_capacity(frames_per_session)
            .mesh_policy(MeshPolicy::Never),
    )
    .expect("engine builds");
    let ids: Vec<u64> =
        (0..n_sessions).map(|_| engine.open_session().expect("session opens")).collect();
    for (k, &sid) in ids.iter().enumerate() {
        for f in stream(80 + k as u64, frames_per_session) {
            engine.push_frame(sid, f).expect("nominal load never rejects");
        }
    }
    let st = engine.pipeline().builder().config().frames_per_segment;
    let mut results = 0;
    for _ in 0..frames_per_session / st {
        results += engine.step().expect("step runs").results_produced;
    }
    assert_eq!(results, n_sessions * frames_per_session / st);
}

/// At 10× overload the bounded queues reject with a typed error — and
/// nothing panics.
#[test]
fn overload_rejects_with_typed_errors() {
    let queue = 4;
    let mut engine = ServeEngine::new(
        tiny_pipeline(),
        ServeConfig::new().queue_capacity(queue).mesh_policy(MeshPolicy::Never),
    )
    .expect("engine builds");
    let sid = engine.open_session().expect("session opens");
    let frames = stream(99, 40); // 10× the queue capacity
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for f in frames {
        match engine.push_frame(sid, f) {
            Ok(()) => accepted += 1,
            Err(ServeError::QueueFull { capacity, .. }) => {
                assert_eq!(capacity, queue);
                rejected += 1;
            }
            Err(other) => panic!("unexpected error under overload: {other:?}"),
        }
    }
    assert_eq!(accepted as usize, queue);
    assert!(rejected > 0, "overload must surface as rejections");
    // The engine still serves what it accepted.
    let report = engine.step().expect("step still runs");
    assert_eq!(report.batched, 1);
}

/// Sessions that stop sending are evicted and later pushes get the
/// dedicated eviction error.
#[test]
fn idle_sessions_are_evicted_with_typed_error() {
    let mut engine = ServeEngine::new(
        tiny_pipeline(),
        ServeConfig::new().evict_after_idle_steps(2).mesh_policy(MeshPolicy::Never),
    )
    .expect("engine builds");
    let sid = engine.open_session().expect("session opens");
    assert!(engine.step().expect("step 1").evicted.is_empty());
    assert_eq!(engine.step().expect("step 2").evicted, vec![sid]);
    let frame = stream(7, 1).remove(0);
    assert!(matches!(
        engine.push_frame(sid, frame),
        Err(ServeError::SessionEvicted { session }) if session == sid
    ));
}

/// Shared engine for the property tests — training once instead of once
/// per proptest case.
fn shared_engine() -> &'static Mutex<ServeEngine> {
    static ENGINE: OnceLock<Mutex<ServeEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Mutex::new(
            ServeEngine::new(
                tiny_pipeline(),
                ServeConfig::new()
                    .max_sessions(usize::MAX >> 1)
                    .mesh_policy(MeshPolicy::Never),
            )
            .expect("engine builds"),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Frames with arbitrary wrong geometry (antenna counts, chirp counts,
    /// sample counts) pushed through the full serve ingress path produce a
    /// typed radar-geometry error — never a panic, and never silent
    /// acceptance.
    #[test]
    fn malformed_frames_error_through_serve_ingress(
        tx in 1usize..4,
        rx in 1usize..6,
        chirps in 1usize..12,
        samples in 1usize..48,
    ) {
        let good = tiny_chirp();
        prop_assume!(
            tx != good.tx_count
                || rx != good.rx_count
                || chirps != good.chirps_per_tx
                || samples != good.samples_per_chirp
        );
        let bad_chirp = ChirpConfig {
            tx_count: tx,
            rx_count: rx,
            chirps_per_tx: chirps,
            samples_per_chirp: samples,
            ..good
        };
        let frame = RawFrame::zeroed(&bad_chirp);
        let mut engine = shared_engine().lock().expect("engine lock");
        let sid = engine.open_session().expect("session opens");
        let outcome = engine.push_frame(sid, frame);
        prop_assert!(
            matches!(outcome, Err(ServeError::Pipeline(PipelineError::Radar(_)))),
            "expected a typed radar geometry error, got {outcome:?}"
        );
        // The malformed frame must not have been queued.
        prop_assert_eq!(engine.queued_frames(sid).expect("session still open"), 0);
        engine.close_session(sid).expect("session closes");
    }

    /// Stepping with zero-length ingress (no frames, hence no segment) is
    /// always safe: no panic, no results, no eviction surprises.
    #[test]
    fn zero_length_segments_are_safe(extra_sessions in 0usize..4) {
        let mut engine = shared_engine().lock().expect("engine lock");
        let ids: Vec<u64> = (0..=extra_sessions)
            .map(|_| engine.open_session().expect("session opens"))
            .collect();
        let report = engine.step().expect("empty step runs");
        prop_assert_eq!(report.batched, 0);
        prop_assert_eq!(report.results_produced, 0);
        for sid in ids {
            prop_assert!(engine.take_results(sid).expect("no results").is_empty());
            engine.close_session(sid).expect("session closes");
        }
    }
}
