//! End-to-end integration tests spanning the whole workspace: radar
//! simulation → signal pre-processing → network training → joint
//! regression → mesh reconstruction.

use mmhand_core::cube::{CubeBuilder, CubeConfig};
use mmhand_core::dataset::session_to_sequences;
use mmhand_core::eval::{build_cohort, DataConfig};
use mmhand_core::mesh::MeshReconstructor;
use mmhand_core::metrics::{JointErrors, JointGroup};
use mmhand_core::model::ModelConfig;
use mmhand_core::pipeline::MmHandPipeline;
use mmhand_core::train::{TrainConfig, Trainer};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment};

/// A compact-but-real stack shared by the integration tests.
fn tiny_data_config() -> DataConfig {
    let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
    let cube = CubeConfig {
        chirp,
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.45,
        ..Default::default()
    };
    DataConfig {
        users: 2,
        frames_per_user: 48,
        gestures_per_track: 4,
        seq_len: 2,
        capture: CaptureConfig {
            chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube,
        seed: 1234,
        ..Default::default()
    }
}

fn tiny_model(data: &DataConfig) -> ModelConfig {
    ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    }
}

#[test]
fn full_pipeline_learns_and_estimates() {
    let data = tiny_data_config();
    let sequences = build_cohort(&data);
    assert!(!sequences.is_empty());

    let trained = Trainer::new(
        tiny_model(&data),
        TrainConfig { epochs: 30, batch_size: 4, ..Default::default() },
    )
    .train(&sequences);

    // Loss must fall substantially.
    let first = trained.history.first().unwrap().loss;
    let last = trained.history.last().unwrap().loss;
    assert!(last < first * 0.5, "loss {first} → {last}");

    // Pipeline on fresh frames.
    let user = UserProfile::generate(1, data.seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    let session = record_session(&user, &track, 8, &data.capture);
    let mut pipeline = MmHandPipeline::new(
        CubeBuilder::new(data.cube.clone()),
        trained,
        MeshReconstructor::new(0),
    );
    let out = pipeline.estimate(&session.frames);
    assert_eq!(out.skeletons.len(), 4);
    assert_eq!(out.hands.len(), 4);
    for (skel, hand) in out.skeletons.iter().zip(&out.hands) {
        assert!(skel.iter().all(|v| v.is_finite()));
        assert!(!hand.mesh.vertices.is_empty());
        // The mesh must sit near the predicted wrist.
        let wrist = Vec3::new(skel[0], skel[1], skel[2]);
        let (lo, hi) = hand.mesh.bounds();
        let centre = (lo + hi) * 0.5;
        assert!(centre.distance(wrist) < 0.25, "mesh far from wrist");
    }
}

#[test]
fn trained_model_tracks_hand_position_changes() {
    // The network must recover gross hand position from radar alone:
    // captures at two different positions must yield different wrists.
    // Training data must cover both ranges, as in the paper's 20-40 cm
    // collection protocol.
    let data = tiny_data_config();
    let mut sequences = build_cohort(&data);
    let far = DataConfig { hand_position: Vec3::new(0.0, 0.38, 0.0), seed: 77, ..data.clone() };
    sequences.extend(build_cohort(&far));
    // γ = 0: at this smoke scale the kinematic regulariser makes the
    // constant straight-hand pose (which minimises L_kine exactly) the
    // training attractor, collapsing position output to the cohort mean
    // (see EXPERIMENTS.md ablation: γ must shrink with dataset size).
    let trained = Trainer::new(
        tiny_model(&data),
        TrainConfig {
            epochs: 60,
            batch_size: 4,
            weights: mmhand_core::loss::LossWeights { beta: 1.0, gamma: 0.0 },
            ..Default::default()
        },
    )
    .train(&sequences);

    let user = UserProfile::generate(1, data.seed);
    let builder = CubeBuilder::new(data.cube.clone());
    let mut wrists = Vec::new();
    for y in [0.25_f32, 0.38] {
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm],
            Vec3::new(0.0, y, 0.0),
            1.0,
            0.1,
        );
        let session = record_session(&user, &track, 4, &data.capture);
        let seqs = session_to_sequences(&builder, &session, 2, 1);
        let preds = trained.predict_sequence(&seqs[0].segments);
        wrists.push(preds[0][1]); // wrist y
    }
    // The tiny smoke-scale model resolves range coarsely; assert the
    // ordering and a clear margin rather than full separation (the
    // full-scale experiments achieve ~10mm palm error).
    assert!(
        wrists[1] > wrists[0] + 0.005,
        "predicted wrist y did not move with range: {wrists:?}"
    );
}

#[test]
fn cross_crate_determinism() {
    // The same seeds must yield bit-identical data and training outcomes.
    let data = tiny_data_config();
    let a = build_cohort(&data);
    let b = build_cohort(&data);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.labels, y.labels);
        for (sx, sy) in x.segments.iter().zip(&y.segments) {
            assert_eq!(sx.data(), sy.data());
        }
    }
    let t1 = Trainer::new(
        tiny_model(&data),
        TrainConfig { epochs: 3, batch_size: 4, ..Default::default() },
    )
    .train(&a);
    let t2 = Trainer::new(
        tiny_model(&data),
        TrainConfig { epochs: 3, batch_size: 4, ..Default::default() },
    )
    .train(&b);
    assert_eq!(t1.store.snapshot(), t2.store.snapshot());
}

#[test]
fn obstacle_degrades_accuracy_relative_to_clear_path() {
    // Train clean, test clean vs through a wooden board: the board must
    // hurt (paper Fig. 25's mechanism).
    use mmhand_radar::impairments::ObstacleMaterial;
    let data = tiny_data_config();
    let sequences = build_cohort(&data);
    let trained = Trainer::new(
        tiny_model(&data),
        TrainConfig { epochs: 30, batch_size: 4, ..Default::default() },
    )
    .train(&sequences);

    let user = UserProfile::generate(1, data.seed);
    let track = user.random_track(Vec3::new(0.0, 0.3, 0.0), 4, 99);
    let builder = CubeBuilder::new(data.cube.clone());
    let eval_with = |obstacle: Option<(ObstacleMaterial, f32)>| -> f32 {
        let capture = CaptureConfig { obstacle, ..data.capture.clone() };
        let session = record_session(&user, &track, 24, &capture);
        let seqs = session_to_sequences(&builder, &session, 2, 1);
        let mut errors = JointErrors::new();
        for s in &seqs {
            let preds = trained.predict_sequence(&s.segments);
            for (p, t) in preds.iter().zip(&s.labels) {
                errors.push_flat(p, t);
            }
        }
        errors.mpjpe(JointGroup::Overall)
    };
    let clear = eval_with(None);
    let blocked = eval_with(Some((ObstacleMaterial::WoodBoard, 0.1)));
    assert!(
        blocked > clear * 0.9,
        "wood board unexpectedly improved accuracy: {clear} vs {blocked}"
    );
    assert!(clear.is_finite() && blocked.is_finite());
}
