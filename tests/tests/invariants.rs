//! Cross-crate property-based tests: invariants that must hold across
//! module boundaries regardless of parameters.

use mmhand_core::loss::{is_straight, kinematic_loss};
use mmhand_core::metrics::{JointErrors, JointGroup};
use mmhand_hand::ik::solve_ik;
use mmhand_hand::mano::ManoModel;
use mmhand_hand::pose::HandPose;
use mmhand_hand::shape::HandShape;
use mmhand_hand::skeleton::Finger;
use mmhand_nn::Tensor;
use proptest::prelude::*;

fn pose_from(curls: &[f32], spreads: &[f32]) -> HandPose {
    let mut pose = HandPose::default();
    for f in 0..5 {
        for k in 0..3 {
            pose.curls[f][k] = curls[f * 3 + k];
        }
        pose.spreads[f] = spreads[f];
    }
    pose
}

fn flat_joints(pose: &HandPose, shape: &HandShape) -> Vec<f32> {
    pose.joints(shape).iter().flat_map(|v| v.to_array()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any forward-kinematics output satisfies its own kinematic loss:
    /// joints produced by the hand model are always (near-)valid hands.
    #[test]
    fn fk_outputs_have_near_zero_kinematic_loss(
        curls in proptest::collection::vec(0.0f32..1.5, 15),
        spreads in proptest::collection::vec(-0.25f32..0.25, 5),
    ) {
        let shape = HandShape::default();
        let pose = pose_from(&curls, &spreads);
        let flat = flat_joints(&pose, &shape);
        let t = Tensor::from_vec(&[1, 63], flat);
        let (loss, _) = kinematic_loss(&t, &t);
        prop_assert!(loss < 5e-3, "self-loss {loss}");
    }

    /// IK → FK through the MANO model reproduces arbitrary articulations.
    #[test]
    fn ik_fk_round_trip_small_error(
        curls in proptest::collection::vec(0.0f32..1.4, 15),
    ) {
        let shape = HandShape::default();
        let pose = pose_from(&curls, &[0.0; 5]);
        let target = pose.joints(&shape);
        let mano = ManoModel::new();
        let ik = solve_ik(mano.rest_joints(), &target);
        let posed = mano.posed_joints(&[0.0; 10], &ik.theta);
        let mean_err: f32 = (0..21)
            .map(|j| posed[j].distance(target[j]))
            .sum::<f32>() / 21.0;
        prop_assert!(mean_err < 0.008, "round-trip error {mean_err}");
    }

    /// Straightness classification agrees between the gesture generator
    /// and the loss module: a finger with zero curls is straight, a finger
    /// curled ≥ 0.5 rad per joint is not.
    #[test]
    fn straightness_is_consistent(curl in 0.5f32..1.5) {
        let shape = HandShape::default();
        let straight = flat_joints(&HandPose::default(), &shape);
        let bent = flat_joints(
            &HandPose::default().with_finger_curl(Finger::Index, curl),
            &shape,
        );
        prop_assert!(is_straight(&straight, Finger::Index));
        prop_assert!(!is_straight(&bent, Finger::Index));
    }

    /// Metrics sanity across random error patterns: PCK is monotone in the
    /// threshold and MPJPE lies between min and max error.
    #[test]
    fn metric_consistency(errs in proptest::collection::vec(0.0f32..0.1, 21)) {
        let truth = [mmhand_math::Vec3::ZERO; 21];
        let mut pred = truth;
        for (j, e) in errs.iter().enumerate() {
            pred[j] = mmhand_math::Vec3::new(*e, 0.0, 0.0);
        }
        let mut je = JointErrors::new();
        je.push_frame(&pred, &truth);
        let p20 = je.pck(JointGroup::Overall, 20.0);
        let p40 = je.pck(JointGroup::Overall, 40.0);
        prop_assert!(p40 >= p20);
        let m = je.mpjpe(JointGroup::Overall);
        let lo = errs.iter().cloned().fold(f32::MAX, f32::min) * 1000.0;
        let hi = errs.iter().cloned().fold(f32::MIN, f32::max) * 1000.0;
        prop_assert!(m >= lo - 1e-3 && m <= hi + 1e-3);
    }

    /// Kinematic-loss gradients are finite for arbitrary (even wild)
    /// predictions — training can never be poisoned by NaNs.
    #[test]
    fn kinematic_loss_is_finite_for_wild_predictions(
        pred in proptest::collection::vec(-1.0f32..1.0, 63),
    ) {
        let shape = HandShape::default();
        let truth = flat_joints(&HandPose::default(), &shape);
        let t = Tensor::from_vec(&[1, 63], truth);
        let p = Tensor::from_vec(&[1, 63], pred);
        let (loss, grad) = kinematic_loss(&p, &t);
        prop_assert!(loss.is_finite());
        prop_assert!(!grad.has_non_finite());
    }
}

#[test]
fn scatterers_respond_to_shape_and_pose_consistently() {
    // Cross-crate: the surface sampler must place every scatterer within
    // the hand model's reach for every gesture in the library.
    use mmhand_hand::surface::{sample_scatterers, SurfaceConfig};
    let shape = HandShape::default();
    let reach = shape.palm_length + shape.finger_length(Finger::Middle) + 0.05;
    for g in mmhand_hand::Gesture::all() {
        let mut pose = g.pose();
        pose.position = mmhand_math::Vec3::new(0.0, 0.3, 0.0);
        let joints = pose.joints(&shape);
        let s = sample_scatterers(&joints, pose.palm_normal(), &shape, &SurfaceConfig::default());
        for sc in &s {
            assert!(
                sc.position.distance(pose.position) < reach,
                "{} scatterer outside reach",
                g.name()
            );
        }
    }
}
