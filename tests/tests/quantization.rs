//! Cross-precision integration tests for the int8 inference path.
//!
//! Two properties anchor the typed `Precision` API (DESIGN.md §16):
//!
//! 1. **Serving identity** — an eight-session sharded int8 engine produces,
//!    per session, bitwise the same skeletons as a dedicated single-session
//!    int8 pipeline. Integer accumulation is exactly associative, so
//!    batching and shard placement must not perturb quantized results any
//!    more than they do f32 ones.
//! 2. **Accuracy epsilon** — int8 skeletons track the f32 skeletons of the
//!    same trained model within a small tolerance on seeded captures, i.e.
//!    quantization is a compression decision, not a different model.

use mmhand_core::cube::CubeConfig;
use mmhand_core::eval::{build_cohort, train_reference_model, DataConfig};
use mmhand_core::model::ModelConfig;
use mmhand_core::train::{TrainConfig, TrainedModel};
use mmhand_core::{MmHandPipeline, Precision};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment, RawFrame};
use mmhand_serve::{FrameResult, InferenceProfile, MeshPolicy, ServeConfig, ShardedServe};

fn tiny_chirp() -> ChirpConfig {
    ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() }
}

fn tiny_cube() -> CubeConfig {
    CubeConfig {
        chirp: tiny_chirp(),
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    }
}

fn tiny_model() -> TrainedModel {
    let cube = tiny_cube();
    let data = DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp: cube.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube: cube.clone(),
        seed: 31,
        ..Default::default()
    };
    let model_cfg = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };
    let seqs = build_cohort(&data);
    train_reference_model(
        &seqs,
        &model_cfg,
        &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    )
}

fn stream(seed: u64, frames: usize) -> Vec<RawFrame> {
    let user = UserProfile::generate(seed as usize + 1, seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    record_session(
        &user,
        &track,
        frames,
        &CaptureConfig { chirp: tiny_chirp(), noise_sigma: 0.005, seed, ..Default::default() },
    )
    .frames
}

/// Builds a pipeline at the requested precision, calibrating the int8 one
/// on a capture none of the test sessions replays.
fn pipeline_at(model: TrainedModel, precision: Precision) -> MmHandPipeline {
    let cube = tiny_cube();
    let mut builder =
        MmHandPipeline::builder_for(model.clone()).cube_config(cube.clone()).precision(precision);
    if precision == Precision::Int8 {
        let mut probe = MmHandPipeline::builder_for(model)
            .cube_config(cube)
            .build()
            .expect("probe pipeline assembles");
        builder = builder.calibration_segments(probe.frames_to_segments(&stream(97, 12)));
    }
    builder.build().expect("pipeline assembles")
}

/// Eight concurrent int8 sessions on a four-shard engine produce bitwise
/// the same skeletons as the dedicated single-session int8 pipeline.
#[test]
fn sharded_int8_serve_matches_sequential_int8_bitwise() {
    let n_sessions = 8;
    let frames_per_session = 8;
    let model = tiny_model();
    let pipeline = pipeline_at(model, Precision::Int8);
    assert_eq!(pipeline.precision(), Precision::Int8);
    let st = pipeline.builder().config().frames_per_segment;
    let segments = frames_per_session / st;
    let streams: Vec<Vec<RawFrame>> =
        (0..n_sessions).map(|k| stream(60 + k as u64, frames_per_session)).collect();

    let reference: Vec<Vec<Vec<f32>>> = streams
        .iter()
        .map(|s| {
            let mut p = pipeline.clone();
            p.try_estimate_skeletons(s).expect("reference estimate").0
        })
        .collect();

    let mut serve = ShardedServe::new(
        pipeline,
        4,
        ServeConfig::new()
            .max_sessions(n_sessions)
            .max_batch(n_sessions)
            .queue_capacity(frames_per_session)
            .profile(
                InferenceProfile::default()
                    .precision(Precision::Int8)
                    .mesh_policy(MeshPolicy::Never),
            ),
    )
    .expect("int8 sharded serve builds");
    assert_eq!(serve.precision(), Precision::Int8);

    let ids: Vec<u64> =
        (0..n_sessions).map(|_| serve.open_session().expect("session opens")).collect();
    for (k, &sid) in ids.iter().enumerate() {
        for f in &streams[k] {
            serve.push_frame(sid, f.clone()).expect("frame accepted");
        }
    }
    let mut collected: Vec<Vec<FrameResult>> = (0..n_sessions).map(|_| Vec::new()).collect();
    for _ in 0..(segments * 4) {
        serve.step().expect("step runs");
        for (k, &sid) in ids.iter().enumerate() {
            collected[k].extend(serve.take_results(sid).expect("results drain"));
        }
        if collected.iter().all(|c| c.len() == segments) {
            break;
        }
    }

    for (k, results) in collected.iter().enumerate() {
        assert_eq!(results.len(), reference[k].len(), "session {k} segment count");
        for (r, ref_skel) in results.iter().zip(&reference[k]) {
            assert_eq!(
                r.skeleton, *ref_skel,
                "session {k} segment {}: sharded int8 skeleton diverged from \
                 the sequential int8 pipeline",
                r.segment_index
            );
        }
    }
}

/// Int8 skeletons track the f32 skeletons of the same model within a small
/// epsilon: quantization noise stays millimetric, it never relocates the
/// hand.
#[test]
fn int8_skeletons_track_f32_within_epsilon() {
    let model = tiny_model();
    let mut f32_pipe = pipeline_at(model.clone(), Precision::F32);
    let mut int8_pipe = pipeline_at(model, Precision::Int8);

    let mut count = 0usize;
    let mut sum_abs = 0.0f64;
    let mut worst = 0.0f32;
    for seed in [71u64, 72, 73] {
        let frames = stream(seed, 8);
        let (f32_skels, _) = f32_pipe.try_estimate_skeletons(&frames).expect("f32 estimate");
        let (int8_skels, _) = int8_pipe.try_estimate_skeletons(&frames).expect("int8 estimate");
        assert_eq!(f32_skels.len(), int8_skels.len(), "seed {seed}: segment counts match");
        for (a, b) in f32_skels.iter().zip(&int8_skels) {
            for (x, y) in a.iter().zip(b) {
                let d = (x - y).abs();
                sum_abs += f64::from(d);
                worst = worst.max(d);
                count += 1;
            }
        }
    }
    assert!(count > 0, "captures produced segments");
    let mean = sum_abs / count as f64;
    // Coordinates are metres. The 2-epoch tiny model amplifies
    // quantization noise through the LSTM recurrence more than the real
    // reference model does, so the mean envelope is 1cm here (the
    // bench-level exp_quant gate holds the trained model to a far
    // tighter epsilon); worst-case stays under 10cm.
    assert!(mean < 0.01, "mean |int8 - f32| coordinate drift {mean:.6}m exceeds 1cm");
    assert!(worst < 0.10, "worst |int8 - f32| coordinate drift {worst:.6}m exceeds 10cm");
}
