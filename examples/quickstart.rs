//! Quickstart: simulate a gesture capture, train a small mmHand model, and
//! estimate 3-D hand skeletons plus a MANO mesh — the complete pipeline in
//! one file.
//!
//! ```sh
//! cargo run --release -p mmhand-examples --example quickstart
//! ```

use mmhand_core::cube::CubeBuilder;
use mmhand_core::eval::{build_cohort, DataConfig};
use mmhand_core::mesh::MeshReconstructor;
use mmhand_core::metrics::JointGroup;
use mmhand_core::pipeline::MmHandPipeline;
use mmhand_core::train::{TrainConfig, Trainer};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};

fn main() {
    // 1. Generate a small training cohort with the radar simulator.
    println!("simulating training data…");
    let data = DataConfig { users: 3, frames_per_user: 96, ..Default::default() };
    let sequences = build_cohort(&data);
    println!("  {} training sequences", sequences.len());

    // 2. Train the mmHand joint regressor (scaled-down schedule).
    println!("training mmSpaceNet + LSTM…");
    let trainer = Trainer::new(
        data.model_config(),
        TrainConfig { epochs: 25, ..Default::default() },
    );
    let model = trainer.train(&sequences);
    let last = model.history.last().expect("history");
    println!("  final loss {:.5} (L3D {:.5}, Lkine {:.4})", last.loss, last.l3d, last.lkine);

    // 3. Record a fresh capture of a new gesture performance.
    let user = UserProfile::generate(1, data.seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.4,
        0.4,
    );
    let session = record_session(&user, &track, 24, &CaptureConfig::default());

    // 4. Run the full pipeline: frames → skeletons → meshes.
    let mut pipeline = MmHandPipeline::new(
        CubeBuilder::new(data.cube.clone()),
        model,
        MeshReconstructor::new(0), // analytic IK path (no mesh-net training)
    );
    let out = pipeline.estimate(&session.frames);
    println!(
        "estimated {} skeletons + meshes in {:.0}ms",
        out.skeletons.len(),
        out.timing.total_ms()
    );

    // 5. Score against the simulator's ground truth.
    let mut errors = mmhand_core::metrics::JointErrors::new();
    let st = data.cube.frames_per_segment;
    for (i, skel) in out.skeletons.iter().enumerate() {
        let truth = &session.truth[i * st + st - 1];
        let flat: Vec<f32> = truth.iter().flat_map(|v| v.to_array()).collect();
        errors.push_flat(skel, &flat);
    }
    println!(
        "MPJPE {:.1}mm | palm {:.1}mm | fingers {:.1}mm | PCK@40 {:.1}%",
        errors.mpjpe(JointGroup::Overall),
        errors.mpjpe(JointGroup::Palm),
        errors.mpjpe(JointGroup::Fingers),
        100.0 * errors.pck(JointGroup::Overall, 40.0),
    );
    let hand = &out.hands[out.hands.len() - 1];
    println!(
        "last mesh: {} vertices, {} faces, β[0] = {:.2}",
        hand.mesh.vertices.len(),
        hand.mesh.faces.len(),
        hand.beta[0]
    );
}
