pub const EXAMPLES: &[&str] = &["quickstart", "gesture_tracking", "mesh_export", "radar_playground", "counting_ui"];
