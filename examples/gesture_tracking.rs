//! Continuous gesture tracking — the user-interface-control scenario the
//! paper's introduction motivates: follow a hand through a grab–release
//! cycle and report per-frame fingertip kinematics.
//!
//! ```sh
//! cargo run --release -p mmhand-examples --example gesture_tracking
//! ```

use mmhand_core::cube::CubeBuilder;
use mmhand_core::eval::{build_cohort, DataConfig};
use mmhand_core::mesh::MeshReconstructor;
use mmhand_core::pipeline::MmHandPipeline;
use mmhand_core::train::{TrainConfig, Trainer};
use mmhand_hand::skeleton::Finger;
use mmhand_hand::trajectory::grab_track;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};

fn main() {
    // Train a compact model on simulated data.
    println!("preparing model…");
    let data = DataConfig { users: 3, frames_per_user: 192, ..Default::default() };
    let sequences = build_cohort(&data);
    let model = Trainer::new(
        data.model_config(),
        TrainConfig { epochs: 60, ..Default::default() },
    )
    .train(&sequences);
    let mut pipeline = MmHandPipeline::new(
        CubeBuilder::new(data.cube.clone()),
        model,
        MeshReconstructor::new(0),
    );

    // Record a continuous grab–release cycle.
    let user = UserProfile::generate(1, data.seed);
    let track = grab_track(Vec3::new(0.0, 0.3, 0.0), 1.5, 2);
    let n_frames = 40;
    let session = record_session(&user, &track, n_frames, &CaptureConfig::default());

    let out = pipeline.estimate(&session.frames);
    println!("tracking {} pipeline outputs:", out.skeletons.len());
    println!("segment  grip_aperture_mm  (thumb-index distance; small = closed fist)");
    let st = data.cube.frames_per_segment;
    for (i, skel) in out.skeletons.iter().enumerate() {
        let joint = |j: usize| Vec3::new(skel[3 * j], skel[3 * j + 1], skel[3 * j + 2]);
        let aperture = joint(Finger::Thumb.tip()).distance(joint(Finger::Index.tip())) * 1000.0;
        let truth = &session.truth[i * st + st - 1];
        let truth_aperture =
            truth[Finger::Thumb.tip()].distance(truth[Finger::Index.tip()]) * 1000.0;
        let bar_len = (aperture / 6.0) as usize;
        println!(
            "{i:>7}  est {aperture:>5.0}  true {truth_aperture:>5.0}  {}",
            "#".repeat(bar_len.min(40))
        );
    }
    println!("the aperture should oscillate as the hand grabs and releases");
}
