//! Counting-gesture user interface: the interface-control application the
//! paper's introduction motivates. A user shows counting digits to the
//! radar; the pipeline regresses skeletons and the template recogniser
//! turns them into digit "commands".
//!
//! ```sh
//! cargo run --release -p mmhand-examples --example counting_ui
//! ```

use mmhand_core::cube::CubeBuilder;
use mmhand_core::eval::{build_cohort, DataConfig};
use mmhand_core::mesh::MeshReconstructor;
use mmhand_core::pipeline::MmHandPipeline;
use mmhand_core::recognize::GestureRecognizer;
use mmhand_core::loss::LossWeights;
use mmhand_core::train::{TrainConfig, Trainer};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};

fn main() {
    println!("training the joint regressor…");
    let data = DataConfig { users: 3, frames_per_user: 192, ..Default::default() };
    let sequences = build_cohort(&data);
    let model = Trainer::new(
        data.model_config(),
        // γ = 0: at demo scale the kinematic constraint over-smooths the
        // fingers (see the ablation study in EXPERIMENTS.md).
        TrainConfig {
            epochs: 80,
            weights: LossWeights { beta: 1.0, gamma: 0.0 },
            ..Default::default()
        },
    )
    .train(&sequences);
    let mut pipeline = MmHandPipeline::new(
        CubeBuilder::new(data.cube.clone()),
        model,
        MeshReconstructor::new(0),
    );

    // Recognise over a small counting vocabulary (0, 1, 2, 5 are the most
    // separable digits at radar resolution).
    let vocabulary = [
        Gesture::Count(0),
        Gesture::Count(1),
        Gesture::Count(2),
        Gesture::Count(5),
    ];
    let recognizer = GestureRecognizer::with_gestures(&vocabulary);

    // The user "enters" a PIN by holding digits in sequence.
    let pin = [Gesture::Count(1), Gesture::Count(5), Gesture::Count(2), Gesture::Count(0)];
    let user = UserProfile::generate(1, data.seed);
    println!("user enters digit sequence: 1 5 2 0");
    println!();
    println!("digit  recognised  (per-segment votes)");

    let frames_per_digit = data.cube.frames_per_segment * data.seq_len * 2;
    let mut recognised = Vec::new();
    for (i, &digit) in pin.iter().enumerate() {
        let track = GestureTrack::from_gestures(
            &[digit],
            Vec3::new(0.0, 0.3, 0.0),
            3.0,
            0.1,
        );
        let session = record_session(
            &user,
            &track,
            frames_per_digit,
            &CaptureConfig { seed: 100 + i as u64, ..Default::default() },
        );
        let out = pipeline.estimate(&session.frames);
        let votes: Vec<String> = out
            .skeletons
            .iter()
            .map(|s| recognizer.recognize(s).gesture.name())
            .collect();
        let verdict = recognizer
            .recognize_sequence(&out.skeletons)
            .map(|r| r.gesture.name())
            .unwrap_or_else(|| "?".to_string());
        println!("{:<6} {:<11} {}", digit.name(), verdict, votes.join(" "));
        recognised.push(verdict);
    }

    let target: Vec<String> = pin.iter().map(|g| g.name()).collect();
    let correct = recognised.iter().zip(&target).filter(|(a, b)| *a == *b).count();
    println!();
    println!("{correct}/{} digits recognised correctly", pin.len());
    println!("(accuracy depends on the tiny demo model; the exp_* suite evaluates properly)");
}
