//! VR-avatar style mesh export: reconstruct MANO meshes for a set of
//! gestures and write them as OBJ files — the virtual-reality modelling
//! application from the paper's introduction.
//!
//! ```sh
//! cargo run --release -p mmhand-examples --example mesh_export
//! # then open target/mmhand-examples/*.obj in a mesh viewer
//! ```

use mmhand_core::mesh::{MeshFitConfig, MeshReconstructor};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::shape::HandShape;
use mmhand_math::Vec3;
use std::fs;
use std::path::PathBuf;

fn main() {
    let out_dir = PathBuf::from(
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()),
    )
    .join("mmhand-examples");
    fs::create_dir_all(&out_dir).expect("create output directory");

    // Train the shape/pose networks on synthetic hands (paper §V); the
    // analytic IK fallback is exported alongside for comparison.
    println!("fitting MANO shape & pose networks…");
    let mut reconstructor = MeshReconstructor::new(7);
    let final_loss = reconstructor.fit(&MeshFitConfig { steps: 400, ..Default::default() });
    println!("  final fit loss {final_loss:.3}");

    let shape = HandShape::default();
    for gesture in [
        Gesture::OpenPalm,
        Gesture::SpreadPalm,
        Gesture::Fist,
        Gesture::Point,
        Gesture::Ok,
        Gesture::ThumbsUp,
        Gesture::Count(5),
    ] {
        let mut pose = gesture.pose();
        pose.position = Vec3::new(0.0, 0.3, 0.0);
        let skeleton: Vec<f32> = pose
            .joints(&shape)
            .iter()
            .flat_map(|v| v.to_array())
            .collect();

        let learned = reconstructor.reconstruct(&skeleton);
        let analytic = reconstructor.reconstruct_analytic(&skeleton);
        let name = gesture.name();
        let learned_path = out_dir.join(format!("{name}_net.obj"));
        let analytic_path = out_dir.join(format!("{name}_ik.obj"));
        fs::write(&learned_path, learned.mesh.to_obj()).expect("write mesh");
        fs::write(&analytic_path, analytic.mesh.to_obj()).expect("write mesh");
        println!(
            "{name:<12} → {} ({} verts) + {}",
            learned_path.display(),
            learned.mesh.vertices.len(),
            analytic_path.display(),
        );
    }
    println!("open the OBJ files in any mesh viewer");
}
