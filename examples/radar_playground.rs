//! Radar playground: inspect what the FMCW front end actually sees —
//! range profiles, Doppler signatures, and angle spectra of a moving hand,
//! printed as ASCII heat-strips. Useful for understanding the signal
//! pre-processing stage (paper §III) without any deep learning.
//!
//! ```sh
//! cargo run --release -p mmhand-examples --example radar_playground
//! ```

use mmhand_core::cube::{CubeBuilder, CubeConfig};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::swipe_track;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};

fn strip(values: &[f32]) -> String {
    const LEVELS: &[u8] = b" .:-=+*#%@";
    let max = values.iter().cloned().fold(f32::MIN, f32::max).max(1e-9);
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (LEVELS.len() - 1) as f32).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)] as char
        })
        .collect()
}

fn main() {
    let cube_cfg = CubeConfig::default();
    let builder = CubeBuilder::new(cube_cfg.clone());
    let user = UserProfile::generate(1, 5);

    // A hand swiping left-to-right at 30 cm.
    let track = swipe_track(Vec3::new(0.0, 0.3, 0.0), 0.25, 1.6, 3);
    let session = record_session(&user, &track, 24, &CaptureConfig::default());

    println!("range resolution: {:.1} cm | max velocity ±{:.1} m/s | band 12-85 cm",
        cube_cfg.chirp.range_resolution_m() * 100.0,
        cube_cfg.chirp.max_velocity_mps());
    println!();
    println!("frame | range profile (near→far)   | azimuth spectrum (left→right)");
    for (i, frame) in session.frames.iter().enumerate().step_by(2) {
        let cube = builder.process_frame(frame);
        let range = cube.range_profile();
        // Azimuth profile: sum over velocity and range for the azimuth half.
        let [v_bins, d_bins, _] = cube.shape;
        let mut azimuth = vec![0.0_f32; cube_cfg.azimuth_bins];
        for v in 0..v_bins {
            for d in 0..d_bins {
                for (a, item) in azimuth.iter_mut().enumerate() {
                    *item += cube.at(v, d, a);
                }
            }
        }
        let wrist = session.truth[i][0];
        println!(
            "{i:>5} | {} | {}   (hand truly at x={:+.2}m)",
            strip(&range),
            strip(&azimuth),
            wrist.x
        );
    }
    println!();
    println!("the azimuth hot-spot should sweep with the hand; the range peak stays ~bin 5");

    // Show how a fist vs open palm changes the scatterer spread.
    println!();
    println!("gesture comparison at fixed position:");
    for gesture in [Gesture::OpenPalm, Gesture::Fist] {
        let track = mmhand_hand::trajectory::GestureTrack::from_gestures(
            &[gesture],
            Vec3::new(0.0, 0.3, 0.0),
            1.0,
            0.1,
        );
        let session = record_session(&user, &track, 1, &CaptureConfig::default());
        let cube = builder.process_frame(&session.frames[0]);
        println!("{:<10} range: {}", gesture.name(), strip(&cube.range_profile()));
    }
}
