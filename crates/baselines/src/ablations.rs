//! Ablation variants of the mmHand model.
//!
//! DESIGN.md calls out the design choices the paper argues for; each
//! ablation disables exactly one of them so the benchmark harness can show
//! its contribution:
//!
//! * two-stage channel attention (stage 1: frame; stage 2: velocity),
//! * 3-D spatial attention,
//! * the LSTM temporal model,
//! * the kinematic loss term.

use mmhand_core::{LossWeights, ModelConfig};

/// One ablation: a model/loss variant plus its display name.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Stable identifier, e.g. `"no_spatial_attention"`.
    pub name: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The model configuration to train.
    pub model: ModelConfig,
    /// The loss weights to train with.
    pub weights: LossWeights,
}

/// Builds the standard ablation suite around a base configuration.
pub fn suite(base: &ModelConfig) -> Vec<Ablation> {
    let w = LossWeights::default();
    vec![
        Ablation {
            name: "full",
            description: "complete mmHand (all attention, LSTM, combined loss)",
            model: base.clone(),
            weights: w,
        },
        Ablation {
            name: "no_frame_attention",
            description: "first-stage (frame) channel attention disabled",
            model: ModelConfig { frame_attention: false, ..base.clone() },
            weights: w,
        },
        Ablation {
            name: "no_channel_attention",
            description: "second-stage (velocity) channel attention disabled",
            model: ModelConfig { channel_attention: false, ..base.clone() },
            weights: w,
        },
        Ablation {
            name: "no_spatial_attention",
            description: "3-D spatial attention disabled",
            model: ModelConfig { spatial_attention: false, ..base.clone() },
            weights: w,
        },
        Ablation {
            name: "no_lstm",
            description: "temporal LSTM replaced by per-segment regression",
            model: ModelConfig { use_lstm: false, ..base.clone() },
            weights: w,
        },
        Ablation {
            name: "no_kinematic_loss",
            description: "trained with the 3-D loss only (γ = 0)",
            model: base.clone(),
            weights: LossWeights { gamma: 0.0, ..w },
        },
        Ablation {
            name: "no_attention_at_all",
            description: "plain hourglass CNN: every attention mechanism off",
            model: ModelConfig {
                frame_attention: false,
                channel_attention: false,
                spatial_attention: false,
                ..base.clone()
            },
            weights: w,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique_and_full_is_first() {
        let s = suite(&ModelConfig::default());
        assert_eq!(s[0].name, "full");
        let mut names: Vec<&str> = s.iter().map(|a| a.name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn each_ablation_differs_from_full() {
        let s = suite(&ModelConfig::default());
        let full = &s[0];
        for a in &s[1..] {
            let differs = a.model != full.model || a.weights != full.weights;
            assert!(differs, "{} is identical to full", a.name);
        }
    }

    #[test]
    fn kinematic_ablation_only_touches_loss() {
        let s = suite(&ModelConfig::default());
        let a = s.iter().find(|a| a.name == "no_kinematic_loss").unwrap();
        assert_eq!(a.model, ModelConfig::default());
        assert_eq!(a.weights.gamma, 0.0);
    }
}
