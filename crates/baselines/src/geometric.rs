//! A non-learning geometric baseline.
//!
//! Classic radar processing without deep learning: find the dominant
//! range–angle–Doppler peak of the cube, convert it to a 3-D hand-centroid
//! estimate, and attach the mean training articulation to it. Any learned
//! model must beat this to demonstrate that it extracts *pose* information
//! rather than just localising the hand.

use mmhand_core::cube::CubeConfig;
use mmhand_core::dataset::SegmentSequence;
use mmhand_core::metrics::JointErrors;
use mmhand_core::model::OUTPUT_DIM;
use mmhand_math::Vec3;
use mmhand_nn::Tensor;

/// The fitted geometric estimator.
#[derive(Clone, Debug)]
pub struct GeometricEstimator {
    cube: CubeConfig,
    /// Mean wrist-relative articulation from the training labels.
    mean_relative: Vec<f32>,
    /// Calibration from the cube's peak position to the wrist.
    centroid_to_wrist: Vec3,
}

impl GeometricEstimator {
    /// Fits the estimator: learns the mean articulation and the constant
    /// peak→wrist offset from training sequences.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(cube: &CubeConfig, train: &[SegmentSequence]) -> Self {
        assert!(!train.is_empty(), "geometric baseline needs training data");
        let mut mean_relative = vec![0.0_f32; OUTPUT_DIM];
        let mut offset = Vec3::ZERO;
        let mut count = 0_usize;
        for seq in train {
            for (seg, label) in seq.segments.iter().zip(&seq.labels) {
                let peak = peak_position(cube, seg);
                let wrist = Vec3::new(label[0], label[1], label[2]);
                offset += wrist - peak;
                for j in 1..21 {
                    for k in 0..3 {
                        mean_relative[3 * j + k] += label[3 * j + k] - label[k];
                    }
                }
                count += 1;
            }
        }
        let n = count as f32;
        for v in &mut mean_relative {
            *v /= n;
        }
        GeometricEstimator {
            cube: cube.clone(),
            mean_relative,
            centroid_to_wrist: offset / n,
        }
    }

    /// Predicts a skeleton for one segment tensor.
    pub fn predict(&self, segment: &Tensor) -> Vec<f32> {
        let wrist = peak_position(&self.cube, segment) + self.centroid_to_wrist;
        let mut out = self.mean_relative.clone();
        out[0] = wrist.x;
        out[1] = wrist.y;
        out[2] = wrist.z;
        for j in 1..21 {
            out[3 * j] += wrist.x;
            out[3 * j + 1] += wrist.y;
            out[3 * j + 2] += wrist.z;
        }
        out
    }

    /// Evaluates on sequences.
    pub fn evaluate(&self, sequences: &[SegmentSequence]) -> JointErrors {
        let mut errors = JointErrors::new();
        for seq in sequences {
            for (seg, label) in seq.segments.iter().zip(&seq.labels) {
                errors.push_flat(&self.predict(seg), label);
            }
        }
        errors
    }
}

/// Converts the strongest cube cell into a 3-D position estimate.
///
/// The segment tensor is `(st·V, D, A)` with `A` split into azimuth and
/// elevation halves; range comes from the `D` peak, azimuth/elevation from
/// the per-half angle peaks at that range.
pub fn peak_position(cube: &CubeConfig, segment: &Tensor) -> Vec3 {
    let shape = segment.shape();
    let (c, d_bins, a_bins) = (shape[0], shape[1], shape[2]);
    let az_bins = cube.azimuth_bins;
    let data = segment.data();

    // Accumulate energy per (d, a) over all channels (frames × velocities).
    let mut energy = vec![0.0_f32; d_bins * a_bins];
    for ch in 0..c {
        for i in 0..d_bins * a_bins {
            // Standardised tensors can be negative; energy uses squares.
            let v = data[ch * d_bins * a_bins + i];
            energy[i] += v * v;
        }
    }
    // Range: strongest row (summed over angle).
    let best_d = (0..d_bins)
        .max_by(|&x, &y| {
            let ex: f32 = energy[x * a_bins..(x + 1) * a_bins].iter().sum();
            let ey: f32 = energy[y * a_bins..(y + 1) * a_bins].iter().sum();
            ex.total_cmp(&ey)
        })
        .unwrap_or(0);
    let row = &energy[best_d * a_bins..(best_d + 1) * a_bins];
    let best_az = (0..az_bins)
        .max_by(|&x, &y| row[x].total_cmp(&row[y]))
        .unwrap_or(0);
    let best_el = (az_bins..a_bins)
        .max_by(|&x, &y| row[x].total_cmp(&row[y]))
        .unwrap_or(az_bins)
        - az_bins;

    let r = cube.range_of_bin(best_d) as f32;
    let grid = |bins: usize, idx: usize| -> f32 {
        let s_max = cube.max_angle_rad.sin();
        let step = if bins <= 1 { 0.0 } else { 2.0 * s_max / (bins - 1) as f32 };
        (-s_max + step * idx as f32).asin()
    };
    let az = grid(az_bins, best_az);
    let el = grid(a_bins - az_bins, best_el);
    Vec3::new(
        r * az.sin() * el.cos(),
        r * az.cos() * el.cos(),
        r * el.sin(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_core::cube::CubeBuilder;
    use mmhand_core::dataset::session_to_sequences;
    use mmhand_core::metrics::JointGroup;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::trajectory::GestureTrack;
    use mmhand_hand::user::UserProfile;
    use mmhand_radar::capture::{record_session, CaptureConfig};
    use mmhand_radar::{ChirpConfig, Environment};

    fn tiny_setup() -> (CubeConfig, Vec<SegmentSequence>) {
        let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
        let cube = CubeConfig {
            chirp,
            range_bins: 8,
            doppler_bins: 4,
            azimuth_bins: 4,
            elevation_bins: 4,
            frames_per_segment: 2,
            range_max_m: 0.55,
            ..Default::default()
        };
        let user = UserProfile::generate(1, 21);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Fist],
            mmhand_math::Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        let capture = CaptureConfig {
            chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        };
        let session = record_session(&user, &track, 24, &capture);
        let builder = CubeBuilder::new(cube.clone());
        let seqs = session_to_sequences(&builder, &session, 2, 1);
        (cube, seqs)
    }

    #[test]
    fn peak_position_is_near_the_hand() {
        let (cube, seqs) = tiny_setup();
        let p = peak_position(&cube, &seqs[0].segments[0]);
        // The hand was at (0, 0.3, 0): peak within 15 cm of it.
        assert!(p.distance(Vec3::new(0.0, 0.3, 0.0)) < 0.15, "peak {p}");
    }

    #[test]
    fn fitted_estimator_localises_hand() {
        let (cube, seqs) = tiny_setup();
        let est = GeometricEstimator::fit(&cube, &seqs);
        let errors = est.evaluate(&seqs);
        // With a static hand position, the geometric baseline should land
        // within a few cm — and importantly not at zero error (it cannot
        // track articulation).
        let mpjpe = errors.mpjpe(JointGroup::Overall);
        assert!(mpjpe < 80.0, "geometric baseline {mpjpe} mm");
        assert!(mpjpe > 1.0, "implausibly perfect baseline {mpjpe} mm");
    }

    #[test]
    fn prediction_has_valid_structure() {
        let (cube, seqs) = tiny_setup();
        let est = GeometricEstimator::fit(&cube, &seqs);
        let p = est.predict(&seqs[0].segments[0]);
        assert_eq!(p.len(), OUTPUT_DIM);
        assert!(p.iter().all(|v| v.is_finite()));
        // The skeleton should span a hand-sized extent.
        let wrist = Vec3::new(p[0], p[1], p[2]);
        let tip = Vec3::new(p[3 * 12], p[3 * 12 + 1], p[3 * 12 + 2]);
        let span = wrist.distance(tip);
        assert!(span > 0.1 && span < 0.3, "span {span}");
    }

    #[test]
    #[should_panic(expected = "training data")]
    fn empty_training_panics() {
        let (cube, _) = tiny_setup();
        GeometricEstimator::fit(&cube, &[]);
    }
}
