//! Runnable surrogates for the wireless baselines of Table I.
//!
//! The paper could not fully reproduce mm4Arm or HandFi either — it
//! re-collected data "following their experimental setups" and compared
//! against their published numbers. We do the equivalent with simulator
//! knobs:
//!
//! * **mm4Arm-like** — mm4Arm regresses finger motion per frame from
//!   forearm micro-Doppler with no hand-surface spatial model. The
//!   surrogate is a per-segment regressor with the spatial attention and
//!   temporal LSTM removed (Doppler-centric, no multi-scale hand feature).
//! * **HandFi-like** — WiFi has orders-of-magnitude coarser spatial
//!   resolution than 77 GHz radar. The surrogate trains the same network on
//!   cubes whose range/angle axes have been block-averaged, emulating the
//!   coarse channel.

use mmhand_core::dataset::SegmentSequence;
use mmhand_core::ModelConfig;
use mmhand_nn::Tensor;

/// The mm4Arm-like model configuration derived from a base config.
pub fn mm4arm_like(base: &ModelConfig) -> ModelConfig {
    ModelConfig {
        use_lstm: false,
        spatial_attention: false,
        frame_attention: false,
        ..base.clone()
    }
}

/// Block-averages the range and angle axes of every segment tensor by
/// `factor`, emulating a coarse-resolution (WiFi-like) sensing channel.
/// Shapes are preserved; information is destroyed.
///
/// # Panics
///
/// Panics if `factor` is zero or does not divide both spatial dimensions.
pub fn coarsen_sequences(sequences: &[SegmentSequence], factor: usize) -> Vec<SegmentSequence> {
    assert!(factor > 0, "factor must be positive");
    sequences
        .iter()
        .map(|s| {
            let mut s = s.clone();
            for seg in &mut s.segments {
                *seg = coarsen_tensor(seg, factor);
            }
            s
        })
        .collect()
}

fn coarsen_tensor(t: &Tensor, factor: usize) -> Tensor {
    let shape = t.shape().to_vec();
    let (c, d, a) = (shape[0], shape[1], shape[2]);
    assert_eq!(d % factor, 0, "factor must divide range bins");
    assert_eq!(a % factor, 0, "factor must divide angle bins");
    let mut out = t.clone();
    for ch in 0..c {
        for bd in 0..d / factor {
            for ba in 0..a / factor {
                let mut sum = 0.0;
                for i in 0..factor {
                    for j in 0..factor {
                        sum += t.data()[(ch * d + bd * factor + i) * a + ba * factor + j];
                    }
                }
                let avg = sum / (factor * factor) as f32;
                for i in 0..factor {
                    for j in 0..factor {
                        out.data_mut()[(ch * d + bd * factor + i) * a + ba * factor + j] = avg;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::stream_rng;

    #[test]
    fn mm4arm_config_strips_spatial_and_temporal_modelling() {
        let base = ModelConfig::default();
        let m = mm4arm_like(&base);
        assert!(!m.use_lstm);
        assert!(!m.spatial_attention);
        assert!(!m.frame_attention);
        // The Doppler-channel weighting is what mm4Arm *does* rely on.
        assert!(m.channel_attention);
    }

    #[test]
    fn coarsening_preserves_shape_and_mean() {
        let mut rng = stream_rng(1, "c");
        let t = Tensor::randn(&[2, 8, 8], 1.0, &mut rng);
        let c = coarsen_tensor(&t, 4);
        assert_eq!(c.shape(), t.shape());
        assert!((c.mean() - t.mean()).abs() < 1e-5);
        // Blocks are constant.
        assert_eq!(c.data()[0], c.data()[1]);
        assert_eq!(c.data()[0], c.data()[8]);
    }

    #[test]
    fn coarsening_destroys_information() {
        let mut rng = stream_rng(2, "c");
        let t = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let c = coarsen_tensor(&t, 2);
        let var = |x: &Tensor| {
            let m = x.mean();
            x.data().iter().map(|v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32
        };
        assert!(var(&c) < var(&t), "coarsening must reduce variance");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_factor_panics() {
        let t = Tensor::zeros(&[1, 8, 8]);
        coarsen_tensor(&t, 3);
    }

    #[test]
    fn sequences_coarsen_elementwise() {
        let mut rng = stream_rng(3, "c");
        let seq = SegmentSequence {
            segments: vec![Tensor::randn(&[2, 4, 4], 1.0, &mut rng)],
            labels: vec![vec![0.0; 63]],
            user_id: 1,
        };
        let out = coarsen_sequences(&[seq], 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].segments[0].shape(), &[2, 4, 4]);
        assert_eq!(out[0].user_id, 1);
    }
}
