//! # mmhand-baselines
//!
//! Comparison methods for the mmHand evaluation:
//!
//! * [`literature`] — the fixed Table I numbers (vision methods on
//!   MSRA/ICVL; mm4Arm and HandFi on self-collected data),
//! * [`ablations`] — single-mechanism ablations of the mmHand model
//!   (attention stages, LSTM, kinematic loss),
//! * [`geometric`] — a non-learning peak-localisation baseline,
//! * [`surrogates`] — runnable stand-ins for the wireless baselines
//!   (mm4Arm-like per-frame regressor, HandFi-like coarse-channel model).

pub mod ablations;
pub mod geometric;
pub mod literature;
pub mod surrogates;

pub use ablations::{suite, Ablation};
pub use geometric::GeometricEstimator;
pub use literature::{TableEntry, TABLE1};
