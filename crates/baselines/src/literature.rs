//! Literature comparison numbers for Table I.
//!
//! The paper compares mmHand's MPJPE against four vision methods (using
//! their published MSRA/ICVL results) and two wireless methods (using
//! results on data collected per those papers' setups). These constants
//! reproduce the table's fixed entries; the runnable surrogate baselines
//! live in [`crate::surrogates`].

/// Source dataset of a literature MPJPE number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// MSRA hand pose dataset.
    Msra,
    /// ICVL hand pose dataset.
    Icvl,
    /// The method authors' self-collected data.
    SelfCollected,
}

impl Dataset {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Msra => "MSRA",
            Dataset::Icvl => "ICVL",
            Dataset::SelfCollected => "Self-collected",
        }
    }
}

/// One row of Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableEntry {
    /// Method name as printed in the paper.
    pub method: &'static str,
    /// Dataset the number was reported on.
    pub dataset: Dataset,
    /// Reported MPJPE in millimetres.
    pub mpjpe_mm: f32,
    /// The mmHand MPJPE the paper lists alongside (its own column).
    pub mmhand_mpjpe_mm: f32,
    /// `true` for wireless-sensing methods.
    pub wireless: bool,
}

/// The fixed literature entries of Table I.
pub const TABLE1: [TableEntry; 8] = [
    TableEntry { method: "Cascade", dataset: Dataset::Msra, mpjpe_mm: 15.2, mmhand_mpjpe_mm: 18.3, wireless: false },
    TableEntry { method: "Cascade", dataset: Dataset::Icvl, mpjpe_mm: 9.9, mmhand_mpjpe_mm: 18.3, wireless: false },
    TableEntry { method: "CrossingNet", dataset: Dataset::Msra, mpjpe_mm: 12.2, mmhand_mpjpe_mm: 18.3, wireless: false },
    TableEntry { method: "CrossingNet", dataset: Dataset::Icvl, mpjpe_mm: 10.2, mmhand_mpjpe_mm: 18.3, wireless: false },
    TableEntry { method: "DeepPrior++", dataset: Dataset::Msra, mpjpe_mm: 9.5, mmhand_mpjpe_mm: 18.3, wireless: false },
    TableEntry { method: "HBE", dataset: Dataset::Icvl, mpjpe_mm: 8.62, mmhand_mpjpe_mm: 18.3, wireless: false },
    TableEntry { method: "mm4Arm", dataset: Dataset::SelfCollected, mpjpe_mm: 4.07, mmhand_mpjpe_mm: 20.4, wireless: true },
    TableEntry { method: "HandFi", dataset: Dataset::SelfCollected, mpjpe_mm: 20.7, mmhand_mpjpe_mm: 19.0, wireless: true },
];

/// Mean MPJPE of the vision methods (the paper quotes 10.94 mm).
pub fn vision_mean_mpjpe() -> f32 {
    let vision: Vec<f32> = TABLE1
        .iter()
        .filter(|e| !e.wireless)
        .map(|e| e.mpjpe_mm)
        .collect();
    vision.iter().sum::<f32>() / vision.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_mean_matches_paper() {
        // Paper §VI-C: "the average value 10.94mm of these visual methods".
        assert!((vision_mean_mpjpe() - 10.94).abs() < 0.01);
    }

    #[test]
    fn table_has_six_methods() {
        let mut methods: Vec<&str> = TABLE1.iter().map(|e| e.method).collect();
        methods.sort_unstable();
        methods.dedup();
        assert_eq!(methods.len(), 6);
    }

    #[test]
    fn wireless_rows_use_self_collected_data() {
        for e in TABLE1.iter().filter(|e| e.wireless) {
            assert_eq!(e.dataset, Dataset::SelfCollected);
        }
    }

    #[test]
    fn paper_claim_mmhand_within_10mm_of_vision_average() {
        // Paper: "the difference of MPJPE between the result of mmHand and
        // the average value ... is within 10mm".
        assert!((18.3 - vision_mean_mpjpe()).abs() < 10.0);
    }
}
