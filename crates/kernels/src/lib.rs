//! Runtime-dispatched compute-kernel backends.
//!
//! Every hot inner loop in the workspace — the packed GEMM microkernel
//! (`mmhand-nn`), the radix-2 FFT butterfly stages and the cascaded
//! Butterworth biquads (`mmhand-dsp`), and linear blend skinning
//! (`mmhand-hand`) — runs through the [`Kernels`] trait defined here. Two
//! implementations exist:
//!
//! * [`scalar_kernels`] — the pre-dispatch scalar code, moved here verbatim.
//!   Always available, and the reference every other backend is tested
//!   against.
//! * [`simd_kernels`] — explicit AVX2/SSE2 intrinsics (x86_64 only, selected
//!   when the CPU reports AVX2 at runtime).
//!
//! One backend is chosen once per process by [`kernels`], in this order:
//!
//! 1. `MMHAND_KERNEL_BACKEND=scalar|simd|auto` env override (`simd` falls
//!    back to scalar, with a warning, when the CPU lacks AVX2);
//! 2. runtime CPU-feature detection: AVX2 on x86_64 → SIMD;
//! 3. otherwise scalar (aarch64/NEON is a future backend; today non-x86_64
//!    always runs the scalar reference).
//!
//! The selection is recorded as the `kernel.backend` telemetry gauge
//! (0 = scalar, 1 = simd) and one startup log line on stderr.
//!
//! # Determinism contract
//!
//! The SIMD backend is **bitwise identical** to the scalar reference, not
//! merely close: it uses no FMA and never reassociates a reduction. Each
//! output element accumulates the same products in the same order as the
//! scalar loop; SIMD only evaluates independent output elements (GEMM
//! columns, FFT butterflies, the two filter planes, vector components) in
//! parallel lanes. The cross-backend property tests in this crate and in
//! `nn`/`dsp` therefore assert a ULP distance of exactly zero, and the
//! pinned-scalar mode (`MMHAND_KERNEL_BACKEND=scalar`) is an oracle, not a
//! different answer.

use mmhand_math::{Complex, Quaternion, Vec3};
use std::sync::OnceLock;

mod scalar;
// Miri interprets no vendor intrinsics; the SIMD backend is compiled out
// there and `simd_kernels()` reports `None`, so the whole suite runs on
// the scalar reference under `cargo miri test`.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod simd;

/// Register rows of the GEMM microkernel: every backend computes 4 rows of
/// `C` per pass over a `B` row. Callers pack `A` quads at this stride.
pub const GEMM_MR: usize = 4;

/// Upper bound on [`Kernels::abt_panel_width`] across backends, so callers
/// can use a fixed-size stack buffer for panel dot results.
pub const ABT_PANEL_MAX: usize = 8;

/// Upper bound on the biquad cascade length [`Kernels::iir_cascade_dual`]
/// accepts (the SIMD backend keeps section state in stack arrays). A
/// 32nd-order Butterworth band-pass fits; the paper's filter is 8th order
/// (4 sections).
pub const MAX_BIQUADS: usize = 16;

/// Lane count of the blocked squared-sum reduction
/// [`Kernels::sq_sum_blocked`]: both backends accumulate this many
/// independent partial sums (element `i` goes to lane `i % SQ_SUM_LANES`
/// over full blocks) and combine them in ascending lane order, so the
/// accumulation order — and therefore the result bits — is identical in
/// scalar and SIMD. Sixteen lanes give the AVX2 backend two independent
/// 8-wide accumulator chains (hiding add latency) and the autovectorized
/// scalar backend four 4-wide ones.
pub const SQ_SUM_LANES: usize = 16;

/// Coefficients of one normalised direct-form-II-transposed biquad, with
/// the same convention as `mmhand-dsp`'s `Biquad`:
/// `y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BiquadCoeffs {
    /// Feed-forward coefficients `[b0, b1, b2]`.
    pub b: [f32; 3],
    /// Feedback coefficients `[a1, a2]` (a0 normalised to 1).
    pub a: [f32; 2],
}

/// Per-vertex skinning attachment: up to two joints with blend weights.
/// Unused slots carry an exact `0.0` weight.
#[derive(Clone, Copy, Debug, Default)]
pub struct SkinAttachment {
    /// Joint indices into the rest/posed joint arrays.
    pub joints: [u32; 2],
    /// Blend weights; weights of used slots sum to 1.
    pub weights: [f32; 2],
}

/// The dispatched kernel surface. One `&'static dyn Kernels` is selected
/// per process by [`kernels`]; tests and benches can also drive a specific
/// backend directly via [`scalar_kernels`] / [`simd_kernels`].
///
/// All methods are allocation-free: callers pass scratch (pack panels,
/// deinterleaved planes) checked out of their own pools.
pub trait Kernels: Send + Sync {
    /// Backend name for logs and metric suffixes (`"scalar"`, `"simd"`).
    fn name(&self) -> &'static str;

    /// 4-row GEMM microkernel: accumulates the packed k-tile panel `apack`
    /// (quads interleaved per k-step, [`GEMM_MR`] stride) against `B` rows
    /// `[kb, kend)` into four `C` rows of length `n`.
    ///
    /// Each `C` element accumulates its products in ascending-k order.
    #[allow(clippy::too_many_arguments)]
    fn gemm_4xn(
        &self,
        apack: &[f32],
        b: &[f32],
        c0: &mut [f32],
        c1: &mut [f32],
        c2: &mut [f32],
        c3: &mut [f32],
        kb: usize,
        kend: usize,
        n: usize,
    );

    /// Column-panel width of the `A·Bᵀ` packed kernel (≤ [`ABT_PANEL_MAX`]).
    fn abt_panel_width(&self) -> usize;

    /// Packs `abt_panel_width()` columns of `B` (`(n, k)` row-major layout)
    /// starting at column `j` into `bpack`, interleaved by k-step:
    /// `bpack[kk·w + l] = b[(j + l)·k + kk]`.
    fn abt_pack_panel(&self, b: &[f32], j: usize, k: usize, bpack: &mut [f32]);

    /// Dots one `A` row against a packed column panel:
    /// `out[l] = Σ_kk a_row[kk] · bpack[kk·w + l]`, each lane accumulated
    /// independently in ascending-k order from `0.0`.
    fn abt_dot_panel(&self, a_row: &[f32], bpack: &[f32], out: &mut [f32]);

    /// One radix-2 Danielson–Lanczos stage of span `len` over the whole
    /// (bit-reversed) buffer: for every block of `len` elements, butterfly
    /// pairs `(x[i+j], x[i+j+len/2])` with twiddles `tw[j]`.
    fn fft_stage(&self, x: &mut [Complex], tw: &[Complex], len: usize);

    /// Cascaded-biquad filtering of the two planes of a complex signal,
    /// each plane starting from cleared state: `y = gain·x` then through
    /// every section in order. `coeffs.len()` must be ≤ [`MAX_BIQUADS`]
    /// and the planes must have equal length.
    fn iir_cascade_dual(&self, coeffs: &[BiquadCoeffs], gain: f32, re: &mut [f32], im: &mut [f32]);

    /// Linear blend skinning: for each vertex `v` with attachment `w`,
    /// `out[v] = Σ_k w_k · (posed[j_k] + R[j_k]·(v − rest[j_k]))`, skipping
    /// exact-zero weights. `out` is cleared and refilled.
    fn lbs_skin(
        &self,
        verts: &[Vec3],
        attachments: &[SkinAttachment],
        rest_joints: &[Vec3],
        posed_joints: &[Vec3],
        global_rot: &[Quaternion],
        out: &mut Vec<Vec3>,
    );

    /// Quantized int8 GEMM row kernel: `out[j] = Σ_kk x[kk] · wt[j·k + kk]`
    /// (overwrite, not accumulate), with `x` one quantized input row of
    /// length `k` and `wt` the transposed weight matrix (`n` output
    /// channels × `k`, row-major, so every dot product is contiguous).
    ///
    /// Accumulation is exact in i32 — i8×i8 products are ≤ 16129, so any
    /// `k` below ~133 000 cannot overflow — which makes every backend
    /// bitwise identical by construction: integer addition is associative,
    /// so lane order does not matter (unlike the f32 kernels, which must
    /// preserve ascending-k order).
    fn qgemm_row_i8(&self, x: &[i8], wt: &[i8], out: &mut [i32], k: usize, n: usize);

    /// ReLU backward: zeroes `dy[i]` wherever the forward output
    /// `y[i] ≤ 0`, element-wise over `min(dy.len(), y.len())`.
    fn relu_backward(&self, dy: &mut [f32], y: &[f32]);

    /// Sigmoid backward: `dy[i] *= y[i] · (1 − y[i])` with `y` the forward
    /// output, element-wise over `min(dy.len(), y.len())`.
    fn sigmoid_backward(&self, dy: &mut [f32], y: &[f32]);

    /// Tanh backward: `dy[i] *= 1 − y[i]²` with `y` the forward output,
    /// element-wise over `min(dy.len(), y.len())`.
    fn tanh_backward(&self, dy: &mut [f32], y: &[f32]);

    /// Gradient accumulation: `acc[i] += g[i]` over
    /// `min(acc.len(), g.len())` — the tape's `add_grad` merge and the
    /// parameter store's shard-gradient reduce.
    fn axpy(&self, acc: &mut [f32], g: &[f32]);

    /// One feature row of the LayerNorm backward. With
    /// `x̂ᵢ = (xrᵢ − mean)·rstd` and `dᵢ = dyrᵢ·gammaᵢ`, fills
    /// `dxhat` with `d`, accumulates `dgammaᵢ += dyrᵢ·x̂ᵢ` and
    /// `dbetaᵢ += dyrᵢ`, and writes
    /// `dxᵢ = rstd·(dᵢ − Σd/f − x̂ᵢ·Σ(d·x̂)/f)`. The two row sums
    /// accumulate sequentially in ascending `i` on every backend (SIMD only
    /// vectorises the lane-independent element-wise parts), keeping the
    /// result bitwise identical to the scalar reference. `f = xr.len()`;
    /// every other slice must hold at least `f` elements.
    #[allow(clippy::too_many_arguments)]
    fn layer_norm_backward_row(
        &self,
        xr: &[f32],
        dyr: &[f32],
        gamma: &[f32],
        mean: f32,
        rstd: f32,
        dxhat: &mut [f32],
        dx: &mut [f32],
        dgamma: &mut [f32],
        dbeta: &mut [f32],
    );

    /// Fused Adam update over one parameter tensor: for every element,
    /// `mᵢ ← β₁·mᵢ + (1−β₁)·gᵢ`, `vᵢ ← β₂·vᵢ + (1−β₂)·gᵢ·gᵢ`, then
    /// `valueᵢ −= lr·(mᵢ/bias1) / (√(vᵢ/bias2) + eps)` — one pass instead
    /// of the historical dual-indexed loop. `bias1`/`bias2` are the
    /// per-step corrections `1 − βᵗ`, hoisted by the caller. Every lane is
    /// an independent element and the arithmetic is mul/add/sub/div/sqrt
    /// only (all IEEE correctly rounded), so SIMD is bitwise identical to
    /// scalar. All four slices must share `value.len()`.
    #[allow(clippy::too_many_arguments)]
    fn adam_step(
        &self,
        value: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        beta1: f32,
        beta2: f32,
        bias1: f32,
        bias2: f32,
        lr: f32,
        eps: f32,
    );

    /// Blocked squared-sum reduction `Σ xᵢ²` in the fixed
    /// [`SQ_SUM_LANES`]-lane order: lane `l` accumulates elements
    /// `l, l+8, l+16, …` over full 8-blocks, lanes combine in ascending
    /// lane order, then the ragged tail adds sequentially. Both backends
    /// implement exactly this order, so the reduction is deterministic
    /// across backends (unlike a flat sequential sum, which SIMD could not
    /// reproduce without running scalar).
    fn sq_sum_blocked(&self, x: &[f32]) -> f32;
}

/// Which backend [`kernels`] selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference.
    Scalar,
    /// Explicit SIMD (AVX2/SSE2 on x86_64).
    Simd,
}

impl Backend {
    /// Stable lowercase name, matching [`Kernels::name`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        }
    }
}

/// A caller's typed *request* for a backend, as carried by serve's
/// `InferenceProfile`. Unlike [`Backend`] (the resolved selection), a
/// request may ask for [`BackendChoice::Auto`] — defer to the documented
/// `MMHAND_KERNEL_BACKEND` env fallback, then CPU detection — or for a
/// backend the CPU cannot deliver, in which case resolution falls back to
/// scalar with a warning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Env fallback (`MMHAND_KERNEL_BACKEND`), then CPU detection.
    #[default]
    Auto,
    /// Pin the portable scalar reference.
    Scalar,
    /// Pin the SIMD backend (falls back to scalar when unsupported).
    Simd,
}

impl BackendChoice {
    /// Stable lowercase name (`"auto"`, `"scalar"`, `"simd"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Scalar => "scalar",
            BackendChoice::Simd => "simd",
        }
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" | "" => Ok(BackendChoice::Auto),
            "scalar" => Ok(BackendChoice::Scalar),
            "simd" => Ok(BackendChoice::Simd),
            other => Err(format!("unknown kernel backend {other:?} (expected scalar|simd|auto)")),
        }
    }
}

/// The always-available scalar reference backend.
pub fn scalar_kernels() -> &'static dyn Kernels {
    static SCALAR: scalar::ScalarKernels = scalar::ScalarKernels;
    &SCALAR
}

/// The SIMD backend, when this CPU supports it (`None` otherwise — on
/// x86_64 without AVX2 and on every other architecture today).
pub fn simd_kernels() -> Option<&'static dyn Kernels> {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            static SIMD: simd::SimdKernels = simd::SimdKernels;
            return Some(&SIMD);
        }
        None
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    None
}

struct Selected {
    kern: &'static dyn Kernels,
    backend: Backend,
}

static ACTIVE: OnceLock<Selected> = OnceLock::new();

/// Records the resolved selection in telemetry and on stderr.
fn record(kern: &'static dyn Kernels, backend: Backend, why: &str) -> Selected {
    mmhand_telemetry::gauge("kernel.backend").set(match backend {
        Backend::Scalar => 0.0,
        Backend::Simd => 1.0,
    });
    eprintln!("mmhand-kernels: backend={} ({why})", kern.name());
    Selected { kern, backend }
}

fn selected() -> &'static Selected {
    ACTIVE.get_or_init(|| {
        let (kern, backend, why) = choose();
        record(kern, backend, &why)
    })
}

/// Resolves and pins the process-wide backend from an explicit, typed
/// request (serve's `InferenceProfile` routes through here). The backend is
/// process-global and the first resolver — this call or the first implicit
/// [`kernels`] use — wins; the returned [`Backend`] is therefore the
/// **actual** selection, which can differ from the request when another
/// component selected first or the CPU lacks SIMD support.
/// [`BackendChoice::Auto`] defers to the documented `MMHAND_KERNEL_BACKEND`
/// env fallback, then CPU detection.
pub fn request_backend(choice: BackendChoice) -> Backend {
    ACTIVE
        .get_or_init(|| {
            let (kern, backend, why) = match choice {
                BackendChoice::Auto => choose(),
                BackendChoice::Scalar => {
                    (scalar_kernels(), Backend::Scalar, "pinned by inference profile".into())
                }
                BackendChoice::Simd => match simd_kernels() {
                    Some(k) => (k, Backend::Simd, "pinned by inference profile".into()),
                    None => {
                        eprintln!(
                            "mmhand-kernels: inference profile requested simd but this CPU has \
                             no supported SIMD backend; falling back to scalar"
                        );
                        (
                            scalar_kernels(),
                            Backend::Scalar,
                            "profile requested simd but unavailable".into(),
                        )
                    }
                },
            };
            record(kern, backend, &why)
        })
        .backend
}

/// Resolves the backend: env override first, then CPU detection.
fn choose() -> (&'static dyn Kernels, Backend, String) {
    let request = std::env::var("MMHAND_KERNEL_BACKEND").unwrap_or_default();
    match request.as_str() {
        "scalar" => {
            return (scalar_kernels(), Backend::Scalar, "pinned by MMHAND_KERNEL_BACKEND".into());
        }
        "simd" => match simd_kernels() {
            Some(k) => {
                return (k, Backend::Simd, "pinned by MMHAND_KERNEL_BACKEND".into());
            }
            None => {
                eprintln!(
                    "mmhand-kernels: MMHAND_KERNEL_BACKEND=simd but this CPU has no supported \
                     SIMD backend; falling back to scalar"
                );
                return (
                    scalar_kernels(),
                    Backend::Scalar,
                    "simd requested but unavailable".into(),
                );
            }
        },
        "" | "auto" => {}
        other => {
            eprintln!(
                "mmhand-kernels: unknown MMHAND_KERNEL_BACKEND={other:?} (expected \
                 scalar|simd|auto); auto-detecting"
            );
        }
    }
    match simd_kernels() {
        Some(k) => (k, Backend::Simd, "auto-detected avx2".into()),
        None => (scalar_kernels(), Backend::Scalar, "no SIMD support detected".into()),
    }
}

/// The process-wide kernel backend, selected on first call (env override,
/// then CPU detection — see the module docs) and fixed thereafter.
pub fn kernels() -> &'static dyn Kernels {
    selected().kern
}

/// Which [`Backend`] the process-wide selection resolved to.
pub fn active_backend() -> Backend {
    selected().backend
}

/// Name of the process-wide backend (`"scalar"` or `"simd"`), for logs and
/// per-backend metric names.
pub fn backend_name() -> &'static str {
    selected().kern.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::{standard_normal, stream_rng};
    use proptest::prelude::*;

    /// Drives a cross-backend comparison when SIMD exists on this machine;
    /// silently passes (scalar-only CPU) otherwise.
    fn both() -> Option<(&'static dyn Kernels, &'static dyn Kernels)> {
        simd_kernels().map(|s| (scalar_kernels(), s))
    }

    fn randn(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| standard_normal(rng)).collect()
    }

    #[test]
    fn selection_is_stable_and_named() {
        let a = kernels().name();
        let b = kernels().name();
        assert_eq!(a, b);
        assert!(a == "scalar" || a == "simd");
        assert_eq!(backend_name(), a);
        assert_eq!(active_backend().name(), a);
    }

    #[test]
    fn qgemm_row_i8_semantics() {
        // k=3, n=2, wt transposed (n, k) row-major; out is overwritten.
        let x = [1i8, -2, 3];
        let wt = [10i8, 20, 30, -1, -2, -3];
        let mut out = [99i32; 2];
        scalar_kernels().qgemm_row_i8(&x, &wt, &mut out, 3, 2);
        assert_eq!(out, [10 - 40 + 90, -1 + 4 - 9]);
    }

    #[test]
    fn backend_choice_parses_and_names() {
        for (s, c) in [
            ("auto", BackendChoice::Auto),
            ("scalar", BackendChoice::Scalar),
            ("simd", BackendChoice::Simd),
        ] {
            assert_eq!(s.parse::<BackendChoice>().unwrap(), c);
            assert_eq!(c.name(), s);
        }
        assert_eq!("".parse::<BackendChoice>().unwrap(), BackendChoice::Auto);
        assert!("avx512".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn request_backend_returns_the_process_selection() {
        // Whatever was pinned first in this process, a request must report
        // the same selection the implicit path sees, and stay stable.
        let b = request_backend(BackendChoice::Auto);
        assert_eq!(b, active_backend());
        assert_eq!(request_backend(BackendChoice::Scalar), b);
    }

    #[test]
    fn scalar_backend_is_always_available() {
        assert_eq!(scalar_kernels().name(), "scalar");
        assert!(scalar_kernels().abt_panel_width() <= ABT_PANEL_MAX);
        if let Some(s) = simd_kernels() {
            assert_eq!(s.name(), "simd");
            assert!(s.abt_panel_width() <= ABT_PANEL_MAX);
        }
    }

    /// The scalar `adam_step` kernel is the pre-refactor optimizer loop
    /// moved verbatim — pin it bitwise against that original dual-indexed
    /// formulation so the move can never drift.
    #[test]
    fn scalar_adam_step_matches_pre_refactor_loop() {
        let mut rng = stream_rng(7, "adam-pin");
        let n = 37;
        let p0 = randn(&mut rng, n);
        let g = randn(&mut rng, n);
        let m0: Vec<f32> = randn(&mut rng, n).iter().map(|v| 0.1 * v).collect();
        let v0: Vec<f32> = randn(&mut rng, n).iter().map(|v| v * v).collect();
        let (beta1, beta2, lr, eps) = (0.9f32, 0.999f32, 3e-4f32, 1e-8f32);
        let t = 17u32;
        let bias1 = 1.0 - beta1.powi(t as i32);
        let bias2 = 1.0 - beta2.powi(t as i32);

        // The original `Adam::step_with_lr` inner loop, exactly as it was.
        let (mut p_ref, mut m_ref, mut v_ref) = (p0.clone(), m0.clone(), v0.clone());
        for i in 0..n {
            let gi = g[i];
            m_ref[i] = beta1 * m_ref[i] + (1.0 - beta1) * gi;
            v_ref[i] = beta2 * v_ref[i] + (1.0 - beta2) * gi * gi;
            let m_hat = m_ref[i] / (1.0 - beta1.powi(t as i32));
            let v_hat = v_ref[i] / (1.0 - beta2.powi(t as i32));
            p_ref[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }

        let (mut p, mut m, mut v) = (p0, m0, v0);
        scalar_kernels().adam_step(&mut p, &g, &mut m, &mut v, beta1, beta2, bias1, bias2, lr, eps);
        for i in 0..n {
            assert_eq!(p[i].to_bits(), p_ref[i].to_bits(), "p[{i}]");
            assert_eq!(m[i].to_bits(), m_ref[i].to_bits(), "m[{i}]");
            assert_eq!(v[i].to_bits(), v_ref[i].to_bits(), "v[{i}]");
        }
    }

    /// The blocked reduction is a reassociation of the flat squared sum: the
    /// value must agree with the sequential sum to float tolerance (the bits
    /// legitimately differ — that is the point of freezing the new order).
    #[test]
    fn sq_sum_blocked_approximates_flat_sum() {
        let mut rng = stream_rng(11, "sqsum-sanity");
        for n in [0usize, 1, 7, 8, 9, 64, 257] {
            let x = randn(&mut rng, n);
            let flat: f32 = x.iter().map(|v| v * v).sum();
            let blocked = scalar_kernels().sq_sum_blocked(&x);
            assert!(
                (blocked - flat).abs() <= 1e-4 * flat.max(1.0),
                "n={n}: blocked {blocked} vs flat {flat}"
            );
        }
    }

    proptest! {
        /// SIMD microkernel output must be bitwise identical (0 ULP) to the
        /// scalar reference, including ragged tails — under either
        /// `sanitize-numerics` feature state (the suite runs in both CI jobs).
        #[test]
        fn gemm_4xn_backends_bitwise_identical(
            kt in 1usize..40, n in 1usize..35, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-gemm");
            let apack = randn(&mut rng, kt * GEMM_MR);
            let b = randn(&mut rng, kt * n);
            let init = randn(&mut rng, 4 * n);
            let mut c_sc = init.clone();
            let mut c_sd = init;
            {
                let (c0, rest) = c_sc.split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                sc.gemm_4xn(&apack, &b, c0, c1, c2, c3, 0, kt, n);
            }
            {
                let (c0, rest) = c_sd.split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                sd.gemm_4xn(&apack, &b, c0, c1, c2, c3, 0, kt, n);
            }
            for (i, (x, y)) in c_sc.iter().zip(&c_sd).enumerate() {
                prop_assert!(x.to_bits() == y.to_bits(), "element {i}: {x} != {y}");
            }
        }

        /// Panel pack+dot must agree bitwise across backends and panel
        /// widths: each output is an independent ascending-k dot product.
        #[test]
        fn abt_panel_backends_bitwise_identical(
            k in 1usize..50, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-abt");
            let wmax = sc.abt_panel_width().max(sd.abt_panel_width());
            let b = randn(&mut rng, wmax * k);
            let a_row = randn(&mut rng, k);
            let mut outs: Vec<Vec<f32>> = Vec::new();
            for kern in [sc, sd] {
                let w = kern.abt_panel_width();
                let mut bpack = vec![0.0f32; w * k];
                // Feed a (wmax, k) B so column j=0..w exists for both widths.
                kern.abt_pack_panel(&b, 0, k, &mut bpack);
                for (kk, chunk) in bpack.chunks(w).enumerate() {
                    for (l, &v) in chunk.iter().enumerate() {
                        prop_assert!(v.to_bits() == b[l * k + kk].to_bits(), "pack {kk},{l}");
                    }
                }
                let mut out = vec![0.0f32; w];
                kern.abt_dot_panel(&a_row, &bpack, &mut out);
                outs.push(out);
            }
            let common = outs[0].len().min(outs[1].len());
            for (l, &v) in outs[0].iter().take(common).enumerate() {
                prop_assert!(
                    v.to_bits() == outs[1][l].to_bits(),
                    "lane {l}: {} != {}", v, outs[1][l]
                );
            }
        }

        /// The int8 GEMM is exact integer arithmetic: backends must agree
        /// exactly (not just bitwise-as-floats) for any shape, including
        /// ragged tails shorter than one 16-lane step.
        #[test]
        fn qgemm_row_i8_backends_exact(
            k in 1usize..80, n in 1usize..20, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-qgemm");
            let mut ri8 = |len: usize| -> Vec<i8> {
                (0..len)
                    .map(|_| (standard_normal(&mut rng) * 64.0).clamp(-127.0, 127.0) as i8)
                    .collect()
            };
            let x = ri8(k);
            let wt = ri8(k * n);
            let mut out_sc = vec![0i32; n];
            let mut out_sd = vec![-1i32; n]; // overwrite semantics: prefill differs
            sc.qgemm_row_i8(&x, &wt, &mut out_sc, k, n);
            sd.qgemm_row_i8(&x, &wt, &mut out_sd, k, n);
            prop_assert_eq!(&out_sc, &out_sd);
        }

        /// A full FFT stage sweep (all stages of a transform) must be
        /// bitwise identical across backends.
        #[test]
        fn fft_stage_backends_bitwise_identical(
            log_n in 1u32..10, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let n = 1usize << log_n;
            let mut rng = stream_rng(seed, "kern-fft");
            let sig: Vec<Complex> = (0..n)
                .map(|_| Complex::new(standard_normal(&mut rng), standard_normal(&mut rng)))
                .collect();
            // Twiddles with the same recurrence the dsp plan uses.
            let mut x_sc = sig.clone();
            let mut x_sd = sig;
            let mut len = 2;
            while len <= n {
                let half = len / 2;
                let ang = -2.0 * std::f32::consts::PI / len as f32;
                let wlen = Complex::from_angle(ang);
                let mut tw = Vec::with_capacity(half);
                let mut w = Complex::ONE;
                for _ in 0..half {
                    tw.push(w);
                    w *= wlen;
                }
                sc.fft_stage(&mut x_sc, &tw, len);
                sd.fft_stage(&mut x_sd, &tw, len);
                len <<= 1;
            }
            for (i, (a, b)) in x_sc.iter().zip(&x_sd).enumerate() {
                prop_assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "bin {i}: {a:?} != {b:?}"
                );
            }
        }

        /// Dual-plane IIR cascades must be bitwise identical across
        /// backends for any section count up to the cap.
        #[test]
        fn iir_cascade_backends_bitwise_identical(
            n in 1usize..300, sections in 1usize..9, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-iir");
            // Random but stable-ish sections: poles well inside the circle.
            let coeffs: Vec<BiquadCoeffs> = (0..sections)
                .map(|_| {
                    let r = 0.9 * (0.5 + 0.5 * standard_normal(&mut rng).tanh());
                    let th = standard_normal(&mut rng);
                    BiquadCoeffs {
                        b: [1.0, 0.0, -1.0],
                        a: [-2.0 * r * th.cos(), r * r],
                    }
                })
                .collect();
            let gain = 0.25;
            let re = randn(&mut rng, n);
            let im = randn(&mut rng, n);
            let (mut re_sc, mut im_sc) = (re.clone(), im.clone());
            let (mut re_sd, mut im_sd) = (re, im);
            sc.iir_cascade_dual(&coeffs, gain, &mut re_sc, &mut im_sc);
            sd.iir_cascade_dual(&coeffs, gain, &mut re_sd, &mut im_sd);
            for t in 0..n {
                prop_assert!(re_sc[t].to_bits() == re_sd[t].to_bits(), "re[{t}]");
                prop_assert!(im_sc[t].to_bits() == im_sd[t].to_bits(), "im[{t}]");
            }
        }

        /// Elementwise activation backward kernels must be bitwise identical
        /// across backends, including ragged tails and ReLU's NaN-keeping
        /// `y <= 0` branch semantics (exercised via injected specials).
        #[test]
        fn activation_backward_backends_bitwise_identical(
            n in 1usize..70, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-act-bwd");
            let mut y = randn(&mut rng, n);
            // Exact zeros, negative zero, and NaN are the branch edge cases.
            if n > 2 {
                y[0] = 0.0;
                y[1] = -0.0;
                y[2] = f32::NAN;
            }
            let dy = randn(&mut rng, n);
            for apply in [Kernels::relu_backward, Kernels::sigmoid_backward, Kernels::tanh_backward]
            {
                let mut g_sc = dy.clone();
                let mut g_sd = dy.clone();
                apply(sc, &mut g_sc, &y);
                apply(sd, &mut g_sd, &y);
                for (i, (a, b)) in g_sc.iter().zip(&g_sd).enumerate() {
                    prop_assert!(a.to_bits() == b.to_bits(), "element {i}: {a} != {b}");
                }
            }
        }

        /// Gradient accumulation must be bitwise identical across backends.
        #[test]
        fn axpy_backends_bitwise_identical(n in 1usize..80, seed in 0u64..500) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-axpy");
            let acc = randn(&mut rng, n);
            let g = randn(&mut rng, n);
            let mut a_sc = acc.clone();
            let mut a_sd = acc;
            sc.axpy(&mut a_sc, &g);
            sd.axpy(&mut a_sd, &g);
            for (i, (a, b)) in a_sc.iter().zip(&a_sd).enumerate() {
                prop_assert!(a.to_bits() == b.to_bits(), "element {i}: {a} != {b}");
            }
        }

        /// One LayerNorm backward row must be bitwise identical across
        /// backends in all four outputs, for any feature width (vector body
        /// plus ragged tail) — the row sums are sequential on both paths.
        #[test]
        fn layer_norm_backward_backends_bitwise_identical(
            f in 1usize..70, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-ln-bwd");
            let xr = randn(&mut rng, f);
            let dyr = randn(&mut rng, f);
            let gamma = randn(&mut rng, f);
            let mean = xr.iter().sum::<f32>() / f as f32;
            let var = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / f as f32;
            let rstd = 1.0 / (var + 1e-5).sqrt();
            let dg0 = randn(&mut rng, f);
            let db0 = randn(&mut rng, f);
            let run = |kern: &dyn Kernels| {
                let mut dxhat = vec![0.0f32; f];
                let mut dx = vec![0.0f32; f];
                let mut dgamma = dg0.clone();
                let mut dbeta = db0.clone();
                kern.layer_norm_backward_row(
                    &xr, &dyr, &gamma, mean, rstd, &mut dxhat, &mut dx, &mut dgamma,
                    &mut dbeta,
                );
                (dxhat, dx, dgamma, dbeta)
            };
            let (xh_sc, dx_sc, dg_sc, db_sc) = run(sc);
            let (xh_sd, dx_sd, dg_sd, db_sd) = run(sd);
            for (name, a, b) in [
                ("dxhat", &xh_sc, &xh_sd),
                ("dx", &dx_sc, &dx_sd),
                ("dgamma", &dg_sc, &dg_sd),
                ("dbeta", &db_sc, &db_sd),
            ] {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    prop_assert!(x.to_bits() == y.to_bits(), "{name}[{i}]: {x} != {y}");
                }
            }
        }

        /// The fused Adam update must be bitwise identical across backends
        /// in params and both moments — `sqrt`/`div` are correctly rounded,
        /// so the vector lanes reproduce the scalar sequence exactly.
        #[test]
        fn adam_step_backends_bitwise_identical(
            n in 1usize..80, step in 1u32..200, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-adam");
            let p0 = randn(&mut rng, n);
            let g = randn(&mut rng, n);
            let m0: Vec<f32> = randn(&mut rng, n).iter().map(|v| 0.1 * v).collect();
            let v0: Vec<f32> = randn(&mut rng, n).iter().map(|v| v * v).collect();
            let (beta1, beta2, lr, eps) = (0.9f32, 0.999f32, 1e-3f32, 1e-8f32);
            let bias1 = 1.0 - beta1.powi(step as i32);
            let bias2 = 1.0 - beta2.powi(step as i32);
            let run = |kern: &dyn Kernels| {
                let (mut p, mut m, mut v) = (p0.clone(), m0.clone(), v0.clone());
                kern.adam_step(&mut p, &g, &mut m, &mut v, beta1, beta2, bias1, bias2, lr, eps);
                (p, m, v)
            };
            let (p_sc, m_sc, v_sc) = run(sc);
            let (p_sd, m_sd, v_sd) = run(sd);
            for (name, a, b) in
                [("p", &p_sc, &p_sd), ("m", &m_sc, &m_sd), ("v", &v_sc, &v_sd)]
            {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    prop_assert!(x.to_bits() == y.to_bits(), "{name}[{i}]: {x} != {y}");
                }
            }
        }

        /// The blocked squared-sum reduction must be bitwise identical across
        /// backends for every length (full blocks plus any ragged tail).
        #[test]
        fn sq_sum_blocked_backends_bitwise_identical(
            n in 0usize..200, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-sqsum");
            let x = randn(&mut rng, n);
            let a = sc.sq_sum_blocked(&x);
            let b = sd.sq_sum_blocked(&x);
            prop_assert!(a.to_bits() == b.to_bits(), "{a} != {b}");
        }

        /// LBS skinning must be bitwise identical across backends: the SIMD
        /// path evaluates the same quaternion-rotation formula lanewise.
        #[test]
        fn lbs_backends_bitwise_identical(
            nverts in 1usize..60, njoints in 2usize..21, seed in 0u64..500,
        ) {
            let Some((sc, sd)) = both() else { return Ok(()); };
            let mut rng = stream_rng(seed, "kern-lbs");
            let v3 = |rng: &mut rand::rngs::StdRng| {
                Vec3::new(
                    0.1 * standard_normal(rng),
                    0.1 * standard_normal(rng),
                    0.1 * standard_normal(rng),
                )
            };
            let verts: Vec<Vec3> = (0..nverts).map(|_| v3(&mut rng)).collect();
            let rest: Vec<Vec3> = (0..njoints).map(|_| v3(&mut rng)).collect();
            let posed: Vec<Vec3> = (0..njoints).map(|_| v3(&mut rng)).collect();
            let rot: Vec<Quaternion> = (0..njoints)
                .map(|_| Quaternion::from_rotation_vector(v3(&mut rng) * 10.0))
                .collect();
            let attach: Vec<SkinAttachment> = (0..nverts)
                .map(|i| {
                    let j0 = (i * 7) % njoints;
                    let j1 = (i * 13 + 1) % njoints;
                    let lone = i % 3 == 0;
                    SkinAttachment {
                        joints: [j0 as u32, j1 as u32],
                        weights: if lone { [1.0, 0.0] } else { [0.7, 0.3] },
                    }
                })
                .collect();
            let mut out_sc = Vec::new();
            let mut out_sd = vec![Vec3::ZERO; 3]; // must be replaced
            sc.lbs_skin(&verts, &attach, &rest, &posed, &rot, &mut out_sc);
            sd.lbs_skin(&verts, &attach, &rest, &posed, &rot, &mut out_sd);
            prop_assert_eq!(out_sc.len(), nverts);
            prop_assert_eq!(out_sd.len(), nverts);
            for (i, (a, b)) in out_sc.iter().zip(&out_sd).enumerate() {
                prop_assert!(
                    a.x.to_bits() == b.x.to_bits()
                        && a.y.to_bits() == b.y.to_bits()
                        && a.z.to_bits() == b.z.to_bits(),
                    "vertex {i}: {a} != {b}"
                );
            }
        }
    }
}
