//! The scalar reference backend: the workspace's pre-dispatch inner loops,
//! moved here verbatim. Always available on every architecture, and the
//! bitwise oracle the SIMD backend is property-tested against.

use crate::{BiquadCoeffs, Kernels, SkinAttachment, GEMM_MR, MAX_BIQUADS};
use mmhand_math::{Complex, Quaternion, Vec3};

/// Portable scalar implementation of every dispatched kernel.
pub(crate) struct ScalarKernels;

impl Kernels for ScalarKernels {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_4xn(
        &self,
        apack: &[f32],
        b: &[f32],
        c0: &mut [f32],
        c1: &mut [f32],
        c2: &mut [f32],
        c3: &mut [f32],
        kb: usize,
        kend: usize,
        n: usize,
    ) {
        for kk in kb..kend {
            let aq = &apack[(kk - kb) * GEMM_MR..(kk - kb) * GEMM_MR + GEMM_MR];
            let (x0, x1, x2, x3) = (aq[0], aq[1], aq[2], aq[3]);
            let b_row = &b[kk * n..(kk + 1) * n];
            for (j, &bv) in b_row.iter().enumerate() {
                c0[j] += x0 * bv;
                c1[j] += x1 * bv;
                c2[j] += x2 * bv;
                c3[j] += x3 * bv;
            }
        }
    }

    fn abt_panel_width(&self) -> usize {
        4
    }

    fn abt_pack_panel(&self, b: &[f32], j: usize, k: usize, bpack: &mut [f32]) {
        for kk in 0..k {
            let quad = &mut bpack[kk * 4..kk * 4 + 4];
            quad[0] = b[j * k + kk];
            quad[1] = b[(j + 1) * k + kk];
            quad[2] = b[(j + 2) * k + kk];
            quad[3] = b[(j + 3) * k + kk];
        }
    }

    fn abt_dot_panel(&self, a_row: &[f32], bpack: &[f32], out: &mut [f32]) {
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (kk, &av) in a_row.iter().enumerate() {
            let quad = &bpack[kk * 4..kk * 4 + 4];
            s0 += av * quad[0];
            s1 += av * quad[1];
            s2 += av * quad[2];
            s3 += av * quad[3];
        }
        out[0] = s0;
        out[1] = s1;
        out[2] = s2;
        out[3] = s3;
    }

    fn fft_stage(&self, x: &mut [Complex], tw: &[Complex], len: usize) {
        let n = x.len();
        let half = len / 2;
        let mut i = 0;
        while i < n {
            for j in 0..half {
                let u = x[i + j];
                let v = x[i + j + half] * tw[j];
                x[i + j] = u + v;
                x[i + j + half] = u - v;
            }
            i += len;
        }
    }

    fn iir_cascade_dual(&self, coeffs: &[BiquadCoeffs], gain: f32, re: &mut [f32], im: &mut [f32]) {
        debug_assert!(coeffs.len() <= MAX_BIQUADS);
        debug_assert_eq!(re.len(), im.len());
        // Whole real plane first, then the whole imaginary plane — the same
        // order as running two independent cascades back to back.
        for plane in [re, im] {
            let mut s1 = [0.0f32; MAX_BIQUADS];
            let mut s2 = [0.0f32; MAX_BIQUADS];
            for x in plane.iter_mut() {
                let mut y = *x * gain;
                for (s, c) in coeffs.iter().enumerate() {
                    let out = c.b[0] * y + s1[s];
                    s1[s] = c.b[1] * y - c.a[0] * out + s2[s];
                    s2[s] = c.b[2] * y - c.a[1] * out;
                    y = out;
                }
                *x = y;
            }
        }
    }

    fn lbs_skin(
        &self,
        verts: &[Vec3],
        attachments: &[SkinAttachment],
        rest_joints: &[Vec3],
        posed_joints: &[Vec3],
        global_rot: &[Quaternion],
        out: &mut Vec<Vec3>,
    ) {
        out.clear();
        out.reserve(verts.len());
        for (v, w) in verts.iter().zip(attachments) {
            let mut acc = Vec3::ZERO;
            for k in 0..2 {
                let j = w.joints[k] as usize;
                let wk = w.weights[k];
                // audit: allow(float_eq) — skinning weights are constructed as exact 0.0 for unused slots
                if wk == 0.0 {
                    continue;
                }
                let local = *v - rest_joints[j];
                acc += (posed_joints[j] + global_rot[j].rotate(local)) * wk;
            }
            out.push(acc);
        }
    }

    fn qgemm_row_i8(&self, x: &[i8], wt: &[i8], out: &mut [i32], k: usize, n: usize) {
        debug_assert!(x.len() >= k && wt.len() >= k * n && out.len() >= n);
        for (j, o) in out.iter_mut().take(n).enumerate() {
            let row = &wt[j * k..j * k + k];
            let mut acc = 0i32;
            for (&xv, &wv) in x[..k].iter().zip(row) {
                acc += xv as i32 * wv as i32;
            }
            *o = acc;
        }
    }
}
