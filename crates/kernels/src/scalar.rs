//! The scalar reference backend: the workspace's pre-dispatch inner loops,
//! moved here verbatim. Always available on every architecture, and the
//! bitwise oracle the SIMD backend is property-tested against.

use crate::{BiquadCoeffs, Kernels, SkinAttachment, GEMM_MR, MAX_BIQUADS, SQ_SUM_LANES};
use mmhand_math::{Complex, Quaternion, Vec3};

/// Portable scalar implementation of every dispatched kernel.
pub(crate) struct ScalarKernels;

impl Kernels for ScalarKernels {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_4xn(
        &self,
        apack: &[f32],
        b: &[f32],
        c0: &mut [f32],
        c1: &mut [f32],
        c2: &mut [f32],
        c3: &mut [f32],
        kb: usize,
        kend: usize,
        n: usize,
    ) {
        for kk in kb..kend {
            let aq = &apack[(kk - kb) * GEMM_MR..(kk - kb) * GEMM_MR + GEMM_MR];
            let (x0, x1, x2, x3) = (aq[0], aq[1], aq[2], aq[3]);
            let b_row = &b[kk * n..(kk + 1) * n];
            for (j, &bv) in b_row.iter().enumerate() {
                c0[j] += x0 * bv;
                c1[j] += x1 * bv;
                c2[j] += x2 * bv;
                c3[j] += x3 * bv;
            }
        }
    }

    fn abt_panel_width(&self) -> usize {
        4
    }

    fn abt_pack_panel(&self, b: &[f32], j: usize, k: usize, bpack: &mut [f32]) {
        for kk in 0..k {
            let quad = &mut bpack[kk * 4..kk * 4 + 4];
            quad[0] = b[j * k + kk];
            quad[1] = b[(j + 1) * k + kk];
            quad[2] = b[(j + 2) * k + kk];
            quad[3] = b[(j + 3) * k + kk];
        }
    }

    fn abt_dot_panel(&self, a_row: &[f32], bpack: &[f32], out: &mut [f32]) {
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (kk, &av) in a_row.iter().enumerate() {
            let quad = &bpack[kk * 4..kk * 4 + 4];
            s0 += av * quad[0];
            s1 += av * quad[1];
            s2 += av * quad[2];
            s3 += av * quad[3];
        }
        out[0] = s0;
        out[1] = s1;
        out[2] = s2;
        out[3] = s3;
    }

    fn fft_stage(&self, x: &mut [Complex], tw: &[Complex], len: usize) {
        let n = x.len();
        let half = len / 2;
        let mut i = 0;
        while i < n {
            for j in 0..half {
                let u = x[i + j];
                let v = x[i + j + half] * tw[j];
                x[i + j] = u + v;
                x[i + j + half] = u - v;
            }
            i += len;
        }
    }

    fn iir_cascade_dual(&self, coeffs: &[BiquadCoeffs], gain: f32, re: &mut [f32], im: &mut [f32]) {
        debug_assert!(coeffs.len() <= MAX_BIQUADS);
        debug_assert_eq!(re.len(), im.len());
        // Whole real plane first, then the whole imaginary plane — the same
        // order as running two independent cascades back to back.
        for plane in [re, im] {
            let mut s1 = [0.0f32; MAX_BIQUADS];
            let mut s2 = [0.0f32; MAX_BIQUADS];
            for x in plane.iter_mut() {
                let mut y = *x * gain;
                for (s, c) in coeffs.iter().enumerate() {
                    let out = c.b[0] * y + s1[s];
                    s1[s] = c.b[1] * y - c.a[0] * out + s2[s];
                    s2[s] = c.b[2] * y - c.a[1] * out;
                    y = out;
                }
                *x = y;
            }
        }
    }

    fn lbs_skin(
        &self,
        verts: &[Vec3],
        attachments: &[SkinAttachment],
        rest_joints: &[Vec3],
        posed_joints: &[Vec3],
        global_rot: &[Quaternion],
        out: &mut Vec<Vec3>,
    ) {
        out.clear();
        out.reserve(verts.len());
        for (v, w) in verts.iter().zip(attachments) {
            let mut acc = Vec3::ZERO;
            for k in 0..2 {
                let j = w.joints[k] as usize;
                let wk = w.weights[k];
                // audit: allow(float_eq) — skinning weights are constructed as exact 0.0 for unused slots
                if wk == 0.0 {
                    continue;
                }
                let local = *v - rest_joints[j];
                acc += (posed_joints[j] + global_rot[j].rotate(local)) * wk;
            }
            out.push(acc);
        }
    }

    fn qgemm_row_i8(&self, x: &[i8], wt: &[i8], out: &mut [i32], k: usize, n: usize) {
        debug_assert!(x.len() >= k && wt.len() >= k * n && out.len() >= n);
        for (j, o) in out.iter_mut().take(n).enumerate() {
            let row = &wt[j * k..j * k + k];
            let mut acc = 0i32;
            for (&xv, &wv) in x[..k].iter().zip(row) {
                acc += xv as i32 * wv as i32;
            }
            *o = acc;
        }
    }

    fn relu_backward(&self, dy: &mut [f32], y: &[f32]) {
        for (g, &y) in dy.iter_mut().zip(y) {
            if y <= 0.0 {
                *g = 0.0;
            }
        }
    }

    fn sigmoid_backward(&self, dy: &mut [f32], y: &[f32]) {
        for (g, &y) in dy.iter_mut().zip(y) {
            *g *= y * (1.0 - y);
        }
    }

    fn tanh_backward(&self, dy: &mut [f32], y: &[f32]) {
        for (g, &y) in dy.iter_mut().zip(y) {
            *g *= 1.0 - y * y;
        }
    }

    fn axpy(&self, acc: &mut [f32], g: &[f32]) {
        for (a, b) in acc.iter_mut().zip(g) {
            *a += b;
        }
    }

    fn layer_norm_backward_row(
        &self,
        xr: &[f32],
        dyr: &[f32],
        gamma: &[f32],
        mean: f32,
        rstd: f32,
        dxhat: &mut [f32],
        dx: &mut [f32],
        dgamma: &mut [f32],
        dbeta: &mut [f32],
    ) {
        let f = xr.len();
        debug_assert!(
            dyr.len() >= f
                && gamma.len() >= f
                && dxhat.len() >= f
                && dx.len() >= f
                && dgamma.len() >= f
                && dbeta.len() >= f
        );
        // x̂ = (x − μ)·rstd; dL/dx follows the standard layer-norm backward.
        let mut sum_dxhat = 0.0;
        let mut sum_dxhat_xhat = 0.0;
        for i in 0..f {
            let xhat = (xr[i] - mean) * rstd;
            let d = dyr[i] * gamma[i];
            dxhat[i] = d;
            sum_dxhat += d;
            sum_dxhat_xhat += d * xhat;
            dgamma[i] += dyr[i] * xhat;
            dbeta[i] += dyr[i];
        }
        for i in 0..f {
            let xhat = (xr[i] - mean) * rstd;
            dx[i] = rstd
                * (dxhat[i] - sum_dxhat / f as f32 - xhat * sum_dxhat_xhat / f as f32);
        }
    }

    fn adam_step(
        &self,
        value: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        beta1: f32,
        beta2: f32,
        bias1: f32,
        bias2: f32,
        lr: f32,
        eps: f32,
    ) {
        debug_assert!(
            grad.len() == value.len() && m.len() == value.len() && v.len() == value.len()
        );
        for (((p, &g), m), v) in
            value.iter_mut().zip(grad).zip(m.iter_mut()).zip(v.iter_mut())
        {
            let mi = beta1 * *m + (1.0 - beta1) * g;
            let vi = beta2 * *v + (1.0 - beta2) * g * g;
            *m = mi;
            *v = vi;
            let m_hat = mi / bias1;
            let v_hat = vi / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn sq_sum_blocked(&self, x: &[f32]) -> f32 {
        let mut lanes = [0.0f32; SQ_SUM_LANES];
        let mut blocks = x.chunks_exact(SQ_SUM_LANES);
        for block in blocks.by_ref() {
            for (lane, &v) in lanes.iter_mut().zip(block) {
                *lane += v * v;
            }
        }
        let mut total = 0.0f32;
        for &lane in &lanes {
            total += lane;
        }
        for &v in blocks.remainder() {
            total += v * v;
        }
        total
    }
}
