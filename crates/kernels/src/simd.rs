//! Explicit SIMD backend for x86_64: AVX2 for the throughput kernels
//! (GEMM, FFT), SSE2 for the lane-parallel ones (dual-plane IIR, LBS).
//!
//! **Bitwise contract with the scalar reference:** no FMA, no reduction
//! reassociation. Vector lanes only evaluate *independent* output elements
//! (GEMM columns, FFT butterflies, the real/imaginary filter planes, the
//! x/y/z vertex components) in parallel; each element sees exactly the
//! scalar operation sequence. The one tolerated difference — the FFT
//! butterfly's imaginary part sums its two products in swapped order — is
//! still bitwise identical because IEEE-754 addition of finite values is
//! commutative. The cross-backend proptests in `lib.rs` pin all of this at
//! a ULP distance of zero.

use crate::scalar::ScalarKernels;
use crate::{BiquadCoeffs, Kernels, SkinAttachment, GEMM_MR, MAX_BIQUADS, SQ_SUM_LANES};
use mmhand_math::{Complex, Quaternion, Vec3};
use std::arch::x86_64::*;

/// AVX2/SSE2 implementation of every dispatched kernel. Only constructed
/// (in `lib.rs`) after `is_x86_feature_detected!("avx2")` returns true.
pub(crate) struct SimdKernels;

/// Width of the AVX2 `A·Bᵀ` column panel: one `f32x8` register.
const ABT_W: usize = 8;

impl Kernels for SimdKernels {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm_4xn(
        &self,
        apack: &[f32],
        b: &[f32],
        c0: &mut [f32],
        c1: &mut [f32],
        c2: &mut [f32],
        c3: &mut [f32],
        kb: usize,
        kend: usize,
        n: usize,
    ) {
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { gemm_4xn_avx2(apack, b, c0, c1, c2, c3, kb, kend, n) }
    }

    fn abt_panel_width(&self) -> usize {
        ABT_W
    }

    fn abt_pack_panel(&self, b: &[f32], j: usize, k: usize, bpack: &mut [f32]) {
        // Strided gather — no SIMD win; plain scalar copy at width 8.
        for kk in 0..k {
            let oct = &mut bpack[kk * ABT_W..kk * ABT_W + ABT_W];
            for (l, dst) in oct.iter_mut().enumerate() {
                *dst = b[(j + l) * k + kk];
            }
        }
    }

    fn abt_dot_panel(&self, a_row: &[f32], bpack: &[f32], out: &mut [f32]) {
        debug_assert!(out.len() >= ABT_W);
        debug_assert!(bpack.len() >= a_row.len() * ABT_W);
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { abt_dot_panel_avx2(a_row, bpack, out) }
    }

    fn fft_stage(&self, x: &mut [Complex], tw: &[Complex], len: usize) {
        // SAFETY: (all arms) `SimdKernels` exists only on CPUs where AVX2
        // detection succeeded (see `simd_kernels` in lib.rs), and AVX2
        // implies every SSE level the narrow-stage paths use.
        match len / 2 {
            half if half >= 4 => unsafe { fft_stage_avx2(x, tw, len) },
            2 => unsafe { fft_stage2_sse3(x, tw) },
            1 => unsafe { fft_stage1_sse3(x, tw) },
            _ => ScalarKernels.fft_stage(x, tw, len),
        }
    }

    fn iir_cascade_dual(&self, coeffs: &[BiquadCoeffs], gain: f32, re: &mut [f32], im: &mut [f32]) {
        // SAFETY: SSE2 is part of the x86_64 baseline, unconditionally
        // present on any CPU this module compiles for.
        unsafe { iir_cascade_dual_sse2(coeffs, gain, re, im) }
    }

    fn lbs_skin(
        &self,
        verts: &[Vec3],
        attachments: &[SkinAttachment],
        rest_joints: &[Vec3],
        posed_joints: &[Vec3],
        global_rot: &[Quaternion],
        out: &mut Vec<Vec3>,
    ) {
        // SAFETY: SSE2 is part of the x86_64 baseline, unconditionally
        // present on any CPU this module compiles for.
        unsafe { lbs_skin_sse2(verts, attachments, rest_joints, posed_joints, global_rot, out) }
    }

    fn qgemm_row_i8(&self, x: &[i8], wt: &[i8], out: &mut [i32], k: usize, n: usize) {
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { qgemm_row_i8_avx2(x, wt, out, k, n) }
    }

    fn relu_backward(&self, dy: &mut [f32], y: &[f32]) {
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { relu_backward_avx2(dy, y) }
    }

    fn sigmoid_backward(&self, dy: &mut [f32], y: &[f32]) {
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { sigmoid_backward_avx2(dy, y) }
    }

    fn tanh_backward(&self, dy: &mut [f32], y: &[f32]) {
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { tanh_backward_avx2(dy, y) }
    }

    fn axpy(&self, acc: &mut [f32], g: &[f32]) {
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { axpy_avx2(acc, g) }
    }

    fn layer_norm_backward_row(
        &self,
        xr: &[f32],
        dyr: &[f32],
        gamma: &[f32],
        mean: f32,
        rstd: f32,
        dxhat: &mut [f32],
        dx: &mut [f32],
        dgamma: &mut [f32],
        dbeta: &mut [f32],
    ) {
        debug_assert!(
            dyr.len() >= xr.len()
                && gamma.len() >= xr.len()
                && dxhat.len() >= xr.len()
                && dx.len() >= xr.len()
                && dgamma.len() >= xr.len()
                && dbeta.len() >= xr.len()
        );
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs); the slice-length
        // preconditions are debug-asserted above.
        unsafe {
            layer_norm_backward_row_avx2(xr, dyr, gamma, mean, rstd, dxhat, dx, dgamma, dbeta)
        }
    }

    fn adam_step(
        &self,
        value: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        beta1: f32,
        beta2: f32,
        bias1: f32,
        bias2: f32,
        lr: f32,
        eps: f32,
    ) {
        debug_assert!(
            grad.len() == value.len() && m.len() == value.len() && v.len() == value.len()
        );
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs); the equal-length
        // precondition is debug-asserted above.
        unsafe { adam_step_avx2(value, grad, m, v, beta1, beta2, bias1, bias2, lr, eps) }
    }

    fn sq_sum_blocked(&self, x: &[f32]) -> f32 {
        // SAFETY: `SimdKernels` exists only on CPUs where AVX2 detection
        // succeeded (see `simd_kernels` in lib.rs).
        unsafe { sq_sum_blocked_avx2(x) }
    }
}

/// Register-tiled 4×8 GEMM microkernel: four `C`-row accumulators live in
/// ymm registers across the whole k-tile, so each `C` element is loaded and
/// stored once per tile instead of once per k-step. Per element the
/// accumulation is still `acc += a·b` in ascending-k order (separate
/// multiply and add — never fused), bitwise matching the scalar kernel.
///
/// SAFETY: caller must ensure the CPU supports AVX2; slice lengths must
/// satisfy the packed-GEMM layout (`apack` ≥ `(kend-kb)·GEMM_MR`, `b` ≥
/// `kend·n`, each `C` row ≥ `n`), which the debug asserts spot-check.
#[allow(clippy::too_many_arguments)] // mirrors the trait method's signature
#[target_feature(enable = "avx2")]
unsafe fn gemm_4xn_avx2(
    apack: &[f32],
    b: &[f32],
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
    kb: usize,
    kend: usize,
    n: usize,
) {
    let kt = kend - kb;
    debug_assert!(apack.len() >= kt * GEMM_MR);
    debug_assert!(b.len() >= kend * n);
    debug_assert!(c0.len() >= n && c1.len() >= n && c2.len() >= n && c3.len() >= n);
    let ap = apack.as_ptr();
    let bp = b.as_ptr();
    let mut j = 0;
    while j + 8 <= n {
        let mut acc0 = _mm256_loadu_ps(c0.as_ptr().add(j));
        let mut acc1 = _mm256_loadu_ps(c1.as_ptr().add(j));
        let mut acc2 = _mm256_loadu_ps(c2.as_ptr().add(j));
        let mut acc3 = _mm256_loadu_ps(c3.as_ptr().add(j));
        for t in 0..kt {
            let aq = ap.add(t * GEMM_MR);
            let bv = _mm256_loadu_ps(bp.add((kb + t) * n + j));
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(*aq), bv));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(*aq.add(1)), bv));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(*aq.add(2)), bv));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(*aq.add(3)), bv));
        }
        _mm256_storeu_ps(c0.as_mut_ptr().add(j), acc0);
        _mm256_storeu_ps(c1.as_mut_ptr().add(j), acc1);
        _mm256_storeu_ps(c2.as_mut_ptr().add(j), acc2);
        _mm256_storeu_ps(c3.as_mut_ptr().add(j), acc3);
        j += 8;
    }
    // Ragged tail columns: scalar, per-element ascending-k.
    for jj in j..n {
        let (mut s0, mut s1, mut s2, mut s3) = (c0[jj], c1[jj], c2[jj], c3[jj]);
        for t in 0..kt {
            let aq = &apack[t * GEMM_MR..t * GEMM_MR + GEMM_MR];
            let bv = b[(kb + t) * n + jj];
            s0 += aq[0] * bv;
            s1 += aq[1] * bv;
            s2 += aq[2] * bv;
            s3 += aq[3] * bv;
        }
        c0[jj] = s0;
        c1[jj] = s1;
        c2[jj] = s2;
        c3[jj] = s3;
    }
}

/// Eight independent dot products, one per lane of a single accumulator:
/// lane `l` sums `a[kk]·panel[kk][l]` in ascending-k order from zero.
///
/// SAFETY: caller must ensure AVX2 plus `bpack.len() ≥ a_row.len()·8` and
/// `out.len() ≥ 8` (debug-asserted at the call site).
#[target_feature(enable = "avx2")]
unsafe fn abt_dot_panel_avx2(a_row: &[f32], bpack: &[f32], out: &mut [f32]) {
    let pp = bpack.as_ptr();
    let mut acc = _mm256_setzero_ps();
    for (kk, &av) in a_row.iter().enumerate() {
        let pv = _mm256_loadu_ps(pp.add(kk * ABT_W));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), pv));
    }
    _mm256_storeu_ps(out.as_mut_ptr(), acc);
}

/// Radix-2 butterfly stage, four butterflies per iteration on interleaved
/// complex data (`Complex` is `repr(C)`, so a `[Complex]` is `[re, im]`
/// pairs). The twiddle product uses the dup/swap/addsub idiom:
/// even lanes compute `v.re·t.re − v.im·t.im`, odd lanes
/// `v.im·t.re + v.re·t.im` — the same two products as `Complex::mul`,
/// summed with IEEE-commutative addition, hence bitwise identical.
///
/// SAFETY: caller must ensure AVX2, `x.len()` a multiple of `len`,
/// `tw.len() ≥ len/2`, and `len/2 ≥ 4`.
#[target_feature(enable = "avx2")]
unsafe fn fft_stage_avx2(x: &mut [Complex], tw: &[Complex], len: usize) {
    let n = x.len();
    let half = len / 2;
    debug_assert!(half >= 4 && tw.len() >= half && n.is_multiple_of(len));
    let xf = x.as_mut_ptr() as *mut f32;
    let twf = tw.as_ptr() as *const f32;
    let mut i = 0;
    while i < n {
        let mut j = 0;
        while j < half {
            let u = _mm256_loadu_ps(xf.add(2 * (i + j)));
            let v = _mm256_loadu_ps(xf.add(2 * (i + j + half)));
            let t = _mm256_loadu_ps(twf.add(2 * j));
            let tre = _mm256_moveldup_ps(t);
            let tim = _mm256_movehdup_ps(t);
            let vswap = _mm256_permute_ps::<0b1011_0001>(v);
            let prod = _mm256_addsub_ps(_mm256_mul_ps(v, tre), _mm256_mul_ps(vswap, tim));
            _mm256_storeu_ps(xf.add(2 * (i + j)), _mm256_add_ps(u, prod));
            _mm256_storeu_ps(xf.add(2 * (i + j + half)), _mm256_sub_ps(u, prod));
            j += 4;
        }
        i += len;
    }
}

/// The `len == 4` stage (two butterflies per block): one 128-bit lane pair
/// per block, same dup/swap/addsub twiddle product as the AVX2 stage.
///
/// SAFETY: caller must ensure SSE3 (implied by the AVX2 detection gating
/// this backend), `x.len()` a multiple of 4 and `tw.len() ≥ 2`.
#[target_feature(enable = "sse3")]
unsafe fn fft_stage2_sse3(x: &mut [Complex], tw: &[Complex]) {
    let n = x.len();
    debug_assert!(tw.len() >= 2 && n.is_multiple_of(4));
    let xf = x.as_mut_ptr() as *mut f32;
    let twf = tw.as_ptr() as *const f32;
    let t = _mm_loadu_ps(twf);
    let tre = _mm_moveldup_ps(t);
    let tim = _mm_movehdup_ps(t);
    let mut i = 0;
    while i < n {
        let u = _mm_loadu_ps(xf.add(2 * i));
        let v = _mm_loadu_ps(xf.add(2 * (i + 2)));
        let vswap = _mm_shuffle_ps::<0b10_11_00_01>(v, v);
        let prod = _mm_addsub_ps(_mm_mul_ps(v, tre), _mm_mul_ps(vswap, tim));
        _mm_storeu_ps(xf.add(2 * i), _mm_add_ps(u, prod));
        _mm_storeu_ps(xf.add(2 * (i + 2)), _mm_sub_ps(u, prod));
        i += 4;
    }
}

/// The `len == 2` stage (one butterfly per block): a whole block — `u` and
/// `v` interleaved — fits one 128-bit load. The twiddle product runs over
/// both halves (the `u` half is discarded), then `u ± v·t` is assembled
/// with a single cross-half shuffle.
///
/// SAFETY: caller must ensure SSE3 (implied by the AVX2 detection gating
/// this backend), `x.len()` a multiple of 2 and `tw.len() ≥ 1`.
#[target_feature(enable = "sse3")]
unsafe fn fft_stage1_sse3(x: &mut [Complex], tw: &[Complex]) {
    let n = x.len();
    debug_assert!(!tw.is_empty() && n.is_multiple_of(2));
    let xf = x.as_mut_ptr() as *mut f32;
    let t = _mm_setr_ps(tw[0].re, tw[0].im, tw[0].re, tw[0].im);
    let tre = _mm_moveldup_ps(t);
    let tim = _mm_movehdup_ps(t);
    let mut i = 0;
    while i < n {
        let a = _mm_loadu_ps(xf.add(2 * i));
        let aswap = _mm_shuffle_ps::<0b10_11_00_01>(a, a);
        let prod = _mm_addsub_ps(_mm_mul_ps(a, tre), _mm_mul_ps(aswap, tim));
        let u = _mm_movelh_ps(a, a);
        let p = _mm_movehl_ps(prod, prod);
        let res = _mm_shuffle_ps::<0b11_10_01_00>(_mm_add_ps(u, p), _mm_sub_ps(u, p));
        _mm_storeu_ps(xf.add(2 * i), res);
        i += 2;
    }
}

/// Both cascades of a complex filtering pass at once: lane 0 carries the
/// real plane, lane 1 the imaginary plane, each applying the exact scalar
/// per-sample/per-section operation sequence.
///
/// SAFETY: caller must ensure SSE2 (x86_64 baseline), equal plane lengths
/// and `coeffs.len() ≤ MAX_BIQUADS` (debug-asserted).
#[target_feature(enable = "sse2")]
unsafe fn iir_cascade_dual_sse2(coeffs: &[BiquadCoeffs], gain: f32, re: &mut [f32], im: &mut [f32]) {
    debug_assert!(coeffs.len() <= MAX_BIQUADS);
    debug_assert_eq!(re.len(), im.len());
    let mut s1 = [_mm_setzero_ps(); MAX_BIQUADS];
    let mut s2 = [_mm_setzero_ps(); MAX_BIQUADS];
    let g = _mm_set1_ps(gain);
    for t in 0..re.len() {
        let x = _mm_set_ps(0.0, 0.0, im[t], re[t]);
        let mut y = _mm_mul_ps(x, g);
        for (s, c) in coeffs.iter().enumerate() {
            let out = _mm_add_ps(_mm_mul_ps(_mm_set1_ps(c.b[0]), y), s1[s]);
            s1[s] = _mm_add_ps(
                _mm_sub_ps(
                    _mm_mul_ps(_mm_set1_ps(c.b[1]), y),
                    _mm_mul_ps(_mm_set1_ps(c.a[0]), out),
                ),
                s2[s],
            );
            s2[s] = _mm_sub_ps(
                _mm_mul_ps(_mm_set1_ps(c.b[2]), y),
                _mm_mul_ps(_mm_set1_ps(c.a[1]), out),
            );
            y = out;
        }
        re[t] = _mm_cvtss_f32(y);
        im[t] = _mm_cvtss_f32(_mm_shuffle_ps::<0b01>(y, y));
    }
}

/// Quantized int8 dot-product rows: 16 k-steps per iteration, each i8 pair
/// sign-extended to i16 (`vpmovsxbw`) and multiply-accumulated pairwise
/// into 8 i32 lanes (`vpmaddwd` — products ≤ 127², so the pairwise i32 sum
/// is exact), then a horizontal add and a scalar ragged tail. All
/// arithmetic is exact integer arithmetic, so lane order is free and the
/// result is bitwise identical to the scalar reference by construction.
///
/// SAFETY: caller must ensure AVX2 plus `x.len() ≥ k`, `wt.len() ≥ k·n`,
/// `out.len() ≥ n` (debug-asserted).
#[target_feature(enable = "avx2")]
unsafe fn qgemm_row_i8_avx2(x: &[i8], wt: &[i8], out: &mut [i32], k: usize, n: usize) {
    debug_assert!(x.len() >= k && wt.len() >= k * n && out.len() >= n);
    let xp = x.as_ptr();
    for (j, o) in out.iter_mut().take(n).enumerate() {
        let wp = wt.as_ptr().add(j * k);
        let mut acc = _mm256_setzero_si256();
        let mut kk = 0;
        while kk + 16 <= k {
            let xv = _mm256_cvtepi8_epi16(_mm_loadu_si128(xp.add(kk) as *const __m128i));
            let wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(wp.add(kk) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, wv));
            kk += 16;
        }
        // Horizontal sum of the 8 i32 lanes.
        let s = _mm_add_epi32(_mm256_castsi256_si128(acc), _mm256_extracti128_si256::<1>(acc));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_11_10>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        let mut sum = _mm_cvtsi128_si32(s);
        for t in kk..k {
            sum += x[t] as i32 * wt[j * k + t] as i32;
        }
        *o = sum;
    }
}

/// ReLU backward, eight elements per iteration: `dy` is kept where the
/// forward output is strictly positive and zeroed where `y ≤ 0`. The mask
/// is `NLE` (not-less-or-equal, unordered) so a NaN forward output keeps
/// its upstream gradient — exactly the scalar branch `if y <= 0.0`, which
/// is false for NaN.
///
/// SAFETY: caller must ensure the CPU supports AVX2. Operates on
/// `min(dy.len(), y.len())` elements, matching the scalar zip.
#[target_feature(enable = "avx2")]
unsafe fn relu_backward_avx2(dy: &mut [f32], y: &[f32]) {
    let n = dy.len().min(y.len());
    let dp = dy.as_mut_ptr();
    let yp = y.as_ptr();
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let yv = _mm256_loadu_ps(yp.add(i));
        let dv = _mm256_loadu_ps(dp.add(i));
        let keep = _mm256_cmp_ps::<_CMP_NLE_UQ>(yv, zero);
        _mm256_storeu_ps(dp.add(i), _mm256_and_ps(dv, keep));
        i += 8;
    }
    for j in i..n {
        if y[j] <= 0.0 {
            dy[j] = 0.0;
        }
    }
}

/// Sigmoid backward, eight independent elements per iteration:
/// `dy *= y·(1 − y)` with the scalar operation order (`1 − y` first, then
/// the two multiplies).
///
/// SAFETY: caller must ensure the CPU supports AVX2. Operates on
/// `min(dy.len(), y.len())` elements, matching the scalar zip.
#[target_feature(enable = "avx2")]
unsafe fn sigmoid_backward_avx2(dy: &mut [f32], y: &[f32]) {
    let n = dy.len().min(y.len());
    let dp = dy.as_mut_ptr();
    let yp = y.as_ptr();
    let one = _mm256_set1_ps(1.0);
    let mut i = 0;
    while i + 8 <= n {
        let yv = _mm256_loadu_ps(yp.add(i));
        let dv = _mm256_loadu_ps(dp.add(i));
        let deriv = _mm256_mul_ps(yv, _mm256_sub_ps(one, yv));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(dv, deriv));
        i += 8;
    }
    for j in i..n {
        dy[j] *= y[j] * (1.0 - y[j]);
    }
}

/// Tanh backward, eight independent elements per iteration:
/// `dy *= 1 − y²` with the scalar operation order (square first, then the
/// subtraction and the multiply).
///
/// SAFETY: caller must ensure the CPU supports AVX2. Operates on
/// `min(dy.len(), y.len())` elements, matching the scalar zip.
#[target_feature(enable = "avx2")]
unsafe fn tanh_backward_avx2(dy: &mut [f32], y: &[f32]) {
    let n = dy.len().min(y.len());
    let dp = dy.as_mut_ptr();
    let yp = y.as_ptr();
    let one = _mm256_set1_ps(1.0);
    let mut i = 0;
    while i + 8 <= n {
        let yv = _mm256_loadu_ps(yp.add(i));
        let dv = _mm256_loadu_ps(dp.add(i));
        let deriv = _mm256_sub_ps(one, _mm256_mul_ps(yv, yv));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(dv, deriv));
        i += 8;
    }
    for j in i..n {
        dy[j] *= 1.0 - y[j] * y[j];
    }
}

/// Gradient accumulation `acc += g`, eight independent elements per
/// iteration — one IEEE addition per element, same as scalar.
///
/// SAFETY: caller must ensure the CPU supports AVX2. Operates on
/// `min(acc.len(), g.len())` elements, matching the scalar zip.
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(acc: &mut [f32], g: &[f32]) {
    let n = acc.len().min(g.len());
    let ap = acc.as_mut_ptr();
    let gp = g.as_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let av = _mm256_loadu_ps(ap.add(i));
        let gv = _mm256_loadu_ps(gp.add(i));
        _mm256_storeu_ps(ap.add(i), _mm256_add_ps(av, gv));
        i += 8;
    }
    for j in i..n {
        acc[j] += g[j];
    }
}

/// One LayerNorm backward row in three passes: the element-wise work
/// (`dxhat`, `dgamma`, `dbeta`, and the final `dx`) runs eight lanes wide,
/// while the two row reductions (`Σd`, `Σd·x̂`) stay a sequential scalar
/// loop in ascending `i` — reassociating them would break the bitwise
/// contract. The scalar reference computes `x̂` and `d` once per element;
/// recomputing `x̂` in the reduction pass reruns the identical `sub`/`mul`
/// pair on identical inputs, so the bits cannot differ.
///
/// SAFETY: caller must ensure the CPU supports AVX2 and that every slice
/// holds at least `xr.len()` elements (debug-asserted at the call site).
#[allow(clippy::too_many_arguments)] // mirrors the trait method's signature
#[target_feature(enable = "avx2")]
unsafe fn layer_norm_backward_row_avx2(
    xr: &[f32],
    dyr: &[f32],
    gamma: &[f32],
    mean: f32,
    rstd: f32,
    dxhat: &mut [f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let f = xr.len();
    let meanv = _mm256_set1_ps(mean);
    let rstdv = _mm256_set1_ps(rstd);
    let xp = xr.as_ptr();
    let dyp = dyr.as_ptr();
    let gp = gamma.as_ptr();
    let dxhp = dxhat.as_mut_ptr();
    let dgp = dgamma.as_mut_ptr();
    let dbp = dbeta.as_mut_ptr();
    // Pass 1: dxhat = dy·γ, dgamma += dy·x̂, dbeta += dy (lane-independent).
    let mut i = 0;
    while i + 8 <= f {
        let xv = _mm256_loadu_ps(xp.add(i));
        let dyv = _mm256_loadu_ps(dyp.add(i));
        let gv = _mm256_loadu_ps(gp.add(i));
        let xhat = _mm256_mul_ps(_mm256_sub_ps(xv, meanv), rstdv);
        _mm256_storeu_ps(dxhp.add(i), _mm256_mul_ps(dyv, gv));
        let dg = _mm256_add_ps(_mm256_loadu_ps(dgp.add(i)), _mm256_mul_ps(dyv, xhat));
        _mm256_storeu_ps(dgp.add(i), dg);
        let db = _mm256_add_ps(_mm256_loadu_ps(dbp.add(i)), dyv);
        _mm256_storeu_ps(dbp.add(i), db);
        i += 8;
    }
    for j in i..f {
        let xhat = (xr[j] - mean) * rstd;
        dxhat[j] = dyr[j] * gamma[j];
        dgamma[j] += dyr[j] * xhat;
        dbeta[j] += dyr[j];
    }
    // Pass 2: the two row sums, sequential ascending-i like the scalar
    // reference (never vectorised — reduction order is part of the
    // contract).
    let mut sum_dxhat = 0.0f32;
    let mut sum_dxhat_xhat = 0.0f32;
    for j in 0..f {
        let xhat = (xr[j] - mean) * rstd;
        let d = dxhat[j];
        sum_dxhat += d;
        sum_dxhat_xhat += d * xhat;
    }
    // Pass 3: dx = rstd·(d − Σd/f − (x̂·Σdx̂)/f) (lane-independent). The
    // scalar loop's `sum_dxhat / f` term is a loop-invariant expression, so
    // hoisting it reuses the identical bits; the second term associates as
    // (x̂·Σdx̂)/f per element and must stay a per-lane multiply-then-divide.
    let s1 = sum_dxhat / f as f32;
    let s1v = _mm256_set1_ps(s1);
    let sdxv = _mm256_set1_ps(sum_dxhat_xhat);
    let fv = _mm256_set1_ps(f as f32);
    let dxp = dx.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= f {
        let xv = _mm256_loadu_ps(xp.add(i));
        let xhat = _mm256_mul_ps(_mm256_sub_ps(xv, meanv), rstdv);
        let d = _mm256_loadu_ps(dxhp.add(i));
        let t2 = _mm256_div_ps(_mm256_mul_ps(xhat, sdxv), fv);
        let inner = _mm256_sub_ps(_mm256_sub_ps(d, s1v), t2);
        _mm256_storeu_ps(dxp.add(i), _mm256_mul_ps(rstdv, inner));
        i += 8;
    }
    for j in i..f {
        let xhat = (xr[j] - mean) * rstd;
        dx[j] = rstd * (dxhat[j] - s1 - xhat * sum_dxhat_xhat / f as f32);
    }
}

/// Fused Adam update, eight independent elements per iteration. Per lane
/// the operation sequence is exactly the scalar kernel's: two moment
/// blends (separate multiply and add — never fused), two bias-correcting
/// divides, `sqrt`, `+eps`, and the final `value −= (lr·m̂)/denom`.
/// `_mm256_sqrt_ps`/`_mm256_div_ps` are IEEE correctly rounded, so every
/// lane reproduces the scalar bits.
///
/// SAFETY: caller must ensure the CPU supports AVX2 and that `grad`, `m`,
/// `v` each hold `value.len()` elements (debug-asserted at the call site).
#[allow(clippy::too_many_arguments)] // mirrors the trait method's signature
#[target_feature(enable = "avx2")]
unsafe fn adam_step_avx2(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    beta1: f32,
    beta2: f32,
    bias1: f32,
    bias2: f32,
    lr: f32,
    eps: f32,
) {
    let n = value.len();
    let pp = value.as_mut_ptr();
    let gp = grad.as_ptr();
    let mp = m.as_mut_ptr();
    let vp = v.as_mut_ptr();
    let b1 = _mm256_set1_ps(beta1);
    let b2 = _mm256_set1_ps(beta2);
    let omb1 = _mm256_set1_ps(1.0 - beta1);
    let omb2 = _mm256_set1_ps(1.0 - beta2);
    let bias1v = _mm256_set1_ps(bias1);
    let bias2v = _mm256_set1_ps(bias2);
    let lrv = _mm256_set1_ps(lr);
    let epsv = _mm256_set1_ps(eps);
    let mut i = 0;
    while i + 8 <= n {
        let gv = _mm256_loadu_ps(gp.add(i));
        let mv = _mm256_loadu_ps(mp.add(i));
        let vv = _mm256_loadu_ps(vp.add(i));
        // mi = β₁·m + (1−β₁)·g ; vi = β₂·v + ((1−β₂)·g)·g — the scalar
        // kernel's left-to-right association.
        let mi = _mm256_add_ps(_mm256_mul_ps(b1, mv), _mm256_mul_ps(omb1, gv));
        let vi = _mm256_add_ps(
            _mm256_mul_ps(b2, vv),
            _mm256_mul_ps(_mm256_mul_ps(omb2, gv), gv),
        );
        _mm256_storeu_ps(mp.add(i), mi);
        _mm256_storeu_ps(vp.add(i), vi);
        let m_hat = _mm256_div_ps(mi, bias1v);
        let v_hat = _mm256_div_ps(vi, bias2v);
        let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), epsv);
        let upd = _mm256_div_ps(_mm256_mul_ps(lrv, m_hat), denom);
        let pv = _mm256_loadu_ps(pp.add(i));
        _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(pv, upd));
        i += 8;
    }
    for j in i..n {
        let g = grad[j];
        let mi = beta1 * m[j] + (1.0 - beta1) * g;
        let vi = beta2 * v[j] + (1.0 - beta2) * g * g;
        m[j] = mi;
        v[j] = vi;
        let m_hat = mi / bias1;
        let v_hat = vi / bias2;
        value[j] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

/// Blocked squared-sum: two `f32x8` accumulators covering the 16 canonical
/// lanes (lane `l` sums `x[16k+l]²` — exactly the scalar kernel's
/// [`SQ_SUM_LANES`] partial sums; two registers keep the add chains
/// independent and latency-hidden), then the lanes combine in ascending
/// lane order and the ragged tail adds sequentially, reproducing the
/// scalar combine bit for bit.
///
/// SAFETY: caller must ensure the CPU supports AVX2.
#[target_feature(enable = "avx2")]
unsafe fn sq_sum_blocked_avx2(x: &[f32]) -> f32 {
    let n = x.len();
    let xp = x.as_ptr();
    let mut acc_lo = _mm256_setzero_ps();
    let mut acc_hi = _mm256_setzero_ps();
    let mut i = 0;
    while i + SQ_SUM_LANES <= n {
        let v0 = _mm256_loadu_ps(xp.add(i));
        let v1 = _mm256_loadu_ps(xp.add(i + 8));
        acc_lo = _mm256_add_ps(acc_lo, _mm256_mul_ps(v0, v0));
        acc_hi = _mm256_add_ps(acc_hi, _mm256_mul_ps(v1, v1));
        i += SQ_SUM_LANES;
    }
    let mut lanes = [0.0f32; SQ_SUM_LANES];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc_lo);
    _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc_hi);
    let mut total = 0.0f32;
    for &lane in &lanes {
        total += lane;
    }
    for &v in &x[i..] {
        total += v * v;
    }
    total
}

/// Loads a `Vec3` into lanes 0–2 of an `__m128` (lane 3 zero).
///
/// SAFETY: caller must ensure SSE2 (x86_64 baseline).
#[target_feature(enable = "sse2")]
unsafe fn load3(v: Vec3) -> __m128 {
    _mm_set_ps(0.0, v.z, v.y, v.x)
}

/// Lanewise right-handed cross product for x/y/z in lanes 0–2: each lane
/// computes exactly the two products and one subtraction of `Vec3::cross`.
///
/// SAFETY: caller must ensure SSE2 (x86_64 baseline).
#[target_feature(enable = "sse2")]
unsafe fn cross3(a: __m128, b: __m128) -> __m128 {
    // `_MM_SHUFFLE(3, 0, 2, 1)` / `(3, 1, 0, 2)`, spelled out because the
    // helper is not yet a stable const fn: dst[i] = src[imm >> 2i & 3].
    const YZX: i32 = 0b11_00_10_01;
    const ZXY: i32 = 0b11_01_00_10;
    let a_yzx = _mm_shuffle_ps::<YZX>(a, a);
    let b_yzx = _mm_shuffle_ps::<YZX>(b, b);
    let a_zxy = _mm_shuffle_ps::<ZXY>(a, a);
    let b_zxy = _mm_shuffle_ps::<ZXY>(b, b);
    _mm_sub_ps(_mm_mul_ps(a_yzx, b_zxy), _mm_mul_ps(a_zxy, b_yzx))
}

/// Linear blend skinning with x/y/z in SSE lanes: the quaternion rotation
/// `v' = v + 2w·(u×v) + u×(2(u×v))` is evaluated with the scalar formula's
/// exact operation order, componentwise per lane.
///
/// SAFETY: caller must ensure SSE2 (x86_64 baseline); every attachment's
/// joint indices must be in range for the joint arrays.
#[target_feature(enable = "sse2")]
unsafe fn lbs_skin_sse2(
    verts: &[Vec3],
    attachments: &[SkinAttachment],
    rest_joints: &[Vec3],
    posed_joints: &[Vec3],
    global_rot: &[Quaternion],
    out: &mut Vec<Vec3>,
) {
    out.clear();
    out.reserve(verts.len());
    let two = _mm_set1_ps(2.0);
    for (v, w) in verts.iter().zip(attachments) {
        let vv = load3(*v);
        let mut acc = _mm_setzero_ps();
        for k in 0..2 {
            let j = w.joints[k] as usize;
            let wk = w.weights[k];
            // audit: allow(float_eq) — skinning weights are constructed as exact 0.0 for unused slots
            if wk == 0.0 {
                continue;
            }
            let local = _mm_sub_ps(vv, load3(rest_joints[j]));
            let q = global_rot[j];
            let u = _mm_set_ps(0.0, q.z, q.y, q.x);
            let t = _mm_mul_ps(cross3(u, local), two);
            let rotated = _mm_add_ps(
                _mm_add_ps(local, _mm_mul_ps(t, _mm_set1_ps(q.w))),
                cross3(u, t),
            );
            let contrib = _mm_mul_ps(_mm_add_ps(load3(posed_joints[j]), rotated), _mm_set1_ps(wk));
            acc = _mm_add_ps(acc, contrib);
        }
        out.push(Vec3::new(
            _mm_cvtss_f32(acc),
            _mm_cvtss_f32(_mm_shuffle_ps::<0b01>(acc, acc)),
            _mm_cvtss_f32(_mm_shuffle_ps::<0b10>(acc, acc)),
        ));
    }
}
