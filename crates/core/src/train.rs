//! Training and inference for the joint-regression model.
//!
//! [`Trainer`] reproduces the paper's §VI-A training configuration — Adam
//! at 1e-3 with cosine decay — scaled to the CPU-sized datasets of this
//! reproduction (epoch counts are configurable).

use crate::dataset::{make_batches, SegmentSequence};
use crate::error::PipelineError;
use crate::loss::{combined_loss, LossWeights};
use crate::metrics::JointErrors;
use crate::model::{MmHandModel, ModelConfig, OUTPUT_DIM};
use mmhand_math::rng::stream_rng;
use mmhand_nn::{Adam, Calibrator, CosineSchedule, ParamStore, QuantizedParamStore, Tape, Tensor};
use mmhand_telemetry as telemetry;
use std::sync::Arc;

/// Training hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Training epochs (the paper uses 500 on GPU; scaled defaults here).
    pub epochs: usize,
    /// Mini-batch size (the paper's is 16).
    pub batch_size: usize,
    /// Initial learning rate (the paper uses 1e-3 on GPU-scale batches;
    /// our CPU-scale runs default higher to converge in fewer epochs).
    pub base_lr: f32,
    /// Loss weights β, γ.
    pub weights: LossWeights,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            batch_size: 8,
            base_lr: 3e-3,
            weights: LossWeights::default(),
            clip_norm: 5.0,
            seed: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Mean total loss over the epoch.
    pub loss: f32,
    /// Mean 3-D loss component.
    pub l3d: f32,
    /// Mean kinematic loss component.
    pub lkine: f32,
    /// Learning rate used.
    pub lr: f32,
}

/// Converts a flat 63-float skeleton to wrist-relative encoding in place:
/// joints 1..20 become offsets from the wrist (joint 0 stays absolute).
///
/// The network learns articulation much faster in this encoding because the
/// hand's global position variance no longer couples into every finger
/// dimension; [`to_absolute`] inverts it. The kinematic loss is invariant
/// to the choice (it only uses differences between non-wrist joints).
pub fn to_relative(flat: &mut [f32]) {
    let (wx, wy, wz) = (flat[0], flat[1], flat[2]);
    for j in 1..21 {
        flat[3 * j] -= wx;
        flat[3 * j + 1] -= wy;
        flat[3 * j + 2] -= wz;
    }
}

/// Inverse of [`to_relative`].
pub fn to_absolute(flat: &mut [f32]) {
    let (wx, wy, wz) = (flat[0], flat[1], flat[2]);
    for j in 1..21 {
        flat[3 * j] += wx;
        flat[3 * j + 1] += wy;
        flat[3 * j + 2] += wz;
    }
}

/// A trained mmHand joint regressor.
#[derive(Clone)]
pub struct TrainedModel {
    /// The network definition.
    pub model: MmHandModel,
    /// Its parameters.
    pub store: ParamStore,
    /// Loss history, one entry per epoch.
    pub history: Vec<EpochStats>,
}

impl TrainedModel {
    /// Predicts joints for a sequence of `(st·V, D, A)` segments.
    /// Returns one flat 63-float skeleton (metres) per step.
    pub fn predict_sequence(&self, segments: &[Tensor]) -> Vec<Vec<f32>> {
        self.predict_sequence_on(Tape::new(), segments)
    }

    /// [`predict_sequence`](Self::predict_sequence) on the int8 path: the
    /// same graph, but matmuls against parameters present in `q` run
    /// quantized (i8×i8→i32, dequantized at the output).
    pub fn predict_sequence_quantized(
        &self,
        q: Arc<QuantizedParamStore>,
        segments: &[Tensor],
    ) -> Vec<Vec<f32>> {
        self.predict_sequence_on(Tape::with_quantized(q), segments)
    }

    fn predict_sequence_on(&self, mut tape: Tape, segments: &[Tensor]) -> Vec<Vec<f32>> {
        let batched: Vec<Tensor> = segments
            .iter()
            .map(|s| {
                let mut shape = vec![1];
                shape.extend_from_slice(s.shape());
                s.reshaped(&shape)
            })
            .collect();
        let outs = self.model.forward(&mut tape, &self.store, &batched);
        outs.into_iter()
            .map(|o| {
                let mut flat = tape.value(o).data().to_vec();
                to_absolute(&mut flat);
                flat
            })
            .collect()
    }

    /// Predicts joints for one streamed segment batch from explicit LSTM
    /// state. `segment` is `(N, st·V, D, A)`; `h`/`c` are `(N, hidden)`
    /// state tensors (zeros at stream start). Returns one flat 63-float
    /// skeleton per batch row plus the advanced state.
    ///
    /// Every op in the forward pass treats batch rows independently and
    /// accumulates in an order that does not depend on `N`, so micro-batching
    /// concurrent streams through this reproduces each stream's solo
    /// [`predict_sequence`](Self::predict_sequence) output bitwise.
    pub fn predict_step(
        &self,
        segment: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> (Vec<Vec<f32>>, Tensor, Tensor) {
        self.predict_step_on(Tape::new(), segment, h, c)
    }

    /// [`predict_step`](Self::predict_step) on the int8 path. Quantization
    /// is element-wise and row-independent, so the batched-vs-sequential
    /// bitwise identity holds on this path exactly as on f32 — *within* a
    /// precision, never across.
    pub fn predict_step_quantized(
        &self,
        q: Arc<QuantizedParamStore>,
        segment: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> (Vec<Vec<f32>>, Tensor, Tensor) {
        self.predict_step_on(Tape::with_quantized(q), segment, h, c)
    }

    fn predict_step_on(
        &self,
        mut tape: Tape,
        segment: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> (Vec<Vec<f32>>, Tensor, Tensor) {
        let hv = tape.leaf(h.clone());
        let cv = tape.leaf(c.clone());
        let (out, h_new, c_new) =
            self.model.forward_step(&mut tape, &self.store, segment, hv, cv);
        let n = segment.shape()[0];
        let flat = tape.value(out).data();
        let skeletons = (0..n)
            .map(|k| {
                let mut row = flat[k * OUTPUT_DIM..(k + 1) * OUTPUT_DIM].to_vec();
                to_absolute(&mut row);
                row
            })
            .collect();
        (skeletons, tape.value(h_new).clone(), tape.value(c_new).clone())
    }

    /// LSTM hidden size, for allocating stream state.
    pub fn lstm_hidden(&self) -> usize {
        self.model.config.lstm_hidden
    }

    /// Builds the post-training int8 parameter store from calibration
    /// segments: runs one f32 forward pass shaped exactly like
    /// [`predict_sequence`](Self::predict_sequence), harvests the
    /// activations every matmul weight saw, and quantizes those weights
    /// with per-channel scales (see `mmhand_nn::quant` for the scheme).
    /// Returns an empty store when `segments` is empty — callers treat
    /// that as "not calibrated".
    pub fn calibrate_int8(&self, segments: &[Tensor]) -> QuantizedParamStore {
        let mut cal = Calibrator::new();
        if !segments.is_empty() {
            let batched: Vec<Tensor> = segments
                .iter()
                .map(|s| {
                    let mut shape = vec![1];
                    shape.extend_from_slice(s.shape());
                    s.reshaped(&shape)
                })
                .collect();
            let mut tape = Tape::new();
            let _ = self.model.forward(&mut tape, &self.store, &batched);
            tape.observe_param_matmuls(|id, x| cal.observe(id, x));
        }
        cal.finish(&self.store)
    }

    /// Evaluates on sequences, accumulating per-joint errors.
    pub fn evaluate(&self, sequences: &[SegmentSequence]) -> JointErrors {
        let mut errors = JointErrors::new();
        for seq in sequences {
            let preds = self.predict_sequence(&seq.segments);
            for (pred, truth) in preds.iter().zip(&seq.labels) {
                errors.push_flat(pred, truth);
            }
        }
        errors
    }

    /// [`evaluate`](Self::evaluate) on the int8 path — the accuracy oracle
    /// for the quantization gate: int8 joint errors on a seeded eval set
    /// must stay within a fixed epsilon of the f32 numbers.
    pub fn evaluate_quantized(
        &self,
        q: &Arc<QuantizedParamStore>,
        sequences: &[SegmentSequence],
    ) -> JointErrors {
        let mut errors = JointErrors::new();
        for seq in sequences {
            let preds = self.predict_sequence_quantized(q.clone(), &seq.segments);
            for (pred, truth) in preds.iter().zip(&seq.labels) {
                errors.push_flat(pred, truth);
            }
        }
        errors
    }

    /// Evaluates with root alignment: the predicted wrist is translated
    /// onto the ground-truth wrist before scoring, isolating articulation
    /// error from absolute localisation error (the standard root-aligned
    /// MPJPE protocol). Useful for sweeps where localisation saturates.
    pub fn evaluate_root_aligned(&self, sequences: &[SegmentSequence]) -> JointErrors {
        let mut errors = JointErrors::new();
        for seq in sequences {
            let preds = self.predict_sequence(&seq.segments);
            for (pred, truth) in preds.iter().zip(&seq.labels) {
                let mut aligned = pred.clone();
                let (dx, dy, dz) = (
                    truth[0] - pred[0],
                    truth[1] - pred[1],
                    truth[2] - pred[2],
                );
                for j in 0..21 {
                    aligned[3 * j] += dx;
                    aligned[3 * j + 1] += dy;
                    aligned[3 * j + 2] += dz;
                }
                errors.push_flat(&aligned, truth);
            }
        }
        errors
    }

    /// Evaluates per user id, returning `(user_id, errors)` pairs sorted by
    /// user id.
    pub fn evaluate_per_user(&self, sequences: &[SegmentSequence]) -> Vec<(usize, JointErrors)> {
        let mut users: Vec<usize> = sequences.iter().map(|s| s.user_id).collect();
        users.sort_unstable();
        users.dedup();
        users
            .into_iter()
            .map(|u| {
                let subset: Vec<SegmentSequence> = sequences
                    .iter()
                    .filter(|s| s.user_id == u)
                    .cloned()
                    .collect();
                (u, self.evaluate(&subset))
            })
            .collect()
    }
}

/// Samples per data-parallel training micro-shard.
///
/// Each mini-batch is split along the sample axis into shards of this fixed
/// size, which run forward/backward concurrently on the [`mmhand_parallel`]
/// pool. The shard size is deliberately independent of the thread count and
/// the per-shard gradients are reduced in ascending shard order, so training
/// results are identical for any `MMHAND_THREADS` setting.
const TRAIN_SHARD: usize = 2;

/// Copies rows `lo..hi` (along the leading axis) of a batched tensor.
fn slice_rows(t: &Tensor, lo: usize, hi: usize) -> Tensor {
    let mut shape = t.shape().to_vec();
    let row: usize = shape[1..].iter().product();
    shape[0] = hi - lo;
    Tensor::from_vec(&shape, t.data()[lo * row..hi * row].to_vec())
}

/// Per-shard result of a forward/backward pass: the shard's mean loss and
/// component values plus its parameter gradients in tape order.
struct ShardGrad {
    loss: f32,
    l3d: f32,
    lkine: f32,
    grads: Vec<(mmhand_nn::ParamId, Tensor)>,
}

/// Trains an [`MmHandModel`] on a set of sequences.
pub struct Trainer {
    /// Architecture configuration.
    pub model_config: ModelConfig,
    /// Optimisation configuration.
    pub train_config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(model_config: ModelConfig, train_config: TrainConfig) -> Self {
        Trainer { model_config, train_config }
    }

    /// Runs training and returns the fitted model.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty (delegates to
    /// [`Trainer::try_train`]).
    pub fn train(&self, sequences: &[SegmentSequence]) -> TrainedModel {
        self.try_train(sequences).expect("cannot train on an empty dataset")
    }

    /// Fallible variant of [`Trainer::train`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::EmptyInput`] when the dataset is empty or
    /// any sequence holds zero segments — the silent-truncation hazard
    /// where an undersized frame window drops every segment and a sweep
    /// would otherwise abort mid-run.
    pub fn try_train(&self, sequences: &[SegmentSequence]) -> Result<TrainedModel, PipelineError> {
        if sequences.is_empty() {
            return Err(PipelineError::EmptyInput { what: "training sequences" });
        }
        if sequences.iter().any(|s| s.is_empty()) {
            return Err(PipelineError::EmptyInput { what: "segments in a training sequence" });
        }
        let tc = &self.train_config;
        // Train in the wrist-relative label encoding (see [`to_relative`]).
        let sequences: Vec<SegmentSequence> = sequences
            .iter()
            .map(|s| {
                let mut s = s.clone();
                for l in &mut s.labels {
                    to_relative(l);
                }
                s
            })
            .collect();
        let sequences = &sequences[..];
        let mut init_rng = stream_rng(tc.seed, "model-init");
        let mut store = ParamStore::new();
        let model = MmHandModel::new(&mut store, self.model_config.clone(), &mut init_rng);

        // Start the output heads at the mean training pose: the labels sit
        // tens of centimetres from the origin, and learning that DC offset
        // through the trunk would waste most of a short training budget.
        let mean_pose = mean_pose_baseline(sequences);
        for id in model.temporal.head_bias_ids() {
            store.value_mut(id).data_mut().copy_from_slice(&mean_pose);
        }

        let steps_per_epoch =
            sequences.len().div_ceil(tc.batch_size).max(1) as u64;
        let schedule = CosineSchedule::new(tc.base_lr, steps_per_epoch * tc.epochs as u64);
        let mut adam = Adam::new(tc.base_lr);
        let mut shuffle_rng = stream_rng(tc.seed, "shuffle");
        let mut history = Vec::with_capacity(tc.epochs);
        let mut step: u64 = 0;

        // Telemetry handles resolved once, outside the hot loop. Values only
        // flow *into* the metrics registry, never back into training, so the
        // run stays bit-for-bit deterministic.
        let m_epochs = telemetry::counter("train.epochs");
        let m_sequences = telemetry::counter("train.sequences");
        let m_loss = telemetry::gauge("train.loss");
        let m_l3d = telemetry::gauge("train.loss_3d");
        let m_lkine = telemetry::gauge("train.loss_kine");
        let m_grad_norm = telemetry::gauge("train.grad_norm");
        let m_lr = telemetry::gauge("train.lr");
        let m_throughput = telemetry::gauge("train.seq_per_s");

        for _epoch in 0..tc.epochs {
            let epoch_span = telemetry::span("train.epoch_time");
            let batches = make_batches(sequences, tc.batch_size, &mut shuffle_rng);
            let mut epoch_loss = 0.0;
            let mut epoch_l3d = 0.0;
            let mut epoch_lk = 0.0;
            let mut lr_used = tc.base_lr;
            let mut last_grad_norm = 0.0_f32;
            let mut epoch_sequences = 0u64;
            for batch in &batches {
                store.zero_grad();
                // Split the batch along the sample axis into fixed-size
                // micro-shards and run forward/backward for each shard on
                // the pool. The per-sample loss terms are row-independent
                // (the mean over the batch is a weighted mean of per-shard
                // means), so sharding only reassociates the reduction.
                let n = batch.batch_size();
                let bounds: Vec<(usize, usize)> = (0..n)
                    .step_by(TRAIN_SHARD)
                    .map(|lo| (lo, (lo + TRAIN_SHARD).min(n)))
                    .collect();
                let backward_span = telemetry::span("train.backward");
                let shard_results = mmhand_parallel::par_map(&bounds, |&(lo, hi)| {
                    let segments: Vec<Tensor> =
                        batch.segments.iter().map(|s| slice_rows(s, lo, hi)).collect();
                    let mut tape = Tape::new();
                    let outs = model.forward(&mut tape, &store, &segments);
                    // Sum the per-step combined losses, then average.
                    let mut total = None;
                    let mut l3d_sum = 0.0;
                    let mut lk_sum = 0.0;
                    for (out, label) in outs.iter().zip(&batch.labels) {
                        let label = slice_rows(label, lo, hi);
                        let (l, l3d, lk) = combined_loss(&mut tape, *out, &label, tc.weights);
                        l3d_sum += l3d;
                        lk_sum += lk;
                        total = Some(match total {
                            None => l,
                            Some(acc) => tape.add(acc, l),
                        });
                    }
                    let steps = outs.len() as f32;
                    let loss = tape.scale(total.expect("non-empty sequence"), 1.0 / steps);
                    // Weight the shard by its share of the batch so the
                    // reduced gradient matches the full-batch mean loss.
                    let weight = (hi - lo) as f32 / n as f32;
                    let loss_value = tape.value(loss).data()[0];
                    // Single-shard batches keep the unscaled loss node
                    // (weight is exactly 1 when the shard spans the batch).
                    let root = if hi - lo == n { loss } else { tape.scale(loss, weight) };
                    let mut grads = Vec::new();
                    tape.backward_with(root, |id, g| grads.push((id, g.clone())));
                    ShardGrad {
                        loss: weight * loss_value,
                        l3d: weight * l3d_sum / steps,
                        lkine: weight * lk_sum / steps,
                        grads,
                    }
                });
                // Reduce in ascending shard order for determinism across
                // thread counts.
                let mut batch_loss = 0.0;
                for shard in &shard_results {
                    batch_loss += shard.loss;
                    epoch_l3d += shard.l3d;
                    epoch_lk += shard.lkine;
                    for (id, g) in &shard.grads {
                        store.accumulate_grad(*id, g);
                    }
                }
                backward_span.finish();
                epoch_loss += batch_loss;
                // With sanitize-numerics, verify gradient flow reached every
                // parameter after the first backward pass: a silent zero-grad
                // parameter is almost always a detached subgraph. The
                // inactive temporal head (mlp_head with the LSTM on,
                // lstm/head without it) is exempt by construction.
                #[cfg(feature = "sanitize-numerics")]
                if step == 0 {
                    let expected_dead: &[&str] = if self.model_config.use_lstm {
                        &["temporal.mlp_head"]
                    } else {
                        &["temporal.lstm", "temporal.head"]
                    };
                    let dead: Vec<String> = mmhand_nn::sanitize::dead_params(&store)
                        .into_iter()
                        .filter(|n| !expected_dead.iter().any(|e| n.starts_with(e)))
                        .collect();
                    assert!(
                        dead.is_empty(),
                        "parameters with zero gradient flow after first backward: {dead:?}"
                    );
                }
                epoch_sequences += batch.batch_size() as u64;
                // Pre-clip gradient norm; computed only when telemetry is
                // recording since it costs a pass over every parameter.
                let optimizer_span = telemetry::span("train.optimizer");
                if telemetry::enabled() {
                    last_grad_norm = store.grad_norm();
                }
                if tc.clip_norm > 0.0 {
                    store.clip_grad_norm(tc.clip_norm);
                }
                lr_used = schedule.lr_at(step);
                adam.step_with_lr(&mut store, lr_used);
                optimizer_span.finish();
                step += 1;
            }
            let nb = batches.len().max(1) as f32;
            let stats = EpochStats {
                loss: epoch_loss / nb,
                l3d: epoch_l3d / nb,
                lkine: epoch_lk / nb,
                lr: lr_used,
            };
            history.push(stats);
            m_epochs.inc();
            m_sequences.add(epoch_sequences);
            m_loss.set(stats.loss as f64);
            m_l3d.set(stats.l3d as f64);
            m_lkine.set(stats.lkine as f64);
            m_grad_norm.set(last_grad_norm as f64);
            m_lr.set(stats.lr as f64);
            let epoch_ns = epoch_span.finish();
            if epoch_ns > 0 {
                m_throughput.set(epoch_sequences as f64 / (epoch_ns as f64 / 1e9));
            }
        }

        Ok(TrainedModel { model, store, history })
    }
}

/// A trivial predictor that always outputs the mean training label — the
/// floor any learned model must beat.
pub fn mean_pose_baseline(sequences: &[SegmentSequence]) -> Vec<f32> {
    let mut mean = vec![0.0_f32; OUTPUT_DIM];
    let mut count = 0;
    for s in sequences {
        for l in &s.labels {
            for (m, v) in mean.iter_mut().zip(l) {
                *m += v;
            }
            count += 1;
        }
    }
    if count > 0 {
        for m in &mut mean {
            *m /= count as f32;
        }
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, CubeConfig};
    use crate::dataset::session_to_sequences;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::trajectory::GestureTrack;
    use mmhand_hand::user::UserProfile;
    use mmhand_math::Vec3;
    use mmhand_radar::capture::{record_session, CaptureConfig};
    use mmhand_radar::{ChirpConfig, Environment};

    /// A tiny radar/cube/model stack that trains in seconds.
    fn tiny_stack() -> (CubeConfig, ModelConfig) {
        let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
        let cube = CubeConfig {
            chirp,
            range_bins: 8,
            doppler_bins: 4,
            azimuth_bins: 4,
            elevation_bins: 4,
            frames_per_segment: 2,
            range_max_m: 0.55,
            ..Default::default()
        };
        let model = ModelConfig {
            frames_per_segment: 2,
            doppler_bins: 4,
            range_bins: 8,
            angle_bins: 8,
            channels: 6,
            blocks: 1,
            feature_dim: 24,
            lstm_hidden: 24,
            ..ModelConfig::default()
        };
        (cube, model)
    }

    fn tiny_sequences(cube_cfg: &CubeConfig, n_frames: usize, user_seed: u64) -> Vec<SegmentSequence> {
        let user = UserProfile::generate(1, user_seed);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Fist, Gesture::Point],
            Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        let capture = CaptureConfig {
            chirp: cube_cfg.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            seed: user_seed,
            ..Default::default()
        };
        let session = record_session(&user, &track, n_frames, &capture);
        let builder = CubeBuilder::new(cube_cfg.clone());
        session_to_sequences(&builder, &session, 2, 1)
    }

    #[test]
    fn training_reduces_loss() {
        let (cube_cfg, model_cfg) = tiny_stack();
        let seqs = tiny_sequences(&cube_cfg, 40, 3);
        assert!(!seqs.is_empty());
        let trainer = Trainer::new(
            model_cfg,
            TrainConfig { epochs: 160, batch_size: 4, ..Default::default() },
        );
        let trained = trainer.train(&seqs);
        let first = trained.history.first().unwrap().loss;
        let last = trained.history.last().unwrap().loss;
        assert!(
            last < first * 0.6,
            "loss did not drop: {first} → {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn trained_model_beats_mean_pose_baseline() {
        let (cube_cfg, model_cfg) = tiny_stack();
        let seqs = tiny_sequences(&cube_cfg, 48, 4);
        let trainer = Trainer::new(
            model_cfg,
            TrainConfig { epochs: 160, batch_size: 4, ..Default::default() },
        );
        let trained = trainer.train(&seqs);
        let model_err = trained.evaluate(&seqs).mpjpe(crate::metrics::JointGroup::Overall);

        let mean = mean_pose_baseline(&seqs);
        let mut base_err = JointErrors::new();
        for s in &seqs {
            for l in &s.labels {
                base_err.push_flat(&mean, l);
            }
        }
        let baseline = base_err.mpjpe(crate::metrics::JointGroup::Overall);
        assert!(
            model_err < baseline,
            "model {model_err} mm vs mean-pose {baseline} mm"
        );
    }

    #[test]
    fn predictions_have_joint_structure() {
        let (cube_cfg, model_cfg) = tiny_stack();
        let seqs = tiny_sequences(&cube_cfg, 24, 5);
        let trainer = Trainer::new(
            model_cfg,
            TrainConfig { epochs: 160, batch_size: 4, ..Default::default() },
        );
        let trained = trainer.train(&seqs);
        let preds = trained.predict_sequence(&seqs[0].segments);
        assert_eq!(preds.len(), seqs[0].len());
        for p in preds {
            assert_eq!(p.len(), OUTPUT_DIM);
            assert!(p.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn per_user_evaluation_splits_by_user() {
        let (cube_cfg, model_cfg) = tiny_stack();
        let mut seqs = tiny_sequences(&cube_cfg, 24, 6);
        let mut other = tiny_sequences(&cube_cfg, 24, 7);
        for s in &mut other {
            s.user_id = 2;
        }
        seqs.extend(other);
        let trainer = Trainer::new(
            model_cfg,
            TrainConfig { epochs: 160, batch_size: 4, ..Default::default() },
        );
        let trained = trainer.train(&seqs);
        let per_user = trained.evaluate_per_user(&seqs);
        assert_eq!(per_user.len(), 2);
        assert_eq!(per_user[0].0, 1);
        assert_eq!(per_user[1].0, 2);
        assert!(!per_user[0].1.is_empty());
    }

    #[test]
    fn training_records_telemetry() {
        let (cube_cfg, model_cfg) = tiny_stack();
        let seqs = tiny_sequences(&cube_cfg, 24, 8);
        let epochs_before = mmhand_telemetry::counter("train.epochs").get();
        let trainer = Trainer::new(
            model_cfg,
            TrainConfig { epochs: 3, batch_size: 4, ..Default::default() },
        );
        let _ = trainer.train(&seqs);
        // Counters are process-global and other tests train concurrently,
        // so assert growth, not exact values.
        let epochs_after = mmhand_telemetry::counter("train.epochs").get();
        assert!(epochs_after >= epochs_before + 3, "per-epoch counter advanced");
        assert!(mmhand_telemetry::counter("train.sequences").get() > 0);
        assert!(mmhand_telemetry::gauge("train.loss").get().is_finite());
        assert!(mmhand_telemetry::gauge("train.grad_norm").get() >= 0.0);
        let snap = mmhand_telemetry::snapshot();
        let epoch_hist = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "train.epoch_time")
            .map(|(_, h)| h)
            .expect("epoch span histogram registered");
        assert!(epoch_hist.count >= 3);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_set_panics() {
        let (_, model_cfg) = tiny_stack();
        Trainer::new(model_cfg, TrainConfig::default()).train(&[]);
    }

    #[test]
    fn try_train_surfaces_empty_windows_as_typed_errors() {
        use crate::error::PipelineError;
        let (_, model_cfg) = tiny_stack();
        let trainer = Trainer::new(model_cfg, TrainConfig::default());
        assert!(matches!(
            trainer.try_train(&[]),
            Err(PipelineError::EmptyInput { what: "training sequences" })
        ));
        // A sequence whose frame window truncated to zero segments must be
        // rejected up front, not explode mid-epoch.
        let hollow = SegmentSequence { segments: Vec::new(), labels: Vec::new(), user_id: 1 };
        assert!(matches!(
            trainer.try_train(&[hollow]),
            Err(PipelineError::EmptyInput { what: "segments in a training sequence" })
        ));
    }
}
