//! The combined training loss (paper §IV-B, Eqs. 8–9).
//!
//! `L_total = β·L_3D + γ·L_kine`:
//!
//! * **L_3D** — squared-error regression of the 21 joints, built on the
//!   autodiff tape.
//! * **L_kine** — the hand-kinematic constraint. Following the paper, each
//!   finger is treated as either *collinear* (straight in the ground truth:
//!   phalanges aligned with the finger direction, lengths summing to the
//!   base–tip distance, Eq. 9) or *coplanar* (bent: phalange directions
//!   orthogonal to the flexion-plane normal). The loss and its analytic
//!   gradient are computed outside the tape and injected via
//!   [`Tape::external_loss`].
//!
//! Two deliberate deviations from the paper's notation, recorded in
//! DESIGN.md: the finger direction `e_d` and plane normal `e_n` are taken
//! from the *ground truth* (constants with respect to the prediction),
//! and the coplanar dot products are squared so the loss is non-negative
//! as written-out math requires.

use crate::model::OUTPUT_DIM;
use mmhand_hand::skeleton::Finger;
use mmhand_math::Vec3;
use mmhand_nn::{Tape, Tensor, Var};

/// Loss weights `β` (3-D term) and `γ` (kinematic term).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossWeights {
    /// Weight of the 3-D joint loss.
    pub beta: f32,
    /// Weight of the kinematic loss.
    pub gamma: f32,
}

impl Default for LossWeights {
    fn default() -> Self {
        // γ is small because L_3D is in m² (≈1e-3-scale for cm-level errors)
        // while L_kine is O(1); this keeps the kinematic term a regulariser
        // rather than the dominant objective.
        LossWeights { beta: 1.0, gamma: 1e-3 }
    }
}

/// Collinearity slack φ: straight fingers satisfy
/// `Σ|bone| ≤ (1 + φ)·|tip − base|` (the paper sets φ = 0.01).
pub const PHI: f32 = 0.01;

/// Alignment threshold `p` for straight fingers (the paper's `t` = 0.99).
pub const ALIGNMENT_P: f32 = 0.99;

/// Reads joint `j` out of a flat 63-float slice.
fn joint(buf: &[f32], j: usize) -> Vec3 {
    Vec3::new(buf[3 * j], buf[3 * j + 1], buf[3 * j + 2])
}

fn add_grad(buf: &mut [f32], j: usize, g: Vec3) {
    buf[3 * j] += g.x;
    buf[3 * j + 1] += g.y;
    buf[3 * j + 2] += g.z;
}

/// Decides whether a finger is straight (collinear case) in the ground
/// truth, per the paper's criterion.
pub fn is_straight(truth: &[f32], finger: Finger) -> bool {
    let [a, b, c, d] = finger.joints();
    let (pa, pb, pc, pd) = (joint(truth, a), joint(truth, b), joint(truth, c), joint(truth, d));
    let sum = pa.distance(pb) + pb.distance(pc) + pc.distance(pd);
    let direct = pa.distance(pd);
    direct > 1e-6 && sum <= (1.0 + PHI) * direct
}

/// Computes the kinematic loss and its gradient for a batch.
///
/// `pred` and `truth` are `(N, 63)` tensors. Returns the mean loss over
/// samples and fingers, and the gradient with respect to `pred` (already
/// scaled for the mean).
///
/// # Panics
///
/// Panics if shapes are not `(N, 63)` or disagree.
pub fn kinematic_loss(pred: &Tensor, truth: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), truth.shape(), "pred/truth shapes");
    assert_eq!(pred.shape()[1], OUTPUT_DIM, "63 outputs per sample");
    let n = pred.shape()[0];
    let mut total = 0.0_f32;
    let mut grad = Tensor::zeros(pred.shape());
    let scale = 1.0 / (n as f32 * 5.0);

    for s in 0..n {
        let p = &pred.data()[s * OUTPUT_DIM..(s + 1) * OUTPUT_DIM];
        let t = &truth.data()[s * OUTPUT_DIM..(s + 1) * OUTPUT_DIM];
        let g = &mut grad.data_mut()[s * OUTPUT_DIM..(s + 1) * OUTPUT_DIM];
        for finger in Finger::ALL {
            let [ja, jb, jc, jd] = finger.joints();
            let (pa, pb, pc, pd) = (joint(p, ja), joint(p, jb), joint(p, jc), joint(p, jd));
            let bones = [(ja, jb, pa, pb), (jb, jc, pb, pc), (jc, jd, pc, pd)];
            if is_straight(t, finger) {
                // Collinear case (Eq. 9).
                let ed = (joint(t, jd) - joint(t, ja)).normalized();
                // Length-excess term.
                let (lab, lbc, lcd) = (pa.distance(pb), pb.distance(pc), pc.distance(pd));
                let lad = pa.distance(pd);
                let excess = lab + lbc + lcd - (1.0 + PHI) * lad;
                if excess > 0.0 && lad > 1e-9 {
                    total += excess * scale;
                    let uab = (pb - pa).normalized();
                    let ubc = (pc - pb).normalized();
                    let ucd = (pd - pc).normalized();
                    let uad = (pd - pa).normalized();
                    add_grad(g, ja, (-uab + uad * (1.0 + PHI)) * scale);
                    add_grad(g, jb, (uab - ubc) * scale);
                    add_grad(g, jc, (ubc - ucd) * scale);
                    add_grad(g, jd, (ucd - uad * (1.0 + PHI)) * scale);
                }
                // Alignment terms: max(p − u·e_d, 0) per phalange.
                for &(jp, jq, pp, pq) in &bones {
                    let v = pq - pp;
                    let norm = v.norm();
                    if norm < 1e-9 {
                        continue;
                    }
                    let u = v / norm;
                    let dot = u.dot(ed);
                    let f = ALIGNMENT_P - dot;
                    if f > 0.0 {
                        total += f * scale;
                        let ddot = (ed - u * dot) / norm;
                        add_grad(g, jq, -ddot * scale);
                        add_grad(g, jp, ddot * scale);
                    }
                }
            } else {
                // Coplanar case: squared projection on the GT plane normal.
                let tb1 = joint(t, jb) - joint(t, ja);
                let tb2 = joint(t, jc) - joint(t, jb);
                let en = tb1.cross(tb2).normalized();
                if en == Vec3::ZERO {
                    continue; // degenerate ground truth
                }
                for &(jp, jq, pp, pq) in &bones {
                    let v = pq - pp;
                    let norm = v.norm();
                    if norm < 1e-9 {
                        continue;
                    }
                    let u = v / norm;
                    let dot = u.dot(en);
                    total += dot * dot * scale;
                    let ddot = (en - u * dot) / norm;
                    let gq = ddot * (2.0 * dot) * scale;
                    add_grad(g, jq, gq);
                    add_grad(g, jp, -gq);
                }
            }
        }
    }
    (total, grad)
}

/// Builds the full combined loss on the tape.
///
/// `pred` is the `(N, 63)` network output variable; `truth` the matching
/// label tensor. Returns `(total_loss_var, l3d_value, lkine_value)`.
pub fn combined_loss(
    tape: &mut Tape,
    pred: Var,
    truth: &Tensor,
    weights: LossWeights,
) -> (Var, f32, f32) {
    // L_3D: mean squared coordinate error.
    let t = tape.leaf(truth.clone());
    let diff = tape.sub(pred, t);
    let sq = tape.mul(diff, diff);
    let l3d = tape.mean_all(sq);
    let l3d_value = tape.value(l3d).data()[0];

    // L_kine with analytic gradient, injected as an external loss.
    let (lk_value, lk_grad) = kinematic_loss(tape.value(pred), truth);
    let lkine = tape.external_loss(pred, lk_value, lk_grad);

    let a = tape.scale(l3d, weights.beta);
    let b = tape.scale(lkine, weights.gamma);
    let total = tape.add(a, b);
    (total, l3d_value, lk_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::shape::HandShape;
    use mmhand_math::rng::stream_rng;

    fn joints_to_flat(joints: &[Vec3; 21]) -> Vec<f32> {
        joints.iter().flat_map(|j| j.to_array()).collect()
    }

    fn tensor_for(gesture: Gesture) -> Tensor {
        let j = gesture.pose().joints(&HandShape::default());
        Tensor::from_vec(&[1, OUTPUT_DIM], joints_to_flat(&j))
    }

    #[test]
    fn straightness_detection_matches_gestures() {
        let open = tensor_for(Gesture::OpenPalm);
        for f in [Finger::Index, Finger::Middle, Finger::Ring, Finger::Pinky] {
            assert!(is_straight(open.data(), f), "{f:?} should be straight");
        }
        let fist = tensor_for(Gesture::Fist);
        for f in Finger::ALL {
            assert!(!is_straight(fist.data(), f), "{f:?} should be bent");
        }
    }

    #[test]
    fn perfect_prediction_has_zero_kinematic_loss() {
        for g in [Gesture::OpenPalm, Gesture::Fist, Gesture::Point, Gesture::Count(3)] {
            let t = tensor_for(g);
            let (loss, grad) = kinematic_loss(&t, &t);
            assert!(loss < 1e-4, "{g:?} loss {loss}");
            assert!(grad.data().iter().all(|&x| x.abs() < 1e-3), "{g:?} grad");
        }
    }

    #[test]
    fn bent_prediction_of_straight_finger_is_penalised() {
        let truth = tensor_for(Gesture::OpenPalm);
        let pred = tensor_for(Gesture::Fist);
        let (loss, _) = kinematic_loss(&pred, &truth);
        assert!(loss > 0.01, "loss {loss}");
    }

    #[test]
    fn out_of_plane_prediction_is_penalised() {
        let truth = tensor_for(Gesture::Fist);
        let mut pred = truth.clone();
        // Push the index PIP out of its flexion plane (x direction).
        pred.data_mut()[3 * 6] += 0.03;
        let (loss, grad) = kinematic_loss(&pred, &truth);
        assert!(loss > 1e-4, "loss {loss}");
        assert!(grad.data().iter().any(|&x| x.abs() > 1e-4));
    }

    #[test]
    fn kinematic_gradient_matches_finite_differences() {
        let truth = tensor_for(Gesture::OpenPalm);
        let mut rng = stream_rng(7, "kin");
        let mut pred = truth.clone();
        for v in pred.data_mut() {
            *v += mmhand_math::rng::normal(&mut rng, 0.0, 0.01);
        }
        let (_, grad) = kinematic_loss(&pred, &truth);
        let eps = 1e-4;
        for idx in (0..OUTPUT_DIM).step_by(7) {
            let mut pp = pred.clone();
            pp.data_mut()[idx] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[idx] -= eps;
            let (lp, _) = kinematic_loss(&pp, &truth);
            let (lm, _) = kinematic_loss(&pm, &truth);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grad.data()[idx];
            assert!(
                (ana - num).abs() < 3e-2 * (1.0 + num.abs()),
                "idx {idx}: analytic {ana} vs numeric {num}"
            );
        }
    }

    #[test]
    fn kinematic_gradient_matches_fd_for_bent_truth() {
        let truth = tensor_for(Gesture::Fist);
        let mut rng = stream_rng(8, "kin2");
        let mut pred = truth.clone();
        for v in pred.data_mut() {
            *v += mmhand_math::rng::normal(&mut rng, 0.0, 0.02);
        }
        let (_, grad) = kinematic_loss(&pred, &truth);
        let eps = 1e-4;
        for idx in (1..OUTPUT_DIM).step_by(9) {
            let mut pp = pred.clone();
            pp.data_mut()[idx] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[idx] -= eps;
            let (lp, _) = kinematic_loss(&pp, &truth);
            let (lm, _) = kinematic_loss(&pm, &truth);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grad.data()[idx];
            assert!(
                (ana - num).abs() < 3e-2 * (1.0 + num.abs()),
                "idx {idx}: analytic {ana} vs numeric {num}"
            );
        }
    }

    #[test]
    fn combined_loss_weights_terms() {
        let truth = tensor_for(Gesture::OpenPalm);
        let pred_t = tensor_for(Gesture::Fist);
        let mut store = mmhand_nn::ParamStore::new();
        let mut tape = Tape::new();
        let pred = tape.leaf(pred_t.clone());
        let (total, l3d, lk) = combined_loss(
            &mut tape,
            pred,
            &truth,
            LossWeights { beta: 2.0, gamma: 0.5 },
        );
        let tv = tape.value(total).data()[0];
        assert!((tv - (2.0 * l3d + 0.5 * lk)).abs() < 1e-5);
        assert!(l3d > 0.0 && lk > 0.0);
        // Gradient flows to the prediction.
        tape.backward(total, &mut store);
        assert!(tape.grad(pred).is_some());
    }

    #[test]
    fn zero_error_gives_zero_combined_loss() {
        let truth = tensor_for(Gesture::Count(2));
        let mut tape = Tape::new();
        let pred = tape.leaf(truth.clone());
        let (total, l3d, lk) = combined_loss(&mut tape, pred, &truth, LossWeights::default());
        assert!(tape.value(total).data()[0] < 1e-6);
        assert!(l3d < 1e-8);
        assert!(lk < 1e-4);
    }

    #[cfg(feature = "sanitize-numerics")]
    #[test]
    #[should_panic(expected = "numeric poison")]
    fn poisoned_label_is_trapped_inside_combined_loss() {
        let mut truth = tensor_for(Gesture::OpenPalm);
        truth.data_mut()[40] = f32::NAN;
        let pred_t = tensor_for(Gesture::Fist);
        let mut tape = Tape::new();
        let pred = tape.leaf(pred_t);
        // The poisoned label is written to the tape as a leaf inside
        // `combined_loss`, so the sanitizer fires at that write.
        combined_loss(&mut tape, pred, &truth, LossWeights::default());
    }

    #[cfg(not(feature = "sanitize-numerics"))]
    #[test]
    fn without_the_sanitizer_a_poisoned_label_yields_a_nan_loss() {
        let mut truth = tensor_for(Gesture::OpenPalm);
        truth.data_mut()[40] = f32::NAN;
        let pred_t = tensor_for(Gesture::Fist);
        let mut tape = Tape::new();
        let pred = tape.leaf(pred_t);
        let (total, l3d, _) = combined_loss(&mut tape, pred, &truth, LossWeights::default());
        assert!(l3d.is_nan());
        assert!(tape.value(total).data()[0].is_nan());
    }

    #[test]
    fn batch_loss_averages_samples() {
        let a = tensor_for(Gesture::OpenPalm);
        let b = tensor_for(Gesture::Fist);
        let mut both = Vec::new();
        both.extend_from_slice(a.data());
        both.extend_from_slice(b.data());
        let truth2 = Tensor::from_vec(&[2, OUTPUT_DIM], both.clone());
        // Swap the two rows so each is wrong.
        let mut swapped = Vec::new();
        swapped.extend_from_slice(b.data());
        swapped.extend_from_slice(a.data());
        let pred2 = Tensor::from_vec(&[2, OUTPUT_DIM], swapped);
        let (loss2, grad2) = kinematic_loss(&pred2, &truth2);
        // Single-sample losses.
        let (l1, _) = kinematic_loss(&b, &a);
        let (l2, _) = kinematic_loss(&a, &b);
        assert!((loss2 - (l1 + l2) / 2.0).abs() < 1e-5);
        assert_eq!(grad2.shape(), &[2, OUTPUT_DIM]);
    }
}
