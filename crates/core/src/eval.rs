//! Evaluation harness: dataset generation for the 10-user cohort and the
//! paper's 5-fold leave-two-users-out cross-validation (§VI-A).

use crate::cube::{CubeBuilder, CubeConfig};
use crate::dataset::SegmentSequence;
use crate::error::PipelineError;
use crate::metrics::JointErrors;
use crate::model::ModelConfig;
use crate::train::{TrainConfig, TrainedModel, Trainer};
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::CaptureSession;
use mmhand_hand::user::UserProfile;

/// Dataset-generation parameters for one experiment.
#[derive(Clone, Debug)]
pub struct DataConfig {
    /// Number of study participants.
    pub users: usize,
    /// Frames recorded per user.
    pub frames_per_user: usize,
    /// Gestures per continuous track.
    pub gestures_per_track: usize,
    /// Nominal hand position in the radar frame (paper: 20–40 cm range).
    pub hand_position: Vec3,
    /// LSTM sequence length in segments.
    pub seq_len: usize,
    /// Capture conditions (environment, impairments, noise, …).
    pub capture: CaptureConfig,
    /// Cube geometry.
    pub cube: CubeConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig {
            users: 10,
            frames_per_user: 160,
            gestures_per_track: 8,
            hand_position: Vec3::new(0.0, 0.3, 0.0),
            seq_len: 3,
            capture: CaptureConfig::default(),
            cube: CubeConfig::default(),
            seed: 42,
        }
    }
}

impl DataConfig {
    /// The model configuration matching this data geometry.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig {
            frames_per_segment: self.cube.frames_per_segment,
            doppler_bins: self.cube.doppler_bins,
            range_bins: self.cube.range_bins,
            angle_bins: self.cube.angle_bins(),
            ..ModelConfig::default()
        }
    }
}

/// Records one user's capture session under this configuration.
pub fn record_user_session(config: &DataConfig, user: &UserProfile, session_tag: u64) -> CaptureSession {
    let track = user.random_track(config.hand_position, config.gestures_per_track, session_tag);
    let capture = CaptureConfig {
        chirp: config.cube.chirp,
        seed: config.seed ^ (user.id as u64) << 16 ^ session_tag,
        ..config.capture.clone()
    };
    record_session(user, &track, config.frames_per_user, &capture)
}

/// Generates the full cohort dataset: sequences tagged per user.
///
/// Users are recorded and cube-processed concurrently on the
/// [`mmhand_parallel`] pool; results are concatenated in user order, so the
/// output is identical at any thread count.
pub fn build_cohort(config: &DataConfig) -> Vec<SegmentSequence> {
    try_build_cohort(config).expect("cohort configuration must be valid")
}

/// Fallible variant of [`build_cohort`].
///
/// # Errors
///
/// Returns the first cube-configuration or sequence-assembly violation.
pub fn try_build_cohort(config: &DataConfig) -> Result<Vec<SegmentSequence>, PipelineError> {
    let users = UserProfile::cohort(config.users, config.seed);
    let builder = CubeBuilder::try_new(config.cube.clone())?;
    let per_user = mmhand_parallel::par_map(&users, |user| {
        let session = record_user_session(config, user, 0);
        crate::dataset::try_session_to_sequences(&builder, &session, config.seq_len, user.id)
    });
    let mut out = Vec::new();
    for seqs in per_user {
        out.extend(seqs?);
    }
    Ok(out)
}

/// Result of one cross-validation run.
#[derive(Debug)]
pub struct CrossValidation {
    /// Errors of each user, measured when that user was in the test fold.
    pub per_user: Vec<(usize, JointErrors)>,
    /// Pooled errors across all folds.
    pub overall: JointErrors,
}

/// Runs the paper's 5-fold leave-two-users-out protocol: users are split
/// into `folds` groups in id order; each fold trains on the remaining
/// groups and tests on its own.
///
/// # Panics
///
/// Panics if the dataset is empty or has fewer distinct users than folds
/// (delegates to [`try_cross_validate`]).
pub fn cross_validate(
    sequences: &[SegmentSequence],
    model_cfg: &ModelConfig,
    train_cfg: &TrainConfig,
    folds: usize,
) -> CrossValidation {
    try_cross_validate(sequences, model_cfg, train_cfg, folds)
        .expect("need at least `folds` users and a non-empty dataset")
}

/// Fallible variant of [`cross_validate`].
///
/// # Errors
///
/// Returns [`PipelineError::EmptyInput`] for an empty dataset and
/// [`PipelineError::TooFewUsers`] when the cohort has fewer distinct users
/// than folds.
pub fn try_cross_validate(
    sequences: &[SegmentSequence],
    model_cfg: &ModelConfig,
    train_cfg: &TrainConfig,
    folds: usize,
) -> Result<CrossValidation, PipelineError> {
    if sequences.is_empty() {
        return Err(PipelineError::EmptyInput { what: "cross-validation sequences" });
    }
    let mut users: Vec<usize> = sequences.iter().map(|s| s.user_id).collect();
    users.sort_unstable();
    users.dedup();
    if users.len() < folds {
        return Err(PipelineError::TooFewUsers { folds, users: users.len() });
    }
    let per_fold = users.len().div_ceil(folds);

    // Folds are fully independent (each trains its own model from its own
    // seed), so run them concurrently and merge in fold order afterwards —
    // the result is identical at any thread count.
    let fold_ids: Vec<usize> = (0..folds).collect();
    let fold_results = mmhand_parallel::par_map(&fold_ids, |&fold| {
        let test_users: Vec<usize> =
            users.iter().copied().skip(fold * per_fold).take(per_fold).collect();
        let train_set: Vec<SegmentSequence> = sequences
            .iter()
            .filter(|s| !test_users.contains(&s.user_id))
            .cloned()
            .collect();
        let test_set: Vec<SegmentSequence> = sequences
            .iter()
            .filter(|s| test_users.contains(&s.user_id))
            .cloned()
            .collect();
        let trainer = Trainer::new(
            model_cfg.clone(),
            TrainConfig { seed: train_cfg.seed ^ fold as u64, ..train_cfg.clone() },
        );
        let model = trainer.train(&train_set);
        model.evaluate_per_user(&test_set)
    });

    let mut per_user: Vec<(usize, JointErrors)> = Vec::new();
    let mut overall = JointErrors::new();
    for fold_users in fold_results {
        for (user, errs) in fold_users {
            overall.merge(&errs);
            per_user.push((user, errs));
        }
    }
    per_user.sort_by_key(|(u, _)| *u);
    Ok(CrossValidation { per_user, overall })
}

/// Trains one model on the full cohort (used by the condition-sweep
/// experiments, where test conditions differ from training conditions).
pub fn train_reference_model(
    sequences: &[SegmentSequence],
    model_cfg: &ModelConfig,
    train_cfg: &TrainConfig,
) -> TrainedModel {
    Trainer::new(model_cfg.clone(), train_cfg.clone()).train(sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_radar::{ChirpConfig, Environment};

    /// Small-but-real configuration for tests.
    pub(crate) fn tiny_data_config() -> DataConfig {
        let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
        let cube = CubeConfig {
            chirp,
            range_bins: 8,
            doppler_bins: 4,
            azimuth_bins: 4,
            elevation_bins: 4,
            frames_per_segment: 2,
            range_max_m: 0.55,
            ..Default::default()
        };
        DataConfig {
            users: 4,
            frames_per_user: 24,
            gestures_per_track: 3,
            seq_len: 2,
            capture: CaptureConfig {
                chirp,
                environment: Environment::Playground,
                noise_sigma: 0.005,
                ..Default::default()
            },
            cube,
            seed: 9,
            ..Default::default()
        }
    }

    fn tiny_model(cfg: &DataConfig) -> ModelConfig {
        ModelConfig {
            channels: 6,
            blocks: 1,
            feature_dim: 24,
            lstm_hidden: 24,
            ..cfg.model_config()
        }
    }

    #[test]
    fn cohort_covers_all_users() {
        let cfg = tiny_data_config();
        let seqs = build_cohort(&cfg);
        let mut users: Vec<usize> = seqs.iter().map(|s| s.user_id).collect();
        users.sort_unstable();
        users.dedup();
        assert_eq!(users, vec![1, 2, 3, 4]);
    }

    #[test]
    fn cross_validation_tests_every_user_out_of_fold() {
        let cfg = tiny_data_config();
        let seqs = build_cohort(&cfg);
        let cv = cross_validate(
            &seqs,
            &tiny_model(&cfg),
            &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
            2,
        );
        let tested: Vec<usize> = cv.per_user.iter().map(|(u, _)| *u).collect();
        assert_eq!(tested, vec![1, 2, 3, 4]);
        assert!(!cv.overall.is_empty());
        for (_, e) in &cv.per_user {
            assert!(e.mpjpe(crate::metrics::JointGroup::Overall).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_users_panics() {
        let cfg = tiny_data_config();
        let seqs = build_cohort(&cfg);
        cross_validate(
            &seqs,
            &tiny_model(&cfg),
            &TrainConfig { epochs: 1, ..Default::default() },
            9,
        );
    }

    #[test]
    fn sessions_differ_between_users() {
        let cfg = tiny_data_config();
        let users = UserProfile::cohort(2, cfg.seed);
        let a = record_user_session(&cfg, &users[0], 0);
        let b = record_user_session(&cfg, &users[1], 0);
        assert_ne!(a.truth[5], b.truth[5]);
    }
}
