//! Hand-mesh reconstruction (paper §V, Fig. 8).
//!
//! From a regressed 21-joint skeleton, mmHand fits the MANO parameters:
//!
//! * a **shape network** — fully connected layers with layer normalisation
//!   mapping the skeleton to the shape coefficients `β ∈ R¹⁰`,
//! * a **pose network** — fully connected layers with layer normalisation
//!   mapping the skeleton plus the 20 phalange direction vectors
//!   `D_p ∈ R^{20×3}` to per-joint rotation quaternions `Q ∈ R^{21×4}`,
//!   which are normalised and converted to the axis-angle `θ ∈ R^{21×3}`.
//!
//! Both networks are trained on synthetic `(β, θ) → joints` pairs from the
//! hand model — the end-to-end inverse-kinematics learning of the paper —
//! with the analytic solver ([`mmhand_hand::ik`]) providing the quaternion
//! targets. [`MeshReconstructor::reconstruct_analytic`] exposes the purely
//! analytic path as a deterministic fallback/baseline.

use mmhand_hand::ik::solve_ik;
use mmhand_hand::mano::{ManoModel, Mesh};
use mmhand_hand::pose::HandPose;
use mmhand_hand::shape::{HandShape, BETA_DIM};
use mmhand_hand::skeleton::JOINT_COUNT;
use mmhand_math::rng::{stream_rng, normal};
use mmhand_math::{Quaternion, Vec3};
use mmhand_nn::{Adam, LayerNorm, Linear, ParamStore, Tape, Tensor, Var};
use rand::Rng;

/// Input dimension of the pose network: 63 joint coords + 60 bone dirs.
const POSE_IN: usize = 63 + 60;
/// Output dimension of the pose network: 21 quaternions.
const POSE_OUT: usize = JOINT_COUNT * 4;

/// A reconstructed hand.
#[derive(Clone, Debug)]
pub struct ReconstructedHand {
    /// MANO shape coefficients.
    pub beta: [f32; BETA_DIM],
    /// MANO pose: rotation vector per joint.
    pub theta: [Vec3; JOINT_COUNT],
    /// The posed surface mesh (world frame).
    pub mesh: Mesh,
    /// The mesh model's joints under `(β, θ)` (world frame).
    pub joints: [Vec3; JOINT_COUNT],
}

/// Configuration for the mesh-fitting networks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeshFitConfig {
    /// Training steps for the networks.
    pub steps: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MeshFitConfig {
    fn default() -> Self {
        MeshFitConfig { steps: 600, batch: 32, lr: 2e-3, seed: 0 }
    }
}

#[derive(Clone)]
struct MlpHead {
    fc1: Linear,
    ln1: LayerNorm,
    fc2: Linear,
    ln2: LayerNorm,
    fc3: Linear,
}

impl MlpHead {
    fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dims: [usize; 4],
        rng: &mut R,
    ) -> Self {
        MlpHead {
            fc1: Linear::new(store, &format!("{name}.fc1"), dims[0], dims[1], rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dims[1]),
            fc2: Linear::new(store, &format!("{name}.fc2"), dims[1], dims[2], rng),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dims[2]),
            fc3: Linear::new(store, &format!("{name}.fc3"), dims[2], dims[3], rng),
        }
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let h = self.fc1.forward(tape, store, x);
        let h = self.ln1.forward(tape, store, h);
        let h = tape.relu(h);
        let h = self.fc2.forward(tape, store, h);
        let h = self.ln2.forward(tape, store, h);
        let h = tape.relu(h);
        self.fc3.forward(tape, store, h)
    }
}

/// The mesh-reconstruction module: shape net + pose net + MANO.
#[derive(Clone)]
pub struct MeshReconstructor {
    mano: ManoModel,
    store: ParamStore,
    shape_net: MlpHead,
    pose_net: MlpHead,
    fitted: bool,
}

impl MeshReconstructor {
    /// Creates an untrained reconstructor (call [`MeshReconstructor::fit`],
    /// or use the analytic path).
    pub fn new(seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = stream_rng(seed, "mesh-init");
        let shape_net =
            MlpHead::new(&mut store, "shape", [63, 128, 64, BETA_DIM], &mut rng);
        let pose_net =
            MlpHead::new(&mut store, "pose", [POSE_IN, 256, 128, POSE_OUT], &mut rng);
        MeshReconstructor {
            mano: ManoModel::new(),
            store,
            shape_net,
            pose_net,
            fitted: false,
        }
    }

    /// `true` once [`MeshReconstructor::fit`] has run.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// The underlying MANO-style model.
    pub fn mano(&self) -> &ManoModel {
        &self.mano
    }

    /// Builds the `(63,)` and `(123,)` network inputs from wrist-centred
    /// joints.
    fn network_inputs(joints: &[Vec3; JOINT_COUNT]) -> (Vec<f32>, Vec<f32>) {
        let skeleton: Vec<f32> = joints.iter().flat_map(|v| v.to_array()).collect();
        let dirs = mmhand_hand::pose::bone_directions(joints);
        let mut pose_in = skeleton.clone();
        pose_in.extend(dirs.iter().flat_map(|v| v.to_array()));
        (skeleton, pose_in)
    }

    /// Generates one synthetic training sample: `(joints, β, target quats)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, mano: &ManoModel) -> ([Vec3; JOINT_COUNT], Vec<f32>, Vec<f32>) {
        let mut beta = [0.0_f32; BETA_DIM];
        for b in &mut beta {
            *b = normal(rng, 0.0, 1.0).clamp(-2.5, 2.5);
        }
        let shape = HandShape::from_beta(&beta);
        let mut pose = HandPose::default();
        for f in 0..5 {
            let base_curl: f32 = rng.gen_range(0.0..1.5);
            for k in 0..3 {
                pose.curls[f][k] = (base_curl + normal(rng, 0.0, 0.2)).clamp(0.0, 1.6);
            }
            pose.spreads[f] = rng.gen_range(-0.25..0.25);
        }
        pose.orientation = Quaternion::from_axis_angle(
            Vec3::new(normal(rng, 0.0, 1.0), normal(rng, 0.0, 1.0), normal(rng, 0.0, 1.0)),
            normal(rng, 0.0, 0.35),
        );
        let joints = pose.joints(&shape); // wrist at origin
        let ik = solve_ik(mano.rest_joints(), &joints);
        let mut quats = Vec::with_capacity(POSE_OUT);
        for theta in ik.theta {
            let mut q = Quaternion::from_rotation_vector(theta);
            if q.w < 0.0 {
                q = Quaternion::new(-q.w, -q.x, -q.y, -q.z);
            }
            quats.extend_from_slice(&[q.w, q.x, q.y, q.z]);
        }
        (joints, beta.to_vec(), quats)
    }

    /// Trains the shape and pose networks on synthetic data from the hand
    /// model (the paper's end-to-end IK learning). Returns the final
    /// combined MSE.
    pub fn fit(&mut self, config: &MeshFitConfig) -> f32 {
        let mut rng = stream_rng(config.seed, "mesh-fit");
        let mut adam = Adam::new(config.lr);
        let mut last = f32::INFINITY;
        for _ in 0..config.steps {
            // Assemble a batch.
            let n = config.batch;
            let mut skel = Vec::with_capacity(n * 63);
            let mut pose_in = Vec::with_capacity(n * POSE_IN);
            let mut beta_t = Vec::with_capacity(n * BETA_DIM);
            let mut quat_t = Vec::with_capacity(n * POSE_OUT);
            for _ in 0..n {
                let (joints, beta, quats) = Self::sample(&mut rng, &self.mano);
                let (s, p) = Self::network_inputs(&joints);
                skel.extend(s);
                pose_in.extend(p);
                beta_t.extend(beta);
                quat_t.extend(quats);
            }
            self.store.zero_grad();
            let mut tape = Tape::new();
            let xs = tape.leaf(Tensor::from_vec(&[n, 63], skel));
            let xp = tape.leaf(Tensor::from_vec(&[n, POSE_IN], pose_in));
            let beta_pred = self.shape_net.forward(&mut tape, &self.store, xs);
            let quat_pred = self.pose_net.forward(&mut tape, &self.store, xp);
            let bt = tape.leaf(Tensor::from_vec(&[n, BETA_DIM], beta_t));
            let qt = tape.leaf(Tensor::from_vec(&[n, POSE_OUT], quat_t));
            let db = tape.sub(beta_pred, bt);
            let db2 = tape.mul(db, db);
            let lb = tape.mean_all(db2);
            let dq = tape.sub(quat_pred, qt);
            let dq2 = tape.mul(dq, dq);
            let lq = tape.mean_all(dq2);
            let lq5 = tape.scale(lq, 5.0);
            let loss = tape.add(lb, lq5);
            tape.backward(loss, &mut self.store);
            adam.step(&mut self.store);
            last = tape.value(loss).data()[0];
        }
        self.fitted = true;
        last
    }

    /// Runs the networks on a predicted skeleton (flat 63 floats, radar
    /// frame, metres) and reconstructs the mesh, translated back to the
    /// skeleton's wrist position.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::SkeletonLength`] for a malformed skeleton
    /// and [`PipelineError::NotFitted`] when [`MeshReconstructor::fit`] has
    /// not run.
    pub fn try_reconstruct(
        &self,
        skeleton: &[f32],
    ) -> Result<ReconstructedHand, crate::error::PipelineError> {
        if skeleton.len() != 63 {
            return Err(crate::error::PipelineError::SkeletonLength {
                expected: 63,
                got: skeleton.len(),
            });
        }
        if !self.fitted {
            return Err(crate::error::PipelineError::NotFitted {
                what: "MeshReconstructor",
            });
        }
        Ok(self.reconstruct_validated(skeleton))
    }

    /// Infallible wrapper over [`MeshReconstructor::try_reconstruct`].
    ///
    /// # Panics
    ///
    /// Panics if `skeleton.len() != 63` or the networks are unfitted.
    pub fn reconstruct(&self, skeleton: &[f32]) -> ReconstructedHand {
        self.try_reconstruct(skeleton)
            .expect("skeleton length and fit() state; or use reconstruct_analytic()")
    }

    fn reconstruct_validated(&self, skeleton: &[f32]) -> ReconstructedHand {
        let wrist = Vec3::new(skeleton[0], skeleton[1], skeleton[2]);
        let mut joints = [Vec3::ZERO; JOINT_COUNT];
        for (j, slot) in joints.iter_mut().enumerate() {
            *slot = Vec3::new(
                skeleton[3 * j] - wrist.x,
                skeleton[3 * j + 1] - wrist.y,
                skeleton[3 * j + 2] - wrist.z,
            );
        }
        let (skel_in, pose_in) = Self::network_inputs(&joints);
        let mut tape = Tape::new();
        let xs = tape.leaf(Tensor::from_vec(&[1, 63], skel_in));
        let xp = tape.leaf(Tensor::from_vec(&[1, POSE_IN], pose_in));
        let beta_v = self.shape_net.forward(&mut tape, &self.store, xs);
        let quat_v = self.pose_net.forward(&mut tape, &self.store, xp);
        let mut beta = [0.0_f32; BETA_DIM];
        beta.copy_from_slice(tape.value(beta_v).data());
        let q = tape.value(quat_v).data();
        let mut theta = [Vec3::ZERO; JOINT_COUNT];
        for (j, t) in theta.iter_mut().enumerate() {
            let quat =
                Quaternion::new(q[4 * j], q[4 * j + 1], q[4 * j + 2], q[4 * j + 3]).normalized();
            *t = quat.to_rotation_vector();
        }
        self.assemble(beta, theta, wrist)
    }

    /// Deterministic reconstruction through the analytic IK solver (default
    /// shape) — the fallback path and the baseline the networks must match.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::SkeletonLength`] for a malformed skeleton.
    pub fn try_reconstruct_analytic(
        &self,
        skeleton: &[f32],
    ) -> Result<ReconstructedHand, crate::error::PipelineError> {
        if skeleton.len() != 63 {
            return Err(crate::error::PipelineError::SkeletonLength {
                expected: 63,
                got: skeleton.len(),
            });
        }
        let wrist = Vec3::new(skeleton[0], skeleton[1], skeleton[2]);
        let mut joints = [Vec3::ZERO; JOINT_COUNT];
        for (j, slot) in joints.iter_mut().enumerate() {
            *slot = Vec3::new(
                skeleton[3 * j] - wrist.x,
                skeleton[3 * j + 1] - wrist.y,
                skeleton[3 * j + 2] - wrist.z,
            );
        }
        let ik = solve_ik(self.mano.rest_joints(), &joints);
        Ok(self.assemble([0.0; BETA_DIM], ik.theta, wrist))
    }

    /// Infallible wrapper over
    /// [`MeshReconstructor::try_reconstruct_analytic`].
    ///
    /// # Panics
    ///
    /// Panics if `skeleton.len() != 63`.
    pub fn reconstruct_analytic(&self, skeleton: &[f32]) -> ReconstructedHand {
        self.try_reconstruct_analytic(skeleton).expect("skeleton length")
    }

    fn assemble(
        &self,
        beta: [f32; BETA_DIM],
        theta: [Vec3; JOINT_COUNT],
        wrist: Vec3,
    ) -> ReconstructedHand {
        let mut mesh = self.mano.mesh(&beta, &theta);
        for v in &mut mesh.vertices {
            *v += wrist;
        }
        let mut joints = self.mano.posed_joints(&beta, &theta);
        for j in &mut joints {
            *j += wrist;
        }
        ReconstructedHand { beta, theta, mesh, joints }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_hand::gesture::Gesture;

    fn skeleton_for(gesture: Gesture, offset: Vec3) -> Vec<f32> {
        let mut pose = gesture.pose();
        pose.position = offset;
        pose.joints(&HandShape::default())
            .iter()
            .flat_map(|v| v.to_array())
            .collect()
    }

    fn mean_joint_error(rec: &ReconstructedHand, skeleton: &[f32]) -> f32 {
        let mut total = 0.0;
        for j in 0..JOINT_COUNT {
            let t = Vec3::new(skeleton[3 * j], skeleton[3 * j + 1], skeleton[3 * j + 2]);
            total += rec.joints[j].distance(t);
        }
        total / JOINT_COUNT as f32
    }

    #[test]
    fn analytic_reconstruction_matches_skeleton() {
        let r = MeshReconstructor::new(1);
        for g in [Gesture::OpenPalm, Gesture::Fist, Gesture::Point] {
            let skel = skeleton_for(g, Vec3::new(0.05, 0.3, -0.02));
            let rec = r.reconstruct_analytic(&skel);
            let err = mean_joint_error(&rec, &skel);
            assert!(err < 0.006, "{g:?} error {err}");
            assert!(!rec.mesh.vertices.is_empty());
        }
    }

    #[test]
    fn mesh_is_positioned_at_the_hand() {
        let r = MeshReconstructor::new(2);
        let offset = Vec3::new(0.1, 0.35, 0.05);
        let skel = skeleton_for(Gesture::OpenPalm, offset);
        let rec = r.reconstruct_analytic(&skel);
        let (lo, hi) = rec.mesh.bounds();
        let centre = (lo + hi) * 0.5;
        assert!(centre.distance(offset) < 0.15, "mesh centre {centre}");
    }

    #[test]
    #[should_panic(expected = "fit()")]
    fn unfitted_network_reconstruction_panics() {
        let r = MeshReconstructor::new(3);
        let skel = skeleton_for(Gesture::OpenPalm, Vec3::ZERO);
        r.reconstruct(&skel);
    }

    #[test]
    fn try_reconstruct_returns_typed_errors() {
        use crate::error::PipelineError;
        let r = MeshReconstructor::new(3);
        let skel = skeleton_for(Gesture::OpenPalm, Vec3::ZERO);
        assert!(matches!(
            r.try_reconstruct(&skel),
            Err(PipelineError::NotFitted { .. })
        ));
        assert!(matches!(
            r.try_reconstruct(&skel[..10]),
            Err(PipelineError::SkeletonLength { expected: 63, got: 10 })
        ));
        assert!(matches!(
            r.try_reconstruct_analytic(&[]),
            Err(PipelineError::SkeletonLength { expected: 63, got: 0 })
        ));
        assert!(r.try_reconstruct_analytic(&skel).is_ok());
    }

    #[test]
    fn fitting_converges_and_reconstructs() {
        let mut r = MeshReconstructor::new(4);
        let cfg = MeshFitConfig { steps: 400, batch: 24, ..Default::default() };
        let final_loss = r.fit(&cfg);
        // β is only identifiable up to a global-scale ambiguity, so the MSE
        // plateaus near 1; what matters is the reconstruction error below.
        assert!(final_loss < 1.4, "mesh fit loss {final_loss}");
        assert!(r.is_fitted());
        // Network reconstruction should track the skeleton reasonably and
        // not be wildly worse than the analytic path.
        for g in [Gesture::OpenPalm, Gesture::Count(2)] {
            let skel = skeleton_for(g, Vec3::new(0.0, 0.3, 0.0));
            let rec = r.reconstruct(&skel);
            let err = mean_joint_error(&rec, &skel);
            assert!(err < 0.025, "{g:?} network reconstruction error {err}");
            assert!(rec.beta.iter().all(|b| b.is_finite()));
        }
    }

    #[test]
    fn bent_gesture_produces_bent_theta() {
        let r = MeshReconstructor::new(5);
        let skel = skeleton_for(Gesture::Fist, Vec3::new(0.0, 0.3, 0.0));
        let rec = r.reconstruct_analytic(&skel);
        // Finger joints should carry substantial rotations for a fist.
        let total_rotation: f32 = rec.theta.iter().map(|t| t.norm()).sum();
        assert!(total_rotation > 3.0, "total rotation {total_rotation}");
    }
}
