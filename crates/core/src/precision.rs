//! Typed inference precision.
//!
//! [`Precision`] is the single knob selecting the numeric path a pipeline's
//! forward pass runs on: the f32 reference, or the post-training int8 path
//! (per-channel weight scales, i8×i8→i32 matmuls through the dispatched
//! kernels, dequantization at the output — see `mmhand_nn::quant`).
//! Training always runs f32; precision only affects inference.
//!
//! The `MMHAND_PRECISION` environment variable (`f32` | `int8`) is the
//! documented *fallback* that fills the default when no explicit precision
//! was configured — mirroring how `MMHAND_KERNEL_BACKEND` fills the kernel
//! default. Explicit configuration (a pipeline builder call, a serve
//! `InferenceProfile`, a `--precision` flag) always wins over the env.

/// Numeric precision of the inference path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// The f32 reference path (always available; training uses only this).
    #[default]
    F32,
    /// Post-training int8: quantized matmuls with exact i32 accumulation,
    /// dequantized at the output. Requires a calibrated pipeline.
    Int8,
}

impl Precision {
    /// Stable lowercase name (`"f32"`, `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// The documented `MMHAND_PRECISION` env fallback: fills the default
    /// when nothing was configured explicitly. Unknown values warn on
    /// stderr and fall back to [`Precision::F32`].
    pub fn env_fallback() -> Precision {
        match std::env::var("MMHAND_PRECISION").ok().as_deref() {
            Some("int8") => Precision::Int8,
            Some("f32") | Some("") | None => Precision::F32,
            Some(other) => {
                eprintln!(
                    "mmhand-core: unknown MMHAND_PRECISION={other:?} (expected f32|int8); \
                     using f32"
                );
                Precision::F32
            }
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!("unknown precision {other:?} (expected f32|int8)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_names() {
        assert_eq!("f32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("int8".parse::<Precision>().unwrap(), Precision::Int8);
        assert!("fp16".parse::<Precision>().is_err());
        assert_eq!(Precision::F32.name(), "f32");
        assert_eq!(Precision::Int8.name(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
    }
}
