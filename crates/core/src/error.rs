//! The workspace error hierarchy: [`PipelineError`] for the frame → cube →
//! model → mesh path and the top-level [`MmHandError`] that unifies every
//! crate's typed error.
//!
//! # Conventions
//!
//! * Fallible entry points are named `try_*` and return
//!   `Result<_, PipelineError>` (or `MmHandError` at the workspace
//!   boundary). The original panicking names remain as thin wrappers that
//!   delegate to the `try_*` variant and `expect` the result, so batch
//!   tools and examples that control their own inputs keep their
//!   ergonomics.
//! * Lower-level errors ([`RadarError`], [`DspError`], [`ShapeError`])
//!   convert into [`PipelineError`] via `From`, so `?` composes across
//!   crate boundaries.
//! * Serving code must never unwrap on this path: malformed client input
//!   has to surface as an `Err` (enforced by the `serve_hygiene` audit
//!   rule and the serve property tests).

use mmhand_dsp::DspError;
use mmhand_nn::ShapeError;
use mmhand_radar::RadarError;
use std::fmt;

/// An error anywhere on the frame → cube → model → mesh pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// Invalid radar configuration or frame geometry.
    Radar(RadarError),
    /// DSP failure (filter design, degenerate signal).
    Dsp(DspError),
    /// Tensor shape violation from the network layer.
    Shape(ShapeError),
    /// A pipeline-level configuration field is inconsistent.
    InvalidConfig {
        /// The offending field (or field group).
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An operation that needs data received none.
    EmptyInput {
        /// What was empty (`"frames"`, `"sequences"`, …).
        what: &'static str,
    },
    /// A segment held the wrong number of cube frames.
    SegmentSize {
        /// Frames per segment demanded by the configuration.
        expected: usize,
        /// Frames provided.
        got: usize,
    },
    /// A cube frame's shape disagrees with the configured geometry.
    CubeShape {
        /// Shape `(V, D, A)` demanded by the configuration.
        expected: [usize; 3],
        /// Shape found on the frame.
        got: [usize; 3],
    },
    /// A skeleton had the wrong number of scalars (21 joints × 3 = 63).
    SkeletonLength {
        /// Expected scalar count.
        expected: usize,
        /// Scalar count provided.
        got: usize,
    },
    /// A component that requires fitting was used before `fit()`.
    NotFitted {
        /// The unfitted component.
        what: &'static str,
    },
    /// Sequences in one dataset had differing lengths.
    MismatchedSequenceLength {
        /// Length of the first sequence.
        expected: usize,
        /// Length of the offending sequence.
        got: usize,
    },
    /// Cross-validation asked for more folds than there are users.
    TooFewUsers {
        /// Folds requested.
        folds: usize,
        /// Distinct users available.
        users: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Radar(e) => write!(f, "{e}"),
            PipelineError::Dsp(e) => write!(f, "{e}"),
            PipelineError::Shape(e) => write!(f, "{e}"),
            PipelineError::InvalidConfig { field, reason } => {
                write!(f, "invalid pipeline configuration ({field}): {reason}")
            }
            PipelineError::EmptyInput { what } => write!(f, "empty input: no {what} provided"),
            PipelineError::SegmentSize { expected, got } => {
                write!(f, "segment needs {expected} cube frames, got {got}")
            }
            PipelineError::CubeShape { expected, got } => {
                write!(f, "cube frame shape {got:?} does not match configured {expected:?}")
            }
            PipelineError::SkeletonLength { expected, got } => {
                write!(f, "skeleton needs {expected} scalars, got {got}")
            }
            PipelineError::NotFitted { what } => {
                write!(f, "{what} used before fit()")
            }
            PipelineError::MismatchedSequenceLength { expected, got } => {
                write!(f, "sequence length {got} differs from the dataset's {expected}")
            }
            PipelineError::TooFewUsers { folds, users } => {
                write!(f, "cross-validation needs at least {folds} users, got {users}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Radar(e) => Some(e),
            PipelineError::Dsp(e) => Some(e),
            PipelineError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RadarError> for PipelineError {
    fn from(e: RadarError) -> Self {
        PipelineError::Radar(e)
    }
}

impl From<DspError> for PipelineError {
    fn from(e: DspError) -> Self {
        PipelineError::Dsp(e)
    }
}

impl From<ShapeError> for PipelineError {
    fn from(e: ShapeError) -> Self {
        PipelineError::Shape(e)
    }
}

/// The workspace-level error: every crate's typed error, unified.
#[derive(Clone, Debug, PartialEq)]
pub enum MmHandError {
    /// Radar configuration / frame geometry error.
    Radar(RadarError),
    /// DSP error.
    Dsp(DspError),
    /// Tensor shape error.
    Shape(ShapeError),
    /// Pipeline error.
    Pipeline(PipelineError),
}

impl fmt::Display for MmHandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmHandError::Radar(e) => write!(f, "{e}"),
            MmHandError::Dsp(e) => write!(f, "{e}"),
            MmHandError::Shape(e) => write!(f, "{e}"),
            MmHandError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MmHandError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MmHandError::Radar(e) => Some(e),
            MmHandError::Dsp(e) => Some(e),
            MmHandError::Shape(e) => Some(e),
            MmHandError::Pipeline(e) => Some(e),
        }
    }
}

impl From<RadarError> for MmHandError {
    fn from(e: RadarError) -> Self {
        MmHandError::Radar(e)
    }
}

impl From<DspError> for MmHandError {
    fn from(e: DspError) -> Self {
        MmHandError::Dsp(e)
    }
}

impl From<ShapeError> for MmHandError {
    fn from(e: ShapeError) -> Self {
        MmHandError::Shape(e)
    }
}

impl From<PipelineError> for MmHandError {
    fn from(e: PipelineError) -> Self {
        MmHandError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_level_errors_convert_upward() {
        let radar = RadarError::FrameGeometry { axis: "tx_count", expected: 3, got: 2 };
        let p: PipelineError = radar.clone().into();
        assert!(matches!(p, PipelineError::Radar(_)));
        let m: MmHandError = p.clone().into();
        assert!(matches!(m, MmHandError::Pipeline(PipelineError::Radar(_))));
        let m2: MmHandError = radar.into();
        assert!(matches!(m2, MmHandError::Radar(_)));
    }

    #[test]
    fn display_is_descriptive() {
        let e = PipelineError::SegmentSize { expected: 4, got: 2 };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
        let e = PipelineError::EmptyInput { what: "frames" };
        assert!(e.to_string().contains("frames"));
        let e = PipelineError::NotFitted { what: "MeshReconstructor" };
        assert!(e.to_string().contains("fit()"));
    }

    #[test]
    fn source_chains_to_the_underlying_error() {
        use std::error::Error;
        let p = PipelineError::Radar(RadarError::InvalidConfig {
            field: "tx_count",
            reason: "must be positive".into(),
        });
        assert!(p.source().is_some());
        let m = MmHandError::Pipeline(p);
        assert!(m.source().is_some());
        assert!(MmHandError::Pipeline(PipelineError::EmptyInput { what: "frames" })
            .source()
            .expect("pipeline variant has a source")
            .source()
            .is_none());
    }
}
