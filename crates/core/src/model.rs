//! The mmHand joint-regression network (paper §IV, Fig. 5).
//!
//! * [`MmSpaceNet`] — the attention-based hourglass spatial feature
//!   extractor: a stem that mixes the segment's `st·V` channels, followed
//!   by attention residual blocks. Each block combines
//!     * a 1×1 branch that preserves the current level's features,
//!     * a downsample-conv / upsample-deconv branch for fine-grained
//!       multi-scale features,
//!     * the two-stage channel attention of Eqs. 2–5 (frame channels, then
//!       velocity channels), and
//!     * the 3-D spatial attention of Eqs. 6–7 over the range–angle maps.
//! * [`TemporalModel`] — the LSTM over consecutive segment features.
//! * [`MmHandModel`] — the full regressor producing 21 × 3 joint
//!   coordinates per segment.
//!
//! Ablation switches in [`ModelConfig`] turn each mechanism off for the
//! comparison experiments.

use mmhand_nn::{
    Conv2d, ConvSpec, ConvTranspose2d, Linear, Lstm, ParamStore, Tape, Tensor, Var,
};
use rand::Rng;

/// Joint count × 3 coordinates.
pub const OUTPUT_DIM: usize = 63;

/// Architecture hyper-parameters and ablation switches.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Frames per segment `st`.
    pub frames_per_segment: usize,
    /// Doppler bins `V` per frame.
    pub doppler_bins: usize,
    /// Range bins `D`.
    pub range_bins: usize,
    /// Angle bins `A`.
    pub angle_bins: usize,
    /// Trunk channels inside the hourglass blocks.
    pub channels: usize,
    /// Number of attention residual blocks.
    pub blocks: usize,
    /// Feature dimension fed to the LSTM.
    pub feature_dim: usize,
    /// LSTM hidden size.
    pub lstm_hidden: usize,
    /// Enable the first-stage (frame) channel attention.
    pub frame_attention: bool,
    /// Enable the second-stage (velocity) channel attention.
    pub channel_attention: bool,
    /// Enable the spatial attention.
    pub spatial_attention: bool,
    /// Enable the LSTM (off ⇒ per-segment MLP on the spatial feature).
    pub use_lstm: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            frames_per_segment: 4,
            doppler_bins: 8,
            range_bins: 16,
            angle_bins: 16,
            channels: 12,
            blocks: 2,
            feature_dim: 96,
            lstm_hidden: 96,
            frame_attention: true,
            channel_attention: true,
            spatial_attention: true,
            use_lstm: true,
        }
    }
}

impl ModelConfig {
    /// Input channels of a segment tensor (`st · V`).
    pub fn input_channels(&self) -> usize {
        self.frames_per_segment * self.doppler_bins
    }
}

/// One attention residual block of mmSpaceNet.
#[derive(Clone)]
struct AttentionBlock {
    // Attention parameters.
    frame_fc1: Linear,
    frame_fc2: Linear,
    chan_fc: Linear,
    spatial_conv: Conv2d,
    // Hourglass branches.
    skip_1x1: Conv2d,
    down: Conv2d,
    up: ConvTranspose2d,
}

impl AttentionBlock {
    fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        cfg: &ModelConfig,
        rng: &mut R,
    ) -> Self {
        let c = cfg.channels;
        let st = cfg.frames_per_segment;
        AttentionBlock {
            // "Conv1": a small two-layer block over the pooled frame vector.
            frame_fc1: Linear::new(store, &format!("{name}.frame_fc1"), st, st * 2, rng),
            frame_fc2: Linear::new(store, &format!("{name}.frame_fc2"), st * 2, st, rng),
            // Stage-2 FC over concatenated [GAP, GMP] channel features.
            chan_fc: Linear::new(store, &format!("{name}.chan_fc"), 2 * c, c, rng),
            // "Conv2": 2 → 1 channel map over [MEAN, MAX].
            spatial_conv: Conv2d::new(
                store,
                &format!("{name}.spatial_conv"),
                ConvSpec { in_channels: 2, out_channels: 1, kernel: 5, stride: 1, pad: 2 },
                rng,
            ),
            skip_1x1: Conv2d::new(
                store,
                &format!("{name}.skip"),
                ConvSpec { in_channels: c, out_channels: c, kernel: 1, stride: 1, pad: 0 },
                rng,
            ),
            down: Conv2d::new(
                store,
                &format!("{name}.down"),
                ConvSpec { in_channels: c, out_channels: c, kernel: 3, stride: 2, pad: 1 },
                rng,
            ),
            up: ConvTranspose2d::new(
                store,
                &format!("{name}.up"),
                ConvSpec { in_channels: c, out_channels: c, kernel: 4, stride: 2, pad: 1 },
                rng,
            ),
        }
    }

    /// Two-stage channel attention (Eqs. 2–5) followed by spatial attention
    /// (Eqs. 6–7) followed by the hourglass residual combination.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        cfg: &ModelConfig,
    ) -> Var {
        let mut cur = x;

        // Stage 1 — frame channel attention: a_i = σ(Conv1(TGAP + TGMP)).
        // Channels are grouped as st frames × V velocity bins, so pooling a
        // frame's group is the 3-D global pooling over its V×D×A volume.
        if cfg.frame_attention {
            let gap = tape.group_avg_pool(cur, cfg.frames_per_segment);
            let gmp = tape.group_max_pool(cur, cfg.frames_per_segment);
            let pooled = tape.add(gap, gmp);
            let h = self.frame_fc1.forward(tape, store, pooled);
            let h = tape.relu(h);
            let h = self.frame_fc2.forward(tape, store, h);
            let a = tape.sigmoid(h);
            cur = tape.mul_group(cur, a, cfg.frames_per_segment);
        }

        // Stage 2 — velocity channel attention:
        // b = σ(FC([GAP(Y), GMP(Y)])) applied per channel. Runs after the
        // trunk has mixed frames into `channels` feature maps, so it weights
        // those velocity-derived channels (Eq. 4–5).
        if cfg.channel_attention {
            let gap = tape.channel_avg_pool(cur);
            let gmp = tape.channel_max_pool(cur);
            let cat = tape.concat_cols(gap, gmp);
            let b = self.chan_fc.forward(tape, store, cat);
            let b = tape.sigmoid(b);
            cur = tape.mul_channel(cur, b);
        }

        // 3-D spatial attention: C = σ(Conv2([MEAN(Z), MAX(Z)])).
        if cfg.spatial_attention {
            let mean = tape.mean_over_channels(cur);
            let max = tape.max_over_channels(cur);
            let cat = tape.concat_channels(mean, max);
            let m = self.spatial_conv.forward(tape, store, cat);
            let m = tape.sigmoid(m);
            cur = tape.mul_spatial(cur, m);
        }

        // Hourglass residual: 1×1 skip + down/up multiscale branch.
        let skip = self.skip_1x1.forward(tape, store, cur);
        let d = self.down.forward(tape, store, cur);
        let d = tape.relu(d);
        let u = self.up.forward(tape, store, d);
        let u = tape.relu(u);
        let sum = tape.add(skip, u);
        tape.relu(sum)
    }
}

/// The attention-based hourglass spatial feature extractor.
#[derive(Clone)]
pub struct MmSpaceNet {
    stem: Conv2d,
    blocks: Vec<AttentionBlock>,
    reduce: Conv2d,
    to_feature: Linear,
    cfg: ModelConfig,
}

impl MmSpaceNet {
    /// Builds the network, registering parameters in `store`.
    pub fn new<R: Rng + ?Sized>(store: &mut ParamStore, cfg: &ModelConfig, rng: &mut R) -> Self {
        let stem = Conv2d::new(
            store,
            "spacenet.stem",
            ConvSpec {
                in_channels: cfg.input_channels(),
                out_channels: cfg.channels,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            rng,
        );
        let blocks = (0..cfg.blocks)
            .map(|i| AttentionBlock::new(store, &format!("spacenet.block{i}"), cfg, rng))
            .collect();
        let reduce = Conv2d::new(
            store,
            "spacenet.reduce",
            ConvSpec { in_channels: cfg.channels, out_channels: 4, kernel: 1, stride: 1, pad: 0 },
            rng,
        );
        let flat = 4 * cfg.range_bins * cfg.angle_bins;
        let to_feature = Linear::new(store, "spacenet.feature", flat, cfg.feature_dim, rng);
        MmSpaceNet { stem, blocks, reduce, to_feature, cfg: cfg.clone() }
    }

    /// Extracts the per-segment feature vector `(N, feature_dim)` from a
    /// batch of segments `(N, st·V, D, A)`.
    ///
    /// The first block sees the raw frame grouping, so frame attention runs
    /// on the *input* (before the stem mixes frames), matching the paper's
    /// ordering where Eq. 2 applies to X.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        // Frame attention on the raw segment (stage 1 of block 0 semantics).
        let mut cur = x;
        if self.cfg.frame_attention {
            let gap = tape.group_avg_pool(cur, self.cfg.frames_per_segment);
            let gmp = tape.group_max_pool(cur, self.cfg.frames_per_segment);
            let pooled = tape.add(gap, gmp);
            let h = self.blocks[0].frame_fc1.forward(tape, store, pooled);
            let h = tape.relu(h);
            let h = self.blocks[0].frame_fc2.forward(tape, store, h);
            let a = tape.sigmoid(h);
            cur = tape.mul_group(cur, a, self.cfg.frames_per_segment);
        }
        cur = self.stem.forward(tape, store, cur);
        cur = tape.relu(cur);
        // Inside the trunk, frame groups no longer exist (channels are
        // mixed), so blocks run with frame attention disabled.
        let inner_cfg = ModelConfig { frame_attention: false, ..self.cfg.clone() };
        for block in &self.blocks {
            cur = block.forward(tape, store, cur, &inner_cfg);
        }
        let reduced = self.reduce.forward(tape, store, cur);
        let reduced = tape.relu(reduced);
        let n = tape.value(reduced).shape()[0];
        let flat_len = tape.value(reduced).len() / n;
        let flat = tape.reshape(reduced, &[n, flat_len]);
        let feat = self.to_feature.forward(tape, store, flat);
        tape.relu(feat)
    }
}

/// The temporal model: LSTM over segment features (paper §IV-A).
#[derive(Clone)]
pub struct TemporalModel {
    lstm: Lstm,
    head: Linear,
    mlp_head: Linear,
    use_lstm: bool,
}

impl TemporalModel {
    /// Builds the temporal model.
    pub fn new<R: Rng + ?Sized>(store: &mut ParamStore, cfg: &ModelConfig, rng: &mut R) -> Self {
        TemporalModel {
            lstm: Lstm::new(store, "temporal.lstm", cfg.feature_dim, cfg.lstm_hidden, rng),
            head: Linear::new(store, "temporal.head", cfg.lstm_hidden, OUTPUT_DIM, rng),
            mlp_head: Linear::new(store, "temporal.mlp_head", cfg.feature_dim, OUTPUT_DIM, rng),
            use_lstm: cfg.use_lstm,
        }
    }

    /// Parameter handles of the two output heads' biases, for initialising
    /// them to the mean training pose (removes the DC offset the network
    /// would otherwise have to learn).
    pub fn head_bias_ids(&self) -> [mmhand_nn::ParamId; 2] {
        [self.head.bias_id(), self.mlp_head.bias_id()]
    }

    /// Regresses joints for one feature step from explicit LSTM state,
    /// returning `(output, h, c)` with the advanced state.
    ///
    /// The op sequence matches one iteration of [`forward`], so stepping a
    /// stream segment-by-segment from zero state reproduces the
    /// whole-sequence forward bitwise. With the LSTM ablated the state
    /// passes through untouched and the MLP head runs stateless.
    pub fn forward_step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        feature: Var,
        h: Var,
        c: Var,
    ) -> (Var, Var, Var) {
        if self.use_lstm {
            let (h_new, c_new) = self.lstm.step(tape, store, feature, h, c);
            let out = self.head.forward(tape, store, h_new);
            (out, h_new, c_new)
        } else {
            (self.mlp_head.forward(tape, store, feature), h, c)
        }
    }

    /// Regresses joints for each step of a feature sequence.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, features: &[Var]) -> Vec<Var> {
        if self.use_lstm {
            let hs = self.lstm.forward_sequence(tape, store, features);
            hs.into_iter()
                .map(|h| self.head.forward(tape, store, h))
                .collect()
        } else {
            // Ablation: single-segment regression without temporal context.
            features
                .iter()
                .map(|&f| self.mlp_head.forward(tape, store, f))
                .collect()
        }
    }
}

/// The full mmHand joint-regression model.
#[derive(Clone)]
pub struct MmHandModel {
    /// The spatial feature extractor.
    pub spacenet: MmSpaceNet,
    /// The temporal regressor.
    pub temporal: TemporalModel,
    /// Architecture configuration.
    pub config: ModelConfig,
}

impl MmHandModel {
    /// Builds the model, registering all parameters in `store`.
    pub fn new<R: Rng + ?Sized>(store: &mut ParamStore, cfg: ModelConfig, rng: &mut R) -> Self {
        let spacenet = MmSpaceNet::new(store, &cfg, rng);
        let temporal = TemporalModel::new(store, &cfg, rng);
        MmHandModel { spacenet, temporal, config: cfg }
    }

    /// Forward pass over a sequence of segment batches.
    ///
    /// `segments[t]` is the `(N, st·V, D, A)` tensor of sequence step `t`;
    /// the result holds the `(N, 63)` joint regression per step.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        segments: &[Tensor],
    ) -> Vec<Var> {
        assert!(!segments.is_empty(), "need at least one segment");
        let feats: Vec<Var> = segments
            .iter()
            .map(|s| {
                let x = tape.leaf(s.clone());
                self.spacenet.forward(tape, store, x)
            })
            .collect();
        self.temporal.forward(tape, store, &feats)
    }

    /// Forward pass for one streamed segment batch from explicit LSTM
    /// state, returning `(output, h, c)`.
    ///
    /// `segment` is a `(N, st·V, D, A)` tensor; `h`/`c` are `(N, hidden)`
    /// state leaves (zeros at stream start). Stepping a stream through this
    /// reproduces [`forward`] over the same segments bitwise.
    pub fn forward_step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        segment: &Tensor,
        h: Var,
        c: Var,
    ) -> (Var, Var, Var) {
        let x = tape.leaf(segment.clone());
        let feat = self.spacenet.forward(tape, store, x);
        self.temporal.forward_step(tape, store, feat, h, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::stream_rng;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            frames_per_segment: 2,
            doppler_bins: 4,
            range_bins: 8,
            angle_bins: 8,
            channels: 6,
            blocks: 1,
            feature_dim: 16,
            lstm_hidden: 16,
            ..ModelConfig::default()
        }
    }

    fn batch(cfg: &ModelConfig, n: usize, seed: u64) -> Tensor {
        let mut rng = stream_rng(seed, "x");
        Tensor::randn(&[n, cfg.input_channels(), cfg.range_bins, cfg.angle_bins], 1.0, &mut rng)
    }

    #[test]
    fn forward_shapes_match_contract() {
        let cfg = tiny_config();
        let mut store = ParamStore::new();
        let mut rng = stream_rng(1, "m");
        let model = MmHandModel::new(&mut store, cfg.clone(), &mut rng);
        let mut tape = Tape::new();
        let segs = vec![batch(&cfg, 3, 1), batch(&cfg, 3, 2)];
        let outs = model.forward(&mut tape, &store, &segs);
        assert_eq!(outs.len(), 2);
        for o in outs {
            assert_eq!(tape.value(o).shape(), &[3, OUTPUT_DIM]);
            assert!(!tape.value(o).has_non_finite());
        }
    }

    #[test]
    fn ablations_change_parameter_usage_not_shapes() {
        for (fa, ca, sa, lstm) in [
            (false, true, true, true),
            (true, false, true, true),
            (true, true, false, true),
            (true, true, true, false),
            (false, false, false, false),
        ] {
            let cfg = ModelConfig {
                frame_attention: fa,
                channel_attention: ca,
                spatial_attention: sa,
                use_lstm: lstm,
                ..tiny_config()
            };
            let mut store = ParamStore::new();
            let mut rng = stream_rng(2, "a");
            let model = MmHandModel::new(&mut store, cfg.clone(), &mut rng);
            let mut tape = Tape::new();
            let outs = model.forward(&mut tape, &store, &[batch(&cfg, 2, 3)]);
            assert_eq!(tape.value(outs[0]).shape(), &[2, OUTPUT_DIM]);
        }
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let cfg = tiny_config();
        let mut store = ParamStore::new();
        let mut rng = stream_rng(3, "g");
        let model = MmHandModel::new(&mut store, cfg.clone(), &mut rng);
        let mut tape = Tape::new();
        let outs = model.forward(&mut tape, &store, &[batch(&cfg, 2, 4), batch(&cfg, 2, 5)]);
        // Sum both step outputs into a scalar loss.
        let joined = tape.add(outs[0], outs[1]);
        let sq = tape.mul(joined, joined);
        let loss = tape.mean_all(sq);
        tape.backward(loss, &mut store);
        let mut dead = Vec::new();
        for id in store.ids() {
            let g = store.grad(id);
            if g.data().iter().all(|&x| x == 0.0) {
                let name = store.name(id).to_string();
                // The MLP head is unused when the LSTM is active.
                if !name.contains("mlp_head") {
                    dead.push(name);
                }
            }
        }
        assert!(dead.is_empty(), "parameters without gradient: {dead:?}");
    }

    #[test]
    fn attention_gates_modulate_output() {
        // Scaling one frame group must change the output more when frame
        // attention is enabled than it biases an identical-input model —
        // a smoke check that the gates are wired to the input grouping.
        let cfg = tiny_config();
        let mut store = ParamStore::new();
        let mut rng = stream_rng(4, "w");
        let model = MmHandModel::new(&mut store, cfg.clone(), &mut rng);
        let x1 = batch(&cfg, 1, 6);
        let mut x2 = x1.clone();
        // Zero out the second frame group.
        let per_group = x2.len() / cfg.frames_per_segment;
        for v in &mut x2.data_mut()[per_group..2 * per_group] {
            *v = 0.0;
        }
        let mut tape = Tape::new();
        let o1 = model.forward(&mut tape, &store, &[x1]);
        let mut tape2 = Tape::new();
        let o2 = model.forward(&mut tape2, &store, &[x2]);
        let d: f32 = tape
            .value(o1[0])
            .data()
            .iter()
            .zip(tape2.value(o2[0]).data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-4, "output insensitive to input change");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_sequence_panics() {
        let cfg = tiny_config();
        let mut store = ParamStore::new();
        let mut rng = stream_rng(5, "e");
        let model = MmHandModel::new(&mut store, cfg, &mut rng);
        let mut tape = Tape::new();
        model.forward(&mut tape, &store, &[]);
    }

    #[test]
    fn default_model_size_is_modest() {
        let mut store = ParamStore::new();
        let mut rng = stream_rng(6, "s");
        let _model = MmHandModel::new(&mut store, ModelConfig::default(), &mut rng);
        let n = store.scalar_count();
        // CPU-trainable budget: under a million parameters.
        assert!(n < 1_000_000, "parameter count {n}");
        assert!(n > 50_000, "suspiciously small model: {n}");
    }
}
