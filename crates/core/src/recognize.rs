//! Gesture recognition on top of regressed skeletons — the user-interface
//! application layer the paper's introduction motivates (interface control,
//! sign-language understanding).
//!
//! Classification is template-based and deliberately simple: the predicted
//! skeleton is converted to a translation/scale-invariant articulation
//! descriptor and matched to the gesture library's descriptors by nearest
//! neighbour. This keeps the recogniser independent of the regression
//! network (any skeleton source works) and fully deterministic.

use mmhand_hand::gesture::Gesture;
use mmhand_hand::shape::HandShape;
use mmhand_hand::skeleton::{Finger, JOINT_COUNT};
use mmhand_math::Vec3;

/// A translation/scale-invariant articulation descriptor.
///
/// Per finger: normalised tip-to-wrist extension, tip-to-palm-centre
/// distance, and total bend (straightness deficit) — 15 numbers that
/// separate the gesture library well while ignoring global pose.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoseDescriptor {
    values: [f32; 15],
}

impl PoseDescriptor {
    /// Builds the descriptor from 21 joint positions.
    pub fn from_joints(joints: &[Vec3; JOINT_COUNT]) -> Self {
        let wrist = joints[0];
        let palm_centre = (joints[Finger::Index.base()]
            + joints[Finger::Middle.base()]
            + joints[Finger::Pinky.base()]
            + wrist)
            / 4.0;
        // Scale normaliser: wrist → middle knuckle (palm length proxy).
        let scale = wrist.distance(joints[Finger::Middle.base()]).max(1e-6);
        let mut values = [0.0_f32; 15];
        for finger in Finger::ALL {
            let i = finger.index();
            let [a, b, c, d] = finger.joints();
            let tip = joints[d];
            values[3 * i] = wrist.distance(tip) / scale;
            values[3 * i + 1] = palm_centre.distance(tip) / scale;
            let chain = joints[a].distance(joints[b])
                + joints[b].distance(joints[c])
                + joints[c].distance(joints[d]);
            let direct = joints[a].distance(joints[d]).max(1e-6);
            values[3 * i + 2] = chain / direct - 1.0; // 0 = straight
        }
        PoseDescriptor { values }
    }

    /// Builds the descriptor from a flat 63-float skeleton.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != 63`.
    pub fn from_flat(flat: &[f32]) -> Self {
        assert_eq!(flat.len(), 63, "skeleton length");
        let mut joints = [Vec3::ZERO; JOINT_COUNT];
        for (j, slot) in joints.iter_mut().enumerate() {
            *slot = Vec3::new(flat[3 * j], flat[3 * j + 1], flat[3 * j + 2]);
        }
        PoseDescriptor::from_joints(&joints)
    }

    /// Euclidean distance between descriptors.
    pub fn distance(&self, other: &PoseDescriptor) -> f32 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }
}

/// A gesture classification result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recognition {
    /// The best-matching gesture.
    pub gesture: Gesture,
    /// Descriptor distance to that gesture's template (smaller = closer).
    pub distance: f32,
    /// Margin to the runner-up (larger = more confident).
    pub margin: f32,
}

/// A template-based gesture recogniser.
#[derive(Clone, Debug)]
pub struct GestureRecognizer {
    templates: Vec<(Gesture, PoseDescriptor)>,
}

impl Default for GestureRecognizer {
    fn default() -> Self {
        GestureRecognizer::new()
    }
}

impl GestureRecognizer {
    /// Builds templates for the full gesture library with the default
    /// hand shape (descriptors are scale-invariant, so one shape suffices).
    pub fn new() -> Self {
        GestureRecognizer::with_gestures(&Gesture::all())
    }

    /// Builds templates for a chosen gesture vocabulary.
    pub fn with_gestures(gestures: &[Gesture]) -> Self {
        let shape = HandShape::default();
        let templates = gestures
            .iter()
            .map(|&g| {
                let joints = g.pose().joints(&shape);
                (g, PoseDescriptor::from_joints(&joints))
            })
            .collect();
        GestureRecognizer { templates }
    }

    /// Number of gestures in the vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.templates.len()
    }

    /// Classifies a flat 63-float skeleton.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary is empty or the skeleton is not 63 floats.
    pub fn recognize(&self, skeleton: &[f32]) -> Recognition {
        assert!(!self.templates.is_empty(), "empty gesture vocabulary");
        let d = PoseDescriptor::from_flat(skeleton);
        let mut best: Option<(Gesture, f32)> = None;
        let mut second = f32::INFINITY;
        for (g, t) in &self.templates {
            let dist = d.distance(t);
            match best {
                None => best = Some((*g, dist)),
                Some((_, bd)) if dist < bd => {
                    second = bd;
                    best = Some((*g, dist));
                }
                Some(_) => second = second.min(dist),
            }
        }
        let (gesture, distance) = best.expect("non-empty vocabulary");
        Recognition { gesture, distance, margin: second - distance }
    }

    /// Classifies a sequence of skeletons by majority vote, breaking ties
    /// toward the smallest mean distance. Returns `None` for empty input.
    pub fn recognize_sequence(&self, skeletons: &[Vec<f32>]) -> Option<Recognition> {
        if skeletons.is_empty() {
            return None;
        }
        let recs: Vec<Recognition> =
            skeletons.iter().map(|s| self.recognize(s)).collect();
        // Majority vote by gesture name.
        let mut best: Option<(Gesture, usize, f32)> = None;
        for r in &recs {
            let votes = recs.iter().filter(|x| x.gesture == r.gesture).count();
            let mean_d = recs
                .iter()
                .filter(|x| x.gesture == r.gesture)
                .map(|x| x.distance)
                .sum::<f32>()
                / votes as f32;
            let better = match &best {
                None => true,
                Some((_, v, d)) => votes > *v || (votes == *v && mean_d < *d),
            };
            if better {
                best = Some((r.gesture, votes, mean_d));
            }
        }
        let (gesture, _, distance) = best?;
        Some(Recognition { gesture, distance, margin: 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::Quaternion;

    fn flat(gesture: Gesture, shape: &HandShape) -> Vec<f32> {
        gesture
            .pose()
            .joints(shape)
            .iter()
            .flat_map(|v| v.to_array())
            .collect()
    }

    #[test]
    fn recognises_every_library_gesture_exactly() {
        let rec = GestureRecognizer::new();
        let shape = HandShape::default();
        // Count(0) and Fist are the same articulation by construction —
        // they are semantic aliases, so either answer is correct for both.
        let aliases = |a: Gesture, b: Gesture| {
            (a == Gesture::Fist && b == Gesture::Count(0))
                || (a == Gesture::Count(0) && b == Gesture::Fist)
        };
        for g in Gesture::all() {
            let r = rec.recognize(&flat(g, &shape));
            assert!(
                r.gesture == g || aliases(r.gesture, g),
                "misclassified {g:?} as {:?}",
                r.gesture
            );
            assert!(r.distance < 1e-4);
        }
    }

    #[test]
    fn invariant_to_translation_rotation_and_hand_size() {
        let rec = GestureRecognizer::new();
        let big = HandShape::from_beta(&[2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let mut pose = Gesture::Victory.pose();
        pose.position = Vec3::new(0.2, 0.5, -0.1);
        pose.orientation = Quaternion::from_axis_angle(Vec3::new(1.0, 0.5, 0.2), 0.7);
        let skeleton: Vec<f32> =
            pose.joints(&big).iter().flat_map(|v| v.to_array()).collect();
        let r = rec.recognize(&skeleton);
        assert_eq!(r.gesture, Gesture::Victory);
    }

    #[test]
    fn tolerates_moderate_joint_noise() {
        use mmhand_math::rng::{normal, stream_rng};
        let rec = GestureRecognizer::with_gestures(&[
            Gesture::OpenPalm,
            Gesture::Fist,
            Gesture::Point,
        ]);
        let shape = HandShape::default();
        let mut rng = stream_rng(4, "noise");
        let mut correct = 0;
        let trials = 30;
        for k in 0..trials {
            let g = [Gesture::OpenPalm, Gesture::Fist, Gesture::Point][k % 3];
            let mut s = flat(g, &shape);
            for v in &mut s {
                *v += normal(&mut rng, 0.0, 0.008); // 8 mm joint noise
            }
            if rec.recognize(&s).gesture == g {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / trials as f32 > 0.8,
            "only {correct}/{trials} correct under noise"
        );
    }

    #[test]
    fn sequence_vote_smooths_outliers() {
        let rec = GestureRecognizer::with_gestures(&[Gesture::OpenPalm, Gesture::Fist]);
        let shape = HandShape::default();
        let mut frames = vec![flat(Gesture::Fist, &shape); 4];
        frames.push(flat(Gesture::OpenPalm, &shape)); // one outlier
        let r = rec.recognize_sequence(&frames).unwrap();
        assert_eq!(r.gesture, Gesture::Fist);
        assert!(rec.recognize_sequence(&[]).is_none());
    }

    #[test]
    fn margin_reflects_ambiguity() {
        let rec = GestureRecognizer::new();
        let shape = HandShape::default();
        // count_2 and victory are intentionally similar gestures.
        let clear = rec.recognize(&flat(Gesture::Fist, &shape));
        let ambiguous = rec.recognize(&flat(Gesture::Victory, &shape));
        assert!(clear.margin >= 0.0 && ambiguous.margin >= 0.0);
    }

    #[test]
    #[should_panic(expected = "skeleton length")]
    fn wrong_length_panics() {
        GestureRecognizer::new().recognize(&[0.0; 10]);
    }
}
