//! Radar-cube construction: the paper's signal pre-processing (§III).
//!
//! One [`RawFrame`] of IF samples becomes one slice of the *Radar Cube*
//! `RC ∈ R^{F×V×D×A}` through:
//!
//! 1. an 8th-order Butterworth band-pass that keeps only beat frequencies
//!    of the hand's range band (removing body/furniture clutter),
//! 2. a windowed **range-FFT** per chirp, cropped to `D` bins covering the
//!    hand band,
//! 3. a windowed **Doppler-FFT** across each TX's chirps, cropped to the
//!    central `V` velocity bins (hand motion is slow),
//! 4. a **zoom-FFT angle transform** (±30°, refinement factor 2) over the
//!    virtual array: 8 azimuth bins from the 8-element ULA and 8 elevation
//!    bins from the elevated row, concatenated into `A = 16` angle bins.
//!
//! The elevation spectrum uses the IWR1443's single elevated TX row, so its
//! angular resolution is inherently coarse — true of the physical device as
//! well.

use crate::error::PipelineError;
use mmhand_dsp::error::DspError;
use mmhand_dsp::fft::{fft_shift_inplace, plan, FftPlan};
use mmhand_dsp::filter::{BandpassFilter, ButterworthDesign};
use mmhand_dsp::window::Window;
use mmhand_dsp::zoom::{zoom_plan, ZoomPlan};
use mmhand_math::Complex;
use mmhand_nn::Tensor;
use mmhand_radar::{ChirpConfig, RawFrame, VirtualArray};
use std::sync::{Arc, OnceLock};

thread_local! {
    /// Per-worker complex working buffers for cube assembly: the
    /// range/Doppler FFT buffers, the intermediate `rd`/`vd` planes and the
    /// angle spectra all check out of this pool, so steady-state frame
    /// processing allocates nothing.
    static CUBE_POOL: mmhand_parallel::ScratchPool<Complex> =
        const { mmhand_parallel::ScratchPool::new("core.cube") };
    /// Real-valued scratch for the band-pass filter's plane deinterleave.
    static CUBE_F32_POOL: mmhand_parallel::ScratchPool<f32> =
        const { mmhand_parallel::ScratchPool::new("core.cube.f32") };
}

/// Frames fully processed into cube slices, across all builders — the
/// denominator for the bench harness's per-frame allocation budget.
fn frames_processed() -> &'static mmhand_telemetry::Counter {
    static COUNTER: OnceLock<mmhand_telemetry::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| mmhand_telemetry::counter("core.frames_processed"))
}

/// Cube geometry and band parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct CubeConfig {
    /// Radar parameters the frames were captured with.
    pub chirp: ChirpConfig,
    /// Number of range bins `D` kept (covering the hand band).
    pub range_bins: usize,
    /// Number of Doppler bins `V` kept (central bins).
    pub doppler_bins: usize,
    /// Azimuth bins (half of `A`).
    pub azimuth_bins: usize,
    /// Elevation bins (other half of `A`).
    pub elevation_bins: usize,
    /// Near edge of the hand band in metres.
    pub range_min_m: f64,
    /// Far edge of the hand band in metres.
    pub range_max_m: f64,
    /// Angular field of view (± this angle), radians.
    pub max_angle_rad: f32,
    /// Frames per segment `st`.
    pub frames_per_segment: usize,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            chirp: ChirpConfig::default(),
            range_bins: 16,
            doppler_bins: 8,
            azimuth_bins: 8,
            elevation_bins: 8,
            range_min_m: 0.12,
            range_max_m: 0.85,
            max_angle_rad: mmhand_math::deg_to_rad(30.0),
            frames_per_segment: 4,
        }
    }
}

impl CubeConfig {
    /// Total angle bins `A` (azimuth ⊕ elevation).
    pub fn angle_bins(&self) -> usize {
        self.azimuth_bins + self.elevation_bins
    }

    /// Channels of one segment tensor: `st · V`.
    pub fn segment_channels(&self) -> usize {
        self.frames_per_segment * self.doppler_bins
    }

    /// Shape of one frame's cube slice `(V, D, A)`.
    pub fn frame_shape(&self) -> [usize; 3] {
        [self.doppler_bins, self.range_bins, self.angle_bins()]
    }

    /// First kept range-FFT bin.
    fn range_bin_offset(&self) -> usize {
        let res = self.chirp.range_resolution_m();
        (self.range_min_m / res).floor() as usize
    }

    /// Centre range (metres) of kept range bin `d`.
    pub fn range_of_bin(&self, d: usize) -> f64 {
        (self.range_bin_offset() + d) as f64 * self.chirp.range_resolution_m()
    }

    /// Designs the hand-isolation band-pass filter for this band.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Dsp`] when the configured band cannot
    /// produce a stable 8th-order design (validated configurations never
    /// fail).
    pub fn try_design_bandpass(&self) -> Result<BandpassFilter, PipelineError> {
        let filter = ButterworthDesign {
            order: 8,
            low_hz: self.chirp.beat_frequency_hz(self.range_min_m),
            high_hz: self.chirp.beat_frequency_hz(self.range_max_m),
            sample_rate_hz: self.chirp.sample_rate_hz(),
        }
        .design()
        .map_err(DspError::from)?;
        Ok(filter)
    }

    /// Infallible wrapper over [`CubeConfig::try_design_bandpass`].
    ///
    /// # Panics
    ///
    /// Panics if the configured band cannot produce a stable 8th-order
    /// design (validated configurations never do).
    pub fn design_bandpass(&self) -> BandpassFilter {
        self.try_design_bandpass()
            .expect("hand-band Butterworth design must be valid")
    }

    /// Validates geometry against the chirp configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed error for the first violated constraint: a wrapped
    /// [`mmhand_radar::RadarError`] for chirp-level problems, or a
    /// [`PipelineError::InvalidConfig`] naming the cube field otherwise.
    pub fn validate(&self) -> Result<(), PipelineError> {
        self.chirp.validate()?;
        let invalid = |field: &'static str, reason: &str| {
            Err(PipelineError::InvalidConfig { field, reason: reason.to_string() })
        };
        if self.doppler_bins > self.chirp.chirps_per_tx {
            return invalid("doppler_bins", "exceeds chirps per TX");
        }
        let max_bin = self.range_bin_offset() + self.range_bins;
        if max_bin > self.chirp.samples_per_chirp / 2 {
            return invalid("range_bins", "range band exceeds unambiguous range");
        }
        if self.range_min_m >= self.range_max_m {
            return invalid("range_min_m", "range_min must be below range_max");
        }
        if self.azimuth_bins == 0 {
            return invalid("azimuth_bins", "angle transforms need at least one bin");
        }
        if self.elevation_bins == 0 {
            return invalid("elevation_bins", "angle transforms need at least one bin");
        }
        let nyquist = self.chirp.sample_rate_hz() / 2.0;
        if self.chirp.beat_frequency_hz(self.range_max_m) >= nyquist {
            return invalid("range_max_m", "range_max beat frequency exceeds Nyquist");
        }
        Ok(())
    }
}

/// One frame's slice of the radar cube: magnitudes `(V, D, A)`.
#[derive(Clone, Debug)]
pub struct CubeFrame {
    /// Magnitude data, row-major `(V, D, A)`.
    pub data: Vec<f32>,
    /// Shape `(V, D, A)`.
    pub shape: [usize; 3],
}

impl CubeFrame {
    /// Value at `(v, d, a)`.
    pub fn at(&self, v: usize, d: usize, a: usize) -> f32 {
        let [_, dd, aa] = self.shape;
        self.data[(v * dd + d) * aa + a]
    }

    /// The range profile summed over velocity and angle (for diagnostics).
    pub fn range_profile(&self) -> Vec<f32> {
        let [vv, dd, aa] = self.shape;
        let mut out = vec![0.0; dd];
        for v in 0..vv {
            for (d, slot) in out.iter_mut().enumerate() {
                for a in 0..aa {
                    *slot += self.at(v, d, a);
                }
            }
        }
        out
    }
}

/// Builds radar cubes from raw frames.
#[derive(Clone, Debug)]
pub struct CubeBuilder {
    config: CubeConfig,
    array: VirtualArray,
    bandpass: BandpassFilter,
    /// Range-FFT plan (`samples_per_chirp` points), held so the per-frame
    /// path never touches the global plan-cache lock.
    range_plan: Arc<FftPlan>,
    /// Doppler-FFT plan (`chirps_per_tx` points).
    doppler_plan: Arc<FftPlan>,
    /// Azimuth zoom-DFT steering table over the ULA row.
    az_plan: Arc<ZoomPlan>,
    /// Elevation zoom-DFT steering table over the 2-element interferometer.
    el_plan: Arc<ZoomPlan>,
    /// Virtual-antenna index → `(tx, rx)` pair, so stage 1 can partition
    /// its output by antenna chunk without rebuilding the map per frame.
    pairs: Vec<(usize, usize)>,
    /// Name of the kernel backend selected at construction (`"scalar"` /
    /// `"simd"`): forcing selection here keeps the backend log line and
    /// gauge out of the per-frame path.
    kernel_backend: &'static str,
}

impl CubeBuilder {
    /// Creates a builder (designs the band-pass filter, FFT plans and
    /// zoom-DFT steering tables once).
    ///
    /// # Errors
    ///
    /// Returns the first configuration or filter-design violation.
    pub fn try_new(config: CubeConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        let array = VirtualArray::new(&config.chirp);
        let bandpass = config.try_design_bandpass()?;
        // validate() has checked samples/chirps are powers of two and both
        // bin counts are positive, so plan construction cannot panic here.
        let range_plan = plan(config.chirp.samples_per_chirp);
        let doppler_plan = plan(config.chirp.chirps_per_tx);
        let f_max = config.max_angle_rad.sin() * 0.5;
        let az_plan = zoom_plan(array.azimuth_row().len(), -f_max, f_max, config.azimuth_bins);
        let el_plan = zoom_plan(2, -f_max, f_max, config.elevation_bins);
        let mut pairs = vec![(0usize, 0usize); config.chirp.virtual_antenna_count()];
        for tx in 0..config.chirp.tx_count {
            for rx in 0..config.chirp.rx_count {
                pairs[array.element_index(tx, rx)] = (tx, rx);
            }
        }
        let kernel_backend = mmhand_kernels::backend_name();
        Ok(CubeBuilder {
            config,
            array,
            bandpass,
            range_plan,
            doppler_plan,
            az_plan,
            el_plan,
            pairs,
            kernel_backend,
        })
    }

    /// Infallible wrapper over [`CubeBuilder::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    pub fn new(config: CubeConfig) -> Self {
        Self::try_new(config).expect("invalid cube configuration")
    }

    /// The configuration this builder was created with.
    pub fn config(&self) -> &CubeConfig {
        &self.config
    }

    /// Name of the process-wide kernel backend (`"scalar"` / `"simd"`)
    /// driving this builder's FFT and filter inner loops.
    pub fn kernel_backend(&self) -> &'static str {
        self.kernel_backend
    }

    /// Processes one raw frame into a cube slice, rejecting frames whose
    /// geometry does not match the builder's configuration.
    ///
    /// All three stages fan out across the `mmhand-parallel` pool: stage 1
    /// per virtual antenna (each task owns a private band-pass clone —
    /// `filter_complex` resets its state per call, so a clone is
    /// equivalent), stage 2 per virtual antenna, stage 3 per velocity bin.
    /// Every output cell is written by exactly one task, so the cube is
    /// identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Radar`] when the frame's antenna counts,
    /// chirp count, or samples per chirp disagree with the configuration.
    pub fn try_process_frame(&self, frame: &RawFrame) -> Result<CubeFrame, PipelineError> {
        self.config.chirp.validate_frame(frame)?;
        Ok(self.process_frame_validated(frame))
    }

    /// Infallible wrapper over [`CubeBuilder::try_process_frame`].
    ///
    /// # Panics
    ///
    /// Panics if the frame's geometry does not match the configuration.
    pub fn process_frame(&self, frame: &RawFrame) -> CubeFrame {
        self.try_process_frame(frame)
            .expect("frame geometry must match the cube configuration")
    }

    /// The processing body; callers have already validated frame geometry.
    ///
    /// Every intermediate buffer — the `rd`/`vd` planes, the per-chirp FFT
    /// buffer, the filter scratch and the angle spectra — checks out of the
    /// per-worker scratch pools, so a steady-state frame allocates only its
    /// own output. Pooled checkouts come back zero-filled and the FFT plans
    /// / steering tables replay the reference arithmetic exactly, so the
    /// cube is bitwise identical to the allocating ancestor of this code at
    /// any thread count.
    fn process_frame_validated(&self, frame: &RawFrame) -> CubeFrame {
        let cfg = &self.config;
        let n_va = cfg.chirp.virtual_antenna_count();
        let chirps = cfg.chirp.chirps_per_tx;
        let samples = cfg.chirp.samples_per_chirp;
        let d_off = cfg.range_bin_offset();
        let d_bins = cfg.range_bins;
        let v_bins = cfg.doppler_bins;
        let v_off = (chirps - v_bins) / 2;
        let az_row = self.array.azimuth_row();
        let el_row = self.array.elevated_row();
        let az_overlap = self.array.azimuth_overlap();
        let [_, dd, aa] = cfg.frame_shape();
        let mut out = vec![0.0_f32; v_bins * dd * aa];

        CUBE_POOL.with(|pool| {
            pool.with(n_va * chirps * d_bins, |rd| {
                // Range-FFT per (virtual antenna, chirp), band-pass-filtered.
                // rd[va][chirp][d]
                mmhand_parallel::par_chunks_mut(rd, chirps * d_bins, |va, rd_va| {
                    let (tx, rx) = self.pairs[va];
                    let mut bandpass = self.bandpass.clone();
                    CUBE_POOL.with(|wp| {
                        wp.with(samples, |buf| {
                            CUBE_F32_POOL.with(|fp| {
                                fp.with(2 * samples, |scratch| {
                                    for chirp in 0..chirps {
                                        bandpass.filter_complex_into(
                                            frame.chirp_samples(tx, rx, chirp),
                                            scratch,
                                            buf,
                                        );
                                        Window::Hann.apply_inplace(buf);
                                        self.range_plan.forward(buf);
                                        rd_va[chirp * d_bins..(chirp + 1) * d_bins]
                                            .copy_from_slice(&buf[d_off..d_off + d_bins]);
                                    }
                                })
                            })
                        })
                    });
                });

                // Doppler-FFT per (virtual antenna, range bin), keep the
                // central V bins. vd[va][v][d]
                pool.with(n_va * v_bins * d_bins, |vd| {
                    mmhand_parallel::par_chunks_mut(vd, v_bins * d_bins, |va, vd_va| {
                        CUBE_POOL.with(|wp| {
                            wp.with(chirps, |buf| {
                                for d in 0..d_bins {
                                    for chirp in 0..chirps {
                                        buf[chirp] = rd[(va * chirps + chirp) * d_bins + d];
                                    }
                                    Window::Hann.apply_inplace(buf);
                                    self.doppler_plan.forward(buf);
                                    fft_shift_inplace(buf);
                                    for v in 0..v_bins {
                                        vd_va[v * d_bins + d] = buf[v_off + v];
                                    }
                                }
                            })
                        });
                    });

                    // Angle spectra per (v, d) cell, one task per velocity
                    // bin.
                    mmhand_parallel::par_chunks_mut(&mut out, dd * aa, |v, out_v| {
                        CUBE_POOL.with(|wp| {
                            wp.with(az_row.len(), |az_elements| {
                                wp.with(cfg.azimuth_bins.max(cfg.elevation_bins), |spec| {
                                    for d in 0..d_bins {
                                        // Azimuth: zoom-DFT over the
                                        // 8-element ULA.
                                        for (k, &e) in az_row.iter().enumerate() {
                                            az_elements[k] =
                                                vd[(e * v_bins + v) * d_bins + d];
                                        }
                                        self.az_plan.evaluate_into(az_elements, spec);
                                        let base = d * aa;
                                        for (a, s) in spec.iter().enumerate() {
                                            out_v[base + a] = s.abs();
                                        }
                                        // Elevation: 2-element vertical
                                        // interferometer formed by the summed
                                        // overlapping columns of the z = 0
                                        // and z = λ/2 rows.
                                        let mut bottom = Complex::ZERO;
                                        let mut top = Complex::ZERO;
                                        for (&et, &eb) in el_row.iter().zip(az_overlap) {
                                            top += vd[(et * v_bins + v) * d_bins + d];
                                            bottom += vd[(eb * v_bins + v) * d_bins + d];
                                        }
                                        self.el_plan.evaluate_into(&[bottom, top], spec);
                                        for (a, s) in spec.iter().enumerate() {
                                            out_v[base + cfg.azimuth_bins + a] =
                                                s.abs() / el_row.len() as f32;
                                        }
                                    }
                                })
                            })
                        });
                    });
                });
            });
        });

        frames_processed().inc();
        CubeFrame { data: out, shape: cfg.frame_shape() }
    }

    /// Stacks `st` consecutive cube frames into one segment tensor of shape
    /// `(st·V, D, A)`, normalised to zero mean / unit variance (plus an
    /// epsilon so an all-zero segment stays zero).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::SegmentSize`] when `frames.len() != st`
    /// (including the empty-window case) and [`PipelineError::CubeShape`]
    /// when any frame's shape disagrees with the configured geometry.
    pub fn try_segment_tensor(&self, frames: &[CubeFrame]) -> Result<Tensor, PipelineError> {
        let cfg = &self.config;
        if frames.len() != cfg.frames_per_segment {
            return Err(PipelineError::SegmentSize {
                expected: cfg.frames_per_segment,
                got: frames.len(),
            });
        }
        let [v, d, a] = cfg.frame_shape();
        let mut data = Vec::with_capacity(frames.len() * v * d * a);
        for f in frames {
            if f.shape != cfg.frame_shape() {
                return Err(PipelineError::CubeShape {
                    expected: cfg.frame_shape(),
                    got: f.shape,
                });
            }
            data.extend_from_slice(&f.data);
        }
        Ok(self.standardise_segment(data))
    }

    /// Infallible wrapper over [`CubeBuilder::try_segment_tensor`].
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != st` or shapes disagree.
    pub fn segment_tensor(&self, frames: &[CubeFrame]) -> Tensor {
        self.try_segment_tensor(frames)
            .expect("frames per segment and cube shapes must match the configuration")
    }

    fn standardise_segment(&self, mut data: Vec<f32>) -> Tensor {
        let cfg = &self.config;
        let [_, d, a] = cfg.frame_shape();
        // Standardise: radar magnitudes vary by orders of magnitude with
        // range; the network wants a stable input scale.
        let n = data.len() as f32;
        let mean = data.iter().sum::<f32>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        let rstd = 1.0 / (var + 1e-12).sqrt();
        for x in &mut data {
            *x = (*x - mean) * rstd;
        }
        Tensor::from_vec(&[cfg.segment_channels(), d, a], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::stream_rng;
    use mmhand_math::Vec3;
    use mmhand_radar::scene::PointTarget;
    use mmhand_radar::synth::synthesize_frame;
    use mmhand_radar::Scene;

    fn builder() -> CubeBuilder {
        CubeBuilder::new(CubeConfig::default())
    }

    fn frame_for_targets(targets: Vec<PointTarget>, noise: f32, seed: u64) -> RawFrame {
        let cfg = ChirpConfig::default();
        let array = VirtualArray::new(&cfg);
        let mut scene = Scene::new(noise);
        scene.add_targets(targets);
        let mut rng = stream_rng(seed, "cube-test");
        synthesize_frame(&cfg, &array, &scene, &mut rng)
    }

    fn argmax3(c: &CubeFrame) -> (usize, usize, usize) {
        let [v, d, a] = c.shape;
        let mut best = (0, 0, 0);
        let mut val = f32::NEG_INFINITY;
        for iv in 0..v {
            for id in 0..d {
                for ia in 0..a {
                    if c.at(iv, id, ia) > val {
                        val = c.at(iv, id, ia);
                        best = (iv, id, ia);
                    }
                }
            }
        }
        best
    }

    #[test]
    fn default_config_is_valid() {
        CubeConfig::default().validate().unwrap();
        assert_eq!(CubeConfig::default().angle_bins(), 16);
        assert_eq!(CubeConfig::default().segment_channels(), 32);
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = CubeConfig::default();
        assert!(CubeConfig { doppler_bins: 64, ..base.clone() }.validate().is_err());
        assert!(CubeConfig { range_bins: 64, ..base.clone() }.validate().is_err());
        assert!(
            CubeConfig { range_min_m: 0.9, ..base.clone() }.validate().is_err()
        );
    }

    #[test]
    fn hand_range_target_peaks_at_expected_range_bin() {
        let b = builder();
        let range = 0.35_f32;
        let frame = frame_for_targets(
            vec![PointTarget::fixed(Vec3::new(0.0, range, 0.0), 1.0)],
            0.0,
            1,
        );
        let cube = b.process_frame(&frame);
        let (_, d, _) = argmax3(&cube);
        let expected = ((range as f64 - b.config().range_min_m)
            / b.config().chirp.range_resolution_m())
        .round() as usize;
        assert!(
            d.abs_diff(expected) <= 1,
            "peak at range bin {d}, expected ≈{expected}"
        );
    }

    #[test]
    fn static_target_sits_in_central_doppler_bin() {
        let b = builder();
        let frame = frame_for_targets(
            vec![PointTarget::fixed(Vec3::new(0.0, 0.3, 0.0), 1.0)],
            0.0,
            2,
        );
        let cube = b.process_frame(&frame);
        let (v, _, _) = argmax3(&cube);
        assert_eq!(v, b.config().doppler_bins / 2);
    }

    #[test]
    fn angled_target_moves_azimuth_peak() {
        let b = builder();
        let theta = mmhand_math::deg_to_rad(20.0);
        let frame = frame_for_targets(
            vec![PointTarget::fixed(
                Vec3::new(0.35 * theta.sin(), 0.35 * theta.cos(), 0.0),
                1.0,
            )],
            0.0,
            3,
        );
        let cube = b.process_frame(&frame);
        let (_, _, a) = argmax3(&cube);
        // +20° of a ±30° span over 8 bins → bin ≈ 6–7.
        assert!(a < b.config().azimuth_bins, "peak in azimuth half");
        assert!(a >= 5, "azimuth bin {a} for +20° target");
    }

    #[test]
    fn distant_clutter_is_suppressed_by_bandpass() {
        let b = builder();
        // Strong target far outside the hand band (2 m).
        let frame = frame_for_targets(
            vec![
                PointTarget::fixed(Vec3::new(0.0, 0.3, 0.0), 1.0),
                PointTarget::fixed(Vec3::new(0.0, 2.0, 0.0), 50.0),
            ],
            0.0,
            4,
        );
        let cube = b.process_frame(&frame);
        let profile = cube.range_profile();
        // The hand bin must dominate the kept band despite far clutter being
        // 50× stronger in RCS.
        let hand_bin = ((0.3 - b.config().range_min_m)
            / b.config().chirp.range_resolution_m())
        .round() as usize;
        let max_bin = (0..profile.len())
            .max_by(|&x, &y| profile[x].total_cmp(&profile[y]))
            .unwrap();
        assert!(
            max_bin.abs_diff(hand_bin) <= 1,
            "profile peak {max_bin} expected {hand_bin}: {profile:?}"
        );
    }

    #[test]
    fn segment_tensor_is_standardised() {
        let b = builder();
        let frames: Vec<CubeFrame> = (0..4)
            .map(|i| {
                let f = frame_for_targets(
                    vec![PointTarget::fixed(Vec3::new(0.0, 0.3, 0.0), 1.0)],
                    0.01,
                    10 + i,
                );
                b.process_frame(&f)
            })
            .collect();
        let t = b.segment_tensor(&frames);
        assert_eq!(t.shape(), &[32, 16, 16]);
        assert!(t.mean().abs() < 1e-4);
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "frames per segment")]
    fn segment_tensor_checks_count() {
        let b = builder();
        b.segment_tensor(&[]);
    }

    #[test]
    fn try_segment_tensor_rejects_empty_window_with_typed_error() {
        let b = builder();
        match b.try_segment_tensor(&[]) {
            Err(PipelineError::SegmentSize { expected, got }) => {
                assert_eq!(expected, 4);
                assert_eq!(got, 0);
            }
            other => panic!("expected SegmentSize, got {other:?}"),
        }
    }

    #[test]
    fn try_segment_tensor_rejects_wrong_cube_shape() {
        let b = builder();
        let bad = CubeFrame { data: vec![0.0; 8], shape: [2, 2, 2] };
        let frames = vec![bad.clone(), bad.clone(), bad.clone(), bad];
        assert!(matches!(
            b.try_segment_tensor(&frames),
            Err(PipelineError::CubeShape { .. })
        ));
    }

    #[test]
    fn try_new_rejects_invalid_config_with_typed_error() {
        let bad =
            CubeConfig { range_min_m: 0.3, range_max_m: 0.3, ..CubeConfig::default() };
        assert!(matches!(
            CubeBuilder::try_new(bad),
            Err(PipelineError::InvalidConfig { field: "range_min_m", .. })
        ));
        let bad_chirp = CubeConfig {
            chirp: mmhand_radar::ChirpConfig { tx_count: 0, ..Default::default() },
            ..CubeConfig::default()
        };
        assert!(matches!(
            CubeBuilder::try_new(bad_chirp),
            Err(PipelineError::Radar(_))
        ));
    }

    #[test]
    fn try_process_frame_rejects_mismatched_geometry() {
        let b = builder();
        let small = ChirpConfig { samples_per_chirp: 32, ..ChirpConfig::default() };
        let frame = RawFrame::zeroed(&small);
        match b.try_process_frame(&frame) {
            Err(PipelineError::Radar(mmhand_radar::RadarError::FrameGeometry {
                axis,
                expected,
                got,
            })) => {
                assert_eq!(axis, "samples_per_chirp");
                assert_eq!((expected, got), (64, 32));
            }
            other => panic!("expected FrameGeometry, got {other:?}"),
        }
    }

    #[test]
    fn all_zero_frame_yields_finite_zero_cube() {
        // Failure injection: a dead front end (all-zero ADC) must not
        // produce NaNs anywhere downstream.
        let b = builder();
        let frame = RawFrame::zeroed(&b.config().chirp.clone());
        let cube = b.process_frame(&frame);
        assert!(cube.data.iter().all(|v| v.is_finite()));
        assert!(cube.data.iter().all(|&v| v.abs() < 1e-6));
        // Standardisation of an all-zero segment stays zero (epsilon guard).
        let frames = vec![cube.clone(), cube.clone(), cube.clone(), cube];
        let t = b.segment_tensor(&frames);
        assert!(!t.has_non_finite());
        assert!(t.data().iter().all(|&v| v.abs() < 1e-3));
    }

    #[test]
    fn saturated_adc_stays_finite() {
        // Clipped/saturated input (every sample at a large constant) is
        // pathological but must stay numerically safe.
        let b = builder();
        let cfg = b.config().chirp;
        let mut frame = RawFrame::zeroed(&cfg);
        for tx in 0..cfg.tx_count {
            for rx in 0..cfg.rx_count {
                for chirp in 0..cfg.chirps_per_tx {
                    for s in frame.chirp_samples_mut(tx, rx, chirp) {
                        *s = mmhand_math::Complex::new(1e4, -1e4);
                    }
                }
            }
        }
        let cube = b.process_frame(&frame);
        assert!(cube.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn range_of_bin_round_trips() {
        let cfg = CubeConfig::default();
        let r = cfg.range_of_bin(4);
        assert!(r > cfg.range_min_m - cfg.chirp.range_resolution_m());
        assert!(r < cfg.range_max_m);
    }
}
