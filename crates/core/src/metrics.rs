//! Evaluation metrics (paper §VI-A): MPJPE, 3D-PCK, AUC, and error CDFs,
//! with the palm/fingers split used throughout the evaluation figures.

use mmhand_hand::skeleton::{is_palm_joint, JOINT_COUNT};
use mmhand_math::stats;
use mmhand_math::Vec3;

/// Joint subset selector for the palm/fingers breakdowns (Figs. 14, 16–17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum JointGroup {
    /// All 21 joints.
    #[default]
    Overall,
    /// Wrist + the five knuckles.
    Palm,
    /// The remaining 15 finger joints.
    Fingers,
}

impl JointGroup {
    /// The three groups reported in the paper.
    pub const ALL: [JointGroup; 3] = [JointGroup::Palm, JointGroup::Fingers, JointGroup::Overall];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JointGroup::Overall => "overall",
            JointGroup::Palm => "palm",
            JointGroup::Fingers => "fingers",
        }
    }

    /// Whether joint `j` belongs to the group.
    pub fn contains(self, j: usize) -> bool {
        match self {
            JointGroup::Overall => true,
            JointGroup::Palm => is_palm_joint(j),
            JointGroup::Fingers => !is_palm_joint(j),
        }
    }
}

/// Per-joint Euclidean errors of a prediction set, in millimetres.
#[derive(Clone, Debug, Default)]
pub struct JointErrors {
    /// One entry per (frame, joint): `(joint_index, error_mm)`.
    errors: Vec<(usize, f32)>,
}

impl JointErrors {
    /// Creates an empty collection.
    pub fn new() -> Self {
        JointErrors::default()
    }

    /// Number of accumulated (frame, joint) samples.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// `true` when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Adds one frame's prediction/truth pair (21 joints, metres).
    pub fn push_frame(&mut self, pred: &[Vec3; JOINT_COUNT], truth: &[Vec3; JOINT_COUNT]) {
        for j in 0..JOINT_COUNT {
            self.errors.push((j, pred[j].distance(truth[j]) * 1000.0));
        }
    }

    /// Adds a frame given flat 63-float buffers (metres).
    ///
    /// # Panics
    ///
    /// Panics if either slice is not 63 long.
    pub fn push_flat(&mut self, pred: &[f32], truth: &[f32]) {
        assert_eq!(pred.len(), 63, "pred length");
        assert_eq!(truth.len(), 63, "truth length");
        mmhand_nn::sanitize::check_finite("metrics prediction input", pred);
        mmhand_nn::sanitize::check_finite("metrics truth input", truth);
        for j in 0..JOINT_COUNT {
            let p = Vec3::new(pred[3 * j], pred[3 * j + 1], pred[3 * j + 2]);
            let t = Vec3::new(truth[3 * j], truth[3 * j + 1], truth[3 * j + 2]);
            self.errors.push((j, p.distance(t) * 1000.0));
        }
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &JointErrors) {
        self.errors.extend_from_slice(&other.errors);
    }

    /// Adds one raw `(joint, error_mm)` sample — used when deserialising
    /// cached experiment results.
    ///
    /// # Panics
    ///
    /// Panics if `joint >= 21`.
    pub fn push_error(&mut self, joint: usize, error_mm: f32) {
        assert!(joint < JOINT_COUNT, "joint index {joint}");
        self.errors.push((joint, error_mm));
    }

    /// Iterates the raw `(joint, error_mm)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.errors.iter().copied()
    }

    fn group_errors(&self, group: JointGroup) -> Vec<f32> {
        self.errors
            .iter()
            .filter(|(j, _)| group.contains(*j))
            .map(|&(_, e)| e)
            .collect()
    }

    /// Mean per-joint position error in millimetres (Eq. 12).
    pub fn mpjpe(&self, group: JointGroup) -> f32 {
        stats::mean(&self.group_errors(group))
    }

    /// Standard deviation of the per-joint errors, millimetres.
    pub fn std_dev(&self, group: JointGroup) -> f32 {
        stats::std_dev(&self.group_errors(group))
    }

    /// 3D-PCK at `threshold_mm` (Eq. 13, scale factor `d = 1`): the
    /// fraction of joints with error below the threshold.
    pub fn pck(&self, group: JointGroup, threshold_mm: f32) -> f32 {
        let errs = self.group_errors(group);
        stats::fraction_below(&errs, threshold_mm)
    }

    /// The PCK curve over thresholds `0..=max_mm` in `step_mm` increments
    /// (paper Fig. 14 sweeps 0–60 mm).
    pub fn pck_curve(&self, group: JointGroup, max_mm: f32, step_mm: f32) -> Vec<(f32, f32)> {
        let errs = self.group_errors(group);
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= max_mm + 1e-6 {
            out.push((t, stats::fraction_below(&errs, t)));
            t += step_mm;
        }
        out
    }

    /// Area under the PCK curve, normalised to `[0, 1]` (paper Fig. 14).
    pub fn auc(&self, group: JointGroup, max_mm: f32) -> f32 {
        stats::normalized_auc(&self.pck_curve(group, max_mm, 1.0))
    }

    /// Empirical CDF points of the joint errors (paper Fig. 15).
    pub fn error_cdf(&self, group: JointGroup) -> Vec<stats::CdfPoint> {
        stats::empirical_cdf(&self.group_errors(group))
    }

    /// Percentile of the error distribution in millimetres.
    pub fn percentile(&self, group: JointGroup, p: f32) -> f32 {
        stats::percentile(&self.group_errors(group), p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_frame(err_m: f32) -> ([Vec3; 21], [Vec3; 21]) {
        let truth = [Vec3::ZERO; 21];
        let pred = [Vec3::new(err_m, 0.0, 0.0); 21];
        (pred, truth)
    }

    #[test]
    fn mpjpe_of_uniform_error() {
        let mut je = JointErrors::new();
        let (p, t) = uniform_frame(0.0183);
        je.push_frame(&p, &t);
        assert!((je.mpjpe(JointGroup::Overall) - 18.3).abs() < 1e-3);
        assert_eq!(je.len(), 21);
    }

    #[test]
    fn pck_thresholds() {
        let mut je = JointErrors::new();
        let (p, t) = uniform_frame(0.030);
        je.push_frame(&p, &t);
        assert_eq!(je.pck(JointGroup::Overall, 40.0), 1.0);
        assert_eq!(je.pck(JointGroup::Overall, 20.0), 0.0);
    }

    #[test]
    fn groups_partition_joints() {
        let mut je = JointErrors::new();
        let mut truth = [Vec3::ZERO; 21];
        let mut pred = [Vec3::ZERO; 21];
        // Palm joints perfect, finger joints off by 50 mm.
        for (j, (p, t)) in pred.iter_mut().zip(truth.iter_mut()).enumerate() {
            *t = Vec3::ZERO;
            *p = if is_palm_joint(j) { Vec3::ZERO } else { Vec3::new(0.05, 0.0, 0.0) };
        }
        je.push_frame(&pred, &truth);
        assert_eq!(je.mpjpe(JointGroup::Palm), 0.0);
        assert!((je.mpjpe(JointGroup::Fingers) - 50.0).abs() < 1e-3);
        let overall = je.mpjpe(JointGroup::Overall);
        assert!(overall > 0.0 && overall < 50.0);
        // Palm regresses better than fingers — PCK ordering follows.
        assert!(je.pck(JointGroup::Palm, 40.0) > je.pck(JointGroup::Fingers, 40.0));
    }

    #[test]
    fn pck_curve_is_monotone_and_auc_bounded() {
        let mut je = JointErrors::new();
        for k in 0..10 {
            let (p, t) = uniform_frame(0.005 * k as f32);
            je.push_frame(&p, &t);
        }
        let curve = je.pck_curve(JointGroup::Overall, 60.0, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "PCK must not decrease");
        }
        let auc = je.auc(JointGroup::Overall, 60.0);
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn cdf_reaches_one() {
        let mut je = JointErrors::new();
        let (p, t) = uniform_frame(0.02);
        je.push_frame(&p, &t);
        let cdf = je.error_cdf(JointGroup::Overall);
        assert_eq!(cdf.last().unwrap().fraction, 1.0);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = JointErrors::new();
        let mut b = JointErrors::new();
        let (p, t) = uniform_frame(0.01);
        a.push_frame(&p, &t);
        b.push_frame(&p, &t);
        a.merge(&b);
        assert_eq!(a.len(), 42);
    }

    #[cfg(feature = "sanitize-numerics")]
    #[test]
    #[should_panic(expected = "numeric poison in metrics prediction input")]
    fn poisoned_prediction_is_trapped_at_the_metrics_gate() {
        let mut je = JointErrors::new();
        let mut pred = vec![0.0f32; 63];
        pred[17] = f32::NAN;
        je.push_flat(&pred, &[0.0f32; 63]);
    }

    #[cfg(not(feature = "sanitize-numerics"))]
    #[test]
    fn without_the_sanitizer_poisoned_metrics_propagate_silently() {
        let mut je = JointErrors::new();
        let mut pred = vec![0.0f32; 63];
        pred[17] = f32::NAN;
        je.push_flat(&pred, &[0.0f32; 63]);
        assert!(je.mpjpe(JointGroup::Overall).is_nan());
    }

    #[test]
    fn push_flat_matches_push_frame() {
        let (p, t) = uniform_frame(0.025);
        let mut a = JointErrors::new();
        a.push_frame(&p, &t);
        let pf: Vec<f32> = p.iter().flat_map(|v| v.to_array()).collect();
        let tf: Vec<f32> = t.iter().flat_map(|v| v.to_array()).collect();
        let mut b = JointErrors::new();
        b.push_flat(&pf, &tf);
        assert!((a.mpjpe(JointGroup::Overall) - b.mpjpe(JointGroup::Overall)).abs() < 1e-5);
    }

    #[test]
    fn empty_collection_is_safe() {
        let je = JointErrors::new();
        assert!(je.is_empty());
        assert_eq!(je.mpjpe(JointGroup::Overall), 0.0);
        assert_eq!(je.pck(JointGroup::Palm, 40.0), 0.0);
    }
}
