//! # mmhand-core
//!
//! The mmHand system itself (Kong et al., ICDCS 2024): 3-D hand-pose
//! estimation from mmWave radar, comprising
//!
//! * [`cube`] — signal pre-processing into the Radar Cube (§III:
//!   Butterworth hand-band isolation, range/Doppler FFTs, zoom-FFT angle
//!   spectra),
//! * [`model`] — the `mmSpaceNet` attention hourglass + LSTM temporal model
//!   (§IV, Figs. 5–6),
//! * [`loss`] — the combined 3-D + kinematic loss (Eqs. 8–9),
//! * [`dataset`] / [`train`] — segment/sequence assembly and the Adam +
//!   cosine-decay training loop (§VI-A),
//! * [`metrics`] — MPJPE, 3D-PCK, AUC, error CDFs with palm/finger splits,
//! * [`mesh`] — MANO parameter fitting (shape & pose networks, §V) and mesh
//!   reconstruction,
//! * [`eval`] — cohort generation and 5-fold leave-two-users-out
//!   cross-validation,
//! * [`pipeline`] — the end-to-end frames → skeletons → meshes estimator
//!   with stage timing (Fig. 26),
//! * [`recognize`] — template-based gesture classification on predicted
//!   skeletons (the interface-control application layer).
//!
//! # Examples
//!
//! Building radar cubes from a simulated capture:
//!
//! ```
//! use mmhand_core::cube::{CubeBuilder, CubeConfig};
//! use mmhand_radar::capture::{record_session, CaptureConfig};
//! use mmhand_hand::{gesture::Gesture, trajectory::GestureTrack, user::UserProfile};
//! use mmhand_math::Vec3;
//!
//! let user = UserProfile::generate(1, 7);
//! let track = GestureTrack::from_gestures(
//!     &[Gesture::OpenPalm],
//!     Vec3::new(0.0, 0.3, 0.0),
//!     0.5,
//!     0.2,
//! );
//! let session = record_session(&user, &track, 4, &CaptureConfig::default());
//! let mut builder = CubeBuilder::new(CubeConfig::default());
//! let cube = builder.process_frame(&session.frames[0]);
//! assert_eq!(cube.shape, [8, 16, 16]);
//! ```

pub mod cube;
pub mod dataset;
pub mod error;
pub mod eval;
pub mod loss;
pub mod mesh;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod precision;
pub mod recognize;
pub mod train;

pub use cube::{CubeBuilder, CubeConfig, CubeFrame};
pub use dataset::{Batch, SegmentSequence};
pub use error::{MmHandError, PipelineError};
pub use eval::{build_cohort, cross_validate, CrossValidation, DataConfig};
pub use loss::LossWeights;
pub use mesh::{MeshReconstructor, ReconstructedHand};
pub use metrics::{JointErrors, JointGroup};
pub use model::{MmHandModel, ModelConfig};
pub use mmhand_nn::QuantizedParamStore;
pub use pipeline::{MmHandPipeline, PipelineBuilder, PipelineOutput, StageTiming};
pub use precision::Precision;
pub use recognize::{GestureRecognizer, Recognition};
pub use train::{TrainConfig, TrainedModel, Trainer};
