//! The end-to-end mmHand pipeline (paper Fig. 2): raw radar frames →
//! pre-processing → 3-D skeletons → MANO meshes, with the stage timing
//! instrumentation behind the paper's Fig. 26.

use crate::cube::{CubeBuilder, CubeConfig};
use crate::error::{MmHandError, PipelineError};
use crate::mesh::{MeshReconstructor, ReconstructedHand};
use crate::train::TrainedModel;
use mmhand_nn::Tensor;
use mmhand_radar::RawFrame;
use mmhand_telemetry as telemetry;

/// Wall-clock timing of one pipeline invocation.
///
/// This is a thin view derived from the pipeline's telemetry spans
/// (`pipeline.cube_build`, `pipeline.regression`, `pipeline.mesh`): the
/// span durations returned by [`mmhand_telemetry::Span::finish`] are the
/// single source of truth, and the same measurements land in the global
/// metrics registry for the bench runner's exports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTiming {
    /// Radar-cube construction time (pre-processing), ms.
    pub cube_ms: f64,
    /// Joint-regression (network forward) time, ms.
    pub regress_ms: f64,
    /// Pre-processing + joint regression time (skeleton stage), ms.
    pub skeleton_ms: f64,
    /// Mesh-reconstruction time, ms.
    pub mesh_ms: f64,
}

impl StageTiming {
    /// Builds the view from span durations in nanoseconds.
    pub fn from_span_ns(cube_ns: u64, regress_ns: u64, mesh_ns: u64) -> Self {
        let cube_ms = cube_ns as f64 / 1e6;
        let regress_ms = regress_ns as f64 / 1e6;
        StageTiming {
            cube_ms,
            regress_ms,
            skeleton_ms: cube_ms + regress_ms,
            mesh_ms: mesh_ns as f64 / 1e6,
        }
    }

    /// Total pipeline time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.skeleton_ms + self.mesh_ms
    }
}

/// One pipeline result: skeletons and meshes for a window of frames.
#[derive(Debug)]
pub struct PipelineOutput {
    /// One flat 63-float skeleton per segment in the window.
    pub skeletons: Vec<Vec<f32>>,
    /// One reconstructed hand per skeleton.
    pub hands: Vec<ReconstructedHand>,
    /// Stage timings for this invocation.
    pub timing: StageTiming,
}

/// The full estimator: cube builder + trained regressor + mesh module.
///
/// Cloning deep-copies the trained parameters and mesh module and shares
/// the cube builder's cached FFT/zoom plans (they are `Arc`-backed), which
/// is how `mmhand-serve` materialises one independent pipeline per shard
/// from a single training run.
#[derive(Clone)]
pub struct MmHandPipeline {
    builder: CubeBuilder,
    model: TrainedModel,
    mesh: MeshReconstructor,
}

impl MmHandPipeline {
    /// Assembles a pipeline from trained parts.
    pub fn new(builder: CubeBuilder, model: TrainedModel, mesh: MeshReconstructor) -> Self {
        MmHandPipeline { builder, model, mesh }
    }

    /// Starts a [`PipelineBuilder`] — the fallible, validating way to
    /// assemble a pipeline.
    pub fn builder_for(model: TrainedModel) -> PipelineBuilder {
        PipelineBuilder::new(model)
    }

    /// The cube builder (e.g. to inspect configuration).
    pub fn builder(&self) -> &CubeBuilder {
        &self.builder
    }

    /// The trained regressor.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The mesh reconstructor.
    pub fn mesh_reconstructor(&self) -> &MeshReconstructor {
        &self.mesh
    }

    /// Converts raw frames into per-segment input tensors. Frames that do
    /// not fill a whole segment are dropped.
    ///
    /// # Errors
    ///
    /// Returns the first frame-geometry violation.
    pub fn try_frames_to_segments(
        &mut self,
        frames: &[RawFrame],
    ) -> Result<Vec<Tensor>, PipelineError> {
        let st = self.builder.config().frames_per_segment;
        let n_segments = frames.len() / st;
        (0..n_segments)
            .map(|s| {
                let cubes = (0..st)
                    .map(|k| self.builder.try_process_frame(&frames[s * st + k]))
                    .collect::<Result<Vec<_>, _>>()?;
                self.builder.try_segment_tensor(&cubes)
            })
            .collect()
    }

    /// Infallible wrapper over [`MmHandPipeline::try_frames_to_segments`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched frame geometry.
    pub fn frames_to_segments(&mut self, frames: &[RawFrame]) -> Vec<Tensor> {
        self.try_frames_to_segments(frames)
            .expect("frame geometry must match the pipeline configuration")
    }

    /// Regresses skeletons only (no meshes) with timing.
    ///
    /// Timing comes from telemetry spans (`pipeline.cube_build`,
    /// `pipeline.regression`); the same durations are recorded into the
    /// global metrics registry.
    ///
    /// # Errors
    ///
    /// Returns the first frame-geometry violation.
    pub fn try_estimate_skeletons(
        &mut self,
        frames: &[RawFrame],
    ) -> Result<(Vec<Vec<f32>>, StageTiming), PipelineError> {
        telemetry::counter("pipeline.invocations").inc();
        let sp = telemetry::span("pipeline.cube_build");
        let segments = self.try_frames_to_segments(frames)?;
        let cube_ns = sp.finish();
        let sp = telemetry::span("pipeline.regression");
        let skeletons = if segments.is_empty() {
            Vec::new()
        } else {
            self.model.predict_sequence(&segments)
        };
        let regress_ns = sp.finish();
        telemetry::counter("pipeline.segments").add(skeletons.len() as u64);
        Ok((skeletons, StageTiming::from_span_ns(cube_ns, regress_ns, 0)))
    }

    /// Infallible wrapper over [`MmHandPipeline::try_estimate_skeletons`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched frame geometry.
    pub fn estimate_skeletons(&mut self, frames: &[RawFrame]) -> (Vec<Vec<f32>>, StageTiming) {
        self.try_estimate_skeletons(frames)
            .expect("frame geometry must match the pipeline configuration")
    }

    /// Full pipeline: skeletons plus reconstructed meshes.
    ///
    /// Uses the fitted mesh networks when available, the analytic IK path
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns the first frame-geometry or skeleton-shape violation.
    pub fn try_estimate(&mut self, frames: &[RawFrame]) -> Result<PipelineOutput, PipelineError> {
        let (skeletons, timing) = self.try_estimate_skeletons(frames)?;
        let sp = telemetry::span("pipeline.mesh");
        let hands = skeletons
            .iter()
            .map(|s| {
                if self.mesh.is_fitted() {
                    self.mesh.try_reconstruct(s)
                } else {
                    self.mesh.try_reconstruct_analytic(s)
                }
            })
            .collect::<Result<Vec<ReconstructedHand>, _>>()?;
        let mesh_ns = sp.finish();
        let mut timing = timing;
        timing.mesh_ms = mesh_ns as f64 / 1e6;
        Ok(PipelineOutput { skeletons, hands, timing })
    }

    /// Infallible wrapper over [`MmHandPipeline::try_estimate`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched frame geometry.
    pub fn estimate(&mut self, frames: &[RawFrame]) -> PipelineOutput {
        self.try_estimate(frames)
            .expect("frame geometry must match the pipeline configuration")
    }
}

/// Fallible, validating assembly of an [`MmHandPipeline`], replacing the
/// positional [`MmHandPipeline::new`] constructor on the serving path.
///
/// The builder cross-checks that the cube geometry and the trained model's
/// architecture agree (segment channels, range bins, angle bins), so a
/// mismatched pairing is rejected at build time instead of panicking deep
/// inside the first forward pass.
///
/// # Examples
///
/// ```no_run
/// # fn doc(model: mmhand_core::TrainedModel) -> Result<(), mmhand_core::MmHandError> {
/// use mmhand_core::{CubeConfig, MmHandPipeline};
///
/// let pipeline = MmHandPipeline::builder_for(model)
///     .cube_config(CubeConfig::default())
///     .mesh_seed(0)
///     .build()?;
/// # let _ = pipeline; Ok(())
/// # }
/// ```
pub struct PipelineBuilder {
    model: TrainedModel,
    cube: Option<CubeConfig>,
    mesh: Option<MeshReconstructor>,
    mesh_seed: u64,
}

impl PipelineBuilder {
    /// Starts a builder around a trained model.
    pub fn new(model: TrainedModel) -> Self {
        PipelineBuilder { model, cube: None, mesh: None, mesh_seed: 0 }
    }

    /// Sets the cube geometry (defaults to [`CubeConfig::default`]).
    pub fn cube_config(mut self, cube: CubeConfig) -> Self {
        self.cube = Some(cube);
        self
    }

    /// Supplies an already-constructed (possibly fitted) mesh
    /// reconstructor.
    pub fn mesh(mut self, mesh: MeshReconstructor) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// Seed for the default (unfitted, analytic-path) mesh reconstructor;
    /// ignored when [`PipelineBuilder::mesh`] was called.
    pub fn mesh_seed(mut self, seed: u64) -> Self {
        self.mesh_seed = seed;
        self
    }

    /// Validates the configuration and assembles the pipeline.
    ///
    /// # Errors
    ///
    /// Returns the first cube-configuration violation, or
    /// [`PipelineError::InvalidConfig`] when the cube geometry and the
    /// model architecture disagree.
    pub fn build(self) -> Result<MmHandPipeline, MmHandError> {
        let cube_cfg = self.cube.unwrap_or_default();
        let builder = CubeBuilder::try_new(cube_cfg)?;
        let cfg = builder.config();
        let model_cfg = &self.model.model.config;
        let invalid = |field: &'static str, reason: String| {
            Err(MmHandError::Pipeline(PipelineError::InvalidConfig { field, reason }))
        };
        if model_cfg.input_channels() != cfg.segment_channels() {
            return invalid(
                "model.input_channels",
                format!(
                    "model expects {} segment channels, cube produces {}",
                    model_cfg.input_channels(),
                    cfg.segment_channels()
                ),
            );
        }
        if model_cfg.range_bins != cfg.range_bins {
            return invalid(
                "model.range_bins",
                format!("model expects {}, cube produces {}", model_cfg.range_bins, cfg.range_bins),
            );
        }
        if model_cfg.angle_bins != cfg.angle_bins() {
            return invalid(
                "model.angle_bins",
                format!("model expects {}, cube produces {}", model_cfg.angle_bins, cfg.angle_bins()),
            );
        }
        let mesh = match self.mesh {
            Some(m) => m,
            None => MeshReconstructor::new(self.mesh_seed),
        };
        Ok(MmHandPipeline { builder, model: self.model, mesh })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, CubeConfig};
    use crate::eval::{build_cohort, train_reference_model, DataConfig};
    use crate::model::ModelConfig;
    use crate::train::TrainConfig;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::trajectory::GestureTrack;
    use mmhand_hand::user::UserProfile;
    use mmhand_math::Vec3;
    use mmhand_radar::capture::{record_session, CaptureConfig};
    use mmhand_radar::{ChirpConfig, Environment};

    fn tiny_pipeline() -> (MmHandPipeline, Vec<mmhand_radar::RawFrame>) {
        let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
        let cube = CubeConfig {
            chirp,
            range_bins: 8,
            doppler_bins: 4,
            azimuth_bins: 4,
            elevation_bins: 4,
            frames_per_segment: 2,
            range_max_m: 0.55,
            ..Default::default()
        };
        let data = DataConfig {
            users: 2,
            frames_per_user: 16,
            gestures_per_track: 2,
            seq_len: 2,
            capture: CaptureConfig {
                chirp,
                environment: Environment::Playground,
                noise_sigma: 0.005,
                ..Default::default()
            },
            cube: cube.clone(),
            seed: 3,
            ..Default::default()
        };
        let model_cfg = ModelConfig {
            channels: 6,
            blocks: 1,
            feature_dim: 24,
            lstm_hidden: 24,
            ..data.model_config()
        };
        let seqs = build_cohort(&data);
        let model = train_reference_model(
            &seqs,
            &model_cfg,
            &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
        );
        let pipeline = MmHandPipeline::new(
            CubeBuilder::new(cube),
            model,
            crate::mesh::MeshReconstructor::new(0),
        );
        // A fresh capture to run inference on.
        let user = UserProfile::generate(1, 3);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Victory],
            Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        let session = record_session(
            &user,
            &track,
            8,
            &CaptureConfig { chirp, noise_sigma: 0.005, ..Default::default() },
        );
        (pipeline, session.frames)
    }

    #[test]
    fn pipeline_produces_skeletons_and_meshes() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames);
        assert_eq!(out.skeletons.len(), 4); // 8 frames / 2 per segment
        assert_eq!(out.hands.len(), 4);
        for s in &out.skeletons {
            assert_eq!(s.len(), 63);
            assert!(s.iter().all(|v| v.is_finite()));
        }
        for h in &out.hands {
            assert!(!h.mesh.vertices.is_empty());
        }
        assert!(out.timing.skeleton_ms > 0.0);
        assert!(out.timing.mesh_ms > 0.0);
        assert!(out.timing.total_ms() >= out.timing.skeleton_ms);
    }

    #[test]
    fn skeleton_only_path_skips_mesh_time() {
        let (mut pipeline, frames) = tiny_pipeline();
        let (skeletons, timing) = pipeline.estimate_skeletons(&frames);
        assert_eq!(skeletons.len(), 4);
        assert_eq!(timing.mesh_ms, 0.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let (mut pipeline, _) = tiny_pipeline();
        let out = pipeline.estimate(&[]);
        assert!(out.skeletons.is_empty());
        assert!(out.hands.is_empty());
    }

    #[test]
    fn stage_timing_is_a_view_over_spans() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames);
        let t = out.timing;
        // The skeleton stage is exactly the sum of its two spans.
        assert!((t.cube_ms + t.regress_ms - t.skeleton_ms).abs() < 1e-9);
        assert!(t.cube_ms > 0.0 && t.regress_ms > 0.0);
        // The same spans landed in the global registry.
        let snap = mmhand_telemetry::snapshot();
        for name in ["pipeline.cube_build", "pipeline.regression", "pipeline.mesh"] {
            let h = snap
                .histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h)
                .expect("span histogram registered");
            assert!(h.count >= 1, "{name} recorded at least one span");
            assert!(h.sum >= 0.0);
        }
    }

    #[test]
    fn from_span_ns_converts_to_ms() {
        let t = StageTiming::from_span_ns(1_500_000, 500_000, 3_000_000);
        assert!((t.cube_ms - 1.5).abs() < 1e-12);
        assert!((t.regress_ms - 0.5).abs() < 1e-12);
        assert!((t.skeleton_ms - 2.0).abs() < 1e-12);
        assert!((t.mesh_ms - 3.0).abs() < 1e-12);
        assert!((t.total_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn partial_segment_is_dropped() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames[..3]); // 1.5 segments
        assert_eq!(out.skeletons.len(), 1);
    }
}
