//! The end-to-end mmHand pipeline (paper Fig. 2): raw radar frames →
//! pre-processing → 3-D skeletons → MANO meshes, with the stage timing
//! instrumentation behind the paper's Fig. 26.

use crate::cube::{CubeBuilder, CubeConfig};
use crate::error::{MmHandError, PipelineError};
use crate::mesh::{MeshReconstructor, ReconstructedHand};
use crate::precision::Precision;
use crate::train::TrainedModel;
use mmhand_nn::{QuantizedParamStore, Tensor};
use mmhand_radar::RawFrame;
use mmhand_telemetry as telemetry;
use std::sync::Arc;

/// Wall-clock timing of one pipeline invocation.
///
/// This is a thin view derived from the pipeline's telemetry spans
/// (`pipeline.cube_build`, `pipeline.regression`, `pipeline.mesh`): the
/// span durations returned by [`mmhand_telemetry::Span::finish`] are the
/// single source of truth, and the same measurements land in the global
/// metrics registry for the bench runner's exports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTiming {
    /// Radar-cube construction time (pre-processing), ms.
    pub cube_ms: f64,
    /// Joint-regression (network forward) time, ms.
    pub regress_ms: f64,
    /// Pre-processing + joint regression time (skeleton stage), ms.
    pub skeleton_ms: f64,
    /// Mesh-reconstruction time, ms.
    pub mesh_ms: f64,
}

impl StageTiming {
    /// Builds the view from span durations in nanoseconds.
    pub fn from_span_ns(cube_ns: u64, regress_ns: u64, mesh_ns: u64) -> Self {
        let cube_ms = cube_ns as f64 / 1e6;
        let regress_ms = regress_ns as f64 / 1e6;
        StageTiming {
            cube_ms,
            regress_ms,
            skeleton_ms: cube_ms + regress_ms,
            mesh_ms: mesh_ns as f64 / 1e6,
        }
    }

    /// Total pipeline time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.skeleton_ms + self.mesh_ms
    }
}

/// One pipeline result: skeletons and meshes for a window of frames.
#[derive(Debug)]
pub struct PipelineOutput {
    /// One flat 63-float skeleton per segment in the window.
    pub skeletons: Vec<Vec<f32>>,
    /// One reconstructed hand per skeleton.
    pub hands: Vec<ReconstructedHand>,
    /// Stage timings for this invocation.
    pub timing: StageTiming,
}

/// The full estimator: cube builder + trained regressor + mesh module.
///
/// Cloning deep-copies the trained parameters and mesh module and shares
/// the cube builder's cached FFT/zoom plans (they are `Arc`-backed), which
/// is how `mmhand-serve` materialises one independent pipeline per shard
/// from a single training run.
#[derive(Clone)]
pub struct MmHandPipeline {
    builder: CubeBuilder,
    model: TrainedModel,
    mesh: MeshReconstructor,
    /// Numeric path of the forward pass; [`Precision::Int8`] requires
    /// `quant` to be populated (enforced by [`PipelineBuilder::build`]).
    precision: Precision,
    /// Int8 parameter copies, shared (`Arc`) across pipeline clones —
    /// serve shards quantize once, not per shard.
    quant: Option<Arc<QuantizedParamStore>>,
}

impl MmHandPipeline {
    /// Assembles an f32 pipeline from trained parts.
    pub fn new(builder: CubeBuilder, model: TrainedModel, mesh: MeshReconstructor) -> Self {
        MmHandPipeline { builder, model, mesh, precision: Precision::F32, quant: None }
    }

    /// Starts a [`PipelineBuilder`] — the fallible, validating way to
    /// assemble a pipeline.
    pub fn builder_for(model: TrainedModel) -> PipelineBuilder {
        PipelineBuilder::new(model)
    }

    /// The cube builder (e.g. to inspect configuration).
    pub fn builder(&self) -> &CubeBuilder {
        &self.builder
    }

    /// The trained regressor.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The mesh reconstructor.
    pub fn mesh_reconstructor(&self) -> &MeshReconstructor {
        &self.mesh
    }

    /// The numeric path this pipeline's forward passes run on.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The int8 parameter store, when this pipeline was calibrated.
    pub fn quantized(&self) -> Option<&Arc<QuantizedParamStore>> {
        self.quant.as_ref()
    }

    /// Predicts joints for a sequence of segments on this pipeline's
    /// [`Precision`] — the precision-dispatching counterpart of
    /// [`TrainedModel::predict_sequence`].
    pub fn predict_sequence(&self, segments: &[Tensor]) -> Vec<Vec<f32>> {
        match (self.precision, &self.quant) {
            (Precision::Int8, Some(q)) => {
                self.model.predict_sequence_quantized(q.clone(), segments)
            }
            _ => self.model.predict_sequence(segments),
        }
    }

    /// Predicts one streamed segment batch from explicit LSTM state on this
    /// pipeline's [`Precision`] — the precision-dispatching counterpart of
    /// [`TrainedModel::predict_step`]; `mmhand-serve` micro-batches through
    /// this so every session inherits the pipeline's precision.
    pub fn predict_step(
        &self,
        segment: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> (Vec<Vec<f32>>, Tensor, Tensor) {
        match (self.precision, &self.quant) {
            (Precision::Int8, Some(q)) => {
                self.model.predict_step_quantized(q.clone(), segment, h, c)
            }
            _ => self.model.predict_step(segment, h, c),
        }
    }

    /// Converts raw frames into per-segment input tensors. Frames that do
    /// not fill a whole segment are dropped.
    ///
    /// # Errors
    ///
    /// Returns the first frame-geometry violation.
    pub fn try_frames_to_segments(
        &mut self,
        frames: &[RawFrame],
    ) -> Result<Vec<Tensor>, PipelineError> {
        let st = self.builder.config().frames_per_segment;
        let n_segments = frames.len() / st;
        (0..n_segments)
            .map(|s| {
                let cubes = (0..st)
                    .map(|k| self.builder.try_process_frame(&frames[s * st + k]))
                    .collect::<Result<Vec<_>, _>>()?;
                self.builder.try_segment_tensor(&cubes)
            })
            .collect()
    }

    /// Infallible wrapper over [`MmHandPipeline::try_frames_to_segments`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched frame geometry.
    pub fn frames_to_segments(&mut self, frames: &[RawFrame]) -> Vec<Tensor> {
        self.try_frames_to_segments(frames)
            .expect("frame geometry must match the pipeline configuration")
    }

    /// Regresses skeletons only (no meshes) with timing.
    ///
    /// Timing comes from telemetry spans (`pipeline.cube_build`,
    /// `pipeline.regression`); the same durations are recorded into the
    /// global metrics registry.
    ///
    /// # Errors
    ///
    /// Returns the first frame-geometry violation.
    pub fn try_estimate_skeletons(
        &mut self,
        frames: &[RawFrame],
    ) -> Result<(Vec<Vec<f32>>, StageTiming), PipelineError> {
        telemetry::counter("pipeline.invocations").inc();
        let sp = telemetry::span("pipeline.cube_build");
        let segments = self.try_frames_to_segments(frames)?;
        let cube_ns = sp.finish();
        let sp = telemetry::span("pipeline.regression");
        let skeletons = if segments.is_empty() {
            Vec::new()
        } else {
            self.predict_sequence(&segments)
        };
        let regress_ns = sp.finish();
        telemetry::counter("pipeline.segments").add(skeletons.len() as u64);
        Ok((skeletons, StageTiming::from_span_ns(cube_ns, regress_ns, 0)))
    }

    /// Infallible wrapper over [`MmHandPipeline::try_estimate_skeletons`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched frame geometry.
    pub fn estimate_skeletons(&mut self, frames: &[RawFrame]) -> (Vec<Vec<f32>>, StageTiming) {
        self.try_estimate_skeletons(frames)
            .expect("frame geometry must match the pipeline configuration")
    }

    /// Full pipeline: skeletons plus reconstructed meshes.
    ///
    /// Uses the fitted mesh networks when available, the analytic IK path
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns the first frame-geometry or skeleton-shape violation.
    pub fn try_estimate(&mut self, frames: &[RawFrame]) -> Result<PipelineOutput, PipelineError> {
        let (skeletons, timing) = self.try_estimate_skeletons(frames)?;
        let sp = telemetry::span("pipeline.mesh");
        let hands = skeletons
            .iter()
            .map(|s| {
                if self.mesh.is_fitted() {
                    self.mesh.try_reconstruct(s)
                } else {
                    self.mesh.try_reconstruct_analytic(s)
                }
            })
            .collect::<Result<Vec<ReconstructedHand>, _>>()?;
        let mesh_ns = sp.finish();
        let mut timing = timing;
        timing.mesh_ms = mesh_ns as f64 / 1e6;
        Ok(PipelineOutput { skeletons, hands, timing })
    }

    /// Infallible wrapper over [`MmHandPipeline::try_estimate`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched frame geometry.
    pub fn estimate(&mut self, frames: &[RawFrame]) -> PipelineOutput {
        self.try_estimate(frames)
            .expect("frame geometry must match the pipeline configuration")
    }
}

/// Fallible, validating assembly of an [`MmHandPipeline`], replacing the
/// positional [`MmHandPipeline::new`] constructor on the serving path.
///
/// The builder cross-checks that the cube geometry and the trained model's
/// architecture agree (segment channels, range bins, angle bins), so a
/// mismatched pairing is rejected at build time instead of panicking deep
/// inside the first forward pass.
///
/// # Examples
///
/// ```no_run
/// # fn doc(model: mmhand_core::TrainedModel) -> Result<(), mmhand_core::MmHandError> {
/// use mmhand_core::{CubeConfig, MmHandPipeline};
///
/// let pipeline = MmHandPipeline::builder_for(model)
///     .cube_config(CubeConfig::default())
///     .mesh_seed(0)
///     .build()?;
/// # let _ = pipeline; Ok(())
/// # }
/// ```
pub struct PipelineBuilder {
    model: TrainedModel,
    cube: Option<CubeConfig>,
    mesh: Option<MeshReconstructor>,
    mesh_seed: u64,
    precision: Option<Precision>,
    quant: Option<Arc<QuantizedParamStore>>,
    calibration: Vec<Tensor>,
}

impl PipelineBuilder {
    /// Starts a builder around a trained model.
    pub fn new(model: TrainedModel) -> Self {
        PipelineBuilder {
            model,
            cube: None,
            mesh: None,
            mesh_seed: 0,
            precision: None,
            quant: None,
            calibration: Vec::new(),
        }
    }

    /// Sets the cube geometry (defaults to [`CubeConfig::default`]).
    pub fn cube_config(mut self, cube: CubeConfig) -> Self {
        self.cube = Some(cube);
        self
    }

    /// Supplies an already-constructed (possibly fitted) mesh
    /// reconstructor.
    pub fn mesh(mut self, mesh: MeshReconstructor) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// Seed for the default (unfitted, analytic-path) mesh reconstructor;
    /// ignored when [`PipelineBuilder::mesh`] was called.
    pub fn mesh_seed(mut self, seed: u64) -> Self {
        self.mesh_seed = seed;
        self
    }

    /// Pins the inference precision explicitly. When not called, the
    /// documented `MMHAND_PRECISION` env fallback fills the default.
    ///
    /// An **explicit** [`Precision::Int8`] requires calibration material —
    /// [`PipelineBuilder::quantized`] or
    /// [`PipelineBuilder::calibration_segments`] — and
    /// [`PipelineBuilder::build`] rejects the configuration otherwise. An
    /// env-requested int8 without calibration instead downgrades to f32
    /// with a note on stderr, so blanket `MMHAND_PRECISION=int8` test runs
    /// don't break pipelines that never calibrated.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = Some(p);
        self
    }

    /// Supplies an already-built int8 parameter store (e.g. shared with
    /// another pipeline over the same trained model).
    pub fn quantized(mut self, q: Arc<QuantizedParamStore>) -> Self {
        self.quant = Some(q);
        self
    }

    /// Supplies calibration segments; [`PipelineBuilder::build`] runs
    /// [`TrainedModel::calibrate_int8`] over them when the resolved
    /// precision is [`Precision::Int8`] and no store was supplied via
    /// [`PipelineBuilder::quantized`].
    pub fn calibration_segments(mut self, segments: Vec<Tensor>) -> Self {
        self.calibration = segments;
        self
    }

    /// Validates the configuration and assembles the pipeline.
    ///
    /// # Errors
    ///
    /// Returns the first cube-configuration violation, or
    /// [`PipelineError::InvalidConfig`] when the cube geometry and the
    /// model architecture disagree.
    pub fn build(self) -> Result<MmHandPipeline, MmHandError> {
        let cube_cfg = self.cube.unwrap_or_default();
        let builder = CubeBuilder::try_new(cube_cfg)?;
        let cfg = builder.config();
        let model_cfg = &self.model.model.config;
        let invalid = |field: &'static str, reason: String| {
            Err(MmHandError::Pipeline(PipelineError::InvalidConfig { field, reason }))
        };
        if model_cfg.input_channels() != cfg.segment_channels() {
            return invalid(
                "model.input_channels",
                format!(
                    "model expects {} segment channels, cube produces {}",
                    model_cfg.input_channels(),
                    cfg.segment_channels()
                ),
            );
        }
        if model_cfg.range_bins != cfg.range_bins {
            return invalid(
                "model.range_bins",
                format!("model expects {}, cube produces {}", model_cfg.range_bins, cfg.range_bins),
            );
        }
        if model_cfg.angle_bins != cfg.angle_bins() {
            return invalid(
                "model.angle_bins",
                format!("model expects {}, cube produces {}", model_cfg.angle_bins, cfg.angle_bins()),
            );
        }
        let mesh = match self.mesh {
            Some(m) => m,
            None => MeshReconstructor::new(self.mesh_seed),
        };
        // Precision: explicit setting wins; the documented MMHAND_PRECISION
        // env fallback fills the default otherwise.
        let explicit = self.precision.is_some();
        let requested = self.precision.unwrap_or_else(Precision::env_fallback);
        let (precision, quant) = match requested {
            Precision::F32 => (Precision::F32, None),
            Precision::Int8 => {
                let store = match self.quant {
                    Some(q) => Some(q),
                    None if !self.calibration.is_empty() => {
                        Some(Arc::new(self.model.calibrate_int8(&self.calibration)))
                    }
                    None => None,
                };
                match store {
                    Some(q) if !q.is_empty() => (Precision::Int8, Some(q)),
                    _ if explicit => {
                        return invalid(
                            "precision",
                            "int8 requires calibration: supply a quantized store or \
                             calibration segments"
                                .to_string(),
                        );
                    }
                    _ => {
                        eprintln!(
                            "mmhand-core: MMHAND_PRECISION=int8 but the pipeline has no \
                             calibration material; running f32"
                        );
                        (Precision::F32, None)
                    }
                }
            }
        };
        Ok(MmHandPipeline { builder, model: self.model, mesh, precision, quant })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, CubeConfig};
    use crate::eval::{build_cohort, train_reference_model, DataConfig};
    use crate::model::ModelConfig;
    use crate::train::TrainConfig;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::trajectory::GestureTrack;
    use mmhand_hand::user::UserProfile;
    use mmhand_math::Vec3;
    use mmhand_radar::capture::{record_session, CaptureConfig};
    use mmhand_radar::{ChirpConfig, Environment};

    fn tiny_pipeline() -> (MmHandPipeline, Vec<mmhand_radar::RawFrame>) {
        let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
        let cube = CubeConfig {
            chirp,
            range_bins: 8,
            doppler_bins: 4,
            azimuth_bins: 4,
            elevation_bins: 4,
            frames_per_segment: 2,
            range_max_m: 0.55,
            ..Default::default()
        };
        let data = DataConfig {
            users: 2,
            frames_per_user: 16,
            gestures_per_track: 2,
            seq_len: 2,
            capture: CaptureConfig {
                chirp,
                environment: Environment::Playground,
                noise_sigma: 0.005,
                ..Default::default()
            },
            cube: cube.clone(),
            seed: 3,
            ..Default::default()
        };
        let model_cfg = ModelConfig {
            channels: 6,
            blocks: 1,
            feature_dim: 24,
            lstm_hidden: 24,
            ..data.model_config()
        };
        let seqs = build_cohort(&data);
        let model = train_reference_model(
            &seqs,
            &model_cfg,
            &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
        );
        let pipeline = MmHandPipeline::new(
            CubeBuilder::new(cube),
            model,
            crate::mesh::MeshReconstructor::new(0),
        );
        // A fresh capture to run inference on.
        let user = UserProfile::generate(1, 3);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Victory],
            Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        let session = record_session(
            &user,
            &track,
            8,
            &CaptureConfig { chirp, noise_sigma: 0.005, ..Default::default() },
        );
        (pipeline, session.frames)
    }

    #[test]
    fn pipeline_produces_skeletons_and_meshes() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames);
        assert_eq!(out.skeletons.len(), 4); // 8 frames / 2 per segment
        assert_eq!(out.hands.len(), 4);
        for s in &out.skeletons {
            assert_eq!(s.len(), 63);
            assert!(s.iter().all(|v| v.is_finite()));
        }
        for h in &out.hands {
            assert!(!h.mesh.vertices.is_empty());
        }
        assert!(out.timing.skeleton_ms > 0.0);
        assert!(out.timing.mesh_ms > 0.0);
        assert!(out.timing.total_ms() >= out.timing.skeleton_ms);
    }

    #[test]
    fn skeleton_only_path_skips_mesh_time() {
        let (mut pipeline, frames) = tiny_pipeline();
        let (skeletons, timing) = pipeline.estimate_skeletons(&frames);
        assert_eq!(skeletons.len(), 4);
        assert_eq!(timing.mesh_ms, 0.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let (mut pipeline, _) = tiny_pipeline();
        let out = pipeline.estimate(&[]);
        assert!(out.skeletons.is_empty());
        assert!(out.hands.is_empty());
    }

    #[test]
    fn stage_timing_is_a_view_over_spans() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames);
        let t = out.timing;
        // The skeleton stage is exactly the sum of its two spans.
        assert!((t.cube_ms + t.regress_ms - t.skeleton_ms).abs() < 1e-9);
        assert!(t.cube_ms > 0.0 && t.regress_ms > 0.0);
        // The same spans landed in the global registry.
        let snap = mmhand_telemetry::snapshot();
        for name in ["pipeline.cube_build", "pipeline.regression", "pipeline.mesh"] {
            let h = snap
                .histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h)
                .expect("span histogram registered");
            assert!(h.count >= 1, "{name} recorded at least one span");
            assert!(h.sum >= 0.0);
        }
    }

    #[test]
    fn from_span_ns_converts_to_ms() {
        let t = StageTiming::from_span_ns(1_500_000, 500_000, 3_000_000);
        assert!((t.cube_ms - 1.5).abs() < 1e-12);
        assert!((t.regress_ms - 0.5).abs() < 1e-12);
        assert!((t.skeleton_ms - 2.0).abs() < 1e-12);
        assert!((t.mesh_ms - 3.0).abs() < 1e-12);
        assert!((t.total_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn partial_segment_is_dropped() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames[..3]); // 1.5 segments
        assert_eq!(out.skeletons.len(), 1);
    }

    /// Rebuilds `pipeline`'s parts through the builder at int8, calibrated
    /// on its own inference segments.
    fn quantize_pipeline(
        pipeline: &mut MmHandPipeline,
        frames: &[mmhand_radar::RawFrame],
    ) -> MmHandPipeline {
        let segments = pipeline.frames_to_segments(frames);
        MmHandPipeline::builder_for(pipeline.model().clone())
            .cube_config(pipeline.builder().config().clone())
            .precision(crate::precision::Precision::Int8)
            .calibration_segments(segments)
            .build()
            .expect("calibrated int8 pipeline builds")
    }

    #[test]
    fn quantized_pipeline_tracks_f32() {
        let (mut pipeline, frames) = tiny_pipeline();
        let mut quantized = quantize_pipeline(&mut pipeline, &frames);
        assert_eq!(quantized.precision(), crate::precision::Precision::Int8);
        assert!(quantized.quantized().is_some());

        let (f32_out, _) = pipeline.estimate_skeletons(&frames);
        let (int8_out, _) = quantized.estimate_skeletons(&frames);
        assert_eq!(f32_out.len(), int8_out.len());
        let mut worst = 0.0f32;
        let (mut sum, mut count) = (0.0f64, 0u64);
        for (a, b) in f32_out.iter().zip(&int8_out) {
            assert!(b.iter().all(|v| v.is_finite()));
            for (x, y) in a.iter().zip(b) {
                let d = (x - y).abs();
                worst = worst.max(d);
                sum += d as f64;
                count += 1;
            }
        }
        // Joint coordinates are metres. On this deliberately tiny, barely
        // trained model the LSTM recurrence amplifies quantization noise,
        // so the bound here is coarse; the tight mean-joint-error epsilon
        // against the reference model is `exp_quant`'s accuracy gate.
        let mean = sum / count as f64;
        assert!(mean < 0.005, "mean joint deviation {mean} m");
        assert!(worst < 0.05, "worst joint deviation {worst} m");
    }

    #[test]
    fn quantized_step_matches_quantized_sequence_bitwise() {
        // The serve identity contract, per precision: streaming step-wise
        // int8 inference equals batch int8 inference bitwise.
        let (mut pipeline, frames) = tiny_pipeline();
        let quantized = quantize_pipeline(&mut pipeline, &frames);
        let segments = pipeline.frames_to_segments(&frames);
        let batch = quantized.predict_sequence(&segments);

        let hidden = quantized.model().lstm_hidden();
        let mut h = Tensor::zeros(&[1, hidden]);
        let mut c = Tensor::zeros(&[1, hidden]);
        for (t, seg) in segments.iter().enumerate() {
            let mut shape = vec![1];
            shape.extend_from_slice(seg.shape());
            let stepped = seg.reshaped(&shape);
            let (skels, h2, c2) = quantized.predict_step(&stepped, &h, &c);
            h = h2;
            c = c2;
            for (a, b) in batch[t].iter().zip(&skels[0]) {
                assert_eq!(a.to_bits(), b.to_bits(), "step {t}");
            }
        }
    }

    #[test]
    fn explicit_int8_without_calibration_is_a_typed_error() {
        let (pipeline, _) = tiny_pipeline();
        let Err(err) = MmHandPipeline::builder_for(pipeline.model().clone())
            .cube_config(pipeline.builder().config().clone())
            .precision(crate::precision::Precision::Int8)
            .build()
        else {
            panic!("uncalibrated explicit int8 must not build");
        };
        match err {
            MmHandError::Pipeline(PipelineError::InvalidConfig { field, reason }) => {
                assert_eq!(field, "precision");
                assert!(reason.contains("calibration"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
