//! The end-to-end mmHand pipeline (paper Fig. 2): raw radar frames →
//! pre-processing → 3-D skeletons → MANO meshes, with the stage timing
//! instrumentation behind the paper's Fig. 26.

use crate::cube::CubeBuilder;
use crate::mesh::{MeshReconstructor, ReconstructedHand};
use crate::train::TrainedModel;
use mmhand_nn::Tensor;
use mmhand_radar::RawFrame;
use mmhand_telemetry as telemetry;

/// Wall-clock timing of one pipeline invocation.
///
/// This is a thin view derived from the pipeline's telemetry spans
/// (`pipeline.cube_build`, `pipeline.regression`, `pipeline.mesh`): the
/// span durations returned by [`mmhand_telemetry::Span::finish`] are the
/// single source of truth, and the same measurements land in the global
/// metrics registry for the bench runner's exports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTiming {
    /// Radar-cube construction time (pre-processing), ms.
    pub cube_ms: f64,
    /// Joint-regression (network forward) time, ms.
    pub regress_ms: f64,
    /// Pre-processing + joint regression time (skeleton stage), ms.
    pub skeleton_ms: f64,
    /// Mesh-reconstruction time, ms.
    pub mesh_ms: f64,
}

impl StageTiming {
    /// Builds the view from span durations in nanoseconds.
    pub fn from_span_ns(cube_ns: u64, regress_ns: u64, mesh_ns: u64) -> Self {
        let cube_ms = cube_ns as f64 / 1e6;
        let regress_ms = regress_ns as f64 / 1e6;
        StageTiming {
            cube_ms,
            regress_ms,
            skeleton_ms: cube_ms + regress_ms,
            mesh_ms: mesh_ns as f64 / 1e6,
        }
    }

    /// Total pipeline time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.skeleton_ms + self.mesh_ms
    }
}

/// One pipeline result: skeletons and meshes for a window of frames.
#[derive(Debug)]
pub struct PipelineOutput {
    /// One flat 63-float skeleton per segment in the window.
    pub skeletons: Vec<Vec<f32>>,
    /// One reconstructed hand per skeleton.
    pub hands: Vec<ReconstructedHand>,
    /// Stage timings for this invocation.
    pub timing: StageTiming,
}

/// The full estimator: cube builder + trained regressor + mesh module.
pub struct MmHandPipeline {
    builder: CubeBuilder,
    model: TrainedModel,
    mesh: MeshReconstructor,
}

impl MmHandPipeline {
    /// Assembles a pipeline from trained parts.
    pub fn new(builder: CubeBuilder, model: TrainedModel, mesh: MeshReconstructor) -> Self {
        MmHandPipeline { builder, model, mesh }
    }

    /// The cube builder (e.g. to inspect configuration).
    pub fn builder(&self) -> &CubeBuilder {
        &self.builder
    }

    /// The mesh reconstructor.
    pub fn mesh_reconstructor(&self) -> &MeshReconstructor {
        &self.mesh
    }

    /// Converts raw frames into per-segment input tensors. Frames that do
    /// not fill a whole segment are dropped.
    pub fn frames_to_segments(&mut self, frames: &[RawFrame]) -> Vec<Tensor> {
        let st = self.builder.config().frames_per_segment;
        let n_segments = frames.len() / st;
        (0..n_segments)
            .map(|s| {
                let cubes: Vec<_> = (0..st)
                    .map(|k| self.builder.process_frame(&frames[s * st + k]))
                    .collect();
                self.builder.segment_tensor(&cubes)
            })
            .collect()
    }

    /// Regresses skeletons only (no meshes) with timing.
    ///
    /// Timing comes from telemetry spans (`pipeline.cube_build`,
    /// `pipeline.regression`); the same durations are recorded into the
    /// global metrics registry.
    pub fn estimate_skeletons(&mut self, frames: &[RawFrame]) -> (Vec<Vec<f32>>, StageTiming) {
        telemetry::counter("pipeline.invocations").inc();
        let sp = telemetry::span("pipeline.cube_build");
        let segments = self.frames_to_segments(frames);
        let cube_ns = sp.finish();
        let sp = telemetry::span("pipeline.regression");
        let skeletons = if segments.is_empty() {
            Vec::new()
        } else {
            self.model.predict_sequence(&segments)
        };
        let regress_ns = sp.finish();
        telemetry::counter("pipeline.segments").add(skeletons.len() as u64);
        (skeletons, StageTiming::from_span_ns(cube_ns, regress_ns, 0))
    }

    /// Full pipeline: skeletons plus reconstructed meshes.
    ///
    /// Uses the fitted mesh networks when available, the analytic IK path
    /// otherwise.
    pub fn estimate(&mut self, frames: &[RawFrame]) -> PipelineOutput {
        let (skeletons, timing) = self.estimate_skeletons(frames);
        let sp = telemetry::span("pipeline.mesh");
        let hands: Vec<ReconstructedHand> = skeletons
            .iter()
            .map(|s| {
                if self.mesh.is_fitted() {
                    self.mesh.reconstruct(s)
                } else {
                    self.mesh.reconstruct_analytic(s)
                }
            })
            .collect();
        let mesh_ns = sp.finish();
        let mut timing = timing;
        timing.mesh_ms = mesh_ns as f64 / 1e6;
        PipelineOutput { skeletons, hands, timing }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, CubeConfig};
    use crate::eval::{build_cohort, train_reference_model, DataConfig};
    use crate::model::ModelConfig;
    use crate::train::TrainConfig;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::trajectory::GestureTrack;
    use mmhand_hand::user::UserProfile;
    use mmhand_math::Vec3;
    use mmhand_radar::capture::{record_session, CaptureConfig};
    use mmhand_radar::{ChirpConfig, Environment};

    fn tiny_pipeline() -> (MmHandPipeline, Vec<mmhand_radar::RawFrame>) {
        let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
        let cube = CubeConfig {
            chirp,
            range_bins: 8,
            doppler_bins: 4,
            azimuth_bins: 4,
            elevation_bins: 4,
            frames_per_segment: 2,
            range_max_m: 0.55,
            ..Default::default()
        };
        let data = DataConfig {
            users: 2,
            frames_per_user: 16,
            gestures_per_track: 2,
            seq_len: 2,
            capture: CaptureConfig {
                chirp,
                environment: Environment::Playground,
                noise_sigma: 0.005,
                ..Default::default()
            },
            cube: cube.clone(),
            seed: 3,
            ..Default::default()
        };
        let model_cfg = ModelConfig {
            channels: 6,
            blocks: 1,
            feature_dim: 24,
            lstm_hidden: 24,
            ..data.model_config()
        };
        let seqs = build_cohort(&data);
        let model = train_reference_model(
            &seqs,
            &model_cfg,
            &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
        );
        let pipeline = MmHandPipeline::new(
            CubeBuilder::new(cube),
            model,
            crate::mesh::MeshReconstructor::new(0),
        );
        // A fresh capture to run inference on.
        let user = UserProfile::generate(1, 3);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Victory],
            Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        let session = record_session(
            &user,
            &track,
            8,
            &CaptureConfig { chirp, noise_sigma: 0.005, ..Default::default() },
        );
        (pipeline, session.frames)
    }

    #[test]
    fn pipeline_produces_skeletons_and_meshes() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames);
        assert_eq!(out.skeletons.len(), 4); // 8 frames / 2 per segment
        assert_eq!(out.hands.len(), 4);
        for s in &out.skeletons {
            assert_eq!(s.len(), 63);
            assert!(s.iter().all(|v| v.is_finite()));
        }
        for h in &out.hands {
            assert!(!h.mesh.vertices.is_empty());
        }
        assert!(out.timing.skeleton_ms > 0.0);
        assert!(out.timing.mesh_ms > 0.0);
        assert!(out.timing.total_ms() >= out.timing.skeleton_ms);
    }

    #[test]
    fn skeleton_only_path_skips_mesh_time() {
        let (mut pipeline, frames) = tiny_pipeline();
        let (skeletons, timing) = pipeline.estimate_skeletons(&frames);
        assert_eq!(skeletons.len(), 4);
        assert_eq!(timing.mesh_ms, 0.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let (mut pipeline, _) = tiny_pipeline();
        let out = pipeline.estimate(&[]);
        assert!(out.skeletons.is_empty());
        assert!(out.hands.is_empty());
    }

    #[test]
    fn stage_timing_is_a_view_over_spans() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames);
        let t = out.timing;
        // The skeleton stage is exactly the sum of its two spans.
        assert!((t.cube_ms + t.regress_ms - t.skeleton_ms).abs() < 1e-9);
        assert!(t.cube_ms > 0.0 && t.regress_ms > 0.0);
        // The same spans landed in the global registry.
        let snap = mmhand_telemetry::snapshot();
        for name in ["pipeline.cube_build", "pipeline.regression", "pipeline.mesh"] {
            let h = snap
                .histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h)
                .expect("span histogram registered");
            assert!(h.count >= 1, "{name} recorded at least one span");
            assert!(h.sum >= 0.0);
        }
    }

    #[test]
    fn from_span_ns_converts_to_ms() {
        let t = StageTiming::from_span_ns(1_500_000, 500_000, 3_000_000);
        assert!((t.cube_ms - 1.5).abs() < 1e-12);
        assert!((t.regress_ms - 0.5).abs() < 1e-12);
        assert!((t.skeleton_ms - 2.0).abs() < 1e-12);
        assert!((t.mesh_ms - 3.0).abs() < 1e-12);
        assert!((t.total_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn partial_segment_is_dropped() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames[..3]); // 1.5 segments
        assert_eq!(out.skeletons.len(), 1);
    }
}
