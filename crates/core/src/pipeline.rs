//! The end-to-end mmHand pipeline (paper Fig. 2): raw radar frames →
//! pre-processing → 3-D skeletons → MANO meshes, with the stage timing
//! instrumentation behind the paper's Fig. 26.

use crate::cube::CubeBuilder;
use crate::mesh::{MeshReconstructor, ReconstructedHand};
use crate::train::TrainedModel;
use mmhand_nn::Tensor;
use mmhand_radar::RawFrame;
use std::time::Instant;

/// Wall-clock timing of one pipeline invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTiming {
    /// Pre-processing + joint regression time (skeleton stage), ms.
    pub skeleton_ms: f64,
    /// Mesh-reconstruction time, ms.
    pub mesh_ms: f64,
}

impl StageTiming {
    /// Total pipeline time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.skeleton_ms + self.mesh_ms
    }
}

/// One pipeline result: skeletons and meshes for a window of frames.
#[derive(Debug)]
pub struct PipelineOutput {
    /// One flat 63-float skeleton per segment in the window.
    pub skeletons: Vec<Vec<f32>>,
    /// One reconstructed hand per skeleton.
    pub hands: Vec<ReconstructedHand>,
    /// Stage timings for this invocation.
    pub timing: StageTiming,
}

/// The full estimator: cube builder + trained regressor + mesh module.
pub struct MmHandPipeline {
    builder: CubeBuilder,
    model: TrainedModel,
    mesh: MeshReconstructor,
}

impl MmHandPipeline {
    /// Assembles a pipeline from trained parts.
    pub fn new(builder: CubeBuilder, model: TrainedModel, mesh: MeshReconstructor) -> Self {
        MmHandPipeline { builder, model, mesh }
    }

    /// The cube builder (e.g. to inspect configuration).
    pub fn builder(&self) -> &CubeBuilder {
        &self.builder
    }

    /// The mesh reconstructor.
    pub fn mesh_reconstructor(&self) -> &MeshReconstructor {
        &self.mesh
    }

    /// Converts raw frames into per-segment input tensors. Frames that do
    /// not fill a whole segment are dropped.
    pub fn frames_to_segments(&mut self, frames: &[RawFrame]) -> Vec<Tensor> {
        let st = self.builder.config().frames_per_segment;
        let n_segments = frames.len() / st;
        (0..n_segments)
            .map(|s| {
                let cubes: Vec<_> = (0..st)
                    .map(|k| self.builder.process_frame(&frames[s * st + k]))
                    .collect();
                self.builder.segment_tensor(&cubes)
            })
            .collect()
    }

    /// Regresses skeletons only (no meshes) with timing.
    pub fn estimate_skeletons(&mut self, frames: &[RawFrame]) -> (Vec<Vec<f32>>, StageTiming) {
        // audit: allow(determinism) — wall-clock here only measures latency, it never feeds results
        let start = Instant::now();
        let segments = self.frames_to_segments(frames);
        let skeletons = if segments.is_empty() {
            Vec::new()
        } else {
            self.model.predict_sequence(&segments)
        };
        let timing = StageTiming {
            skeleton_ms: start.elapsed().as_secs_f64() * 1000.0,
            mesh_ms: 0.0,
        };
        (skeletons, timing)
    }

    /// Full pipeline: skeletons plus reconstructed meshes.
    ///
    /// Uses the fitted mesh networks when available, the analytic IK path
    /// otherwise.
    pub fn estimate(&mut self, frames: &[RawFrame]) -> PipelineOutput {
        let (skeletons, mut timing) = self.estimate_skeletons(frames);
        // audit: allow(determinism) — wall-clock here only measures latency, it never feeds results
        let start = Instant::now();
        let hands: Vec<ReconstructedHand> = skeletons
            .iter()
            .map(|s| {
                if self.mesh.is_fitted() {
                    self.mesh.reconstruct(s)
                } else {
                    self.mesh.reconstruct_analytic(s)
                }
            })
            .collect();
        timing.mesh_ms = start.elapsed().as_secs_f64() * 1000.0;
        PipelineOutput { skeletons, hands, timing }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, CubeConfig};
    use crate::eval::{build_cohort, train_reference_model, DataConfig};
    use crate::model::ModelConfig;
    use crate::train::TrainConfig;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::trajectory::GestureTrack;
    use mmhand_hand::user::UserProfile;
    use mmhand_math::Vec3;
    use mmhand_radar::capture::{record_session, CaptureConfig};
    use mmhand_radar::{ChirpConfig, Environment};

    fn tiny_pipeline() -> (MmHandPipeline, Vec<mmhand_radar::RawFrame>) {
        let chirp = ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() };
        let cube = CubeConfig {
            chirp,
            range_bins: 8,
            doppler_bins: 4,
            azimuth_bins: 4,
            elevation_bins: 4,
            frames_per_segment: 2,
            range_max_m: 0.55,
            ..Default::default()
        };
        let data = DataConfig {
            users: 2,
            frames_per_user: 16,
            gestures_per_track: 2,
            seq_len: 2,
            capture: CaptureConfig {
                chirp,
                environment: Environment::Playground,
                noise_sigma: 0.005,
                ..Default::default()
            },
            cube: cube.clone(),
            seed: 3,
            ..Default::default()
        };
        let model_cfg = ModelConfig {
            channels: 6,
            blocks: 1,
            feature_dim: 24,
            lstm_hidden: 24,
            ..data.model_config()
        };
        let seqs = build_cohort(&data);
        let model = train_reference_model(
            &seqs,
            &model_cfg,
            &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
        );
        let pipeline = MmHandPipeline::new(
            CubeBuilder::new(cube),
            model,
            crate::mesh::MeshReconstructor::new(0),
        );
        // A fresh capture to run inference on.
        let user = UserProfile::generate(1, 3);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Victory],
            Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        let session = record_session(
            &user,
            &track,
            8,
            &CaptureConfig { chirp, noise_sigma: 0.005, ..Default::default() },
        );
        (pipeline, session.frames)
    }

    #[test]
    fn pipeline_produces_skeletons_and_meshes() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames);
        assert_eq!(out.skeletons.len(), 4); // 8 frames / 2 per segment
        assert_eq!(out.hands.len(), 4);
        for s in &out.skeletons {
            assert_eq!(s.len(), 63);
            assert!(s.iter().all(|v| v.is_finite()));
        }
        for h in &out.hands {
            assert!(!h.mesh.vertices.is_empty());
        }
        assert!(out.timing.skeleton_ms > 0.0);
        assert!(out.timing.mesh_ms > 0.0);
        assert!(out.timing.total_ms() >= out.timing.skeleton_ms);
    }

    #[test]
    fn skeleton_only_path_skips_mesh_time() {
        let (mut pipeline, frames) = tiny_pipeline();
        let (skeletons, timing) = pipeline.estimate_skeletons(&frames);
        assert_eq!(skeletons.len(), 4);
        assert_eq!(timing.mesh_ms, 0.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let (mut pipeline, _) = tiny_pipeline();
        let out = pipeline.estimate(&[]);
        assert!(out.skeletons.is_empty());
        assert!(out.hands.is_empty());
    }

    #[test]
    fn partial_segment_is_dropped() {
        let (mut pipeline, frames) = tiny_pipeline();
        let out = pipeline.estimate(&frames[..3]); // 1.5 segments
        assert_eq!(out.skeletons.len(), 1);
    }
}
