//! Dataset assembly: capture sessions → training/evaluation sequences.
//!
//! The network consumes *segments* (`st` consecutive radar-cube frames,
//! paper §IV) and the LSTM consumes *sequences* of consecutive segments.
//! A [`SegmentSequence`] is one such sequence with a 21-joint label per
//! segment (the joints at the segment's last frame).

use crate::cube::CubeBuilder;
use crate::error::PipelineError;
use crate::model::OUTPUT_DIM;
use mmhand_nn::Tensor;
use mmhand_radar::CaptureSession;
use rand::seq::SliceRandom;
use rand::Rng;

/// A sequence of consecutive segments from one capture session.
#[derive(Clone, Debug)]
pub struct SegmentSequence {
    /// One `(st·V, D, A)` tensor per sequence step.
    pub segments: Vec<Tensor>,
    /// Flat 63-float joint label per step (metres, radar frame).
    pub labels: Vec<Vec<f32>>,
    /// User the data came from (1-based; 0 = unknown).
    pub user_id: usize,
}

impl SegmentSequence {
    /// Sequence length in segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` when the sequence has no steps.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// A batch of equally long sequences, stacked along the batch axis.
#[derive(Clone, Debug)]
pub struct Batch {
    /// `(N, st·V, D, A)` tensor per step.
    pub segments: Vec<Tensor>,
    /// `(N, 63)` label tensor per step.
    pub labels: Vec<Tensor>,
}

impl Batch {
    /// Batch size `N`.
    pub fn batch_size(&self) -> usize {
        self.labels.first().map_or(0, |l| l.shape()[0])
    }
}

/// Converts one capture session into sequences of `seq_len` segments.
///
/// Frames are grouped into non-overlapping segments of the builder's
/// `frames_per_segment`; leftover frames/segments are dropped. The label of
/// a segment is the ground truth at its last frame.
pub fn session_to_sequences(
    builder: &CubeBuilder,
    session: &CaptureSession,
    seq_len: usize,
    user_id: usize,
) -> Vec<SegmentSequence> {
    try_session_to_sequences(builder, session, seq_len, user_id)
        .expect("sequence length must be positive and frames must match the cube geometry")
}

/// Fallible variant of [`session_to_sequences`].
///
/// # Errors
///
/// Returns [`PipelineError::EmptyInput`] for a zero sequence length and
/// propagates frame-geometry violations from the cube builder.
pub fn try_session_to_sequences(
    builder: &CubeBuilder,
    session: &CaptureSession,
    seq_len: usize,
    user_id: usize,
) -> Result<Vec<SegmentSequence>, PipelineError> {
    if seq_len == 0 {
        return Err(PipelineError::EmptyInput { what: "sequence length" });
    }
    let st = builder.config().frames_per_segment;
    let n_segments = session.len() / st;
    // Segments are independent of one another, so they fan out across the
    // pool; each worker clones the builder (cheap — the FFT/zoom plans are
    // Arc-shared) to get its own scratch state. `par_map` returns results in
    // input order, so the dataset is identical to the serial construction.
    let indices: Vec<usize> = (0..n_segments).collect();
    let per_segment = mmhand_parallel::par_map(&indices, |&s| {
        let worker = builder.clone();
        let cube_frames = (0..st)
            .map(|k| worker.try_process_frame(&session.frames[s * st + k]))
            .collect::<Result<Vec<_>, _>>()?;
        let segment = worker.try_segment_tensor(&cube_frames)?;
        let truth = &session.truth[s * st + st - 1];
        let label = truth.iter().flat_map(|v| v.to_array()).collect::<Vec<f32>>();
        Ok::<_, PipelineError>((segment, label))
    });
    let mut segments = Vec::with_capacity(n_segments);
    let mut labels = Vec::with_capacity(n_segments);
    for r in per_segment {
        let (segment, label) = r?;
        segments.push(segment);
        labels.push(label);
    }

    let mut out = Vec::new();
    let mut i = 0;
    while i + seq_len <= segments.len() {
        out.push(SegmentSequence {
            segments: segments[i..i + seq_len].to_vec(),
            labels: labels[i..i + seq_len].to_vec(),
            user_id,
        });
        i += seq_len;
    }
    Ok(out)
}

/// Stacks sequences (all of the same length) into shuffled batches.
///
/// The final batch may be smaller. Returns an empty vector for an empty
/// dataset.
///
/// # Panics
///
/// Panics if sequences have differing lengths.
pub fn make_batches<R: Rng + ?Sized>(
    sequences: &[SegmentSequence],
    batch_size: usize,
    rng: &mut R,
) -> Vec<Batch> {
    try_make_batches(sequences, batch_size, rng).expect("all sequences must share a length")
}

/// Fallible variant of [`make_batches`].
///
/// # Errors
///
/// Returns [`PipelineError::MismatchedSequenceLength`] when sequences have
/// differing lengths.
pub fn try_make_batches<R: Rng + ?Sized>(
    sequences: &[SegmentSequence],
    batch_size: usize,
    rng: &mut R,
) -> Result<Vec<Batch>, PipelineError> {
    if sequences.is_empty() {
        return Ok(Vec::new());
    }
    let seq_len = sequences[0].len();
    for s in sequences {
        if s.len() != seq_len {
            return Err(PipelineError::MismatchedSequenceLength {
                expected: seq_len,
                got: s.len(),
            });
        }
    }
    let mut order: Vec<usize> = (0..sequences.len()).collect();
    order.shuffle(rng);

    let mut batches = Vec::new();
    for chunk in order.chunks(batch_size.max(1)) {
        let n = chunk.len();
        let seg_shape = sequences[chunk[0]].segments[0].shape().to_vec();
        let mut segments = Vec::with_capacity(seq_len);
        let mut labels = Vec::with_capacity(seq_len);
        for t in 0..seq_len {
            let mut seg_data = Vec::with_capacity(n * seg_shape.iter().product::<usize>());
            let mut lab_data = Vec::with_capacity(n * OUTPUT_DIM);
            for &si in chunk {
                seg_data.extend_from_slice(sequences[si].segments[t].data());
                lab_data.extend_from_slice(&sequences[si].labels[t]);
            }
            let mut shape = vec![n];
            shape.extend_from_slice(&seg_shape);
            segments.push(Tensor::from_vec(&shape, seg_data));
            labels.push(Tensor::from_vec(&[n, OUTPUT_DIM], lab_data));
        }
        batches.push(Batch { segments, labels });
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeConfig;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::trajectory::GestureTrack;
    use mmhand_hand::user::UserProfile;
    use mmhand_math::rng::stream_rng;
    use mmhand_math::Vec3;
    use mmhand_radar::capture::{record_session, CaptureConfig};

    fn quick_session(frames: usize) -> CaptureSession {
        let user = UserProfile::generate(1, 77);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Fist],
            Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        record_session(&user, &track, frames, &CaptureConfig::default())
    }

    #[test]
    fn session_converts_to_sequences() {
        let builder = CubeBuilder::new(CubeConfig::default());
        let session = quick_session(26); // 6 segments of 4, 2 frames dropped
        let seqs = session_to_sequences(&builder, &session, 3, 1);
        assert_eq!(seqs.len(), 2);
        for s in &seqs {
            assert_eq!(s.len(), 3);
            assert_eq!(s.user_id, 1);
            for (seg, lab) in s.segments.iter().zip(&s.labels) {
                assert_eq!(seg.shape(), &[32, 16, 16]);
                assert_eq!(lab.len(), OUTPUT_DIM);
                assert!(lab.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn labels_match_segment_end_frames() {
        let builder = CubeBuilder::new(CubeConfig::default());
        let session = quick_session(8);
        let seqs = session_to_sequences(&builder, &session, 2, 1);
        assert_eq!(seqs.len(), 1);
        // Segment 0 covers frames 0..4 → label is truth[3].
        let expected: Vec<f32> =
            session.truth[3].iter().flat_map(|v| v.to_array()).collect();
        assert_eq!(seqs[0].labels[0], expected);
    }

    #[test]
    fn batches_stack_and_shuffle() {
        let builder = CubeBuilder::new(CubeConfig::default());
        let session = quick_session(40); // 10 segments → 5 sequences of 2
        let seqs = session_to_sequences(&builder, &session, 2, 1);
        assert_eq!(seqs.len(), 5);
        let mut rng = stream_rng(1, "batch");
        let batches = make_batches(&seqs, 2, &mut rng);
        assert_eq!(batches.len(), 3); // 2 + 2 + 1
        assert_eq!(batches[0].batch_size(), 2);
        assert_eq!(batches[2].batch_size(), 1);
        assert_eq!(batches[0].segments[0].shape(), &[2, 32, 16, 16]);
        assert_eq!(batches[0].labels[1].shape(), &[2, OUTPUT_DIM]);
    }

    #[test]
    fn empty_dataset_yields_no_batches() {
        let mut rng = stream_rng(2, "b");
        assert!(make_batches(&[], 4, &mut rng).is_empty());
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let builder = CubeBuilder::new(CubeConfig::default());
        let session = quick_session(8);
        assert!(matches!(
            try_session_to_sequences(&builder, &session, 0, 1),
            Err(PipelineError::EmptyInput { what: "sequence length" })
        ));
        let mut seqs = try_session_to_sequences(&builder, &session, 2, 1)
            .expect("valid session converts");
        assert_eq!(seqs.len(), 1);
        // A truncated sequence makes the dataset ragged.
        let mut short = seqs[0].clone();
        short.segments.pop();
        short.labels.pop();
        seqs.push(short);
        let mut rng = stream_rng(5, "tb");
        assert!(matches!(
            try_make_batches(&seqs, 2, &mut rng),
            Err(PipelineError::MismatchedSequenceLength { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn parallel_segment_generation_matches_serial_bitwise() {
        // The fan-out must be a pure reordering of work: every segment
        // tensor and label must be bitwise identical to the straightforward
        // serial construction on one shared builder.
        let builder = CubeBuilder::new(CubeConfig::default());
        let session = quick_session(26);
        let seqs = session_to_sequences(&builder, &session, 3, 1);

        let st = builder.config().frames_per_segment;
        let n_segments = session.len() / st;
        let mut segments = Vec::new();
        let mut labels: Vec<Vec<f32>> = Vec::new();
        for s in 0..n_segments {
            let cube_frames: Vec<_> = (0..st)
                .map(|k| builder.try_process_frame(&session.frames[s * st + k]).unwrap())
                .collect();
            segments.push(builder.try_segment_tensor(&cube_frames).unwrap());
            let truth = &session.truth[s * st + st - 1];
            labels.push(truth.iter().flat_map(|v| v.to_array()).collect());
        }

        let mut flat = seqs.iter().flat_map(|q| q.segments.iter().zip(&q.labels));
        for (serial_seg, serial_lab) in segments.iter().zip(&labels).take(6) {
            let (par_seg, par_lab) = flat.next().expect("same segment count");
            assert_eq!(par_seg.shape(), serial_seg.shape());
            for (a, b) in par_seg.data().iter().zip(serial_seg.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in par_lab.iter().zip(serial_lab) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn too_short_session_yields_nothing() {
        let builder = CubeBuilder::new(CubeConfig::default());
        let session = quick_session(3); // under one segment
        let seqs = session_to_sequences(&builder, &session, 1, 1);
        assert!(seqs.is_empty());
    }
}
