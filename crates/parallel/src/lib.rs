//! # mmhand-parallel
//!
//! A small, dependency-free scoped fork-join thread pool shared by every
//! hot path in the workspace: the GEMM/conv kernels in `mmhand-nn`, the
//! per-antenna FFT fan-out in `mmhand-dsp`/`mmhand-core`, the data-parallel
//! trainer, and the concurrent experiment runner in `mmhand-bench`.
//!
//! Design points:
//!
//! * **Persistent workers.** One global pool is spawned lazily; tasks are
//!   `Box<dyn FnOnce>` pushed onto a shared injector queue. No per-call
//!   thread spawning, so even kernels called thousands of times per
//!   training step can use it.
//! * **Scoped spawning.** [`scope`] lets tasks borrow from the caller's
//!   stack (like `std::thread::scope`), and does not return until every
//!   spawned task has finished — including when the scope body panics.
//! * **Nesting without deadlock.** A thread waiting on its scope *helps*:
//!   it pops and runs queued tasks instead of blocking, so a worker whose
//!   task opens a nested scope (e.g. a parallel trainer shard calling a
//!   parallel GEMM) can never starve the pool.
//! * **Thread count from `MMHAND_THREADS`.** Unset ⇒
//!   `std::thread::available_parallelism()`. `MMHAND_THREADS=1` (or a
//!   1-CPU machine) makes every helper run inline on the caller — the
//!   sequential fallback adds no queueing or synchronisation.
//! * **Determinism is structural, not accidental.** [`par_map`] returns
//!   results in input order and [`par_chunks_mut`] hands out disjoint
//!   chunks with their index; callers that reduce in chunk order get the
//!   same floating-point result at any thread count.
//!
//! # Examples
//!
//! ```
//! let squares = mmhand_parallel::par_map(&[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let mut data = vec![0u32; 8];
//! mmhand_parallel::par_chunks_mut(&mut data, 2, |chunk_idx, chunk| {
//!     for v in chunk.iter_mut() {
//!         *v = chunk_idx as u32;
//!     }
//! });
//! assert_eq!(data, vec![0, 0, 1, 1, 2, 2, 3, 3]);
//! ```

pub mod scratch;

pub use scratch::ScratchPool;

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send>;

/// Pool-wide telemetry handles, resolved once. Queue depth is sampled at
/// push/pop; task counts and busy time are recorded at the execution sites
/// (worker loop, scope help-loop, inline path).
struct PoolMetrics {
    tasks_spawned: mmhand_telemetry::Counter,
    tasks_executed: mmhand_telemetry::Counter,
    inline_tasks: mmhand_telemetry::Counter,
    queue_depth: mmhand_telemetry::Gauge,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        tasks_spawned: mmhand_telemetry::counter("parallel.tasks_spawned"),
        tasks_executed: mmhand_telemetry::counter("parallel.tasks_executed"),
        inline_tasks: mmhand_telemetry::counter("parallel.inline_tasks"),
        queue_depth: mmhand_telemetry::gauge("parallel.queue_depth"),
    })
}

struct Injector {
    queue: Mutex<VecDeque<Task>>,
    ready: Condvar,
}

impl Injector {
    fn push(&self, task: Task) {
        let depth = {
            let mut queue = self.queue.lock().expect("injector queue");
            queue.push_back(task);
            queue.len()
        };
        self.ready.notify_one();
        let m = pool_metrics();
        m.tasks_spawned.inc();
        m.queue_depth.set(depth as f64);
    }

    fn try_pop(&self) -> Option<Task> {
        let (task, depth) = {
            let mut queue = self.queue.lock().expect("injector queue");
            let task = queue.pop_front();
            (task, queue.len())
        };
        if task.is_some() {
            pool_metrics().queue_depth.set(depth as f64);
        }
        task
    }
}

/// A fork-join pool with persistent worker threads.
///
/// Most code should use the free functions ([`par_map`], [`par_chunks_mut`],
/// [`scope`]) which share one process-global pool; constructing private
/// pools is mainly useful in tests.
pub struct ThreadPool {
    injector: Arc<Injector>,
    /// Total execution width including the caller thread (workers + 1).
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool of `threads` execution lanes. One lane is the calling
    /// thread itself (it helps while waiting on scopes), so `threads - 1`
    /// worker threads are spawned; `threads <= 1` spawns none.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        for i in 0..threads - 1 {
            let inj = Arc::clone(&injector);
            std::thread::Builder::new()
                .name(format!("mmhand-worker-{i}"))
                .spawn(move || worker_loop(&inj, i))
                .expect("spawn pool worker");
        }
        ThreadPool { injector, threads }
    }

    /// Execution width of the pool (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] for spawning borrowed tasks, returning
    /// only after every spawned task has completed.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from the scope body or any spawned task
    /// (after all tasks have finished).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Wait for spawned tasks, helping with queued work meanwhile. This
        // runs even when the body panicked: borrowed tasks must finish
        // before the borrow expires.
        while state.pending.load(Ordering::Acquire) > 0 {
            if let Some(task) = self.injector.try_pop() {
                task();
                pool_metrics().tasks_executed.inc();
            } else {
                let guard = state.done.lock().expect("scope done lock");
                if state.pending.load(Ordering::Acquire) > 0 {
                    // Timed wait: the task we would wait for may be popped
                    // and executed by a thread parked in a different scope,
                    // so a lost-wakeup-free timeout keeps this robust.
                    let _ = state
                        .done_cv
                        .wait_timeout(guard, Duration::from_millis(1))
                        .expect("scope done wait");
                }
            }
        }

        if let Some(payload) = state.panic.lock().expect("scope panic lock").take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

fn worker_loop(injector: &Injector, index: usize) {
    let metrics = pool_metrics();
    // Per-worker handles: tasks run and cumulative busy time, the inputs to
    // a per-worker utilization view (busy time over pool uptime).
    let worker_tasks = mmhand_telemetry::counter(&format!("parallel.worker.{index}.tasks"));
    let worker_busy_us = mmhand_telemetry::counter(&format!("parallel.worker.{index}.busy_us"));
    loop {
        let (task, depth) = {
            let mut queue = injector.queue.lock().expect("injector queue");
            loop {
                if let Some(t) = queue.pop_front() {
                    break (t, queue.len());
                }
                queue = injector.ready.wait(queue).expect("injector wait");
            }
        };
        metrics.queue_depth.set(depth as f64);
        if mmhand_telemetry::enabled() {
            let start_ns = mmhand_telemetry::now_ns();
            task();
            let elapsed_ns = mmhand_telemetry::now_ns().saturating_sub(start_ns);
            worker_busy_us.add(elapsed_ns / 1_000);
        } else {
            task();
        }
        metrics.tasks_executed.inc();
        worker_tasks.inc();
    }
}

struct ScopeState {
    pending: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Spawning handle passed to the closure of [`ThreadPool::scope`] /
/// [`scope`]. Tasks may borrow anything that outlives the scope call.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns `task` onto the pool. With a single-lane pool (or inside
    /// [`sequential_scope`]) the task runs inline on the caller.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.threads <= 1 || in_sequential_scope() || thread_cap() <= 1 {
            task();
            pool_metrics().inline_tasks.inc();
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        // Carry the spawning thread's cap into the worker so nested
        // helpers (a GEMM inside a trainer shard) observe the same
        // effective width no matter which thread runs the task.
        let cap = thread_cap();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _cap = set_cap(cap);
                task()
            }));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().expect("scope panic lock");
                slot.get_or_insert(payload);
            }
            // Hold the lock while decrementing so the waiter's check-then-
            // wait in `scope` cannot miss the final notification.
            let _guard = state.done.lock().expect("scope done lock");
            state.pending.fetch_sub(1, Ordering::AcqRel);
            state.done_cv.notify_all();
        });
        // SAFETY: this transmute erases the `'env` lifetime of the boxed
        // task so it can pass through the `'static` injector queue. It is
        // sound because the scope API upholds these invariants:
        //
        // * Lifetime: `scope` does not return — on the normal path *or*
        //   when the body panics (the wait loop runs before `resume_unwind`)
        //   — until `pending` reaches zero, and `pending` is decremented
        //   only after the job has run to completion. Every `'env` borrow
        //   captured by the job therefore ends before its referent can be
        //   dropped or moved.
        // * Ordering: the decrement uses `AcqRel` and the waiter re-checks
        //   `pending` with `Acquire` while holding `done`, the same lock the
        //   job takes before decrementing, so the waiter cannot observe
        //   zero before the job's writes to borrowed data are visible.
        // * Aliasing: the transmute changes only the lifetime parameter,
        //   never the pointee type, and spawning requires `F: Send`, so any
        //   `&mut` the job captures was exclusive at spawn time and stays
        //   exclusive — callers hand out disjoint `&mut` chunks (e.g.
        //   `par_chunks_mut` via `chunks_mut`), and the caller thread does
        //   not touch the borrowed data until `scope` returns.
        // * No escape: the queue and worker loop run each `Task` exactly
        //   once and never clone or leak it, so the erased-lifetime box
        //   cannot outlive the scope that spawned it.
        let job: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.injector.push(job);
    }
}

thread_local! {
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
    static THREAD_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn in_sequential_scope() -> bool {
    FORCE_SEQUENTIAL.with(Cell::get)
}

fn thread_cap() -> usize {
    THREAD_CAP.with(Cell::get)
}

/// Restores the previous cap when dropped, including during unwinding, so
/// a panicking task cannot leave a stale cap on a pool worker.
struct CapGuard(usize);

impl Drop for CapGuard {
    fn drop(&mut self) {
        THREAD_CAP.with(|c| c.set(self.0));
    }
}

fn set_cap(cap: usize) -> CapGuard {
    THREAD_CAP.with(|c| CapGuard(c.replace(cap)))
}

/// Runs `f` with [`num_threads`] capped at `cap` on this thread (and on any
/// task spawned from it, transitively). A cap of 1 forces the inline
/// sequential path, like [`sequential_scope`]; nested caps take the
/// minimum. This lets one process compare execution at several effective
/// widths — the scheduler audit trains at caps 1/2/4/8 and asserts
/// bitwise-identical gradients.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    let cap = cap.max(1);
    let _guard = set_cap(cap.min(thread_cap()));
    f()
}

/// Runs `f` with every parallel helper on this thread forced to the inline
/// sequential path — exactly what `MMHAND_THREADS=1` does process-wide.
/// Used by the determinism regression tests to compare one- and
/// many-thread execution inside a single process.
pub fn sequential_scope<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SEQUENTIAL.with(|flag| {
        let prev = flag.replace(true);
        let result = f();
        flag.set(prev);
        result
    })
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
static CONFIGURED: Mutex<Option<usize>> = Mutex::new(None);

/// Requests a specific width for the global pool. Must be called before the
/// pool is first used; returns `Err` with the existing width if it is
/// already running. Tests use this to guarantee a multi-thread pool on
/// single-core CI machines.
pub fn configure_threads(threads: usize) -> Result<(), usize> {
    if let Some(pool) = GLOBAL.get() {
        return if pool.threads() == threads.max(1) { Ok(()) } else { Err(pool.threads()) };
    }
    *CONFIGURED.lock().expect("configure lock") = Some(threads.max(1));
    // Materialise immediately so a racing first use cannot override.
    let got = global().threads();
    if got == threads.max(1) {
        Ok(())
    } else {
        Err(got)
    }
}

fn env_threads() -> usize {
    if let Ok(v) = std::env::var("MMHAND_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 256);
        }
        eprintln!("[mmhand-parallel] ignoring unparsable MMHAND_THREADS={v:?}");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-global pool, created on first use.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let requested = CONFIGURED.lock().expect("configure lock").take();
        ThreadPool::new(requested.unwrap_or_else(env_threads))
    })
}

/// Effective execution width on this thread: the global pool's width,
/// clamped by any enclosing [`with_thread_cap`] (1 ⇒ everything runs
/// inline).
pub fn num_threads() -> usize {
    global().threads().min(thread_cap())
}

/// `true` when parallel helpers on this thread would run inline.
pub fn is_sequential() -> bool {
    num_threads() <= 1 || in_sequential_scope()
}

/// Scoped fork-join on the global pool; see [`ThreadPool::scope`].
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    global().scope(f)
}

/// Applies `f` to every item, in parallel, returning results in input
/// order. Each item is one task, so use this for coarse work (a CV fold, a
/// user session, a sweep point) rather than per-element math.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= 1 || is_sequential() {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    scope(|s| {
        for (item, slot) in items.iter().zip(slots.iter_mut()) {
            let f = &f;
            s.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("par_map task completed"))
        .collect()
}

/// Splits `data` into consecutive chunks of `chunk_len` (the last may be
/// shorter) and runs `f(chunk_index, chunk)` on each in parallel. Chunks
/// are disjoint, so no synchronisation is needed inside `f`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.len() <= chunk_len || is_sequential() {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    scope(|s| {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move || f(idx, chunk));
        }
    });
}

/// Runs `f(index)` for every index in `0..n` in parallel — the fork-join
/// equivalent of a `for` loop whose iterations are independent.
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n <= 1 || is_sequential() {
        for i in 0..n {
            f(i);
        }
        return;
    }
    scope(|s| {
        for i in 0..n {
            let f = &f;
            s.spawn(move || f(i));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let mut data = vec![0u32; 103];
        par_chunks_mut(&mut data, 10, |idx, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (idx * 10 + i) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v as usize, i);
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let outer: Vec<u64> = (0..8).collect();
        let sums = par_map(&outer, |&o| {
            let inner: Vec<u64> = (0..16).collect();
            par_map(&inner, |&i| o * 100 + i).iter().sum::<u64>()
        });
        for (o, s) in sums.iter().enumerate() {
            assert_eq!(*s, (0..16).map(|i| o as u64 * 100 + i).sum::<u64>());
        }
    }

    #[test]
    fn pool_records_task_telemetry() {
        let spawned = mmhand_telemetry::counter("parallel.tasks_spawned");
        let executed = mmhand_telemetry::counter("parallel.tasks_executed");
        let before_spawned = spawned.get();
        let before_executed = executed.get();
        // A private multi-lane pool guarantees the queued path even on a
        // single-CPU machine (the global pool would run inline there).
        let pool = ThreadPool::new(3);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        // Other tests run concurrently, so assert growth, not exact counts.
        assert!(spawned.get() >= before_spawned + 16, "spawn counter advanced");
        assert!(executed.get() >= before_executed + 16, "execute counter advanced");
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn sequential_scope_forces_inline() {
        sequential_scope(|| {
            assert!(is_sequential());
            let tid = std::thread::current().id();
            let ids = par_map(&[0u8; 8], |_| std::thread::current().id());
            assert!(ids.iter().all(|id| *id == tid));
        });
    }

    #[test]
    fn thread_cap_of_one_forces_inline() {
        let baseline = num_threads();
        with_thread_cap(1, || {
            assert_eq!(num_threads(), 1);
            assert!(is_sequential());
            let tid = std::thread::current().id();
            let ids = par_map(&[0u8; 8], |_| std::thread::current().id());
            assert!(ids.iter().all(|id| *id == tid));
        });
        assert_eq!(num_threads(), baseline);
    }

    #[test]
    fn nested_caps_take_the_minimum() {
        with_thread_cap(4, || {
            assert!(num_threads() <= 4);
            with_thread_cap(2, || assert!(num_threads() <= 2));
            // A wider nested cap cannot widen past the enclosing one.
            with_thread_cap(8, || assert!(num_threads() <= 4));
            assert!(num_threads() <= 4);
        });
    }

    #[test]
    fn cap_propagates_into_spawned_tasks() {
        with_thread_cap(2, || {
            let caps = par_map(&(0..16).collect::<Vec<u32>>(), |_| num_threads());
            assert!(caps.iter().all(|&c| c <= 2), "observed widths {caps:?}");
        });
    }

    #[test]
    fn cap_restored_after_task_panic() {
        let baseline = num_threads();
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_thread_cap(2, || {
                scope(|s| s.spawn(|| panic!("cap boom")));
            });
        }));
        assert!(result.is_err());
        assert_eq!(num_threads(), baseline);
    }

    #[test]
    fn spawned_panic_propagates() {
        let private = ThreadPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            private.scope(|s| {
                s.spawn(|| panic!("task boom"));
                s.spawn(|| {});
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn private_pool_runs_borrowed_tasks() {
        let pool = ThreadPool::new(4);
        let mut out = [0u32; 16];
        pool.scope(|s| {
            for (i, v) in out.iter_mut().enumerate() {
                s.spawn(move || *v = i as u32 + 1);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }
}
