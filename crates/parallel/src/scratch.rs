//! Per-thread scratch-buffer pools for the workspace's hot kernels.
//!
//! Every hot path in the pipeline — im2col columns in `mmhand-nn`, FFT and
//! filter working buffers in `mmhand-dsp`, cube assembly in `mmhand-core` —
//! needs a sized working buffer per call. Allocating it fresh (`vec![0.0;
//! n]`) pays a malloc/free round trip thousands of times per frame.
//! [`ScratchPool`] keeps returned buffers on a per-thread free list so a
//! steady-state kernel re-checks-out the same allocation every call.
//!
//! # Ownership and thread locality
//!
//! A pool is meant to live in a `thread_local!`: every pool-owning thread —
//! the caller or any `mmhand-parallel` worker — has its own free list, so
//! checkout needs no locks and never migrates buffers across threads. A
//! task that runs on a different worker simply warms that worker's pool.
//!
//! # Determinism
//!
//! Checked-out buffers are always cleared and zero-filled to the requested
//! length before the caller sees them, so their contents never depend on
//! which thread ran the task or what ran before — pooled kernels stay
//! bitwise identical to their allocating ancestors at any thread count and
//! under any scheduler interleaving. The cost of the zero fill equals the
//! `vec![T::default(); n]` it replaces; the saving is the allocator round
//! trip (and the cold-memory faults behind it), not the memset.
//!
//! # Telemetry
//!
//! Pools share global `pool.*` metrics: `pool.checkouts`, `pool.hits`,
//! `pool.misses`, `pool.bytes_reused` counters, plus `pool.outstanding`
//! (buffers currently checked out across all threads) and `pool.hit_rate`
//! gauges. Each pool additionally counts its misses — true allocations — in
//! a per-stage counter `pool.alloc.<stage>`, which is what the per-frame
//! allocation budget in the bench harness is measured against.
//!
//! # Examples
//!
//! ```
//! use mmhand_parallel::ScratchPool;
//!
//! thread_local! {
//!     static POOL: ScratchPool<f32> = const { ScratchPool::new("doc.example") };
//! }
//!
//! let sum = POOL.with(|pool| {
//!     pool.with(128, |buf| {
//!         assert_eq!(buf.len(), 128);
//!         buf.iter_mut().for_each(|v| *v = 1.0);
//!         buf.iter().sum::<f32>()
//!     })
//! });
//! assert_eq!(sum, 128.0);
//! ```

use std::cell::{OnceCell, RefCell};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

/// Free buffers kept per pool before further returns are dropped. Hot
/// kernels nest at most a handful of checkouts, so a small cap bounds
/// worst-case retained memory without ever evicting a steady-state buffer.
const MAX_FREE_BUFFERS: usize = 16;

/// Buffers currently checked out across every pool and thread.
static OUTSTANDING: AtomicI64 = AtomicI64::new(0);

/// Workspace-wide pool telemetry, resolved once.
struct PoolStats {
    checkouts: mmhand_telemetry::Counter,
    hits: mmhand_telemetry::Counter,
    misses: mmhand_telemetry::Counter,
    bytes_reused: mmhand_telemetry::Counter,
    outstanding: mmhand_telemetry::Gauge,
    hit_rate: mmhand_telemetry::Gauge,
}

fn pool_stats() -> &'static PoolStats {
    static STATS: OnceLock<PoolStats> = OnceLock::new();
    STATS.get_or_init(|| PoolStats {
        checkouts: mmhand_telemetry::counter("pool.checkouts"),
        hits: mmhand_telemetry::counter("pool.hits"),
        misses: mmhand_telemetry::counter("pool.misses"),
        bytes_reused: mmhand_telemetry::counter("pool.bytes_reused"),
        outstanding: mmhand_telemetry::gauge("pool.outstanding"),
        hit_rate: mmhand_telemetry::gauge("pool.hit_rate"),
    })
}

/// A free list of reusable `Vec<T>` buffers for one pipeline stage.
///
/// See the [module documentation](self) for ownership, determinism, and
/// telemetry semantics. `T` must be `Copy + Default` so checkouts can be
/// zero-filled cheaply.
pub struct ScratchPool<T> {
    stage: &'static str,
    free: RefCell<Vec<Vec<T>>>,
    stage_allocs: OnceCell<mmhand_telemetry::Counter>,
}

impl<T: Copy + Default> ScratchPool<T> {
    /// Creates an empty pool for the given stage label (used as the
    /// `pool.alloc.<stage>` counter suffix). `const` so the pool can sit in
    /// a `thread_local!` with a `const` initializer.
    pub const fn new(stage: &'static str) -> Self {
        ScratchPool { stage, free: RefCell::new(Vec::new()), stage_allocs: OnceCell::new() }
    }

    /// Checks out a buffer of exactly `len` elements, zero-filled.
    ///
    /// Return it with [`put`](Self::put) when done; prefer
    /// [`with`](Self::with), which pairs the two automatically.
    pub fn take(&self, len: usize) -> Vec<T> {
        let stats = pool_stats();
        stats.checkouts.inc();
        let reused = self.free.borrow_mut().pop();
        let hit = reused.as_ref().is_some_and(|b| b.capacity() >= len);
        let mut buf = reused.unwrap_or_default();
        if hit {
            stats.hits.inc();
            stats.bytes_reused.add((len * std::mem::size_of::<T>()) as u64);
        } else {
            stats.misses.inc();
            self.stage_allocs
                .get_or_init(|| mmhand_telemetry::counter(&format!("pool.alloc.{}", self.stage)))
                .inc();
        }
        if mmhand_telemetry::enabled() {
            let outstanding = OUTSTANDING.fetch_add(1, Ordering::Relaxed) + 1;
            stats.outstanding.set(outstanding as f64);
            let checkouts = stats.checkouts.get();
            if checkouts > 0 {
                stats.hit_rate.set(stats.hits.get() as f64 / checkouts as f64);
            }
        }
        buf.clear();
        buf.resize(len, T::default());
        buf
    }

    /// Returns a buffer to the free list for reuse.
    pub fn put(&self, buf: Vec<T>) {
        if mmhand_telemetry::enabled() {
            let outstanding = OUTSTANDING.fetch_sub(1, Ordering::Relaxed) - 1;
            pool_stats().outstanding.set(outstanding as f64);
        }
        let mut free = self.free.borrow_mut();
        if free.len() < MAX_FREE_BUFFERS && buf.capacity() > 0 {
            free.push(buf);
        }
    }

    /// Runs `f` with a zero-filled buffer of `len` elements checked out from
    /// the pool, returning it afterwards (also on panic-free early return;
    /// a panicking `f` simply drops the buffer, which is safe — the pool
    /// just re-allocates on the next miss).
    ///
    /// Checkouts may nest: the buffer is popped before `f` runs, so `f` can
    /// call back into the same pool.
    pub fn with<R>(&self, len: usize, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        let mut buf = self.take(len);
        let result = f(&mut buf);
        self.put(buf);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    thread_local! {
        static TEST_POOL: ScratchPool<f32> = const { ScratchPool::new("test.scratch") };
    }

    #[test]
    fn buffers_are_zeroed_and_sized() {
        TEST_POOL.with(|pool| {
            pool.with(8, |buf| {
                assert_eq!(buf.len(), 8);
                assert!(buf.iter().all(|&v| v == 0.0));
                buf.iter_mut().for_each(|v| *v = 7.0);
            });
            // The dirtied buffer comes back clean.
            pool.with(8, |buf| {
                assert!(buf.iter().all(|&v| v == 0.0));
            });
        });
    }

    #[test]
    fn second_checkout_reuses_the_allocation() {
        thread_local! {
            static POOL: ScratchPool<u64> = const { ScratchPool::new("test.reuse") };
        }
        POOL.with(|pool| {
            let first_ptr = pool.with(64, |buf| buf.as_ptr() as usize);
            let second_ptr = pool.with(64, |buf| buf.as_ptr() as usize);
            assert_eq!(first_ptr, second_ptr, "steady-state checkout reuses the buffer");
        });
    }

    #[test]
    fn nested_checkouts_get_distinct_buffers() {
        TEST_POOL.with(|pool| {
            pool.with(16, |outer| {
                outer.iter_mut().for_each(|v| *v = 1.0);
                pool.with(16, |inner| {
                    assert!(inner.iter().all(|&v| v == 0.0));
                    assert_ne!(outer.as_ptr(), inner.as_ptr());
                });
                assert!(outer.iter().all(|&v| v == 1.0));
            });
        });
    }

    #[test]
    fn growing_requests_are_counted_as_misses() {
        thread_local! {
            static POOL: ScratchPool<f32> = const { ScratchPool::new("test.grow") };
        }
        let misses = mmhand_telemetry::counter("pool.misses");
        POOL.with(|pool| {
            pool.with(4, |_| {});
            let before = misses.get();
            pool.with(1024, |b| assert_eq!(b.len(), 1024));
            assert!(misses.get() > before, "capacity growth is a miss");
        });
    }

    #[test]
    fn stage_alloc_counter_tracks_fresh_allocations() {
        thread_local! {
            static POOL: ScratchPool<f32> = const { ScratchPool::new("test.stagectr") };
        }
        let ctr = mmhand_telemetry::counter("pool.alloc.test.stagectr");
        let before = ctr.get();
        POOL.with(|pool| {
            pool.with(32, |_| {});
            pool.with(32, |_| {});
        });
        assert_eq!(ctr.get(), before + 1, "one miss then one hit");
    }

    #[test]
    fn free_list_is_bounded() {
        thread_local! {
            static POOL: ScratchPool<f32> = const { ScratchPool::new("test.bound") };
        }
        POOL.with(|pool| {
            let bufs: Vec<_> = (0..2 * MAX_FREE_BUFFERS).map(|_| pool.take(8)).collect();
            for b in bufs {
                pool.put(b);
            }
            assert!(pool.free.borrow().len() <= MAX_FREE_BUFFERS);
        });
    }
}
