//! Deterministic scheduler audit for the fork-join pool.
//!
//! These tests drive the *real* pool through enumerated task-completion
//! schedules: every spawned task blocks on a turnstile until the schedule
//! says it may finish, so one run exercises exactly one interleaving of
//! task completions. Under every schedule two invariants must hold:
//!
//! * **scope/join** — `scope` does not return until every spawned task has
//!   run, and the forced completion order is exactly the one we dictated;
//! * **fixed-order reduction** — reducing per-task float results in slot
//!   (input) order yields bitwise-identical values no matter which
//!   interleaving produced them.
//!
//! For four tasks all 24 completion orders are enumerated; for six tasks a
//! fixed-seed LCG samples a reproducible subset of the 720 orders.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use mmhand_parallel::ThreadPool;

/// Blocks each task until the schedule releases its id. `order[k]` is the
/// task allowed to complete at step k, so one `Turnstile` = one schedule.
struct Turnstile {
    order: Vec<usize>,
    step: Mutex<usize>,
    cv: Condvar,
    log: Mutex<Vec<usize>>,
}

impl Turnstile {
    fn new(order: Vec<usize>) -> Self {
        Turnstile {
            order,
            step: Mutex::new(0),
            cv: Condvar::new(),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Blocks until the schedule reaches `id`, then records it and lets the
    /// next task in the schedule proceed.
    fn pass(&self, id: usize) {
        let mut step = self.step.lock().unwrap();
        while self.order[*step] != id {
            step = self.cv.wait(step).unwrap();
        }
        *step += 1;
        self.log.lock().unwrap().push(id);
        self.cv.notify_all();
    }
}

/// A float whose reduction order matters: summing these values in a
/// different order changes the last bit, so the fixed-order invariant is
/// actually load-bearing.
fn work(i: usize) -> f32 {
    ((i as f32) * 0.731_058_6 + 0.1).sin() / (i as f32 + 3.0).sqrt()
}

/// Runs one schedule on `pool`; returns per-slot result bits and the bits
/// of the slot-order reduction.
fn run_schedule(pool: &ThreadPool, order: &[usize]) -> (Vec<u32>, u32) {
    let n = order.len();
    let turnstile = Turnstile::new(order.to_vec());
    let mut slots = vec![0.0f32; n];
    pool.scope(|s| {
        for (i, slot) in slots.iter_mut().enumerate() {
            let t = &turnstile;
            s.spawn(move || {
                let v = work(i);
                t.pass(i);
                *slot = v;
            });
        }
    });
    // Join invariant: the dictated completion order actually happened, and
    // every task finished before `scope` returned.
    assert_eq!(*turnstile.log.lock().unwrap(), order);
    // Fixed-order reduction in slot order — the same discipline the
    // trainer uses for its gradient reduce.
    let sum = slots.iter().fold(0.0f32, |acc, &v| acc + v);
    (slots.iter().map(|v| v.to_bits()).collect(), sum.to_bits())
}

/// All permutations of `0..n` in lexicographic-ish recursion order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn recurse(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for k in 0..rest.len() {
            let v = rest.remove(k);
            prefix.push(v);
            recurse(prefix, rest, out);
            prefix.pop();
            rest.insert(k, v);
        }
    }
    let mut out = Vec::new();
    recurse(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

#[test]
fn every_completion_order_of_four_tasks_upholds_invariants() {
    // Width 5 = four workers + the helping caller, so all four tasks can
    // sit blocked on the turnstile concurrently under any schedule.
    let pool = ThreadPool::new(5);
    let all = permutations(4);
    assert_eq!(all.len(), 24);
    let mut reference: Option<(Vec<u32>, u32)> = None;
    for order in &all {
        let got = run_schedule(&pool, order);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "schedule {order:?} changed results"),
        }
    }
}

#[test]
fn perturbed_schedules_of_six_tasks_uphold_invariants() {
    let pool = ThreadPool::new(7);
    // Fixed-seed LCG Fisher–Yates: a reproducible sample of the 720
    // possible six-task schedules.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as usize
    };
    let mut reference: Option<(Vec<u32>, u32)> = None;
    for _ in 0..12 {
        let mut order: Vec<usize> = (0..6).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, next() % (i + 1));
        }
        let got = run_schedule(&pool, &order);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "schedule {order:?} changed results"),
        }
    }
}

#[test]
fn panicking_task_still_joins_under_every_schedule() {
    // A task that panics right after its turnstile slot must not break the
    // join: the other tasks still run, `scope` still waits for all of
    // them, and the panic is re-raised to the caller afterwards.
    let pool = ThreadPool::new(5);
    for order in permutations(4) {
        let turnstile = Turnstile::new(order.clone());
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..4 {
                    let t = &turnstile;
                    s.spawn(move || {
                        t.pass(i);
                        if i == 2 {
                            panic!("scheduled failure");
                        }
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic was swallowed under schedule {order:?}");
        assert_eq!(*turnstile.log.lock().unwrap(), order);
    }
}
