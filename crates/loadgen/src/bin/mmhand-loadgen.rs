//! `mmhand-loadgen` — load generator for the sharded serving engine.
//!
//! Simulates a fleet of concurrent streaming sessions against
//! [`ShardedServe`], with configurable arrival, churn, and burst patterns,
//! and reports segment latency quantiles (p50/p90/p99/p999), aggregate
//! throughput, and reject rates. Exit code doubles as an SLO gate.
//!
//! ```text
//! mmhand-loadgen [--sessions N] [--segments N] [--shards N] [--batch N]
//!                [--queue N] [--arrival steady|ramp|burst:K] [--churn PCT]
//!                [--precision f32|int8] [--seed N] [--rounds N] [--json PATH]
//!                [--slo-p99-ms F] [--compare-shards A,B --min-ratio F] [--quick]
//! ```
//!
//! `--precision int8` drives the load against the calibrated int8
//! inference path (the engine profile and the pipeline are both built for
//! it); the default follows the documented `MMHAND_PRECISION` fallback.
//!
//! Two modes:
//!
//! - **Single run** (default): drives `--sessions` sessions, each streaming
//!   `--segments` segments of synthetic radar frames, through one sharded
//!   engine. `--churn` closes a finished session and admits a fresh one
//!   with the given per-round probability, so long runs exercise the
//!   tombstone ring and admission control rather than a static population.
//! - **Compare** (`--compare-shards A,B`): runs the identical workload at
//!   two shard widths and reports the aggregate-throughput ratio B/A. With
//!   `--min-ratio R` the run fails when the ratio falls short — but only
//!   when the `mmhand-parallel` pool actually has ≥ 2 threads; on a
//!   single-core host shard parallelism cannot buy wall-clock time and the
//!   gate reports itself skipped instead of producing a vacuous failure.
//!
//! Latency is measured per segment: the clock starts when the frame
//! completing a segment is accepted and stops when that segment's result
//! is taken. The quantile table and the full run configuration land in a
//! JSON artifact (`--json`), which CI archives next to the benchmark
//! timings.

use mmhand_core::cube::CubeConfig;
use mmhand_core::eval::{build_cohort, train_reference_model, DataConfig};
use mmhand_core::model::ModelConfig;
use mmhand_core::train::TrainConfig;
use mmhand_core::{MmHandPipeline, Precision};
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment, RawFrame};
use mmhand_serve::{InferenceProfile, MeshPolicy, ServeConfig, ServeError, ShardedServe};
use mmhand_telemetry as telemetry;
use std::collections::VecDeque;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

/// Deterministic workload randomness (SplitMix64), independent of the
/// engine's own seeding so reruns replay the same arrivals and churn.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arrival {
    /// Every live session offers a frame each round.
    Steady,
    /// Sessions come online staggered across the first half of the run.
    Ramp,
    /// Cohorts alternate `k` rounds pushing, `k` rounds silent.
    Burst(usize),
}

#[derive(Clone, Debug)]
struct Args {
    sessions: usize,
    segments: usize,
    shards: usize,
    batch: usize,
    queue: usize,
    arrival: Arrival,
    /// Per-round probability (percent) that a finished session is replaced.
    churn_pct: f64,
    /// Inference precision for both the pipeline and the engine profile.
    precision: Precision,
    seed: u64,
    /// Hard cap on scheduling rounds (safety against livelock).
    rounds: usize,
    json: Option<String>,
    slo_p99_ms: Option<f64>,
    compare_shards: Option<(usize, usize)>,
    min_ratio: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 64,
            segments: 4,
            shards: 4,
            batch: 2,
            queue: 8,
            arrival: Arrival::Steady,
            churn_pct: 0.0,
            precision: Precision::env_fallback(),
            seed: 7,
            rounds: 100_000,
            json: None,
            slo_p99_ms: None,
            compare_shards: None,
            min_ratio: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--sessions" => args.sessions = num(&val("--sessions")?, "--sessions")?,
            "--segments" => args.segments = num(&val("--segments")?, "--segments")?,
            "--shards" => args.shards = num(&val("--shards")?, "--shards")?,
            "--batch" => args.batch = num(&val("--batch")?, "--batch")?,
            "--queue" => args.queue = num(&val("--queue")?, "--queue")?,
            "--rounds" => args.rounds = num(&val("--rounds")?, "--rounds")?,
            "--seed" => args.seed = num(&val("--seed")?, "--seed")? as u64,
            "--churn" => {
                args.churn_pct =
                    val("--churn")?.parse::<f64>().map_err(|e| format!("--churn: {e}"))?
            }
            "--precision" => {
                args.precision =
                    val("--precision")?.parse().map_err(|e| format!("--precision: {e}"))?
            }
            "--arrival" => {
                let v = val("--arrival")?;
                args.arrival = match v.as_str() {
                    "steady" => Arrival::Steady,
                    "ramp" => Arrival::Ramp,
                    other => match other.strip_prefix("burst:") {
                        Some(k) => Arrival::Burst(num(k, "--arrival burst:K")?.max(1)),
                        None => return Err(format!("--arrival: unknown pattern {other}")),
                    },
                };
            }
            "--json" => args.json = Some(val("--json")?),
            "--slo-p99-ms" => {
                args.slo_p99_ms =
                    Some(val("--slo-p99-ms")?.parse().map_err(|e| format!("--slo-p99-ms: {e}"))?)
            }
            "--compare-shards" => {
                let v = val("--compare-shards")?;
                let (a, b) = v
                    .split_once(',')
                    .ok_or_else(|| "--compare-shards wants A,B".to_string())?;
                args.compare_shards = Some((num(a, "--compare-shards")?, num(b, "--compare-shards")?));
            }
            "--min-ratio" => {
                args.min_ratio =
                    Some(val("--min-ratio")?.parse().map_err(|e| format!("--min-ratio: {e}"))?)
            }
            "--quick" => {
                args.sessions = 24;
                args.segments = 3;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.sessions == 0 || args.segments == 0 {
        return Err("--sessions and --segments must be positive".into());
    }
    Ok(args)
}

fn num(s: &str, name: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|e| format!("{name}: {e}"))
}

fn tiny_chirp() -> ChirpConfig {
    ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() }
}

fn tiny_cube() -> CubeConfig {
    CubeConfig {
        chirp: tiny_chirp(),
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    }
}

/// Trains the small reference model once; compare mode clones it per width.
fn build_pipeline(precision: Precision) -> Result<MmHandPipeline, Box<dyn std::error::Error>> {
    let cube = tiny_cube();
    let data = DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp: cube.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube: cube.clone(),
        seed: 11,
        ..Default::default()
    };
    let model_cfg = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };
    let seqs = build_cohort(&data);
    let model = train_reference_model(
        &seqs,
        &model_cfg,
        &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    );
    let mut builder =
        MmHandPipeline::builder_for(model.clone()).cube_config(cube.clone()).precision(precision);
    if precision == Precision::Int8 {
        // Calibrate on a capture no client replays: the pooled client
        // streams use seeds 2000..2008, this one sits well apart.
        let mut probe = MmHandPipeline::builder_for(model).cube_config(cube).build()?;
        let user = UserProfile::generate(99, 4242);
        let track = GestureTrack::from_gestures(
            &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
            Vec3::new(0.0, 0.3, 0.0),
            0.3,
            0.3,
        );
        let session = record_session(
            &user,
            &track,
            16,
            &CaptureConfig { chirp: tiny_chirp(), noise_sigma: 0.005, seed: 4242, ..Default::default() },
        );
        let calibration = probe.try_frames_to_segments(&session.frames)?;
        builder = builder.calibration_segments(calibration);
    }
    Ok(builder.build()?)
}

/// A small pool of distinct synthetic captures; sessions draw a stream by
/// index so thousands of sessions cost eight simulations, not thousands.
fn frame_pool(n_frames: usize) -> Vec<Vec<RawFrame>> {
    (0..8)
        .map(|k| {
            let seed = 2000 + k as u64;
            let user = UserProfile::generate(k + 1, seed);
            let track = GestureTrack::from_gestures(
                &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
                Vec3::new(0.0, 0.3, 0.0),
                0.3,
                0.3,
            );
            record_session(
                &user,
                &track,
                n_frames,
                &CaptureConfig {
                    chirp: tiny_chirp(),
                    noise_sigma: 0.005,
                    seed,
                    ..Default::default()
                },
            )
            .frames
        })
        .collect()
}

/// One simulated client.
struct Client {
    session: u64,
    /// Which pooled capture it replays.
    stream: usize,
    /// Next frame offset within the stream.
    cursor: usize,
    /// Frames still to push (segments budget × frames per segment).
    remaining: usize,
    /// Segment-completion timestamps not yet matched to a result.
    inflight: VecDeque<Instant>,
    /// Which burst cohort the client belongs to.
    cohort: usize,
    /// Round at which the client starts pushing (ramp arrivals).
    starts_at: usize,
    results: usize,
}

#[derive(Debug, Default, Clone)]
struct RunStats {
    latencies_ms: Vec<f64>,
    frames_pushed: u64,
    frames_rejected: u64,
    sessions_opened: u64,
    sessions_rejected: u64,
    sessions_churned: u64,
    results: u64,
    rounds: usize,
    elapsed_s: f64,
    tombstones: usize,
}

impl RunStats {
    fn quantile(&self, q: f64) -> f64 {
        percentile(&self.latencies_ms, q)
    }

    fn throughput(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.results as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    fn frame_reject_rate(&self) -> f64 {
        let attempts = self.frames_pushed + self.frames_rejected;
        if attempts > 0 {
            self.frames_rejected as f64 / attempts as f64
        } else {
            0.0
        }
    }
}

/// Nearest-rank percentile over an unsorted sample (sorted internally).
fn percentile(sample: &[f64], q: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_workload(pipeline: MmHandPipeline, args: &Args) -> Result<RunStats, Box<dyn std::error::Error>> {
    let seg_frames = pipeline.builder().config().frames_per_segment;
    // 2x headroom over the even split absorbs affinity-hash imbalance;
    // the global admission limit still scales with the population.
    let per_shard_sessions = (args.sessions.div_ceil(args.shards) * 2).max(2);
    let mut serve = ShardedServe::new(
        pipeline,
        args.shards,
        ServeConfig::new()
            .max_sessions(per_shard_sessions)
            .queue_capacity(args.queue.max(seg_frames))
            .max_batch(args.batch)
            .result_capacity(args.segments.max(4))
            .evict_after_idle_steps(64)
            .tombstone_capacity(256)
            .profile(
                InferenceProfile::default()
                    .precision(args.precision)
                    .mesh_policy(MeshPolicy::Never),
            ),
    )?;

    let pool = frame_pool(args.segments * seg_frames);
    let mut mix = Mix(args.seed);
    let mut stats = RunStats::default();
    let mut clients: Vec<Client> = Vec::with_capacity(args.sessions);
    let ramp_span = args.sessions.max(1);

    let admit = |serve: &mut ShardedServe,
                     stats: &mut RunStats,
                     mix: &mut Mix,
                     idx: usize,
                     starts_at: usize|
     -> Option<Client> {
        match serve.open_session() {
            Ok(session) => {
                stats.sessions_opened += 1;
                telemetry::counter("loadgen.sessions_opened").inc();
                Some(Client {
                    session,
                    stream: (mix.next() as usize) % 8,
                    cursor: 0,
                    remaining: args.segments * seg_frames,
                    inflight: VecDeque::new(),
                    cohort: idx % 4,
                    starts_at,
                    results: 0,
                })
            }
            Err(ServeError::SessionLimit { .. }) => {
                stats.sessions_rejected += 1;
                telemetry::counter("loadgen.sessions_rejected").inc();
                None
            }
            Err(e) => {
                eprintln!("loadgen: open_session: {e}");
                None
            }
        }
    };

    for idx in 0..args.sessions {
        let starts_at = match args.arrival {
            Arrival::Ramp => idx * ramp_span / (2 * args.sessions.max(1)),
            _ => 0,
        };
        if let Some(c) = admit(&mut serve, &mut stats, &mut mix, idx, starts_at) {
            clients.push(c);
        }
    }

    // The target counts only sessions that actually got admitted, so an
    // over-subscribed run (admission rejections are part of the workload)
    // still terminates.
    let target_results = (clients.len() * args.segments) as u64;

    let t0 = Instant::now();
    let mut round = 0usize;
    while stats.results < target_results && round < args.rounds {
        // 1. Arrivals: each eligible client offers one frame.
        for c in clients.iter_mut() {
            if c.remaining == 0 || round < c.starts_at {
                continue;
            }
            if let Arrival::Burst(k) = args.arrival {
                // Cohorts alternate k rounds on, k off, phase-shifted.
                if (round / k + c.cohort) % 2 == 1 {
                    continue;
                }
            }
            let frame = pool[c.stream][c.cursor % pool[c.stream].len()].clone();
            match serve.push_frame(c.session, frame) {
                Ok(()) => {
                    stats.frames_pushed += 1;
                    telemetry::counter("loadgen.frames_pushed").inc();
                    c.cursor += 1;
                    c.remaining -= 1;
                    // This frame completed a segment: start its latency clock.
                    if c.cursor % seg_frames == 0 {
                        c.inflight.push_back(Instant::now());
                    }
                }
                Err(ServeError::QueueFull { .. }) => {
                    stats.frames_rejected += 1;
                    telemetry::counter("loadgen.frames_rejected").inc();
                }
                Err(e) => return Err(Box::new(e)),
            }
        }

        // 2. One scheduling step across all shards.
        serve.step()?;

        // 3. Collect results and match latency clocks.
        for c in clients.iter_mut() {
            match serve.take_results(c.session) {
                Ok(results) => {
                    for _r in &results {
                        if let Some(t) = c.inflight.pop_front() {
                            let ms = t.elapsed().as_secs_f64() * 1e3;
                            stats.latencies_ms.push(ms);
                            telemetry::histogram_with(
                                "loadgen.segment_latency_ms",
                                telemetry::DURATION_MS_BUCKETS,
                            )
                            .observe(ms);
                        }
                        c.results += 1;
                        stats.results += 1;
                    }
                }
                Err(ServeError::SessionEvicted { .. } | ServeError::UnknownSession { .. }) => {
                    // Burst silence can outlast the eviction budget; the
                    // session's unfinished work is abandoned by design.
                    stats.results += (c.remaining / seg_frames + c.inflight.len()) as u64;
                    c.remaining = 0;
                    c.inflight.clear();
                }
                Err(e) => return Err(Box::new(e)),
            }
        }

        // 4. Churn: finished sessions close; with probability churn% a
        //    replacement arrives mid-run keeping the population hot.
        for (i, client) in clients.iter_mut().enumerate() {
            let done = client.remaining == 0 && client.inflight.is_empty();
            if !done {
                continue;
            }
            let _ = serve.close_session(client.session);
            if mix.unit() * 100.0 < args.churn_pct {
                stats.sessions_churned += 1;
                telemetry::counter("loadgen.sessions_churned").inc();
                if let Some(mut c) = admit(&mut serve, &mut stats, &mut mix, i, 0) {
                    // The replacement inherits the result target of nobody:
                    // its work adds on top, so cap it to stay terminating.
                    c.remaining = seg_frames;
                    *client = c;
                    continue;
                }
            }
            // Mark as drained so the loop skips it from now on.
            client.remaining = 0;
            client.inflight.clear();
            client.session = u64::MAX; // no longer routable
        }
        clients.retain(|c| c.session != u64::MAX || c.remaining > 0);

        round += 1;
    }

    stats.rounds = round;
    stats.elapsed_s = t0.elapsed().as_secs_f64();
    stats.tombstones = serve.evicted_tombstones();
    for c in &clients {
        if c.session != u64::MAX {
            let _ = serve.close_session(c.session);
        }
    }
    Ok(stats)
}

fn render_json(args: &Args, stats: &RunStats, compare: Option<&(RunStats, RunStats, f64)>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"sessions\": {}, \"segments\": {}, \"shards\": {}, \"batch\": {}, \"queue\": {}, \"arrival\": \"{:?}\", \"churn_pct\": {}, \"precision\": \"{}\", \"seed\": {}}},\n",
        args.sessions, args.segments, args.shards, args.batch, args.queue, args.arrival, args.churn_pct, args.precision.name(), args.seed
    ));
    s.push_str(&format!(
        "  \"latency_ms\": {{\"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}, \"p999\": {:.4}, \"count\": {}}},\n",
        stats.quantile(0.50),
        stats.quantile(0.90),
        stats.quantile(0.99),
        stats.quantile(0.999),
        stats.latencies_ms.len()
    ));
    s.push_str(&format!(
        "  \"throughput_results_per_s\": {:.2},\n  \"frame_reject_rate\": {:.6},\n  \"sessions\": {{\"opened\": {}, \"rejected\": {}, \"churned\": {}}},\n  \"rounds\": {},\n  \"tombstones\": {},\n",
        stats.throughput(),
        stats.frame_reject_rate(),
        stats.sessions_opened,
        stats.sessions_rejected,
        stats.sessions_churned,
        stats.rounds,
        stats.tombstones
    ));
    match compare {
        Some((a, b, ratio)) => s.push_str(&format!(
            "  \"compare\": {{\"throughput_a\": {:.2}, \"throughput_b\": {:.2}, \"ratio\": {:.3}, \"pool_threads\": {}}}\n",
            a.throughput(),
            b.throughput(),
            ratio,
            mmhand_parallel::num_threads()
        )),
        None => s.push_str("  \"compare\": null\n"),
    }
    s.push('}');
    s
}

fn print_stats(label: &str, stats: &RunStats) {
    println!("[{label}] results: {} over {} rounds in {:.2}s ({:.1} results/s)",
        stats.results, stats.rounds, stats.elapsed_s, stats.throughput());
    println!(
        "[{label}] latency ms: p50 {:.3}  p90 {:.3}  p99 {:.3}  p999 {:.3}  (n={})",
        stats.quantile(0.50),
        stats.quantile(0.90),
        stats.quantile(0.99),
        stats.quantile(0.999),
        stats.latencies_ms.len()
    );
    println!(
        "[{label}] rejects: frames {:.4}% ({}), sessions {}; churned {}; tombstones {}",
        stats.frame_reject_rate() * 100.0,
        stats.frames_rejected,
        stats.sessions_rejected,
        stats.sessions_churned,
        stats.tombstones
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mmhand-loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    let pipeline = match build_pipeline(args.precision) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mmhand-loadgen: pipeline: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures: Vec<String> = Vec::new();
    let (stats, compare) = if let Some((a, b)) = args.compare_shards {
        let run_at = |shards: usize| {
            let mut cfg = args.clone();
            cfg.shards = shards;
            run_workload(pipeline.clone(), &cfg)
        };
        let sa = match run_at(a) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mmhand-loadgen: run at {a} shards: {e}");
                return ExitCode::from(2);
            }
        };
        let sb = match run_at(b) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mmhand-loadgen: run at {b} shards: {e}");
                return ExitCode::from(2);
            }
        };
        print_stats(&format!("{a} shard(s)"), &sa);
        print_stats(&format!("{b} shard(s)"), &sb);
        let ratio = if sa.throughput() > 0.0 { sb.throughput() / sa.throughput() } else { 0.0 };
        println!("throughput ratio {b}/{a} shards: {ratio:.3}x (pool threads: {})",
            mmhand_parallel::num_threads());
        if let Some(min) = args.min_ratio {
            if mmhand_parallel::num_threads() >= 2 {
                if ratio < min {
                    failures.push(format!(
                        "throughput ratio {ratio:.3} below required {min:.3} at {} pool threads",
                        mmhand_parallel::num_threads()
                    ));
                }
            } else {
                println!(
                    "ratio gate skipped: pool has 1 thread, shard parallelism cannot \
                     buy wall-clock throughput here"
                );
            }
        }
        (sb.clone(), Some((sa, sb, ratio)))
    } else {
        match run_workload(pipeline, &args) {
            Ok(s) => {
                print_stats("run", &s);
                (s, None)
            }
            Err(e) => {
                eprintln!("mmhand-loadgen: {e}");
                return ExitCode::from(2);
            }
        }
    };

    if let Some(slo) = args.slo_p99_ms {
        let p99 = stats.quantile(0.99);
        if p99 > slo {
            failures.push(format!("p99 latency {p99:.3}ms exceeds SLO {slo:.3}ms"));
        } else {
            println!("SLO: p99 {p99:.3}ms within {slo:.3}ms");
        }
    }
    if stats.results == 0 {
        failures.push("no results produced".into());
    }

    if let Some(path) = &args.json {
        let body = render_json(&args, &stats, compare.as_ref());
        match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => println!("artifact: {path}"),
            Err(e) => {
                eprintln!("mmhand-loadgen: artifact {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if failures.is_empty() {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::from(1)
    }
}
