//! Non-blocking TCP front end over [`ShardedServe`].
//!
//! The server keeps the workspace's synchronous, caller-owned execution
//! model: there is no background thread and no async runtime. The embedder
//! (the `mmhand-serve` binary, the load generator, a test) calls
//! [`ServeServer::poll_once`] in its loop; each call
//!
//! 1. accepts any pending connections (non-blocking),
//! 2. reads whatever bytes each socket has, feeding the per-connection
//!    incremental [`Decoder`](crate::wire::Decoder) and dispatching every
//!    complete [`WireMsg`](crate::wire::WireMsg) into the sharded engine,
//! 3. advances the engine one [`step`](ShardedServe::step) (shards run in
//!    parallel over the `mmhand-parallel` pool),
//! 4. serialises every fresh result back onto its owner connection, and
//! 5. flushes write buffers as far as the sockets allow.
//!
//! Because the step in (3) is the same deterministic micro-batch step the
//! in-process API uses, skeletons delivered over the wire are bitwise
//! identical to in-process results — the transport adds framing, never
//! arithmetic.
//!
//! ## Connection and session hygiene
//!
//! Sessions are owned by the connection that opened them. A connection
//! that disconnects (EOF, I/O error, protocol violation) has all its
//! sessions closed, so abandoned clients cannot pin engine memory; the
//! bounded tombstone ring in each shard covers the eviction side. Protocol
//! violations are answered with a [`RejectCode::Protocol`] reject where
//! the socket still accepts writes, then the connection is dropped — the
//! decoder never attempts to resynchronise a corrupt stream.
//!
//! Wire v1 serialises skeletons only; mesh vertices stay in-process (run
//! the socket front end with [`MeshPolicy::Never`](crate::MeshPolicy) or a
//! backlog-skipping policy unless an embedder also consumes meshes
//! locally).

use crate::error::ServeError;
use crate::shard::{ShardStepReport, ShardedServe};
use crate::wire::{encode, Decoder, RejectCode, WireMsg};
use mmhand_telemetry as telemetry;
use std::collections::BTreeSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Per-connection read budget per poll, in bytes. Bounds how much one
/// chatty client can buffer server-side between engine steps.
const READ_BUDGET: usize = 256 * 1024;

/// What one [`ServeServer::poll_once`] call did.
#[derive(Debug, Default)]
pub struct NetReport {
    /// Connections accepted this poll.
    pub accepted: usize,
    /// Connections dropped this poll (EOF, error, protocol violation).
    pub dropped: usize,
    /// Complete client messages dispatched.
    pub messages: usize,
    /// Result messages serialised onto connections.
    pub results_sent: usize,
    /// The engine step report (`None` if the engine had no open sessions
    /// and no connection activity, in which case the step was skipped).
    pub step: Option<ShardStepReport>,
}

struct Conn {
    stream: TcpStream,
    decoder: Decoder,
    /// Pending outbound bytes (`outpos..` is unsent).
    outbuf: Vec<u8>,
    outpos: usize,
    /// Whether the protocol preamble arrived.
    hello_seen: bool,
    /// Sessions opened by this connection.
    sessions: BTreeSet<u64>,
    /// Set when the connection must be dropped after the current flush.
    dead: bool,
}

impl Conn {
    fn send(&mut self, msg: &WireMsg) {
        encode(msg, &mut self.outbuf);
    }
}

fn reject_code(err: &ServeError) -> RejectCode {
    match err {
        ServeError::QueueFull { .. } => RejectCode::QueueFull,
        ServeError::SessionLimit { .. } => RejectCode::SessionLimit,
        ServeError::UnknownSession { .. } => RejectCode::UnknownSession,
        ServeError::SessionEvicted { .. } => RejectCode::SessionEvicted,
        ServeError::Pipeline(_) => RejectCode::BadFrame,
        ServeError::Wire(_) => RejectCode::Protocol,
        ServeError::InvalidConfig { .. } | ServeError::Io(_) => RejectCode::Internal,
    }
}

/// The non-blocking socket front end. See the module docs for the
/// execution model.
pub struct ServeServer {
    listener: TcpListener,
    serve: ShardedServe,
    conns: Vec<Conn>,
}

impl ServeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and wraps `serve`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind fails.
    pub fn bind(addr: &str, serve: ShardedServe) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ServeServer { listener, serve, conns: Vec::new() })
    }

    /// The bound address (resolves ephemeral ports for clients).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Open connections right now.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// The wrapped sharded engine (telemetry, config, direct inspection).
    pub fn serve(&self) -> &ShardedServe {
        &self.serve
    }

    /// Runs one accept → read/dispatch → step → write cycle.
    ///
    /// Never blocks: sockets are non-blocking and `WouldBlock` is treated
    /// as "done for this poll". Per-client failures (disconnects, protocol
    /// violations, rejected requests) are handled inline and reported via
    /// [`NetReport`]; only engine-level failures escape as errors.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] for listener-level failures and
    /// propagates pipeline errors from the engine step.
    pub fn poll_once(&mut self) -> Result<NetReport, ServeError> {
        let mut report = NetReport::default();
        self.accept_pending(&mut report)?;
        self.read_and_dispatch(&mut report);

        // Step the engine only when it can do something: skipping the
        // step on a fully idle server keeps a spinning embedder loop from
        // burning pool wakeups.
        if self.serve.active_sessions() > 0 {
            let step = self.serve.step()?;
            // Evicted sessions vanish server-side; disown them so a later
            // Close from the client gets the engine's typed answer
            // (SessionEvicted) rather than a connection-level unknown.
            if !step.evicted.is_empty() {
                for conn in &mut self.conns {
                    for id in &step.evicted {
                        conn.sessions.remove(id);
                    }
                }
            }
            report.step = Some(step);
            self.deliver_results(&mut report);
        }

        self.flush_writes();
        self.reap_dead(&mut report);
        telemetry::gauge("serve.net.connections").set(self.conns.len() as f64);
        Ok(report)
    }

    fn accept_pending(&mut self, report: &mut NetReport) -> Result<(), ServeError> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(true)?;
                    // Frames are latency-sensitive and already batched at
                    // the protocol layer; don't let Nagle re-batch them.
                    stream.set_nodelay(true)?;
                    self.conns.push(Conn {
                        stream,
                        decoder: Decoder::new(),
                        outbuf: Vec::new(),
                        outpos: 0,
                        hello_seen: false,
                        sessions: BTreeSet::new(),
                        dead: false,
                    });
                    report.accepted += 1;
                    telemetry::counter("serve.net.accepted").inc();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
    }

    fn read_and_dispatch(&mut self, report: &mut NetReport) {
        let mut scratch = [0u8; 8192];
        for i in 0..self.conns.len() {
            let mut budget = READ_BUDGET;
            loop {
                if self.conns[i].dead || budget == 0 {
                    break;
                }
                match self.conns[i].stream.read(&mut scratch) {
                    Ok(0) => {
                        self.conns[i].dead = true;
                    }
                    Ok(n) => {
                        budget = budget.saturating_sub(n);
                        telemetry::counter("serve.net.bytes_in").add(n as u64);
                        self.conns[i].decoder.push_bytes(&scratch[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.conns[i].dead = true;
                    }
                }
            }
            loop {
                if self.conns[i].dead {
                    break;
                }
                match self.conns[i].decoder.next_msg() {
                    Ok(Some(msg)) => {
                        report.messages += 1;
                        self.dispatch(i, msg, report);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        telemetry::counter("serve.net.protocol_errors").inc();
                        self.conns[i].send(&WireMsg::Reject {
                            session: 0,
                            code: RejectCode::Protocol,
                        });
                        self.conns[i].dead = true;
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, i: usize, msg: WireMsg, report: &mut NetReport) {
        let protocol_violation = |conn: &mut Conn| {
            telemetry::counter("serve.net.protocol_errors").inc();
            conn.send(&WireMsg::Reject { session: 0, code: RejectCode::Protocol });
            conn.dead = true;
        };
        if !self.conns[i].hello_seen {
            match msg {
                WireMsg::Hello { precision, .. } => {
                    // The Hello's precision (f32 for v1 peers) must match
                    // the engine's InferenceProfile: a server runs exactly
                    // one numeric path, so an unservable request gets a
                    // typed reject up front instead of silently different
                    // arithmetic.
                    if precision == self.serve.precision() {
                        self.conns[i].hello_seen = true;
                    } else {
                        telemetry::counter("serve.net.precision_rejected").inc();
                        self.conns[i].send(&WireMsg::Reject {
                            session: 0,
                            code: RejectCode::UnsupportedPrecision,
                        });
                        self.conns[i].dead = true;
                    }
                }
                _ => protocol_violation(&mut self.conns[i]),
            }
            return;
        }
        match msg {
            // A second Hello, or any server→client message from a client,
            // is a protocol violation.
            WireMsg::Hello { .. }
            | WireMsg::Opened { .. }
            | WireMsg::Result { .. }
            | WireMsg::Reject { .. }
            | WireMsg::Closed { .. } => protocol_violation(&mut self.conns[i]),
            WireMsg::Open => match self.serve.open_session() {
                Ok(id) => {
                    self.conns[i].sessions.insert(id);
                    self.conns[i].send(&WireMsg::Opened { session: id });
                }
                Err(e) => {
                    self.conns[i].send(&WireMsg::Reject { session: 0, code: reject_code(&e) });
                }
            },
            WireMsg::Push { session, frame } => {
                if !self.conns[i].sessions.contains(&session) {
                    self.conns[i]
                        .send(&WireMsg::Reject { session, code: RejectCode::UnknownSession });
                    return;
                }
                if let Err(e) = self.serve.push_frame(session, frame) {
                    self.conns[i].send(&WireMsg::Reject { session, code: reject_code(&e) });
                }
            }
            WireMsg::Poll { session } => {
                if !self.conns[i].sessions.contains(&session) {
                    self.conns[i]
                        .send(&WireMsg::Reject { session, code: RejectCode::UnknownSession });
                    return;
                }
                self.drain_session(i, session, report);
            }
            WireMsg::Close { session } => {
                if !self.conns[i].sessions.remove(&session) {
                    self.conns[i]
                        .send(&WireMsg::Reject { session, code: RejectCode::UnknownSession });
                    return;
                }
                // Flush anything still buffered before the session state
                // is torn down — results must not be lost to a races-free
                // close.
                self.drain_session(i, session, report);
                match self.serve.close_session(session) {
                    Ok(stats) => self.conns[i].send(&WireMsg::Closed { session, stats }),
                    Err(e) => {
                        self.conns[i].send(&WireMsg::Reject { session, code: reject_code(&e) })
                    }
                }
            }
        }
    }

    fn drain_session(&mut self, i: usize, session: u64, report: &mut NetReport) {
        let results = match self.serve.take_results(session) {
            Ok(r) => r,
            // The session can have been evicted between dispatch and
            // drain; tell the client rather than silently dropping it.
            Err(e) => {
                self.conns[i].send(&WireMsg::Reject { session, code: reject_code(&e) });
                self.conns[i].sessions.remove(&session);
                return;
            }
        };
        for r in results {
            report.results_sent += 1;
            telemetry::counter("serve.net.results_sent").inc();
            self.conns[i].send(&WireMsg::Result {
                session,
                segment_index: r.segment_index,
                mesh_skipped: r.hand.is_none(),
                skeleton: r.skeleton,
            });
        }
    }

    fn deliver_results(&mut self, report: &mut NetReport) {
        for i in 0..self.conns.len() {
            if self.conns[i].dead {
                continue;
            }
            let owned: Vec<u64> = self.conns[i].sessions.iter().copied().collect();
            for session in owned {
                self.drain_session(i, session, report);
            }
        }
    }

    fn flush_writes(&mut self) {
        for conn in &mut self.conns {
            while conn.outpos < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.outpos += n;
                        telemetry::counter("serve.net.bytes_out").add(n as u64);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.outpos > 0 && conn.outpos == conn.outbuf.len() {
                conn.outbuf.clear();
                conn.outpos = 0;
            }
        }
    }

    fn reap_dead(&mut self, report: &mut NetReport) {
        let mut i = 0;
        while i < self.conns.len() {
            let drop_now = self.conns[i].dead
                && (self.conns[i].outpos >= self.conns[i].outbuf.len()
                    || self.conns[i].stream.peer_addr().is_err());
            if drop_now {
                let conn = self.conns.remove(i);
                telemetry::counter("serve.net.disconnects").inc();
                for session in conn.sessions {
                    // Best effort: the session may already be evicted.
                    let _ = self.serve.close_session(session);
                }
                report.dropped += 1;
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_engine_parts;
    use crate::{MeshPolicy, ServeConfig};

    fn tiny_server(shards: usize) -> (ServeServer, Vec<mmhand_radar::RawFrame>) {
        let (pipeline, frames) = tiny_engine_parts();
        let serve = ShardedServe::new(
            pipeline,
            shards,
            ServeConfig::new().mesh_policy(MeshPolicy::Never).max_batch(2),
        )
        .expect("tiny sharded serve");
        let server = ServeServer::bind("127.0.0.1:0", serve).expect("ephemeral bind");
        (server, frames)
    }

    /// Drives `server.poll_once` and a blocking-free client together on
    /// one thread: writes `out` to the client socket, polls, reads
    /// whatever the server answered, repeats until quiescent.
    fn pump(
        server: &mut ServeServer,
        client: &mut TcpStream,
        out: &[u8],
        rounds: usize,
    ) -> Vec<u8> {
        use std::io::{Read, Write};
        if !out.is_empty() {
            client.write_all(out).expect("client write");
        }
        let mut answer = Vec::new();
        let mut scratch = [0u8; 8192];
        for _ in 0..rounds {
            server.poll_once().expect("poll");
            loop {
                match client.read(&mut scratch) {
                    Ok(0) => break,
                    Ok(n) => answer.extend_from_slice(&scratch[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => panic!("client read: {e}"),
                }
            }
        }
        answer
    }

    fn connect(server: &ServeServer) -> TcpStream {
        let addr = server.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_nonblocking(true).expect("nonblocking client");
        client
    }

    fn hello_bytes(server: &ServeServer) -> Vec<u8> {
        let mut bytes = Vec::new();
        encode(
            &WireMsg::Hello {
                version: crate::wire::WIRE_VERSION,
                precision: server.serve().precision(),
            },
            &mut bytes,
        );
        bytes
    }

    #[test]
    fn open_before_hello_is_a_protocol_violation() {
        let (mut server, _frames) = tiny_server(1);
        let mut client = connect(&server);
        let mut bytes = Vec::new();
        encode(&WireMsg::Open, &mut bytes);
        let answer = pump(&mut server, &mut client, &bytes, 3);
        let mut d = Decoder::new();
        d.push_bytes(&answer);
        match d.next_msg() {
            Ok(Some(WireMsg::Reject { code: RejectCode::Protocol, .. })) => {}
            other => panic!("expected protocol reject, got {other:?}"),
        }
        assert_eq!(server.connections(), 0, "violating connection is dropped");
    }

    #[test]
    fn disconnect_closes_owned_sessions() {
        let (mut server, _frames) = tiny_server(2);
        let mut client = connect(&server);
        let mut bytes = hello_bytes(&server);
        encode(&WireMsg::Open, &mut bytes);
        let answer = pump(&mut server, &mut client, &bytes, 3);
        let mut d = Decoder::new();
        d.push_bytes(&answer);
        assert!(matches!(d.next_msg(), Ok(Some(WireMsg::Opened { .. }))));
        assert_eq!(server.serve().active_sessions(), 1);
        drop(client);
        for _ in 0..3 {
            server.poll_once().expect("poll");
        }
        assert_eq!(server.serve().active_sessions(), 0, "sessions die with their connection");
        assert_eq!(server.connections(), 0);
    }

    #[test]
    fn unservable_hello_precision_gets_a_typed_reject() {
        let (mut server, _frames) = tiny_server(1);
        let mut client = connect(&server);
        // Request the precision the server is NOT running.
        let other = match server.serve().precision() {
            mmhand_core::Precision::F32 => mmhand_core::Precision::Int8,
            mmhand_core::Precision::Int8 => mmhand_core::Precision::F32,
        };
        let mut bytes = Vec::new();
        encode(&WireMsg::Hello { version: crate::wire::WIRE_VERSION, precision: other }, &mut bytes);
        let answer = pump(&mut server, &mut client, &bytes, 3);
        let mut d = Decoder::new();
        d.push_bytes(&answer);
        match d.next_msg() {
            Ok(Some(WireMsg::Reject { code: RejectCode::UnsupportedPrecision, .. })) => {}
            other => panic!("expected UnsupportedPrecision reject, got {other:?}"),
        }
        assert_eq!(server.connections(), 0, "mismatched connection is dropped");
    }

    #[test]
    fn garbage_bytes_get_a_typed_reject_then_drop() {
        let (mut server, _frames) = tiny_server(1);
        let mut client = connect(&server);
        let mut bytes = hello_bytes(&server);
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x99]);
        let answer = pump(&mut server, &mut client, &bytes, 3);
        let mut d = Decoder::new();
        d.push_bytes(&answer);
        match d.next_msg() {
            Ok(Some(WireMsg::Reject { code: RejectCode::Protocol, .. })) => {}
            other => panic!("expected protocol reject, got {other:?}"),
        }
        assert_eq!(server.connections(), 0);
    }
}
