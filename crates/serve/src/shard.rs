//! Sharded serving: N independent [`ServeEngine`]s behind one router.
//!
//! A single engine is one micro-batching loop — its step latency bounds
//! how many sessions one process can serve. [`ShardedServe`] scales that
//! out: sessions are placed on one of `N` shards by an affinity hash of
//! their allocation sequence number, every shard owns a full pipeline
//! (cloned from one training run), and [`ShardedServe::step`] runs all
//! shard steps concurrently over the `mmhand-parallel` pool. Per-session
//! results are bitwise identical to the single-engine path (and therefore
//! to the dedicated sequential pipeline): a session's stream only ever
//! touches its own shard's engine, whose batch composition provably does
//! not affect per-row results.
//!
//! # Session ids and affinity
//!
//! The router allocates globally unique session ids and encodes the
//! placement into the id itself: `id = (seq << 8) | shard`. Routing a
//! frame is then a pure function of the id — no routing table exists, so
//! router memory does not grow with session churn (the per-shard eviction
//! tombstones are themselves bounded rings). The shard index is chosen by
//! a Fibonacci hash of the allocation sequence number, which spreads
//! arrivals uniformly while keeping placement deterministic: the same
//! open/push sequence always lands on the same shards.
//!
//! # Cross-shard admission and eviction
//!
//! Admission control is two-layered: the router enforces the global bound
//! (`shards × per_shard.max_sessions`) and each shard enforces its local
//! bound, so a pathological placement can reject before the global limit
//! is reached — both surface as [`ServeError::SessionLimit`] and count in
//! `serve.shard.admission_rejected`. Idle eviction runs inside every
//! shard step; the aggregated [`ShardStepReport::evicted`] lists evicted
//! ids across all shards in shard order.

use crate::config::ServeConfig;
use crate::engine::{ServeEngine, StepReport};
use crate::error::ServeError;
use crate::session::{FrameResult, SessionStats};
use mmhand_core::MmHandPipeline;
use mmhand_radar::RawFrame;
use mmhand_telemetry as telemetry;

/// Bits of the session id reserved for the shard index.
const SHARD_BITS: u32 = 8;
/// Maximum shard count representable in the id encoding.
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

/// What one [`ShardedServe::step`] did, aggregated across shards.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStepReport {
    /// Sessions micro-batched this step, summed over shards.
    pub batched: usize,
    /// Results produced this step, summed over shards.
    pub results_produced: usize,
    /// Sessions evicted this step, in shard order.
    pub evicted: Vec<u64>,
    /// The per-shard reports, indexed by shard.
    pub per_shard: Vec<StepReport>,
}

/// One shard: the engine plus the slot its parallel step writes into.
struct ShardCell {
    engine: ServeEngine,
    report: Option<Result<StepReport, ServeError>>,
}

/// N independent serve engines behind an affinity-hashed session router.
/// See the [module docs](self) for the placement and admission model.
pub struct ShardedServe {
    shards: Vec<ShardCell>,
    /// Next session allocation sequence number (not the session id).
    next_seq: u64,
    /// Global admission bound: `shards × per_shard.max_sessions`.
    max_sessions: usize,
}

impl ShardedServe {
    /// Builds `shards` engines, each around a clone of `pipeline`, and the
    /// router in front of them.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `shards` is zero or
    /// exceeds [`MAX_SHARDS`], or when `per_shard` fails validation.
    pub fn new(
        pipeline: MmHandPipeline,
        shards: usize,
        per_shard: ServeConfig,
    ) -> Result<Self, ServeError> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(ServeError::InvalidConfig {
                field: "shards",
                reason: format!("shard count must be in 1..={MAX_SHARDS}, got {shards}"),
            });
        }
        let max_sessions = per_shard.max_sessions.saturating_mul(shards);
        // The router is the single admission authority: each shard engine
        // gets the *global* session cap so affinity-hash imbalance can
        // never trip a shard-local rejection while global capacity remains
        // (placement is a pure hash, not load-aware).
        let engine_cfg = per_shard.max_sessions(max_sessions);
        let mut cells = Vec::with_capacity(shards);
        for _ in 0..shards.saturating_sub(1) {
            let engine = ServeEngine::new(pipeline.clone(), engine_cfg.clone())?;
            cells.push(ShardCell { engine, report: None });
        }
        // The last shard takes the original pipeline instead of a clone.
        cells.push(ShardCell { engine: ServeEngine::new(pipeline, engine_cfg)?, report: None });
        telemetry::gauge("serve.shard.count").set(shards as f64);
        telemetry::gauge("serve.shard.sessions_active").set(0.0);
        Ok(ShardedServe { shards: cells, next_seq: 1, max_sessions })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The global admission limit (`shards × per_shard.max_sessions`).
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Open sessions summed over shards.
    pub fn active_sessions(&self) -> usize {
        self.shards.iter().map(|c| c.engine.active_sessions()).sum()
    }

    /// Eviction tombstones remembered, summed over shards (each shard's
    /// store is a bounded ring, so this is bounded too).
    pub fn evicted_tombstones(&self) -> usize {
        self.shards.iter().map(|c| c.engine.evicted_tombstones()).sum()
    }

    /// Name of the process-wide kernel backend the shard engines run on.
    pub fn kernel_backend(&self) -> &'static str {
        self.shards[0].engine.kernel_backend()
    }

    /// Numeric precision every shard serves (shards share one profile and
    /// one pipeline, so this is uniform by construction).
    pub fn precision(&self) -> mmhand_core::Precision {
        self.shards[0].engine.precision()
    }

    /// The per-shard serving configuration.
    pub fn config(&self) -> &ServeConfig {
        self.shards[0].engine.config()
    }

    /// The shard a session id routes to.
    fn shard_index(&self, session: u64) -> Result<usize, ServeError> {
        let shard = (session & (MAX_SHARDS as u64 - 1)) as usize;
        if session >> SHARD_BITS == 0 || shard >= self.shards.len() {
            return Err(ServeError::UnknownSession { session });
        }
        Ok(shard)
    }

    /// Deterministic affinity placement for an allocation sequence number:
    /// a Fibonacci (multiplicative) hash spread over the shard count.
    fn place(&self, seq: u64) -> usize {
        (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.shards.len()
    }

    /// Opens a session on its affinity shard and returns the global id.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SessionLimit`] at the global bound (the
    /// aggregate `shards × per_shard.max_sessions` limit); admission is
    /// decided here, never by an individual shard.
    pub fn open_session(&mut self) -> Result<u64, ServeError> {
        if self.active_sessions() >= self.max_sessions {
            telemetry::counter("serve.shard.admission_rejected").inc();
            telemetry::counter("serve.sessions_rejected").inc();
            return Err(ServeError::SessionLimit { max_sessions: self.max_sessions });
        }
        let seq = self.next_seq;
        let shard = self.place(seq);
        let id = (seq << SHARD_BITS) | shard as u64;
        match self.shards[shard].engine.open_session_with_id(id) {
            Ok(()) => {
                self.next_seq += 1;
                telemetry::gauge("serve.shard.sessions_active")
                    .set(self.active_sessions() as f64);
                Ok(id)
            }
            Err(e) => {
                if matches!(e, ServeError::SessionLimit { .. }) {
                    telemetry::counter("serve.shard.admission_rejected").inc();
                }
                Err(e)
            }
        }
    }

    /// Pushes one raw frame to the session's shard.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::push_frame`]; ids that decode to no shard are
    /// [`ServeError::UnknownSession`].
    pub fn push_frame(&mut self, session: u64, frame: RawFrame) -> Result<(), ServeError> {
        let shard = self.shard_index(session)?;
        self.shards[shard].engine.push_frame(session, frame)
    }

    /// Frames currently queued for a session.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::queued_frames`].
    pub fn queued_frames(&self, session: u64) -> Result<usize, ServeError> {
        let shard = self.shard_index(session)?;
        self.shards[shard].engine.queued_frames(session)
    }

    /// Drains buffered results for a session (oldest first).
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::take_results`].
    pub fn take_results(&mut self, session: u64) -> Result<Vec<FrameResult>, ServeError> {
        let shard = self.shard_index(session)?;
        self.shards[shard].engine.take_results(session)
    }

    /// Closes a session, returning its lifetime stats.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::close_session`].
    pub fn close_session(&mut self, session: u64) -> Result<SessionStats, ServeError> {
        let shard = self.shard_index(session)?;
        let stats = self.shards[shard].engine.close_session(session)?;
        telemetry::gauge("serve.shard.sessions_active").set(self.active_sessions() as f64);
        Ok(stats)
    }

    /// Runs one scheduling round on every shard, concurrently over the
    /// `mmhand-parallel` pool, and aggregates the reports. Each shard's
    /// step is the unchanged single-engine step (fairness cursor, bounded
    /// tombstones, micro-batched forward pass), so per-session results do
    /// not depend on the shard count.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed shard's error if any shard step failed;
    /// the other shards' completed work (buffered results, evictions)
    /// remains intact.
    pub fn step(&mut self) -> Result<ShardStepReport, ServeError> {
        let sp = telemetry::span("serve.shard.step");
        mmhand_parallel::par_chunks_mut(&mut self.shards, 1, |_, cell| {
            for c in cell {
                c.report = Some(c.engine.step());
            }
        });
        let mut agg = ShardStepReport {
            per_shard: Vec::with_capacity(self.shards.len()),
            ..ShardStepReport::default()
        };
        let mut first_err = None;
        for cell in &mut self.shards {
            match cell.report.take() {
                Some(Ok(report)) => {
                    agg.batched += report.batched;
                    agg.results_produced += report.results_produced;
                    agg.evicted.extend_from_slice(&report.evicted);
                    agg.per_shard.push(report);
                }
                Some(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    agg.per_shard.push(StepReport::default());
                }
                None => agg.per_shard.push(StepReport::default()),
            }
        }
        let (min, max) = self.shards.iter().fold((usize::MAX, 0), |(lo, hi), c| {
            let n = c.engine.active_sessions();
            (lo.min(n), hi.max(n))
        });
        telemetry::gauge("serve.shard.imbalance").set(max.saturating_sub(min) as f64);
        telemetry::gauge("serve.shard.sessions_active").set(self.active_sessions() as f64);
        sp.finish();
        match first_err {
            Some(e) => Err(e),
            None => Ok(agg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeshPolicy;
    use crate::testutil::{tiny_engine_parts, tiny_stream};

    fn sharded(shards: usize, cfg: ServeConfig) -> ShardedServe {
        let (pipeline, _frames) = tiny_engine_parts();
        ShardedServe::new(pipeline, shards, cfg).expect("valid config")
    }

    #[test]
    fn shard_count_bounds_are_typed_errors() {
        let (pipeline, _frames) = tiny_engine_parts();
        for bad in [0, MAX_SHARDS + 1] {
            match ShardedServe::new(pipeline.clone(), bad, ServeConfig::new()) {
                Err(ServeError::InvalidConfig { field: "shards", .. }) => {}
                Err(other) => panic!("expected InvalidConfig for {bad} shards, got {other:?}"),
                Ok(_) => panic!("expected InvalidConfig for {bad} shards, got Ok"),
            }
        }
    }

    #[test]
    fn global_admission_limit_spans_shards() {
        let mut s = sharded(2, ServeConfig::new().max_sessions(2));
        let mut opened = 0;
        let mut rejected = 0;
        for _ in 0..6 {
            match s.open_session() {
                Ok(_) => opened += 1,
                Err(ServeError::SessionLimit { .. }) => rejected += 1,
                other => panic!("unexpected admission outcome {other:?}"),
            }
        }
        // 2 shards × 2 sessions global capacity; hash imbalance may reject
        // earlier at a full shard, never later than the global bound.
        assert!(opened <= 4, "opened {opened} past the global bound");
        assert!(rejected >= 2);
        assert_eq!(s.active_sessions(), opened);
    }

    #[test]
    fn ids_route_to_their_shard_and_bogus_ids_are_unknown() {
        let mut s = sharded(4, ServeConfig::new());
        let a = s.open_session().expect("opens");
        let b = s.open_session().expect("opens");
        assert_ne!(a, b);
        // Decodable but never-allocated ids and undecodable ids both fail.
        for bogus in [0u64, 7, (999 << 8) | 3, (1 << 8) | 200] {
            assert!(
                matches!(
                    s.take_results(bogus),
                    Err(ServeError::UnknownSession { .. } | ServeError::SessionEvicted { .. })
                ),
                "bogus id {bogus} must not resolve"
            );
        }
        assert!(s.take_results(a).expect("routes").is_empty());
        assert!(s.take_results(b).expect("routes").is_empty());
    }

    #[test]
    fn cross_shard_eviction_aggregates_and_tombstones_stay_bounded() {
        let mut s = sharded(
            4,
            ServeConfig::new().evict_after_idle_steps(1).tombstone_capacity(2),
        );
        let ids: Vec<u64> = (0..8).map(|_| s.open_session().expect("opens")).collect();
        let report = s.step().expect("step runs");
        let mut evicted = report.evicted.clone();
        evicted.sort_unstable();
        let mut want = ids.clone();
        want.sort_unstable();
        assert_eq!(evicted, want, "all idle sessions evicted across shards");
        assert!(
            s.evicted_tombstones() <= 4 * 2,
            "tombstones bounded by shards × capacity"
        );
        assert_eq!(s.active_sessions(), 0);
    }

    #[test]
    fn sharded_streams_produce_results() {
        let mut s = sharded(2, ServeConfig::new().mesh_policy(MeshPolicy::Never));
        let frames = tiny_stream(4, 77);
        let seg = 2; // frames_per_segment of the tiny cube geometry
        let a = s.open_session().expect("opens");
        let b = s.open_session().expect("opens");
        for f in frames.iter().take(2 * seg) {
            s.push_frame(a, f.clone()).expect("accepted");
            s.push_frame(b, f.clone()).expect("accepted");
        }
        let mut produced = 0;
        for _ in 0..2 {
            produced += s.step().expect("step runs").results_produced;
        }
        assert_eq!(produced, 4);
        assert_eq!(s.take_results(a).expect("drain").len(), 2);
        assert_eq!(s.take_results(b).expect("drain").len(), 2);
        s.close_session(a).expect("closes");
        s.close_session(b).expect("closes");
    }
}
