//! `mmhand-serve` — drives N synthetic concurrent streaming sessions
//! through the [`ServeEngine`] and reports throughput, latency quantiles,
//! and backpressure behaviour.
//!
//! Usage (all flags optional):
//!
//! ```text
//! mmhand-serve [--sessions N] [--frames N] [--queue N] [--batch N]
//!              [--overload F] [--expect-rejects] [--mesh always|never|adaptive]
//!              [--precision f32|int8] [--listen ADDR] [--shards N] [--polls N]
//! ```
//!
//! `--precision int8` serves the post-training quantized inference path:
//! the reference model is calibrated on a held-out synthetic stream at
//! startup and every forward pass runs int8 (wire clients must announce
//! the matching precision in their `Hello`). The default follows the
//! documented `MMHAND_PRECISION` env fallback.
//!
//! With `--listen ADDR` the binary instead binds the non-blocking socket
//! front end over a sharded engine (`--shards`, default 4) and serves the
//! binary wire protocol: clients speak `Hello`/`Open`/`Push`/`Close`
//! frames (see `mmhand_serve::wire`). `--polls N` bounds the poll loop
//! (0, the default, runs until killed), which gives CI a way to
//! smoke-test the listener without a background process.
//!
//! Each session streams an independent synthetic capture (its own user,
//! gestures, and noise seed) from the radar simulator. `--overload F`
//! pushes `F` segments' worth of frames per scheduling round instead of
//! one, deliberately exceeding the bounded ingress queues:
//! `--expect-rejects` then asserts the overload surfaced as typed
//! `QueueFull` rejections (the CI smoke test runs both modes). Exit code
//! is non-zero when the run violates its expectation, so the binary
//! doubles as a self-checking smoke test.
//!
//! Metrics land in `target/mmhand-metrics/BENCH_serve_metrics.{json,prom}`
//! following the bench harness convention.

use mmhand_core::cube::CubeConfig;
use mmhand_core::eval::{build_cohort, train_reference_model, DataConfig};
use mmhand_core::model::ModelConfig;
use mmhand_core::train::TrainConfig;
use mmhand_core::MmHandPipeline;
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment, RawFrame};
use mmhand_core::Precision;
use mmhand_serve::{
    InferenceProfile, MeshPolicy, ServeConfig, ServeEngine, ServeError, ServeServer, ShardedServe,
};
use mmhand_telemetry as telemetry;
use std::io::Write;
use std::process::ExitCode;

struct Args {
    sessions: usize,
    frames: usize,
    queue: usize,
    batch: usize,
    overload: usize,
    expect_rejects: bool,
    mesh: MeshPolicy,
    precision: Precision,
    listen: Option<String>,
    shards: usize,
    polls: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 8,
            frames: 24,
            queue: 8,
            batch: 8,
            overload: 1,
            expect_rejects: false,
            mesh: MeshPolicy::SkipWhenBacklogged { segments: 2 },
            precision: Precision::env_fallback(),
            listen: None,
            shards: 4,
            polls: 0,
        }
    }
}

impl Args {
    fn profile(&self) -> InferenceProfile {
        InferenceProfile::default().precision(self.precision).mesh_policy(self.mesh)
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--sessions" => args.sessions = num("--sessions")?,
            "--frames" => args.frames = num("--frames")?,
            "--queue" => args.queue = num("--queue")?,
            "--batch" => args.batch = num("--batch")?,
            "--overload" => args.overload = num("--overload")?.max(1),
            "--expect-rejects" => args.expect_rejects = true,
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen needs an address".to_string())?)
            }
            "--shards" => args.shards = num("--shards")?.max(1),
            "--polls" => args.polls = num("--polls")?,
            "--mesh" => {
                args.mesh = match it.next().as_deref() {
                    Some("always") => MeshPolicy::Always,
                    Some("never") => MeshPolicy::Never,
                    Some("adaptive") => MeshPolicy::SkipWhenBacklogged { segments: 2 },
                    other => return Err(format!("--mesh: unknown policy {other:?}")),
                };
            }
            "--precision" => {
                args.precision = it
                    .next()
                    .ok_or("--precision needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--precision: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn tiny_chirp() -> ChirpConfig {
    ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() }
}

fn tiny_cube() -> CubeConfig {
    CubeConfig {
        chirp: tiny_chirp(),
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    }
}

/// Trains the small reference model the service runs behind; at
/// [`Precision::Int8`] it is additionally calibrated on a held-out
/// synthetic stream.
fn build_pipeline(precision: Precision) -> Result<MmHandPipeline, Box<dyn std::error::Error>> {
    let cube = tiny_cube();
    let data = DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp: cube.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube: cube.clone(),
        seed: 11,
        ..Default::default()
    };
    let model_cfg = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };
    let seqs = build_cohort(&data);
    let model = train_reference_model(
        &seqs,
        &model_cfg,
        &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    );
    let mut builder = MmHandPipeline::builder_for(model.clone())
        .cube_config(cube.clone())
        .precision(precision);
    if precision == Precision::Int8 {
        // Calibrate on a stream no client replays (the client seeds start
        // at 1000), so activation ranges are post-training statistics, not
        // a fit to the serving traffic itself.
        let mut probe = MmHandPipeline::builder_for(model).cube_config(cube).build()?;
        let calibration = probe.try_frames_to_segments(&client_stream(9999, 16))?;
        builder = builder.calibration_segments(calibration);
    }
    Ok(builder.build()?)
}

/// One synthetic client's frame stream.
fn client_stream(client: usize, n_frames: usize) -> Vec<RawFrame> {
    let seed = 1000 + client as u64;
    let user = UserProfile::generate(client + 1, seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Victory, Gesture::Fist],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    record_session(
        &user,
        &track,
        n_frames,
        &CaptureConfig { chirp: tiny_chirp(), noise_sigma: 0.005, seed, ..Default::default() },
    )
    .frames
}

fn export_metrics() {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    let dir = std::path::PathBuf::from(base).join("mmhand-metrics");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("metrics dir: {e}");
        return;
    }
    let snap = telemetry::snapshot();
    for (name, body) in [
        ("BENCH_serve_metrics.json", snap.to_json()),
        ("BENCH_serve_metrics.prom", snap.to_prometheus()),
    ] {
        let path = dir.join(name);
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = f.write_all(body.as_bytes()) {
                    eprintln!("metrics write {}: {e}", path.display());
                } else {
                    println!("metrics: {}", path.display());
                }
            }
            Err(e) => eprintln!("metrics create {}: {e}", path.display()),
        }
    }
}

/// Serves the binary wire protocol on a real socket until `polls` polls
/// have run (0 = until killed).
fn run_listener(args: &Args, addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = build_pipeline(args.precision)?;
    let serve = ShardedServe::new(
        pipeline,
        args.shards,
        ServeConfig::new()
            .max_sessions(args.sessions)
            .queue_capacity(args.queue)
            .max_batch(args.batch)
            .evict_after_idle_steps(10_000)
            .profile(args.profile()),
    )?;
    let mut server = ServeServer::bind(addr, serve)?;
    println!(
        "listening on {} ({} shards, {} precision)",
        server.local_addr()?,
        args.shards,
        server.serve().precision().name()
    );
    let mut polls = 0usize;
    loop {
        let report = server.poll_once()?;
        polls += 1;
        if args.polls > 0 && polls >= args.polls {
            println!("poll budget exhausted after {polls} polls");
            break;
        }
        // An idle poll (no connections, no messages) yields the CPU so an
        // unbounded listener loop doesn't spin hot.
        if report.messages == 0 && server.connections() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    export_metrics();
    Ok(())
}

fn run(args: &Args) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    let pipeline = build_pipeline(args.precision)?;
    let st = pipeline.builder().config().frames_per_segment;
    let mut engine = ServeEngine::new(
        pipeline,
        ServeConfig::new()
            .max_sessions(args.sessions)
            .queue_capacity(args.queue)
            .max_batch(args.batch)
            .profile(args.profile()),
    )?;
    println!(
        "serving {} precision on the {} backend",
        engine.precision().name(),
        engine.kernel_backend()
    );

    let streams: Vec<Vec<RawFrame>> =
        (0..args.sessions).map(|k| client_stream(k, args.frames)).collect();
    let mut ids = Vec::with_capacity(args.sessions);
    for _ in 0..args.sessions {
        ids.push(engine.open_session()?);
    }

    let mut cursors = vec![0usize; args.sessions];
    let mut rejects = 0u64;
    let mut results = 0u64;
    let push_per_round = st * args.overload;

    // Interleaved rounds: each client pushes `overload` segments' worth of
    // frames, then one scheduling step runs.
    loop {
        let mut pushed_any = false;
        for (k, &sid) in ids.iter().enumerate() {
            for _ in 0..push_per_round {
                let Some(frame) = streams[k].get(cursors[k]) else { break };
                match engine.push_frame(sid, frame.clone()) {
                    Ok(()) => {
                        cursors[k] += 1;
                        pushed_any = true;
                    }
                    Err(ServeError::QueueFull { .. }) => {
                        // Backpressure: drop this client's round, frame is
                        // re-offered next round.
                        rejects += 1;
                        if args.overload > 1 {
                            // Overload mode models a client that cannot
                            // retry: the frame is lost.
                            cursors[k] += 1;
                            pushed_any = true;
                        }
                        break;
                    }
                    Err(e) => return Err(Box::new(e)),
                }
            }
        }
        let report = engine.step()?;
        for &sid in &ids {
            results += engine.take_results(sid)?.len() as u64;
        }
        if !pushed_any && report.batched == 0 {
            break;
        }
    }

    let snap = telemetry::snapshot();
    let step_hist = snap.histograms.iter().find(|(n, _)| n == "serve.step").map(|(_, h)| h);
    println!("sessions:        {}", args.sessions);
    println!("frames/session:  {}", args.frames);
    println!("overload factor: {}x", args.overload);
    println!("results:         {results}");
    println!("rejected frames: {rejects}");
    if let Some(h) = step_hist {
        println!(
            "step latency ms: p50 <= {:.2}, p99 <= {:.2} over {} steps",
            h.quantile(0.5),
            h.quantile(0.99),
            h.count
        );
    }
    for (name, v) in &snap.counters {
        if name.starts_with("serve.") {
            println!("  {name} = {v}");
        }
    }
    for &sid in &ids {
        engine.close_session(sid)?;
    }
    export_metrics();
    Ok((results, rejects))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mmhand-serve: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = args.listen.clone() {
        return match run_listener(&args, &addr) {
            Ok(()) => {
                println!("OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mmhand-serve: {e}");
                ExitCode::from(2)
            }
        };
    }
    match run(&args) {
        Ok((results, rejects)) => {
            if args.expect_rejects && rejects == 0 {
                eprintln!("FAIL: overload run produced no rejections");
                ExitCode::from(1)
            } else if !args.expect_rejects && rejects > 0 {
                eprintln!("FAIL: nominal run rejected {rejects} frames");
                ExitCode::from(1)
            } else if results == 0 {
                eprintln!("FAIL: no results produced");
                ExitCode::from(1)
            } else {
                println!("OK");
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("mmhand-serve: {e}");
            ExitCode::from(2)
        }
    }
}
