//! Serving configuration, assembled builder-style.

use crate::error::ServeError;

/// What to do about mesh reconstruction under load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshPolicy {
    /// Reconstruct a mesh for every segment.
    Always,
    /// Skeletons only; never reconstruct meshes.
    Never,
    /// Graceful degradation: skip the mesh for a session whenever its
    /// ingress queue still holds at least this many un-processed whole
    /// segments after the current batch was taken — latency is spent on
    /// catching up instead of on vertices.
    SkipWhenBacklogged {
        /// Backlog threshold in whole segments.
        segments: usize,
    },
}

/// Configuration of a [`ServeEngine`](crate::ServeEngine).
///
/// Built builder-style from [`ServeConfig::new`]; every bound is explicit
/// and validated by [`ServeConfig::validate`] (called on engine
/// construction), so a zero-capacity queue is a typed error instead of a
/// silent stall.
///
/// ```
/// use mmhand_serve::{MeshPolicy, ServeConfig};
///
/// let cfg = ServeConfig::new()
///     .max_sessions(8)
///     .queue_capacity(32)
///     .max_batch(8)
///     .mesh_policy(MeshPolicy::SkipWhenBacklogged { segments: 2 });
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission limit: concurrent open sessions.
    pub max_sessions: usize,
    /// Per-session ingress queue capacity, in raw frames.
    pub queue_capacity: usize,
    /// Micro-batch width: sessions folded into one forward pass per step.
    pub max_batch: usize,
    /// Per-session bound on buffered, un-taken results, in segments. A
    /// session at this bound is not scheduled, which backpressures its
    /// ingress queue.
    pub result_capacity: usize,
    /// Evict a session after this many consecutive steps without enough
    /// queued frames to form a segment. `0` disables eviction.
    pub evict_after_idle_steps: usize,
    /// How many *recently evicted* session ids are remembered so a late
    /// client gets the distinct [`ServeError::SessionEvicted`] instead of
    /// [`ServeError::UnknownSession`](crate::ServeError::UnknownSession).
    /// The tombstone store is a bounded ring: once more than this many
    /// sessions have been evicted, the oldest tombstones degrade to the
    /// generic unknown-session error. This keeps long-running servers at
    /// O(`tombstone_capacity`) memory under unbounded session churn.
    pub tombstone_capacity: usize,
    /// Mesh reconstruction policy.
    pub mesh: MeshPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 16,
            queue_capacity: 64,
            max_batch: 8,
            result_capacity: 64,
            evict_after_idle_steps: 0,
            tombstone_capacity: 1024,
            mesh: MeshPolicy::Always,
        }
    }
}

impl ServeConfig {
    /// Starts from the defaults.
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// Sets the concurrent-session admission limit.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Sets the per-session ingress queue capacity (frames).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the micro-batch width.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Sets the per-session result-buffer bound (segments).
    pub fn result_capacity(mut self, n: usize) -> Self {
        self.result_capacity = n;
        self
    }

    /// Sets the idle-step eviction budget (`0` disables eviction).
    pub fn evict_after_idle_steps(mut self, n: usize) -> Self {
        self.evict_after_idle_steps = n;
        self
    }

    /// Sets the bound on remembered eviction tombstones.
    pub fn tombstone_capacity(mut self, n: usize) -> Self {
        self.tombstone_capacity = n;
        self
    }

    /// Sets the mesh reconstruction policy.
    pub fn mesh_policy(mut self, policy: MeshPolicy) -> Self {
        self.mesh = policy;
        self
    }

    /// Checks every bound.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the first zero bound.
    pub fn validate(&self) -> Result<(), ServeError> {
        let invalid = |field: &'static str, reason: &str| {
            Err(ServeError::InvalidConfig { field, reason: reason.to_string() })
        };
        if self.max_sessions == 0 {
            return invalid("max_sessions", "must admit at least one session");
        }
        if self.queue_capacity == 0 {
            return invalid("queue_capacity", "a zero-capacity queue rejects every frame");
        }
        if self.max_batch == 0 {
            return invalid("max_batch", "must batch at least one session per step");
        }
        if self.result_capacity == 0 {
            return invalid("result_capacity", "a zero-capacity result buffer stalls every session");
        }
        if self.tombstone_capacity == 0 {
            return invalid(
                "tombstone_capacity",
                "must remember at least one evicted session to report SessionEvicted",
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_bounds_are_typed_errors() {
        for (cfg, field) in [
            (ServeConfig::new().max_sessions(0), "max_sessions"),
            (ServeConfig::new().queue_capacity(0), "queue_capacity"),
            (ServeConfig::new().max_batch(0), "max_batch"),
            (ServeConfig::new().result_capacity(0), "result_capacity"),
            (ServeConfig::new().tombstone_capacity(0), "tombstone_capacity"),
        ] {
            match cfg.validate() {
                Err(ServeError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_chains() {
        let cfg = ServeConfig::new()
            .max_sessions(2)
            .queue_capacity(4)
            .max_batch(2)
            .result_capacity(8)
            .evict_after_idle_steps(3)
            .mesh_policy(MeshPolicy::Never);
        assert_eq!(cfg.max_sessions, 2);
        assert_eq!(cfg.queue_capacity, 4);
        assert_eq!(cfg.max_batch, 2);
        assert_eq!(cfg.result_capacity, 8);
        assert_eq!(cfg.evict_after_idle_steps, 3);
        assert_eq!(cfg.mesh, MeshPolicy::Never);
    }
}
