//! Serving configuration, assembled builder-style.

use crate::error::ServeError;
use mmhand_core::Precision;
use mmhand_kernels::BackendChoice;

/// What to do about mesh reconstruction under load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshPolicy {
    /// Reconstruct a mesh for every segment.
    Always,
    /// Skeletons only; never reconstruct meshes.
    Never,
    /// Graceful degradation: skip the mesh for a session whenever its
    /// ingress queue still holds at least this many un-processed whole
    /// segments after the current batch was taken — latency is spent on
    /// catching up instead of on vertices.
    SkipWhenBacklogged {
        /// Backlog threshold in whole segments.
        segments: usize,
    },
}

/// The typed inference knob: everything that selects *how* the engine
/// computes — numeric precision, mesh policy, kernel backend — in one
/// place, carried by [`ServeConfig`], consumed by the engine, the sharded
/// router, and the wire `Hello` negotiation.
///
/// This replaces the previous scattering of per-call choices and env-var
/// overrides: `MMHAND_PRECISION` and `MMHAND_KERNEL_BACKEND` remain as
/// documented *fallbacks* that fill the profile defaults
/// ([`InferenceProfile::from_env`], used by [`ServeConfig::default`]), but
/// an explicitly configured profile always wins.
///
/// The profile's precision must agree with the served pipeline's
/// [`Precision`] — an int8 profile over an uncalibrated f32 pipeline is a
/// typed [`ServeError::InvalidConfig`] at engine construction, never a
/// silent downgrade mid-serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InferenceProfile {
    /// Numeric path of the forward pass (f32 reference or calibrated int8).
    pub precision: Precision,
    /// Mesh reconstruction policy.
    pub mesh_policy: MeshPolicy,
    /// Kernel backend request, resolved (and process-pinned) at engine
    /// construction via `mmhand_kernels::request_backend`.
    pub kernel_backend: BackendChoice,
}

impl Default for InferenceProfile {
    /// The pure default: f32, meshes always, auto backend. Env fallbacks
    /// are applied only by [`InferenceProfile::from_env`].
    fn default() -> Self {
        InferenceProfile {
            precision: Precision::F32,
            mesh_policy: MeshPolicy::Always,
            kernel_backend: BackendChoice::Auto,
        }
    }
}

impl InferenceProfile {
    /// The default profile with the documented env fallbacks applied:
    /// `MMHAND_PRECISION` fills [`InferenceProfile::precision`] and
    /// [`BackendChoice::Auto`] defers to `MMHAND_KERNEL_BACKEND` inside the
    /// kernel dispatcher.
    pub fn from_env() -> Self {
        InferenceProfile { precision: Precision::env_fallback(), ..Default::default() }
    }

    /// Sets the precision.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Sets the mesh policy.
    pub fn mesh_policy(mut self, policy: MeshPolicy) -> Self {
        self.mesh_policy = policy;
        self
    }

    /// Sets the kernel backend request.
    pub fn kernel_backend(mut self, choice: BackendChoice) -> Self {
        self.kernel_backend = choice;
        self
    }
}

/// Configuration of a [`ServeEngine`](crate::ServeEngine).
///
/// Built builder-style from [`ServeConfig::new`]; every bound is explicit
/// and validated by [`ServeConfig::validate`] (called on engine
/// construction), so a zero-capacity queue is a typed error instead of a
/// silent stall. How the engine computes — precision, mesh policy, kernel
/// backend — lives in one typed [`InferenceProfile`].
///
/// ```
/// use mmhand_serve::{InferenceProfile, MeshPolicy, ServeConfig};
///
/// let cfg = ServeConfig::new()
///     .max_sessions(8)
///     .queue_capacity(32)
///     .max_batch(8)
///     .profile(
///         InferenceProfile::from_env()
///             .mesh_policy(MeshPolicy::SkipWhenBacklogged { segments: 2 }),
///     );
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission limit: concurrent open sessions.
    pub max_sessions: usize,
    /// Per-session ingress queue capacity, in raw frames.
    pub queue_capacity: usize,
    /// Micro-batch width: sessions folded into one forward pass per step.
    pub max_batch: usize,
    /// Per-session bound on buffered, un-taken results, in segments. A
    /// session at this bound is not scheduled, which backpressures its
    /// ingress queue.
    pub result_capacity: usize,
    /// Evict a session after this many consecutive steps without enough
    /// queued frames to form a segment. `0` disables eviction.
    pub evict_after_idle_steps: usize,
    /// How many *recently evicted* session ids are remembered so a late
    /// client gets the distinct [`ServeError::SessionEvicted`] instead of
    /// [`ServeError::UnknownSession`](crate::ServeError::UnknownSession).
    /// The tombstone store is a bounded ring: once more than this many
    /// sessions have been evicted, the oldest tombstones degrade to the
    /// generic unknown-session error. This keeps long-running servers at
    /// O(`tombstone_capacity`) memory under unbounded session churn.
    pub tombstone_capacity: usize,
    /// The typed inference knob (precision, mesh policy, kernel backend).
    pub profile: InferenceProfile,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 16,
            queue_capacity: 64,
            max_batch: 8,
            result_capacity: 64,
            evict_after_idle_steps: 0,
            tombstone_capacity: 1024,
            profile: InferenceProfile::from_env(),
        }
    }
}

impl ServeConfig {
    /// Starts from the defaults.
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// Sets the concurrent-session admission limit.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Sets the per-session ingress queue capacity (frames).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the micro-batch width.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Sets the per-session result-buffer bound (segments).
    pub fn result_capacity(mut self, n: usize) -> Self {
        self.result_capacity = n;
        self
    }

    /// Sets the idle-step eviction budget (`0` disables eviction).
    pub fn evict_after_idle_steps(mut self, n: usize) -> Self {
        self.evict_after_idle_steps = n;
        self
    }

    /// Sets the bound on remembered eviction tombstones.
    pub fn tombstone_capacity(mut self, n: usize) -> Self {
        self.tombstone_capacity = n;
        self
    }

    /// Sets the whole typed inference profile at once — the preferred way
    /// to configure precision, mesh policy, and kernel backend together.
    pub fn profile(mut self, profile: InferenceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the mesh reconstruction policy.
    ///
    /// Note: superseded by [`ServeConfig::profile`], which carries the mesh
    /// policy alongside precision and kernel backend; this setter remains
    /// as a delegating convenience and touches nothing else in the profile.
    pub fn mesh_policy(mut self, policy: MeshPolicy) -> Self {
        self.profile.mesh_policy = policy;
        self
    }

    /// Checks every bound.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the first zero bound.
    pub fn validate(&self) -> Result<(), ServeError> {
        let invalid = |field: &'static str, reason: &str| {
            Err(ServeError::InvalidConfig { field, reason: reason.to_string() })
        };
        if self.max_sessions == 0 {
            return invalid("max_sessions", "must admit at least one session");
        }
        if self.queue_capacity == 0 {
            return invalid("queue_capacity", "a zero-capacity queue rejects every frame");
        }
        if self.max_batch == 0 {
            return invalid("max_batch", "must batch at least one session per step");
        }
        if self.result_capacity == 0 {
            return invalid("result_capacity", "a zero-capacity result buffer stalls every session");
        }
        if self.tombstone_capacity == 0 {
            return invalid(
                "tombstone_capacity",
                "must remember at least one evicted session to report SessionEvicted",
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_bounds_are_typed_errors() {
        for (cfg, field) in [
            (ServeConfig::new().max_sessions(0), "max_sessions"),
            (ServeConfig::new().queue_capacity(0), "queue_capacity"),
            (ServeConfig::new().max_batch(0), "max_batch"),
            (ServeConfig::new().result_capacity(0), "result_capacity"),
            (ServeConfig::new().tombstone_capacity(0), "tombstone_capacity"),
        ] {
            match cfg.validate() {
                Err(ServeError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_chains() {
        let cfg = ServeConfig::new()
            .max_sessions(2)
            .queue_capacity(4)
            .max_batch(2)
            .result_capacity(8)
            .evict_after_idle_steps(3)
            .mesh_policy(MeshPolicy::Never);
        assert_eq!(cfg.max_sessions, 2);
        assert_eq!(cfg.queue_capacity, 4);
        assert_eq!(cfg.max_batch, 2);
        assert_eq!(cfg.result_capacity, 8);
        assert_eq!(cfg.evict_after_idle_steps, 3);
        assert_eq!(cfg.profile.mesh_policy, MeshPolicy::Never);
    }

    #[test]
    fn profile_is_one_typed_knob() {
        let profile = InferenceProfile::default()
            .precision(Precision::Int8)
            .mesh_policy(MeshPolicy::Never)
            .kernel_backend(BackendChoice::Scalar);
        let cfg = ServeConfig::new().profile(profile);
        assert_eq!(cfg.profile, profile);
        assert_eq!(cfg.profile.precision, Precision::Int8);
        assert_eq!(cfg.profile.kernel_backend, BackendChoice::Scalar);
        // The legacy mesh setter delegates into the profile without
        // touching its other fields.
        let cfg = cfg.mesh_policy(MeshPolicy::Always);
        assert_eq!(cfg.profile.mesh_policy, MeshPolicy::Always);
        assert_eq!(cfg.profile.precision, Precision::Int8);
        assert_eq!(cfg.profile.kernel_backend, BackendChoice::Scalar);
    }

    #[test]
    fn default_profile_is_pure_and_env_fallback_is_separate() {
        let pure = InferenceProfile::default();
        assert_eq!(pure.mesh_policy, MeshPolicy::Always);
        assert_eq!(pure.kernel_backend, BackendChoice::Auto);
        // from_env resolves precision through the documented fallback; the
        // other fields keep their pure defaults.
        let env = InferenceProfile::from_env();
        assert_eq!(env.mesh_policy, MeshPolicy::Always);
        assert_eq!(env.kernel_backend, BackendChoice::Auto);
    }
}
