//! The length-prefixed binary wire protocol of the socket front end.
//!
//! Every message is `[type: u8][len: u32 LE][payload: len bytes]`. A
//! connection opens with [`WireMsg::Hello`] (magic + protocol version) so
//! the server can reject foreign byte streams before trusting any length
//! prefix. Payload lengths are capped ([`MAX_PAYLOAD`]) and frame axis
//! extents are validated before any allocation, so a hostile or corrupted
//! stream surfaces as a typed [`WireError`] — never a panic and never an
//! unbounded allocation.
//!
//! The codec is symmetric and incremental: [`encode`] appends one message
//! to a byte buffer; [`Decoder`] consumes arbitrary byte chunks (as
//! delivered by non-blocking socket reads) and yields complete messages,
//! buffering partial ones. Truncated input is simply "not yet a message";
//! only structurally invalid input errors.
//!
//! Skeletons travel as raw little-endian `f32` bit patterns, so a result
//! read off the wire is bitwise identical to one taken from the engine
//! in-process — the sharded-serve identity guarantee extends to clients.

use crate::session::SessionStats;
use mmhand_core::Precision;
use mmhand_math::Complex;
use mmhand_radar::RawFrame;
use std::fmt;

/// Protocol magic, first bytes of every connection's `Hello` payload.
pub const WIRE_MAGIC: [u8; 4] = *b"MMHW";
/// Current protocol version. Version 2 added a precision byte to `Hello`
/// so clients negotiate the numeric inference path; version-1 `Hello`s
/// still decode and negotiate down to [`Precision::F32`].
pub const WIRE_VERSION: u16 = 2;
/// Oldest protocol version this codec still speaks.
pub const MIN_WIRE_VERSION: u16 = 1;
/// Hard cap on one message's payload length (bytes). A `Push` of the
/// full-scale radar geometry (3·4 antennas × 128 chirps × 256 samples ×
/// 8 bytes ≈ 3.1 MiB) fits with an order of magnitude to spare.
pub const MAX_PAYLOAD: u32 = 32 << 20;
/// Cap on `tx · rx · chirps · samples` accepted from the wire.
pub const MAX_FRAME_SAMPLES: usize = 1 << 22;

/// Message type tags. Client → server tags are < 128.
mod tag {
    pub const HELLO: u8 = 1;
    pub const OPEN: u8 = 2;
    pub const PUSH: u8 = 3;
    pub const POLL: u8 = 4;
    pub const CLOSE: u8 = 5;
    pub const OPENED: u8 = 128;
    pub const RESULT: u8 = 129;
    pub const REJECT: u8 = 130;
    pub const CLOSED: u8 = 131;
}

/// Typed rejection codes carried by [`WireMsg::Reject`], mirroring
/// [`ServeError`](crate::ServeError) across the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// The session's bounded ingress queue is full (backpressure).
    QueueFull,
    /// Admission control refused a new session.
    SessionLimit,
    /// The session id is not open on the server.
    UnknownSession,
    /// The session was recently evicted for idling.
    SessionEvicted,
    /// The frame's geometry does not match the serving pipeline.
    BadFrame,
    /// The client violated the protocol (bad magic, bad ordering, …).
    Protocol,
    /// An internal serving error.
    Internal,
    /// The `Hello` requested an inference precision this server does not
    /// serve (e.g. int8 against an uncalibrated f32 deployment).
    UnsupportedPrecision,
}

impl RejectCode {
    fn to_u16(self) -> u16 {
        match self {
            RejectCode::QueueFull => 1,
            RejectCode::SessionLimit => 2,
            RejectCode::UnknownSession => 3,
            RejectCode::SessionEvicted => 4,
            RejectCode::BadFrame => 5,
            RejectCode::Protocol => 6,
            RejectCode::Internal => 7,
            RejectCode::UnsupportedPrecision => 8,
        }
    }

    fn from_u16(v: u16) -> Result<Self, WireError> {
        Ok(match v {
            1 => RejectCode::QueueFull,
            2 => RejectCode::SessionLimit,
            3 => RejectCode::UnknownSession,
            4 => RejectCode::SessionEvicted,
            5 => RejectCode::BadFrame,
            6 => RejectCode::Protocol,
            7 => RejectCode::Internal,
            8 => RejectCode::UnsupportedPrecision,
            other => return Err(WireError::Malformed { what: "reject code", value: other as u64 }),
        })
    }
}

/// Wire encoding of [`Precision`] (one byte in the v2 `Hello`).
fn precision_to_u8(p: Precision) -> u8 {
    match p {
        Precision::F32 => 0,
        Precision::Int8 => 1,
    }
}

fn precision_from_u8(v: u8) -> Result<Precision, WireError> {
    match v {
        0 => Ok(Precision::F32),
        1 => Ok(Precision::Int8),
        other => Err(WireError::Malformed { what: "hello precision", value: other as u64 }),
    }
}

/// One protocol message, either direction.
#[derive(Debug)]
pub enum WireMsg {
    /// Connection preamble: magic + version + requested precision
    /// (client → server). Version-1 peers carry no precision byte and
    /// decode as [`Precision::F32`] — old clients negotiate down rather
    /// than being cut off by the version bump.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Inference precision the client expects the server to run.
        precision: Precision,
    },
    /// Open a new session (client → server).
    Open,
    /// Push one raw radar frame into a session (client → server).
    Push {
        /// Target session id.
        session: u64,
        /// The frame, validated against [`MAX_FRAME_SAMPLES`] at decode.
        frame: RawFrame,
    },
    /// Ask the server to flush buffered results now (client → server).
    Poll {
        /// Target session id.
        session: u64,
    },
    /// Close a session (client → server).
    Close {
        /// Target session id.
        session: u64,
    },
    /// A session was opened (server → client).
    Opened {
        /// The allocated session id.
        session: u64,
    },
    /// One per-segment inference result (server → client).
    Result {
        /// The session the result belongs to.
        session: u64,
        /// Running segment index within the session's stream.
        segment_index: u64,
        /// Whether the mesh stage was skipped by policy.
        mesh_skipped: bool,
        /// Flat 63-float skeleton, raw little-endian f32 bits.
        skeleton: Vec<f32>,
    },
    /// A request was rejected (server → client).
    Reject {
        /// The session the rejection concerns (0 when none applies).
        session: u64,
        /// Why.
        code: RejectCode,
    },
    /// A session closed; its lifetime stats (server → client).
    Closed {
        /// The closed session id.
        session: u64,
        /// Lifetime accounting.
        stats: SessionStats,
    },
}

/// A structurally invalid byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first message was not `Hello`, or its magic bytes differ.
    BadMagic,
    /// The peer speaks an unsupported protocol version.
    BadVersion {
        /// The version the peer announced.
        got: u16,
    },
    /// An unknown message type tag.
    UnknownType {
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeding [`MAX_PAYLOAD`].
    Oversize {
        /// The announced payload length.
        len: u32,
    },
    /// A payload whose contents disagree with its message type.
    Malformed {
        /// Which field was malformed.
        what: &'static str,
        /// The offending value (best effort).
        value: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad protocol magic (expected MMHW hello)"),
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (speaking {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            WireError::UnknownType { tag } => write!(f, "unknown message type tag {tag}"),
            WireError::Oversize { len } => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Malformed { what, value } => {
                write!(f, "malformed payload field `{what}` (value {value})")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `msg`, framed, to `out`.
pub fn encode(msg: &WireMsg, out: &mut Vec<u8>) {
    let tag = match msg {
        WireMsg::Hello { .. } => tag::HELLO,
        WireMsg::Open => tag::OPEN,
        WireMsg::Push { .. } => tag::PUSH,
        WireMsg::Poll { .. } => tag::POLL,
        WireMsg::Close { .. } => tag::CLOSE,
        WireMsg::Opened { .. } => tag::OPENED,
        WireMsg::Result { .. } => tag::RESULT,
        WireMsg::Reject { .. } => tag::REJECT,
        WireMsg::Closed { .. } => tag::CLOSED,
    };
    out.push(tag);
    let len_at = out.len();
    put_u32(out, 0); // patched below
    match msg {
        WireMsg::Hello { version, precision } => {
            out.extend_from_slice(&WIRE_MAGIC);
            put_u16(out, *version);
            // The precision byte exists from v2 on; encoding a v1 Hello
            // (interop tests, old-client simulation) omits it.
            if *version >= 2 {
                out.push(precision_to_u8(*precision));
            }
        }
        WireMsg::Open => {}
        WireMsg::Push { session, frame } => {
            put_u64(out, *session);
            put_u16(out, frame.tx_count() as u16);
            put_u16(out, frame.rx_count() as u16);
            put_u16(out, frame.chirps_per_tx() as u16);
            put_u16(out, frame.samples_per_chirp() as u16);
            for c in frame.data() {
                out.extend_from_slice(&c.re.to_le_bytes());
                out.extend_from_slice(&c.im.to_le_bytes());
            }
        }
        WireMsg::Poll { session } | WireMsg::Close { session } => put_u64(out, *session),
        WireMsg::Opened { session } => put_u64(out, *session),
        WireMsg::Result { session, segment_index, mesh_skipped, skeleton } => {
            put_u64(out, *session);
            put_u64(out, *segment_index);
            out.push(u8::from(*mesh_skipped));
            put_u32(out, skeleton.len() as u32);
            for v in skeleton {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        WireMsg::Reject { session, code } => {
            put_u64(out, *session);
            put_u16(out, code.to_u16());
        }
        WireMsg::Closed { session, stats } => {
            put_u64(out, *session);
            put_u64(out, stats.frames_in);
            put_u64(out, stats.segments_out);
            put_u64(out, stats.meshes_skipped);
        }
    }
    let len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Little cursor over one complete payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WireError::Malformed { what, value: n as u64 }),
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn finished(&self, what: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed { what, value: (self.buf.len() - self.pos) as u64 })
        }
    }
}

fn decode_payload(tag: u8, payload: &[u8]) -> Result<WireMsg, WireError> {
    let mut r = Reader { buf: payload, pos: 0 };
    let msg = match tag {
        tag::HELLO => {
            let magic = r.take(4, "hello magic")?;
            if magic != WIRE_MAGIC {
                return Err(WireError::BadMagic);
            }
            let version = r.u16("hello version")?;
            if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                return Err(WireError::BadVersion { got: version });
            }
            // v1 predates the precision byte: negotiate down to f32.
            let precision =
                if version >= 2 { precision_from_u8(r.u8("hello precision")?)? } else { Precision::F32 };
            WireMsg::Hello { version, precision }
        }
        tag::OPEN => WireMsg::Open,
        tag::PUSH => {
            let session = r.u64("push session")?;
            let tx = r.u16("push tx")? as usize;
            let rx = r.u16("push rx")? as usize;
            let chirps = r.u16("push chirps")? as usize;
            let samples = r.u16("push samples")? as usize;
            let total = tx
                .checked_mul(rx)
                .and_then(|v| v.checked_mul(chirps))
                .and_then(|v| v.checked_mul(samples))
                .filter(|&v| v > 0 && v <= MAX_FRAME_SAMPLES)
                .ok_or(WireError::Malformed {
                    what: "push frame extents",
                    value: (tx * rx) as u64,
                })?;
            // The length prefix must agree with the extents *before* the
            // buffer is allocated — a lying header cannot balloon memory.
            if payload.len() != 16 + 8 * total {
                return Err(WireError::Malformed {
                    what: "push payload length",
                    value: payload.len() as u64,
                });
            }
            let mut data = Vec::with_capacity(total);
            for _ in 0..total {
                let re = r.f32("push sample re")?;
                let im = r.f32("push sample im")?;
                data.push(Complex::new(re, im));
            }
            let frame = RawFrame::from_parts(tx, rx, chirps, samples, data).map_err(|_| {
                WireError::Malformed { what: "push frame geometry", value: total as u64 }
            })?;
            WireMsg::Push { session, frame }
        }
        tag::POLL => WireMsg::Poll { session: r.u64("poll session")? },
        tag::CLOSE => WireMsg::Close { session: r.u64("close session")? },
        tag::OPENED => WireMsg::Opened { session: r.u64("opened session")? },
        tag::RESULT => {
            let session = r.u64("result session")?;
            let segment_index = r.u64("result segment")?;
            let mesh_skipped = r.u8("result mesh flag")? != 0;
            let n = r.u32("result skeleton len")? as usize;
            if n > 4096 {
                return Err(WireError::Malformed { what: "result skeleton len", value: n as u64 });
            }
            let mut skeleton = Vec::with_capacity(n);
            for _ in 0..n {
                skeleton.push(r.f32("result skeleton value")?);
            }
            WireMsg::Result { session, segment_index, mesh_skipped, skeleton }
        }
        tag::REJECT => {
            let session = r.u64("reject session")?;
            let code = RejectCode::from_u16(r.u16("reject code")?)?;
            WireMsg::Reject { session, code }
        }
        tag::CLOSED => {
            let session = r.u64("closed session")?;
            let stats = SessionStats {
                frames_in: r.u64("closed frames_in")?,
                segments_out: r.u64("closed segments_out")?,
                meshes_skipped: r.u64("closed meshes_skipped")?,
            };
            WireMsg::Closed { session, stats }
        }
        other => return Err(WireError::UnknownType { tag: other }),
    };
    r.finished("trailing payload bytes")?;
    Ok(msg)
}

/// Incremental frame decoder over a non-blocking byte stream.
///
/// Feed it whatever chunks the socket delivers; [`Decoder::next_msg`]
/// yields `Ok(Some(_))` per complete message, `Ok(None)` while the buffer
/// holds only a partial message, and `Err` exactly when the stream is
/// structurally invalid (at which point the connection should be dropped —
/// the decoder makes no attempt to resynchronise).
#[derive(Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        // Compact consumed space before growing, keeping the buffer at
        // O(largest in-flight message).
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Tries to decode the next complete message.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation ([`WireError`]); the decoder
    /// is poisoned afterwards in the sense that the caller should drop the
    /// connection rather than continue.
    pub fn next_msg(&mut self) -> Result<Option<WireMsg>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 5 {
            return Ok(None);
        }
        let tag = avail[0];
        if !matches!(
            tag,
            tag::HELLO
                | tag::OPEN
                | tag::PUSH
                | tag::POLL
                | tag::CLOSE
                | tag::OPENED
                | tag::RESULT
                | tag::REJECT
                | tag::CLOSED
        ) {
            return Err(WireError::UnknownType { tag });
        }
        let len = u32::from_le_bytes([avail[1], avail[2], avail[3], avail[4]]);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversize { len });
        }
        let total = 5 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let msg = decode_payload(tag, &avail[5..total])?;
        self.pos += total;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: &WireMsg) -> WireMsg {
        let mut bytes = Vec::new();
        encode(msg, &mut bytes);
        let mut d = Decoder::new();
        d.push_bytes(&bytes);
        let out = d.next_msg().expect("decodes").expect("complete");
        assert_eq!(d.pending(), 0, "no leftover bytes");
        out
    }

    /// Encoding then decoding must reproduce the exact bytes — compared by
    /// re-encoding, which sidesteps float/frame equality.
    fn assert_bitwise_roundtrip(msg: &WireMsg) {
        let mut first = Vec::new();
        encode(msg, &mut first);
        let decoded = roundtrip(msg);
        let mut second = Vec::new();
        encode(&decoded, &mut second);
        assert_eq!(first, second, "roundtrip must be bitwise lossless");
    }

    #[test]
    fn control_messages_roundtrip() {
        for msg in [
            WireMsg::Hello { version: WIRE_VERSION, precision: Precision::F32 },
            WireMsg::Hello { version: WIRE_VERSION, precision: Precision::Int8 },
            WireMsg::Open,
            WireMsg::Poll { session: 0x0123_4567_89AB_CDEF },
            WireMsg::Close { session: 42 },
            WireMsg::Opened { session: 7 },
            WireMsg::Reject { session: 3, code: RejectCode::QueueFull },
            WireMsg::Reject { session: 3, code: RejectCode::UnsupportedPrecision },
            WireMsg::Closed {
                session: 9,
                stats: SessionStats { frames_in: 100, segments_out: 50, meshes_skipped: 5 },
            },
        ] {
            assert_bitwise_roundtrip(&msg);
        }
    }

    #[test]
    fn v1_hello_negotiates_down_to_f32() {
        // A version-1 Hello has no precision byte; it must still decode,
        // as an f32 request (the downgrade contract for old clients).
        let mut bytes = Vec::new();
        encode(&WireMsg::Hello { version: 1, precision: Precision::Int8 }, &mut bytes);
        // The encoder must not have emitted a precision byte for v1:
        // tag + len + magic + version only.
        assert_eq!(bytes.len(), 1 + 4 + 4 + 2);
        let mut d = Decoder::new();
        d.push_bytes(&bytes);
        match d.next_msg() {
            Ok(Some(WireMsg::Hello { version: 1, precision: Precision::F32 })) => {}
            other => panic!("v1 hello must decode as f32, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_versions_and_bad_precision_bytes_are_typed_errors() {
        for bad_version in [0u16, WIRE_VERSION + 1, u16::MAX] {
            let mut bytes = vec![tag::HELLO];
            bytes.extend_from_slice(&6u32.to_le_bytes());
            bytes.extend_from_slice(&WIRE_MAGIC);
            bytes.extend_from_slice(&bad_version.to_le_bytes());
            let mut d = Decoder::new();
            d.push_bytes(&bytes);
            assert!(
                matches!(d.next_msg(), Err(WireError::BadVersion { got }) if got == bad_version),
                "version {bad_version} must be rejected"
            );
        }
        // A v2 Hello whose precision byte is outside the encoding.
        let mut bytes = vec![tag::HELLO];
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.push(9);
        let mut d = Decoder::new();
        d.push_bytes(&bytes);
        assert!(matches!(
            d.next_msg(),
            Err(WireError::Malformed { what: "hello precision", .. })
        ));
    }

    #[test]
    fn push_roundtrips_a_real_frame() {
        let frame = RawFrame::zeroed(&mmhand_radar::ChirpConfig {
            chirps_per_tx: 4,
            samples_per_chirp: 8,
            ..Default::default()
        });
        assert_bitwise_roundtrip(&WireMsg::Push { session: 11, frame });
    }

    #[test]
    fn split_delivery_reassembles() {
        let mut bytes = Vec::new();
        encode(&WireMsg::Opened { session: 77 }, &mut bytes);
        encode(&WireMsg::Poll { session: 77 }, &mut bytes);
        let mut d = Decoder::new();
        for b in &bytes {
            d.push_bytes(std::slice::from_ref(b));
        }
        assert!(matches!(d.next_msg(), Ok(Some(WireMsg::Opened { session: 77 }))));
        assert!(matches!(d.next_msg(), Ok(Some(WireMsg::Poll { session: 77 }))));
        assert!(matches!(d.next_msg(), Ok(None)));
    }

    #[test]
    fn oversize_and_unknown_tags_are_rejected() {
        let mut d = Decoder::new();
        d.push_bytes(&[tag::OPEN, 0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(matches!(d.next_msg(), Err(WireError::Oversize { .. })));
        let mut d = Decoder::new();
        d.push_bytes(&[0x7F, 0, 0, 0, 0]);
        assert!(matches!(d.next_msg(), Err(WireError::UnknownType { tag: 0x7F })));
    }

    #[test]
    fn lying_push_header_cannot_balloon_memory() {
        // Extents far beyond MAX_FRAME_SAMPLES but a small actual payload.
        let mut bytes = vec![tag::PUSH];
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes()); // session
        for extent in [0xFFFFu16; 4] {
            bytes.extend_from_slice(&extent.to_le_bytes());
        }
        let mut d = Decoder::new();
        d.push_bytes(&bytes);
        assert!(matches!(d.next_msg(), Err(WireError::Malformed { .. })));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Truncating a valid stream at any byte boundary never errors —
        /// it just waits for the rest; delivering the remainder completes
        /// the message bitwise.
        #[test]
        fn truncation_is_never_an_error(cut in 0usize..64, session in 0u64..=u64::MAX, seg in 0u64..=u64::MAX) {
            let msg = WireMsg::Result {
                session,
                segment_index: seg,
                mesh_skipped: false,
                skeleton: vec![1.5f32; 9],
            };
            let mut bytes = Vec::new();
            encode(&msg, &mut bytes);
            let cut = cut.min(bytes.len().saturating_sub(1));
            let mut d = Decoder::new();
            d.push_bytes(&bytes[..cut]);
            prop_assert!(matches!(d.next_msg(), Ok(None)), "truncated stream must wait");
            d.push_bytes(&bytes[cut..]);
            let mut out = Vec::new();
            match d.next_msg() {
                Ok(Some(m)) => encode(&m, &mut out),
                other => {
                    prop_assert!(false, "remainder must complete: {:?}", other);
                }
            }
            prop_assert_eq!(out, bytes);
        }

        /// A garbage prefix (any first byte outside the tag set) is a
        /// typed error, not a panic or a silent skip.
        #[test]
        fn garbage_prefix_is_a_typed_error(head in 6u8..128, rest in proptest::collection::vec(0u8..=255, 0..64)) {
            let mut d = Decoder::new();
            let mut bytes = vec![head];
            bytes.extend_from_slice(&rest);
            d.push_bytes(&bytes);
            if bytes.len() >= 5 {
                prop_assert!(matches!(d.next_msg(), Err(WireError::UnknownType { .. })));
            } else {
                prop_assert!(matches!(d.next_msg(), Ok(None)));
            }
        }

        /// Arbitrary byte soup never panics the decoder: every outcome is
        /// a typed message, a wait, or a typed error.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let mut d = Decoder::new();
            d.push_bytes(&bytes);
            // Drain until the decoder stalls or errors; both are fine.
            for _ in 0..64 {
                match d.next_msg() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
