//! Typed errors of the serving layer.
//!
//! Every failure on the ingress path — admission, enqueue, geometry — is a
//! [`ServeError`]; nothing reachable from a client-supplied frame panics.
//! Processing errors from the underlying pipeline arrive wrapped as
//! [`ServeError::Pipeline`] via `From`, so engine code propagates them
//! with `?`.

use crate::wire::WireError;
use mmhand_core::{MmHandError, PipelineError};
use std::error::Error;
use std::fmt;

/// An error raised by the streaming inference service.
#[derive(Debug)]
pub enum ServeError {
    /// A pipeline-level failure (frame geometry, cube shapes, model state).
    Pipeline(PipelineError),
    /// The session's bounded ingress queue is full — backpressure: the
    /// client must drain results or slow down before pushing more frames.
    QueueFull {
        /// The session whose queue is full.
        session: u64,
        /// The configured queue capacity in frames.
        capacity: usize,
    },
    /// Admission control: the engine is at its configured session limit.
    SessionLimit {
        /// The configured maximum number of concurrent sessions.
        max_sessions: usize,
    },
    /// The session id was never opened (or has been closed).
    UnknownSession {
        /// The offending session id.
        session: u64,
    },
    /// The session was evicted after exceeding the idle-step budget.
    SessionEvicted {
        /// The evicted session id.
        session: u64,
    },
    /// The serving configuration is invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A client sent a structurally invalid byte stream.
    Wire(WireError),
    /// A socket operation failed (bind, accept, read, write).
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            ServeError::QueueFull { session, capacity } => write!(
                f,
                "session {session}: ingress queue full ({capacity} frames); \
                 drain results or reduce the push rate"
            ),
            ServeError::SessionLimit { max_sessions } => {
                write!(f, "session limit reached ({max_sessions} concurrent sessions)")
            }
            ServeError::UnknownSession { session } => {
                write!(f, "unknown session id {session}")
            }
            ServeError::SessionEvicted { session } => {
                write!(f, "session {session} was evicted after idling past its budget")
            }
            ServeError::InvalidConfig { field, reason } => {
                write!(f, "invalid serve configuration `{field}`: {reason}")
            }
            ServeError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ServeError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Pipeline(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<MmHandError> for ServeError {
    fn from(e: MmHandError) -> Self {
        match e {
            MmHandError::Pipeline(p) => ServeError::Pipeline(p),
            MmHandError::Radar(r) => ServeError::Pipeline(PipelineError::from(r)),
            MmHandError::Dsp(d) => ServeError::Pipeline(PipelineError::from(d)),
            MmHandError::Shape(s) => ServeError::Pipeline(PipelineError::from(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = ServeError::QueueFull { session: 3, capacity: 8 };
        assert!(e.to_string().contains("session 3"));
        assert!(e.to_string().contains("8 frames"));
        let e = ServeError::SessionLimit { max_sessions: 4 };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn pipeline_errors_convert_and_chain() {
        let p = PipelineError::EmptyInput { what: "frames" };
        let e = ServeError::from(p);
        assert!(matches!(e, ServeError::Pipeline(PipelineError::EmptyInput { .. })));
        assert!(e.source().is_some());
    }

    #[test]
    fn mmhand_errors_flatten_to_pipeline() {
        let m = MmHandError::Pipeline(PipelineError::EmptyInput { what: "x" });
        assert!(matches!(ServeError::from(m), ServeError::Pipeline(_)));
    }
}
