//! Shared fixtures for the unit tests: a tiny trained pipeline plus a
//! fresh capture to stream through it.

use mmhand_core::cube::CubeConfig;
use mmhand_core::eval::{build_cohort, train_reference_model, DataConfig};
use mmhand_core::model::ModelConfig;
use mmhand_core::train::TrainConfig;
use mmhand_core::MmHandPipeline;
use mmhand_hand::gesture::Gesture;
use mmhand_hand::trajectory::GestureTrack;
use mmhand_hand::user::UserProfile;
use mmhand_math::Vec3;
use mmhand_radar::capture::{record_session, CaptureConfig};
use mmhand_radar::{ChirpConfig, Environment, RawFrame};

/// The small-but-real radar geometry shared by the serve tests.
pub(crate) fn tiny_chirp() -> ChirpConfig {
    ChirpConfig { chirps_per_tx: 8, samples_per_chirp: 32, ..Default::default() }
}

/// The cube geometry matching [`tiny_chirp`].
pub(crate) fn tiny_cube() -> CubeConfig {
    CubeConfig {
        chirp: tiny_chirp(),
        range_bins: 8,
        doppler_bins: 4,
        azimuth_bins: 4,
        elevation_bins: 4,
        frames_per_segment: 2,
        range_max_m: 0.55,
        ..Default::default()
    }
}

/// Trains a tiny pipeline and records a fresh stream of frames for it.
pub(crate) fn tiny_engine_parts() -> (MmHandPipeline, Vec<RawFrame>) {
    let cube = tiny_cube();
    let data = DataConfig {
        users: 2,
        frames_per_user: 16,
        gestures_per_track: 2,
        seq_len: 2,
        capture: CaptureConfig {
            chirp: cube.chirp,
            environment: Environment::Playground,
            noise_sigma: 0.005,
            ..Default::default()
        },
        cube: cube.clone(),
        seed: 11,
        ..Default::default()
    };
    let model_cfg = ModelConfig {
        channels: 6,
        blocks: 1,
        feature_dim: 24,
        lstm_hidden: 24,
        ..data.model_config()
    };
    let seqs = build_cohort(&data);
    let model = train_reference_model(
        &seqs,
        &model_cfg,
        &TrainConfig { epochs: 2, batch_size: 4, ..Default::default() },
    );
    let frames = tiny_stream(12, 21);
    // Always supply calibration material, leaving the precision to the
    // documented MMHAND_PRECISION fallback: under f32 the calibration is
    // simply unused, under int8 the pipeline quantizes — which is what
    // lets CI's precision matrix run this whole suite on both paths.
    let mut probe = MmHandPipeline::builder_for(model.clone())
        .cube_config(cube.clone())
        .build()
        // audit: allow(serve_hygiene) — cfg(test)-gated fixture module (see lib.rs), never in the ingress path
        .expect("tiny probe pipeline assembles");
    let calibration = probe.frames_to_segments(&frames);
    let pipeline = MmHandPipeline::builder_for(model)
        .cube_config(cube.clone())
        .calibration_segments(calibration)
        .build()
        // audit: allow(serve_hygiene) — cfg(test)-gated fixture module (see lib.rs), never in the ingress path
        .expect("tiny pipeline assembles");
    (pipeline, frames)
}

/// Records a fresh capture stream with the tiny geometry.
pub(crate) fn tiny_stream(n_frames: usize, seed: u64) -> Vec<RawFrame> {
    let user = UserProfile::generate(1, seed);
    let track = GestureTrack::from_gestures(
        &[Gesture::OpenPalm, Gesture::Victory],
        Vec3::new(0.0, 0.3, 0.0),
        0.3,
        0.3,
    );
    let session = record_session(
        &user,
        &track,
        n_frames,
        &CaptureConfig { chirp: tiny_chirp(), noise_sigma: 0.005, seed, ..Default::default() },
    );
    session.frames
}
