//! The session-oriented streaming inference engine.
//!
//! [`ServeEngine`] owns an [`MmHandPipeline`] and any number of client
//! sessions. Clients push raw radar frames into bounded per-session
//! queues; each [`ServeEngine::step`] drains up to one segment per ready
//! session, folds the drained segments into **one** micro-batched forward
//! pass, advances each session's streaming LSTM state, and buffers one
//! [`FrameResult`] per segment for the client to take.
//!
//! # Determinism
//!
//! The engine is synchronous and pull-based — no background threads — so
//! it composes with the workspace's determinism audit: concurrency happens
//! only inside [`mmhand_parallel`] (cube building, the batched GEMMs of the
//! forward pass, mesh reconstruction), all of which are deterministic at
//! any thread count. Because every op in the forward pass treats batch rows
//! independently and accumulates in an order independent of the batch
//! size, a session's result stream is bitwise identical to running the
//! same frames through a dedicated single-session pipeline.
//!
//! # Backpressure
//!
//! Two bounds propagate load back to clients as typed errors, never
//! panics: the ingress queue ([`ServeError::QueueFull`]) and the admission
//! limit ([`ServeError::SessionLimit`]). A session whose result buffer is
//! full is simply not scheduled, which in turn fills its ingress queue.

use crate::config::{MeshPolicy, ServeConfig};
use crate::error::ServeError;
use crate::session::{FrameResult, Session, SessionStats};
use mmhand_core::{MmHandPipeline, PipelineError, Precision};
use mmhand_nn::Tensor;
use mmhand_radar::RawFrame;
use mmhand_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What one [`ServeEngine::step`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Sessions folded into this step's micro-batch.
    pub batched: usize,
    /// Results produced this step (one per batched session).
    pub results_produced: usize,
    /// Sessions evicted at the end of this step.
    pub evicted: Vec<u64>,
}

/// One drained segment's worth of work for a session.
struct Job {
    session: u64,
    frames: Vec<RawFrame>,
    skip_mesh: bool,
}

/// Bounded memory of recently evicted session ids.
///
/// A long-running server evicts sessions forever, so an unbounded
/// tombstone set is a memory leak. This ring remembers the most recent
/// `capacity` evictions (insertion order); inserting past the bound
/// forgets the oldest tombstone, whose id thereafter reports as the
/// generic [`ServeError::UnknownSession`] instead of the more precise
/// [`ServeError::SessionEvicted`]. That degradation is deliberate and
/// documented: the distinct eviction error is a *recency* courtesy to
/// clients that missed an eviction, not a permanent ledger.
pub(crate) struct Tombstones {
    capacity: usize,
    /// Eviction order, oldest at the front.
    ring: VecDeque<u64>,
    /// Same ids, indexed for O(log n) membership checks.
    set: BTreeSet<u64>,
}

impl Tombstones {
    pub(crate) fn new(capacity: usize) -> Self {
        Tombstones { capacity, ring: VecDeque::new(), set: BTreeSet::new() }
    }

    /// Records an eviction, forgetting the oldest tombstone at capacity.
    pub(crate) fn insert(&mut self, id: u64) {
        if !self.set.insert(id) {
            return;
        }
        self.ring.push_back(id);
        while self.ring.len() > self.capacity {
            if let Some(old) = self.ring.pop_front() {
                self.set.remove(&old);
            }
        }
    }

    pub(crate) fn contains(&self, id: u64) -> bool {
        self.set.contains(&id)
    }

    /// Tombstones currently remembered (bounded by the capacity).
    pub(crate) fn len(&self) -> usize {
        self.ring.len()
    }
}

/// The streaming inference engine. See the [module docs](self) for the
/// execution model.
pub struct ServeEngine {
    pipeline: MmHandPipeline,
    config: ServeConfig,
    sessions: BTreeMap<u64, Session>,
    /// Bounded tombstones so a pushed-to recently-evicted session gets a
    /// distinct error (see [`Tombstones`] for the forgetting semantics).
    evicted: Tombstones,
    next_id: u64,
    /// Fairness cursor: the highest session id scheduled last step.
    /// Scheduling starts from the first ready id *after* it (wrapping),
    /// so when more sessions are ready than `max_batch` can take, low
    /// ids cannot starve high ids — every ready session is scheduled
    /// within `ceil(ready / max_batch)` steps.
    fair_cursor: u64,
    /// Kernel backend resolved when the engine was built (`"scalar"` /
    /// `"simd"`), recorded so operators can see which inner loops served
    /// a given process.
    kernel_backend: &'static str,
    /// Numeric precision every forward pass of this engine runs on;
    /// checked against the pipeline at construction.
    precision: Precision,
}

impl ServeEngine {
    /// Builds an engine around an assembled pipeline.
    ///
    /// The config's [`InferenceProfile`](crate::InferenceProfile) is
    /// applied here: the kernel-backend request is resolved (and
    /// process-pinned) through `mmhand_kernels::request_backend`, and the
    /// profile's precision is cross-checked against the pipeline's — the
    /// pipeline carries the calibration state, so a profile the pipeline
    /// cannot honour is a construction-time error, never a silent
    /// mid-serving downgrade.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for out-of-range bounds or a
    /// precision the pipeline was not built for.
    pub fn new(pipeline: MmHandPipeline, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let backend = mmhand_kernels::request_backend(config.profile.kernel_backend);
        let precision = config.profile.precision;
        if precision != pipeline.precision() {
            return Err(ServeError::InvalidConfig {
                field: "profile.precision",
                reason: format!(
                    "profile requests {} but the pipeline was built for {}; build the \
                     pipeline with .precision(..) (int8 needs calibration) to match",
                    precision.name(),
                    pipeline.precision().name()
                ),
            });
        }
        let tombstones = Tombstones::new(config.tombstone_capacity);
        Ok(ServeEngine {
            pipeline,
            config,
            sessions: BTreeMap::new(),
            evicted: tombstones,
            next_id: 1,
            fair_cursor: 0,
            kernel_backend: backend.name(),
            precision,
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &MmHandPipeline {
        &self.pipeline
    }

    /// Name of the process-wide kernel backend (`"scalar"` / `"simd"`)
    /// this engine's inner loops run on.
    pub fn kernel_backend(&self) -> &'static str {
        self.kernel_backend
    }

    /// Numeric precision every forward pass of this engine runs on.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of currently open sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Frames currently queued for a session.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] / [`ServeError::SessionEvicted`].
    pub fn queued_frames(&self, session: u64) -> Result<usize, ServeError> {
        match self.sessions.get(&session) {
            Some(s) => Ok(s.queue.len()),
            None => Err(self.gone(session)),
        }
    }

    /// Opens a session and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SessionLimit`] when the engine is at its
    /// admission limit.
    pub fn open_session(&mut self) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.open_session_with_id(id)?;
        self.next_id += 1;
        Ok(id)
    }

    /// Opens a session under an externally assigned id — the shard router
    /// allocates globally unique ids and routes by them, so shard-local
    /// engines must not mint their own.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SessionLimit`] at the admission limit, or
    /// [`ServeError::InvalidConfig`] if the id is already open (router
    /// invariant violation).
    pub(crate) fn open_session_with_id(&mut self, id: u64) -> Result<(), ServeError> {
        if self.sessions.len() >= self.config.max_sessions {
            telemetry::counter("serve.sessions_rejected").inc();
            return Err(ServeError::SessionLimit { max_sessions: self.config.max_sessions });
        }
        if self.sessions.contains_key(&id) {
            return Err(ServeError::InvalidConfig {
                field: "session_id",
                reason: format!("session id {id} is already open"),
            });
        }
        let hidden = self.pipeline.model().lstm_hidden();
        self.sessions.insert(id, Session::new(id, hidden));
        telemetry::counter("serve.sessions_opened").inc();
        telemetry::gauge("serve.sessions_active").set(self.sessions.len() as f64);
        Ok(())
    }

    /// Number of eviction tombstones currently remembered. Bounded by
    /// [`ServeConfig::tombstone_capacity`] — the churn regression test
    /// asserts this stays flat while evictions keep counting up.
    pub fn evicted_tombstones(&self) -> usize {
        self.evicted.len()
    }

    /// Pushes one raw frame into a session's ingress queue.
    ///
    /// The frame's geometry is validated against the pipeline's chirp
    /// configuration *here*, so nothing past the queue can fail on
    /// malformed client input.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] / [`ServeError::SessionEvicted`] for
    /// a bad id, [`ServeError::Pipeline`] for mismatched frame geometry,
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity.
    pub fn push_frame(&mut self, session: u64, frame: RawFrame) -> Result<(), ServeError> {
        telemetry::counter("serve.frames_in").inc();
        let capacity = self.config.queue_capacity;
        let chirp = self.pipeline.builder().config().chirp;
        let Some(s) = self.sessions.get_mut(&session) else {
            telemetry::counter("serve.frames_rejected").inc();
            return Err(self.gone(session));
        };
        if let Err(e) = chirp.validate_frame(&frame) {
            telemetry::counter("serve.frames_rejected").inc();
            return Err(ServeError::Pipeline(PipelineError::from(e)));
        }
        if s.queue.len() >= capacity {
            telemetry::counter("serve.frames_rejected").inc();
            return Err(ServeError::QueueFull { session, capacity });
        }
        s.queue.push_back(frame);
        s.stats.frames_in += 1;
        Ok(())
    }

    /// Runs one scheduling round: drains up to one segment from each of up
    /// to `max_batch` ready sessions, runs the shared micro-batched forward
    /// pass, advances per-session LSTM state, and buffers results. Sessions
    /// idle past the eviction budget are removed.
    ///
    /// Scheduling is round-robin over ascending session ids via a rotating
    /// fairness cursor: selection starts at the first ready id after the
    /// last id scheduled in the previous step and wraps. A plain
    /// lowest-id-first scan (the pre-cursor behaviour) starves high ids
    /// indefinitely whenever more sessions stay ready than `max_batch`
    /// admits per step.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Pipeline`] only on an internal invariant
    /// violation (frames are geometry-checked at ingress); the affected
    /// round's drained frames are dropped in that case.
    pub fn step(&mut self) -> Result<StepReport, ServeError> {
        let sp = telemetry::span("serve.step");
        let st = self.pipeline.builder().config().frames_per_segment;
        let mut ready: Vec<u64> = self
            .sessions
            .values()
            .filter(|s| s.ready(st, self.config.result_capacity))
            .map(|s| s.id)
            .collect();
        // Rotate the ascending id list so it starts just past the fairness
        // cursor, then take the batch; the cursor advances to the last id
        // actually scheduled.
        let pivot = ready.partition_point(|&id| id <= self.fair_cursor);
        ready.rotate_left(pivot);
        ready.truncate(self.config.max_batch);
        if let Some(&last) = ready.last() {
            self.fair_cursor = last;
        }

        // audit: pool-exempt — per-step job staging, bounded by max_batch
        let mut jobs = Vec::with_capacity(ready.len());
        for &id in &ready {
            if let Some(s) = self.sessions.get_mut(&id) {
                let frames: Vec<RawFrame> = s.queue.drain(..st).collect();
                let backlog_segments = s.queue.len() / st;
                let skip_mesh = match self.config.profile.mesh_policy {
                    MeshPolicy::Always => false,
                    MeshPolicy::Never => true,
                    MeshPolicy::SkipWhenBacklogged { segments } => backlog_segments >= segments,
                };
                jobs.push(Job { session: id, frames, skip_mesh });
            }
        }

        let results_produced = if jobs.is_empty() { 0 } else { self.run_batch(&jobs)? };

        // Idle accounting + eviction for sessions that were not scheduled.
        let mut evicted = Vec::new();
        let budget = self.config.evict_after_idle_steps;
        for (id, s) in self.sessions.iter_mut() {
            if jobs.iter().any(|j| j.session == *id) {
                s.idle_steps = 0;
            } else {
                s.idle_steps += 1;
                if budget > 0 && s.idle_steps >= budget {
                    evicted.push(*id);
                }
            }
        }
        for id in &evicted {
            self.sessions.remove(id);
            self.evicted.insert(*id);
            telemetry::counter("serve.sessions_evicted").inc();
        }

        let depth: usize = self.sessions.values().map(|s| s.queue.len()).sum();
        telemetry::gauge("serve.queue_depth").set(depth as f64);
        telemetry::gauge("serve.sessions_active").set(self.sessions.len() as f64);
        sp.finish();
        Ok(StepReport { batched: jobs.len(), results_produced, evicted })
    }

    /// Drains buffered results for a session (oldest first).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] / [`ServeError::SessionEvicted`].
    pub fn take_results(&mut self, session: u64) -> Result<Vec<FrameResult>, ServeError> {
        match self.sessions.get_mut(&session) {
            Some(s) => Ok(s.results.drain(..).collect()),
            None => Err(self.gone(session)),
        }
    }

    /// Closes a session, returning its lifetime stats. Queued frames and
    /// untaken results are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] / [`ServeError::SessionEvicted`].
    pub fn close_session(&mut self, session: u64) -> Result<SessionStats, ServeError> {
        match self.sessions.remove(&session) {
            Some(s) => {
                telemetry::counter("serve.sessions_closed").inc();
                telemetry::gauge("serve.sessions_active").set(self.sessions.len() as f64);
                Ok(s.stats)
            }
            None => Err(self.gone(session)),
        }
    }

    /// The error for a session id that is not open.
    fn gone(&self, session: u64) -> ServeError {
        if self.evicted.contains(session) {
            ServeError::SessionEvicted { session }
        } else {
            ServeError::UnknownSession { session }
        }
    }

    /// Builds cube tensors for the drained jobs, runs the micro-batched
    /// forward pass, reconstructs meshes, and buffers per-session results.
    fn run_batch(&mut self, jobs: &[Job]) -> Result<usize, ServeError> {
        let builder = self.pipeline.builder();
        let built = mmhand_parallel::par_map(jobs, |job| {
            let cubes = job
                .frames
                .iter()
                .map(|f| builder.try_process_frame(f))
                .collect::<Result<Vec<_>, _>>()?;
            builder.try_segment_tensor(&cubes)
        });
        // audit: pool-exempt — collects fallible per-job tensors
        let mut tensors = Vec::with_capacity(built.len());
        for t in built {
            tensors.push(t?);
        }

        // Stack segments along the batch axis: (N, st·V, D, A). Segment
        // tensors are always rank 3, so the batch shape fits a fixed array.
        let n = tensors.len();
        let seg = tensors[0].shape();
        let shape = [n, seg[0], seg[1], seg[2]];
        // audit: pool-exempt — becomes the owned batch tensor via from_vec
        let mut data = Vec::with_capacity(n * tensors[0].len());
        for t in &tensors {
            data.extend_from_slice(t.data());
        }
        let batch = Tensor::from_vec(&shape, data);

        // Stack LSTM state the same way: (N, hidden).
        let hidden = self.pipeline.model().lstm_hidden();
        // audit: pool-exempt — become the owned state tensors via from_vec
        let mut h_data = Vec::with_capacity(n * hidden);
        let mut c_data = Vec::with_capacity(n * hidden); // audit: pool-exempt — as above
        for job in jobs {
            if let Some(s) = self.sessions.get(&job.session) {
                h_data.extend_from_slice(s.h.data());
                c_data.extend_from_slice(s.c.data());
            }
        }
        let h = Tensor::from_vec(&[n, hidden], h_data);
        let c = Tensor::from_vec(&[n, hidden], c_data);

        let infer_sp = telemetry::span("serve.infer");
        // Pipeline-level dispatch: the pipeline routes to its precision's
        // forward path (f32 reference or calibrated int8), so sessions
        // inherit the engine's InferenceProfile with no per-call choice.
        let (skeletons, h_new, c_new) = self.pipeline.predict_step(&batch, &h, &c);
        infer_sp.finish();
        telemetry::histogram_with("serve.batch_occupancy", telemetry::SIZE_BUCKETS)
            .observe(n as f64);

        // Mesh reconstruction per batch row, on the pool, order-preserving.
        let mesh_sp = telemetry::span("serve.mesh");
        let mesh = self.pipeline.mesh_reconstructor();
        let rows: Vec<(usize, bool)> =
            jobs.iter().enumerate().map(|(k, j)| (k, j.skip_mesh)).collect();
        let hands = mmhand_parallel::par_map(&rows, |&(k, skip)| {
            if skip {
                return Ok(None);
            }
            let skeleton = &skeletons[k];
            let hand = if mesh.is_fitted() {
                mesh.try_reconstruct(skeleton)?
            } else {
                mesh.try_reconstruct_analytic(skeleton)?
            };
            Ok::<_, PipelineError>(Some(hand))
        });
        mesh_sp.finish();

        // Write back per-session state and results, in batch-row order.
        let mut produced = 0;
        for (k, (job, (skeleton, hand))) in
            jobs.iter().zip(skeletons.into_iter().zip(hands)).enumerate()
        {
            let hand = hand?;
            if let Some(s) = self.sessions.get_mut(&job.session) {
                // The session state tensors are already (1, hidden): copy the
                // batch row in place instead of allocating fresh tensors.
                s.h.data_mut().copy_from_slice(&h_new.data()[k * hidden..(k + 1) * hidden]);
                s.c.data_mut().copy_from_slice(&c_new.data()[k * hidden..(k + 1) * hidden]);
                if job.skip_mesh {
                    s.stats.meshes_skipped += 1;
                    telemetry::counter("serve.mesh_skipped").inc();
                }
                s.results.push_back(FrameResult {
                    session: job.session,
                    segment_index: s.segment_index,
                    skeleton,
                    hand,
                });
                s.segment_index += 1;
                s.stats.segments_out += 1;
                produced += 1;
            }
        }
        telemetry::counter("serve.segments_out").add(produced as u64);
        Ok(produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_engine_parts;

    fn engine(cfg: ServeConfig) -> ServeEngine {
        let (pipeline, _frames) = tiny_engine_parts();
        ServeEngine::new(pipeline, cfg).expect("valid config")
    }

    #[test]
    fn admission_control_rejects_past_the_limit() {
        let mut e = engine(ServeConfig::new().max_sessions(2));
        e.open_session().expect("first session");
        e.open_session().expect("second session");
        match e.open_session() {
            Err(ServeError::SessionLimit { max_sessions: 2 }) => {}
            other => panic!("expected SessionLimit, got {other:?}"),
        }
    }

    #[test]
    fn queue_full_is_typed_backpressure() {
        let (pipeline, frames) = tiny_engine_parts();
        let mut e = ServeEngine::new(pipeline, ServeConfig::new().queue_capacity(2))
            .expect("valid config");
        let sid = e.open_session().expect("session opens");
        e.push_frame(sid, frames[0].clone()).expect("frame 1 fits");
        e.push_frame(sid, frames[1].clone()).expect("frame 2 fits");
        match e.push_frame(sid, frames[2].clone()) {
            Err(ServeError::QueueFull { session, capacity: 2 }) => assert_eq!(session, sid),
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn unknown_and_evicted_sessions_are_distinguished() {
        let (pipeline, frames) = tiny_engine_parts();
        let mut e =
            ServeEngine::new(pipeline, ServeConfig::new().evict_after_idle_steps(1))
                .expect("valid config");
        assert!(matches!(
            e.push_frame(99, frames[0].clone()),
            Err(ServeError::UnknownSession { session: 99 })
        ));
        let sid = e.open_session().expect("session opens");
        // No frames queued → the first step idles the session past budget 1.
        let report = e.step().expect("step runs");
        assert_eq!(report.evicted, vec![sid]);
        assert!(matches!(
            e.push_frame(sid, frames[0].clone()),
            Err(ServeError::SessionEvicted { session }) if session == sid
        ));
        assert!(matches!(
            e.take_results(sid),
            Err(ServeError::SessionEvicted { .. })
        ));
    }

    #[test]
    fn streams_produce_results_and_close_reports_stats() {
        let (pipeline, frames) = tiny_engine_parts();
        let st = pipeline.builder().config().frames_per_segment;
        let mut e = ServeEngine::new(pipeline, ServeConfig::new().mesh_policy(MeshPolicy::Never))
            .expect("valid config");
        let sid = e.open_session().expect("session opens");
        for f in frames.iter().take(2 * st) {
            e.push_frame(sid, f.clone()).expect("frame accepted");
        }
        let r1 = e.step().expect("step 1");
        assert_eq!(r1.batched, 1);
        let r2 = e.step().expect("step 2");
        assert_eq!(r2.batched, 1);
        let results = e.take_results(sid).expect("results drain");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].segment_index, 0);
        assert_eq!(results[1].segment_index, 1);
        for r in &results {
            assert_eq!(r.skeleton.len(), 63);
            assert!(r.hand.is_none(), "MeshPolicy::Never skips meshes");
        }
        let stats = e.close_session(sid).expect("close");
        assert_eq!(stats.frames_in, (2 * st) as u64);
        assert_eq!(stats.segments_out, 2);
        assert_eq!(stats.meshes_skipped, 2);
    }

    #[test]
    fn profile_precision_must_match_the_pipeline() {
        let (pipeline, _frames) = tiny_engine_parts();
        // Request the opposite precision of whatever the pipeline resolved
        // to; the mismatch must be a typed construction-time error.
        let other = match pipeline.precision() {
            Precision::F32 => Precision::Int8,
            Precision::Int8 => Precision::F32,
        };
        let cfg = ServeConfig::new().profile(crate::InferenceProfile::from_env().precision(other));
        match ServeEngine::new(pipeline, cfg) {
            Err(ServeError::InvalidConfig { field: "profile.precision", reason }) => {
                assert!(reason.contains(other.name()), "{reason}");
            }
            Ok(_) => panic!("mismatched precision must not build"),
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn engine_reports_its_profile() {
        let (pipeline, _frames) = tiny_engine_parts();
        let expected = pipeline.precision();
        let e = engine(ServeConfig::new());
        assert_eq!(e.precision(), expected);
        assert!(matches!(e.kernel_backend(), "scalar" | "simd"));
    }

    #[test]
    fn tombstones_are_a_bounded_ring() {
        let mut t = Tombstones::new(3);
        for id in 1..=5 {
            t.insert(id);
        }
        assert_eq!(t.len(), 3, "ring never exceeds capacity");
        assert!(!t.contains(1) && !t.contains(2), "oldest tombstones are forgotten");
        assert!(t.contains(3) && t.contains(4) && t.contains(5));
        t.insert(4); // re-inserting a remembered id must not churn the ring
        assert_eq!(t.len(), 3);
        assert!(t.contains(3));
    }

    #[test]
    fn eviction_tombstones_stay_bounded_and_degrade_oldest_to_unknown() {
        let (pipeline, frames) = tiny_engine_parts();
        let mut e = ServeEngine::new(
            pipeline,
            ServeConfig::new().evict_after_idle_steps(1).tombstone_capacity(2),
        )
        .expect("valid config");
        let ids: Vec<u64> = (0..3).map(|_| e.open_session().expect("session opens")).collect();
        let report = e.step().expect("step evicts all idle sessions");
        assert_eq!(report.evicted, ids);
        assert_eq!(e.evicted_tombstones(), 2, "ring capped below the eviction count");
        // The two most recent evictions keep the precise error; the oldest
        // degrades to the generic unknown-session error.
        assert!(matches!(
            e.push_frame(ids[0], frames[0].clone()),
            Err(ServeError::UnknownSession { session }) if session == ids[0]
        ));
        for &sid in &ids[1..] {
            assert!(matches!(
                e.push_frame(sid, frames[0].clone()),
                Err(ServeError::SessionEvicted { session }) if session == sid
            ));
        }
    }

    /// Regression test for the low-id scheduling bias: with `max_batch: 1`
    /// and three sessions that are permanently ready, the pre-cursor
    /// scheduler (ascending ids, `take(max_batch)`) served session 1 on
    /// every step and starved 2 and 3 indefinitely. The rotating cursor
    /// must serve all three within three steps.
    #[test]
    fn rotating_cursor_prevents_low_id_starvation() {
        let (pipeline, frames) = tiny_engine_parts();
        let st = pipeline.builder().config().frames_per_segment;
        let mut e = ServeEngine::new(
            pipeline,
            ServeConfig::new()
                .max_batch(1)
                .queue_capacity(8 * st)
                .mesh_policy(MeshPolicy::Never),
        )
        .expect("valid config");
        let ids: Vec<u64> = (0..3).map(|_| e.open_session().expect("session opens")).collect();
        for _ in 0..3 {
            // Keep every queue topped up with a fresh segment, so all three
            // sessions stay ready on every step.
            for &sid in &ids {
                for f in frames.iter().take(st) {
                    e.push_frame(sid, f.clone()).expect("queue has room");
                }
            }
            assert_eq!(e.step().expect("step runs").batched, 1);
        }
        for (k, &sid) in ids.iter().enumerate() {
            let got = e.take_results(sid).expect("results drain").len();
            assert_eq!(got, 1, "session {k} must be scheduled exactly once in 3 steps");
        }
    }

    #[test]
    fn malformed_frame_geometry_is_a_typed_error() {
        let (pipeline, _frames) = tiny_engine_parts();
        let mut e = ServeEngine::new(pipeline, ServeConfig::new()).expect("valid config");
        let sid = e.open_session().expect("session opens");
        let bad = RawFrame::zeroed(&mmhand_radar::ChirpConfig::default());
        match e.push_frame(sid, bad) {
            Err(ServeError::Pipeline(PipelineError::Radar(_))) => {}
            other => panic!("expected a radar geometry error, got {other:?}"),
        }
    }

    #[test]
    fn full_result_buffer_stalls_scheduling() {
        let (pipeline, frames) = tiny_engine_parts();
        let st = pipeline.builder().config().frames_per_segment;
        let mut e = ServeEngine::new(
            pipeline,
            ServeConfig::new().result_capacity(1).mesh_policy(MeshPolicy::Never),
        )
        .expect("valid config");
        let sid = e.open_session().expect("session opens");
        for f in frames.iter().take(2 * st) {
            e.push_frame(sid, f.clone()).expect("frame accepted");
        }
        assert_eq!(e.step().expect("step 1").batched, 1);
        // Result buffer now full → session not ready.
        assert_eq!(e.step().expect("step 2").batched, 0);
        assert_eq!(e.take_results(sid).expect("drain").len(), 1);
        assert_eq!(e.step().expect("step 3").batched, 1);
    }
}
