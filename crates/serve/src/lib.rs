//! # mmhand-serve
//!
//! A session-oriented streaming inference service over the mmHand
//! pipeline: concurrent clients stream raw radar frames, the engine
//! micro-batches their cube tensors into shared forward passes, maintains
//! per-session LSTM state, and returns per-segment skeleton + mesh
//! results — all behind the workspace's fallible `try_*` API, so malformed
//! input and overload surface as typed [`ServeError`]s, never panics.
//!
//! The execution model is synchronous and pull-based: the caller (the
//! `mmhand-serve` binary, a test harness, an embedding) owns the loop and
//! calls [`ServeEngine::step`]; concurrency lives exclusively inside
//! [`mmhand_parallel`], keeping results deterministic at any thread count
//! and bitwise identical to a dedicated single-session pipeline.
//!
//! ```no_run
//! # fn doc(model: mmhand_core::TrainedModel,
//! #        frames: Vec<mmhand_radar::RawFrame>) -> Result<(), Box<dyn std::error::Error>> {
//! use mmhand_core::{CubeConfig, MmHandPipeline};
//! use mmhand_serve::{MeshPolicy, ServeConfig, ServeEngine};
//!
//! let pipeline = MmHandPipeline::builder_for(model)
//!     .cube_config(CubeConfig::default())
//!     .build()?;
//! let mut engine = ServeEngine::new(
//!     pipeline,
//!     ServeConfig::new()
//!         .max_sessions(8)
//!         .queue_capacity(32)
//!         .mesh_policy(MeshPolicy::SkipWhenBacklogged { segments: 2 }),
//! )?;
//! let sid = engine.open_session()?;
//! for frame in frames {
//!     engine.push_frame(sid, frame)?;
//!     engine.step()?;
//!     for result in engine.take_results(sid)? {
//!         println!("segment {}: wrist at {:?}", result.segment_index, &result.skeleton[..3]);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod engine;
pub mod error;
pub mod net;
pub mod session;
pub mod shard;
#[cfg(test)]
pub(crate) mod testutil;
pub mod wire;

pub use config::{InferenceProfile, MeshPolicy, ServeConfig};
pub use engine::{ServeEngine, StepReport};
pub use error::ServeError;
// Re-exported so embedders can assemble an `InferenceProfile` without
// depending on the kernel/core crates directly.
pub use mmhand_core::Precision;
pub use mmhand_kernels::BackendChoice;
pub use net::{NetReport, ServeServer};
pub use session::{FrameResult, SessionStats};
pub use shard::{ShardStepReport, ShardedServe, MAX_SHARDS};
pub use wire::{Decoder, RejectCode, WireError, WireMsg};
