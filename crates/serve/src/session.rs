//! Per-session state: the bounded ingress queue, the streaming LSTM state,
//! and the bounded result buffer.

use mmhand_core::mesh::ReconstructedHand;
use mmhand_nn::Tensor;
use mmhand_radar::RawFrame;
use std::collections::VecDeque;

/// One per-segment inference result delivered to a session's client.
#[derive(Debug)]
pub struct FrameResult {
    /// The session the result belongs to.
    pub session: u64,
    /// Running segment index within the session's stream (0-based).
    pub segment_index: u64,
    /// Flat 63-float skeleton (metres, radar frame).
    pub skeleton: Vec<f32>,
    /// Reconstructed mesh, unless the mesh policy skipped it.
    pub hand: Option<ReconstructedHand>,
}

/// Lifetime accounting for one session, returned by
/// [`ServeEngine::close_session`](crate::ServeEngine::close_session).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Frames accepted into the queue.
    pub frames_in: u64,
    /// Segments inferred.
    pub segments_out: u64,
    /// Segments whose mesh was skipped by the mesh policy.
    pub meshes_skipped: u64,
}

/// Internal per-session state. Owned by the engine; clients only see ids.
pub(crate) struct Session {
    pub(crate) id: u64,
    /// Bounded ingress queue of validated raw frames.
    pub(crate) queue: VecDeque<RawFrame>,
    /// Bounded buffer of results not yet taken by the client.
    pub(crate) results: VecDeque<FrameResult>,
    /// Streaming LSTM hidden state, shape `(1, hidden)`.
    pub(crate) h: Tensor,
    /// Streaming LSTM cell state, shape `(1, hidden)`.
    pub(crate) c: Tensor,
    /// Consecutive steps without a full segment queued.
    pub(crate) idle_steps: usize,
    /// Next segment index to assign.
    pub(crate) segment_index: u64,
    pub(crate) stats: SessionStats,
}

impl Session {
    pub(crate) fn new(id: u64, hidden: usize) -> Self {
        Session {
            id,
            queue: VecDeque::new(),
            results: VecDeque::new(),
            h: Tensor::zeros(&[1, hidden]),
            c: Tensor::zeros(&[1, hidden]),
            idle_steps: 0,
            segment_index: 0,
            stats: SessionStats::default(),
        }
    }

    /// Whether the session can be scheduled this step: a whole segment is
    /// queued and the result buffer has room.
    pub(crate) fn ready(&self, frames_per_segment: usize, result_capacity: usize) -> bool {
        self.queue.len() >= frames_per_segment && self.results.len() < result_capacity
    }
}
