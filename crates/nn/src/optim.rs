//! Optimisation: Adam with the paper's cosine learning-rate decay.
//!
//! The paper trains with an initial learning rate of 0.001 following cosine
//! decay (§VI-A); [`Adam`] plus [`CosineSchedule`] reproduce that setup.

use crate::param::ParamStore;

/// Adam optimiser state (β₁/β₂ moments live in the [`ParamStore`]).
#[derive(Clone, Copy, Debug)]
pub struct Adam {
    /// Base learning rate (the schedule multiplies this).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Steps taken so far.
    step: u64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new(1e-3)
    }
}

impl Adam {
    /// Creates an Adam optimiser with the given base learning rate and the
    /// standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, step: 0 }
    }

    /// Number of update steps performed.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update with an explicit learning rate (e.g. from a
    /// schedule), consuming the accumulated gradients in `store`.
    pub fn step_with_lr(&mut self, store: &mut ParamStore, lr: f32) {
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let kern = mmhand_kernels::kernels();
        for id in store.ids() {
            let (value, grad, m, v) = store.adam_buffers(id);
            kern.adam_step(
                value.data_mut(),
                grad.data(),
                m.data_mut(),
                v.data_mut(),
                self.beta1,
                self.beta2,
                bias1,
                bias2,
                lr,
                self.eps,
            );
        }
    }

    /// Applies one update at the base learning rate.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.step_with_lr(store, self.lr);
    }
}

/// Cosine learning-rate decay from `base_lr` to `min_lr` over
/// `total_steps`.
#[derive(Clone, Copy, Debug)]
pub struct CosineSchedule {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Final learning rate.
    pub min_lr: f32,
    /// Steps over which to decay.
    pub total_steps: u64,
}

impl CosineSchedule {
    /// Creates the paper's schedule: 1e-3 decaying to `min_lr` over
    /// `total_steps`.
    pub fn new(base_lr: f32, total_steps: u64) -> Self {
        CosineSchedule { base_lr, min_lr: base_lr * 0.01, total_steps }
    }

    /// Learning rate at `step` (clamped past `total_steps`).
    pub fn lr_at(&self, step: u64) -> f32 {
        let t = (step.min(self.total_steps)) as f32 / self.total_steps.max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Tensor;

    #[test]
    fn adam_minimises_a_quadratic() {
        // Minimise mean((w − target)²); Adam should converge quickly.
        let mut store = ParamStore::new();
        let w_id = store.add("w", Tensor::from_vec(&[3], vec![5.0, -4.0, 2.0]));
        let target = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            store.zero_grad();
            let mut tape = Tape::new();
            let w = tape.param(&store, w_id);
            let t = tape.leaf(target.clone());
            let d = tape.sub(w, t);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        for (w, t) in store.value(w_id).data().iter().zip(target.data()) {
            assert!((w - t).abs() < 0.05, "{w} vs {t}");
        }
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn cosine_schedule_decays_smoothly() {
        let s = CosineSchedule::new(1e-3, 100);
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-9);
        assert!(s.lr_at(50) < s.lr_at(10));
        assert!(s.lr_at(100) <= s.lr_at(99));
        assert!((s.lr_at(100) - s.min_lr).abs() < 1e-9);
        // Clamped beyond the horizon.
        assert_eq!(s.lr_at(1000), s.lr_at(100));
    }

    #[test]
    fn schedule_handles_zero_total_steps() {
        let s = CosineSchedule::new(1e-3, 0);
        assert!(s.lr_at(0).is_finite());
    }

    #[test]
    fn step_with_schedule_converges() {
        let mut store = ParamStore::new();
        let w_id = store.add("w", Tensor::from_vec(&[1], vec![4.0]));
        let sched = CosineSchedule::new(0.2, 200);
        let mut adam = Adam::new(0.2);
        for step in 0..200 {
            store.zero_grad();
            let mut tape = Tape::new();
            let w = tape.param(&store, w_id);
            let sq = tape.mul(w, w);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut store);
            adam.step_with_lr(&mut store, sched.lr_at(step));
        }
        assert!(store.value(w_id).data()[0].abs() < 0.05);
    }
}
