//! GEMM kernels: packed, cache-blocked, register-blocked, pool-parallel.
//!
//! Three entry points back every matrix product in the workspace:
//! [`gemm`] (`C += A·B`), [`gemm_at_b`] (`C += Aᵀ·B`) and [`gemm_a_bt`]
//! (`C += A·Bᵀ`). All three share the same structure: parallel over row
//! bands of `C` on the `mmhand-parallel` pool, k-tiled, with a 4×MR
//! register-blocked inner loop.
//!
//! For big-enough problems the kernels first *pack* the operand that the
//! inner loop would otherwise read strided — `A` row groups interleaved
//! per k-tile for [`gemm`]/[`gemm_at_b`], `B` column panels for
//! [`gemm_a_bt`] — into scratch checked out of a thread-local
//! [`ScratchPool`], then run the same inner loop over the contiguous
//! panel. Packing copies values, never reassociates: every element of `C`
//! still accumulates its k-products in ascending-k order, so packed,
//! unpacked, sequential and pool-parallel paths are all **bitwise
//! identical** (asserted by exact-equality proptests below) at any
//! `MMHAND_THREADS` setting.
//!
//! The inner loops themselves — the 4-row microkernel and the `A·Bᵀ`
//! column-panel pack/dot — live in `mmhand-kernels` and are dispatched
//! through its process-wide backend ([`mmhand_kernels::kernels`]): scalar
//! reference or explicit SIMD, both bitwise identical by contract. The
//! `*_with` variants accept an explicit backend for cross-backend tests
//! and benches.

use mmhand_kernels::Kernels;
use mmhand_parallel::ScratchPool;

thread_local! {
    /// Per-thread pack-panel scratch. Each pool worker (or the caller, when
    /// running inline) owns its own free list, so packing allocates only on
    /// the first large call a thread sees.
    static GEMM_PACK: ScratchPool<f32> = const { ScratchPool::new("nn.gemm.pack") };
}

/// k-dimension tile: one tile of `B` (`KC·n` floats) stays hot in L1/L2
/// while a block of `C` rows accumulates against it.
const GEMM_KC: usize = 256;
/// Register rows: the main kernel computes 4 rows of `C` per pass over a
/// `B` row, so every `B` load is reused four times.
const GEMM_MR: usize = 4;
/// Below this many flops (`2·m·k·n`) the pool is not engaged; fixed costs
/// dominate and the sequential kernel wins.
const GEMM_PAR_FLOPS: usize = 1 << 17;
/// Minimum `n` before [`gemm`]/[`gemm_at_b`] pack `A` panels: each packed
/// value is reused once per column, so narrow outputs don't amortise the
/// packing pass.
const GEMM_PACK_MIN_N: usize = 8;

/// Bucket bounds for the GEMM problem-size histogram (flops per call).
const GEMM_FLOP_BUCKETS: &[f64] = &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];

/// GEMM telemetry handles, resolved once: every `gemm*` entry point counts
/// its calls and observes the problem size, so kernel-dispatch decisions
/// (like [`GEMM_PAR_FLOPS`]) can be tuned against real workload shapes.
/// The flops histogram carries the active kernel backend as a name suffix
/// (`nn.gemm.flops.scalar` / `nn.gemm.flops.simd`) so perf artefacts are
/// attributable to a backend.
fn gemm_metrics() -> &'static (mmhand_telemetry::Counter, mmhand_telemetry::Histogram) {
    static METRICS: std::sync::OnceLock<(mmhand_telemetry::Counter, mmhand_telemetry::Histogram)> =
        std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let backend = mmhand_kernels::backend_name();
        (
            mmhand_telemetry::counter("nn.gemm.calls"),
            mmhand_telemetry::histogram_with(&format!("nn.gemm.flops.{backend}"), GEMM_FLOP_BUCKETS),
        )
    })
}

fn record_gemm(m: usize, k: usize, n: usize) {
    let (calls, flops) = gemm_metrics();
    calls.inc();
    flops.observe(2.0 * (m as f64) * (k as f64) * (n as f64));
}

/// `C += A·B` GEMM kernel: cache-blocked over k, 4-row register blocking
/// with packed `A` panels, and parallel over row bands of `C` on the
/// `mmhand-parallel` pool.
///
/// Every element of `C` accumulates its k-products in ascending-k order
/// regardless of thread count, so results are bitwise identical at any
/// `MMHAND_THREADS` setting.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_with(mmhand_kernels::kernels(), a, b, c, m, k, n);
}

/// [`gemm`] against an explicit kernel backend (tests/benches comparing
/// backends; production code uses [`gemm`], which dispatches globally).
#[allow(clippy::too_many_arguments)]
pub fn gemm_with(
    kern: &dyn Kernels,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    record_gemm(m, k, n);
    let rows_per_task = gemm_rows_per_task(m, k, n);
    mmhand_parallel::par_chunks_mut(c, rows_per_task * n, |band, c_band| {
        gemm_band(kern, a, b, c_band, band * rows_per_task, k, n);
    });
}

/// Picks the row-band height: the whole matrix when the problem is too
/// small to parallelise, otherwise an even split across the pool.
fn gemm_rows_per_task(m: usize, k: usize, n: usize) -> usize {
    let threads = mmhand_parallel::num_threads();
    if threads <= 1 || 2 * m * k * n < GEMM_PAR_FLOPS {
        m.max(1)
    } else {
        m.div_ceil(threads).max(1)
    }
}

/// Packs the k-tile `[kb, kend)` of a 4-row group of `A` (row-major,
/// leading dimension `lda`, rows starting at `row`) into `apack`,
/// interleaved so the microkernel reads one contiguous quad per k-step.
#[inline]
fn pack_a_rows(a: &[f32], apack: &mut [f32], row: usize, lda: usize, kb: usize, kend: usize) {
    for kk in kb..kend {
        let dst = &mut apack[(kk - kb) * GEMM_MR..(kk - kb) * GEMM_MR + GEMM_MR];
        dst[0] = a[row * lda + kk];
        dst[1] = a[(row + 1) * lda + kk];
        dst[2] = a[(row + 2) * lda + kk];
        dst[3] = a[(row + 3) * lda + kk];
    }
}

/// As [`pack_a_rows`] but for a column-major-by-k `A` (`(k, m)` layout, as
/// in [`gemm_at_b`]): the quad at k-step `kk` is `a[kk*m + row ..+4]`.
#[inline]
fn pack_a_cols(a: &[f32], apack: &mut [f32], row: usize, m: usize, kb: usize, kend: usize) {
    for kk in kb..kend {
        let src = &a[kk * m + row..kk * m + row + GEMM_MR];
        apack[(kk - kb) * GEMM_MR..(kk - kb) * GEMM_MR + GEMM_MR].copy_from_slice(src);
    }
}

/// Computes rows `[i0, i0 + c_band.len()/n)` of `C += A·B`.
fn gemm_band(kern: &dyn Kernels, a: &[f32], b: &[f32], c_band: &mut [f32], i0: usize, k: usize, n: usize) {
    if n >= GEMM_PACK_MIN_N && c_band.len() >= GEMM_MR * n {
        GEMM_PACK.with(|pool| {
            pool.with(GEMM_KC * GEMM_MR, |apack| {
                gemm_band_inner(kern, a, b, c_band, i0, k, n, Some(apack));
            });
        });
    } else {
        gemm_band_inner(kern, a, b, c_band, i0, k, n, None);
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_band_inner(
    kern: &dyn Kernels,
    a: &[f32],
    b: &[f32],
    c_band: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
    mut apack: Option<&mut Vec<f32>>,
) {
    for kb in (0..k).step_by(GEMM_KC) {
        let kend = (kb + GEMM_KC).min(k);
        for (group, c_group) in c_band.chunks_mut(GEMM_MR * n).enumerate() {
            let row = i0 + group * GEMM_MR;
            if c_group.len() == GEMM_MR * n {
                let (c0, rest) = c_group.split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                if let Some(apack) = apack.as_deref_mut() {
                    pack_a_rows(a, apack, row, k, kb, kend);
                    kern.gemm_4xn(apack, b, c0, c1, c2, c3, kb, kend, n);
                } else {
                    for kk in kb..kend {
                        let b_row = &b[kk * n..(kk + 1) * n];
                        let x0 = a[row * k + kk];
                        let x1 = a[(row + 1) * k + kk];
                        let x2 = a[(row + 2) * k + kk];
                        let x3 = a[(row + 3) * k + kk];
                        for (j, &bv) in b_row.iter().enumerate() {
                            c0[j] += x0 * bv;
                            c1[j] += x1 * bv;
                            c2[j] += x2 * bv;
                            c3[j] += x3 * bv;
                        }
                    }
                }
            } else {
                for (r, c_row) in c_group.chunks_mut(n).enumerate() {
                    let a_row = &a[(row + r) * k..(row + r + 1) * k];
                    for kk in kb..kend {
                        let x = a_row[kk];
                        let b_row = &b[kk * n..(kk + 1) * n];
                        for (cj, &bv) in c_row.iter_mut().zip(b_row) {
                            *cj += x * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `C += Aᵀ·B` without materialising the transpose: `A` is `(k, m)`.
///
/// Parallel over row bands of `C`; the microkernel runs over packed `A`
/// column quads (one contiguous panel per k-tile instead of reads strided
/// by `m`), with the same 4-row register blocking as [`gemm`].
pub fn gemm_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_at_b_with(mmhand_kernels::kernels(), a, b, c, m, k, n);
}

/// [`gemm_at_b`] against an explicit kernel backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_at_b_with(
    kern: &dyn Kernels,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    record_gemm(m, k, n);
    let rows_per_task = gemm_rows_per_task(m, k, n);
    mmhand_parallel::par_chunks_mut(c, rows_per_task * n, |band, c_band| {
        let i0 = band * rows_per_task;
        if n >= GEMM_PACK_MIN_N && c_band.len() >= GEMM_MR * n {
            GEMM_PACK.with(|pool| {
                pool.with(GEMM_KC * GEMM_MR, |apack| {
                    gemm_at_b_band(kern, a, b, c_band, i0, m, k, n, Some(apack));
                });
            });
        } else {
            gemm_at_b_band(kern, a, b, c_band, i0, m, k, n, None);
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn gemm_at_b_band(
    kern: &dyn Kernels,
    a: &[f32],
    b: &[f32],
    c_band: &mut [f32],
    i0: usize,
    m: usize,
    k: usize,
    n: usize,
    mut apack: Option<&mut Vec<f32>>,
) {
    for kb in (0..k).step_by(GEMM_KC) {
        let kend = (kb + GEMM_KC).min(k);
        for (group, c_group) in c_band.chunks_mut(GEMM_MR * n).enumerate() {
            let row = i0 + group * GEMM_MR;
            if c_group.len() == GEMM_MR * n {
                let (c0, rest) = c_group.split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                if let Some(apack) = apack.as_deref_mut() {
                    pack_a_cols(a, apack, row, m, kb, kend);
                    kern.gemm_4xn(apack, b, c0, c1, c2, c3, kb, kend, n);
                } else {
                    for kk in kb..kend {
                        let b_row = &b[kk * n..(kk + 1) * n];
                        let a_col = &a[kk * m + row..kk * m + row + GEMM_MR];
                        let (x0, x1, x2, x3) = (a_col[0], a_col[1], a_col[2], a_col[3]);
                        for (j, &bv) in b_row.iter().enumerate() {
                            c0[j] += x0 * bv;
                            c1[j] += x1 * bv;
                            c2[j] += x2 * bv;
                            c3[j] += x3 * bv;
                        }
                    }
                }
            } else {
                for (r, c_row) in c_group.chunks_mut(n).enumerate() {
                    for kk in kb..kend {
                        let x = a[kk * m + row + r];
                        let b_row = &b[kk * n..(kk + 1) * n];
                        for (cj, &bv) in c_row.iter_mut().zip(b_row) {
                            *cj += x * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `C += A·Bᵀ` without materialising the transpose: `B` is `(n, k)`.
///
/// Dot-product form, parallel over row bands of `C`. For multi-row bands
/// each 4-column panel of `B` is packed (interleaved) once and reused by
/// every row of the band — the packed panel is read contiguously where the
/// unpacked loop streamed four separate `B` rows. Each `C` element is
/// still one independent dot product accumulated in ascending-k order, so
/// results are bitwise identical to the unpacked and naive forms.
pub fn gemm_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_a_bt_with(mmhand_kernels::kernels(), a, b, c, m, k, n);
}

/// [`gemm_a_bt`] against an explicit kernel backend.
#[allow(clippy::too_many_arguments)]
pub fn gemm_a_bt_with(
    kern: &dyn Kernels,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    record_gemm(m, k, n);
    let rows_per_task = gemm_rows_per_task(m, k, n);
    mmhand_parallel::par_chunks_mut(c, rows_per_task * n, |band, c_band| {
        let i0 = band * rows_per_task;
        let rows = c_band.len() / n;
        if rows >= 2 && n >= 4 {
            gemm_a_bt_band_packed(kern, a, b, c_band, i0, k, n);
        } else {
            gemm_a_bt_band(a, b, c_band, i0, k, n);
        }
    });
}

/// Unpacked dot-product band kernel (single-row bands / narrow `C`).
fn gemm_a_bt_band(a: &[f32], b: &[f32], c_band: &mut [f32], i0: usize, k: usize, n: usize) {
    for (r, c_row) in c_band.chunks_mut(n).enumerate() {
        let i = i0 + r;
        let a_row = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (kk, &av) in a_row.iter().enumerate() {
                s0 += av * b0[kk];
                s1 += av * b1[kk];
                s2 += av * b2[kk];
                s3 += av * b3[kk];
            }
            c_row[j] += s0;
            c_row[j + 1] += s1;
            c_row[j + 2] += s2;
            c_row[j + 3] += s3;
            j += 4;
        }
        for (jj, cij) in c_row.iter_mut().enumerate().skip(j) {
            let b_row = &b[jj * k..(jj + 1) * k];
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *cij += acc;
        }
    }
}

/// Panel-packed band kernel: column panels outer, band rows inner. The
/// panel width is backend-defined (4 scalar, 8 SIMD); since every `C`
/// element is one independent dot product accumulated in ascending-k
/// order, the width does not change any result bit.
fn gemm_a_bt_band_packed(
    kern: &dyn Kernels,
    a: &[f32],
    b: &[f32],
    c_band: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
) {
    let w = kern.abt_panel_width();
    debug_assert!(w <= mmhand_kernels::ABT_PANEL_MAX);
    GEMM_PACK.with(|pool| {
        pool.with(w * k, |bpack| {
            let mut sums = [0.0f32; mmhand_kernels::ABT_PANEL_MAX];
            let mut j = 0;
            while j + w <= n {
                kern.abt_pack_panel(b, j, k, bpack);
                for (r, c_row) in c_band.chunks_mut(n).enumerate() {
                    let i = i0 + r;
                    let a_row = &a[i * k..(i + 1) * k];
                    kern.abt_dot_panel(a_row, bpack, &mut sums);
                    for (cij, &s) in c_row[j..j + w].iter_mut().zip(&sums) {
                        *cij += s;
                    }
                }
                j += w;
            }
            for (r, c_row) in c_band.chunks_mut(n).enumerate() {
                let i = i0 + r;
                let a_row = &a[i * k..(i + 1) * k];
                for (jj, cij) in c_row.iter_mut().enumerate().skip(j) {
                    let b_row = &b[jj * k..(jj + 1) * k];
                    let mut acc = 0.0;
                    for (x, y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *cij += acc;
                }
            }
        });
    });
}

/// Straightforward triple-loop `C += A·B` — the pre-optimisation kernel,
/// kept as the correctness reference for property tests and as the
/// before/after baseline in `cargo bench`.
pub fn gemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// Reference `C += Aᵀ·B` (`A` is `(k, m)`); see [`gemm_naive`].
pub fn gemm_at_b_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aki * bj;
            }
        }
    }
}

/// Reference `C += A·Bᵀ` (`B` is `(n, k)`); see [`gemm_naive`].
pub fn gemm_a_bt_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cij) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *cij += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use mmhand_math::rng::stream_rng;
    use proptest::prelude::*;

    #[test]
    fn gemm_variants_agree() {
        let mut rng = stream_rng(3, "g");
        let (m, k, n) = (5, 7, 4);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let reference = a.matmul(&b);

        let mut c1 = vec![0.0; m * n];
        gemm_at_b(a.transposed().data(), b.data(), &mut c1, m, k, n);
        for (x, y) in c1.iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }

        let mut c2 = vec![0.0; m * n];
        gemm_a_bt(a.data(), b.transposed().data(), &mut c2, m, k, n);
        for (x, y) in c2.iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    proptest! {
        // Packed/blocked/parallel kernels vs the straightforward reference,
        // over random shapes including k = 0, single rows/columns,
        // non-square, and sizes that are not multiples of the register
        // blocking. Since packing only copies operands and never reorders
        // any element's ascending-k accumulation, the comparison is exact
        // (bitwise), under either `sanitize-numerics` feature state — the
        // suite runs in both CI jobs.
        #[test]
        fn blocked_gemm_matches_reference(
            m in 0usize..26, k in 0usize..40, n in 0usize..34, seed in 0u64..1000,
        ) {
            let mut rng = stream_rng(seed, "gemm-ref");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let init = Tensor::randn(&[m.max(1), n.max(1)], 1.0, &mut rng);
            let mut c_blocked = vec![0.0f32; m * n];
            let mut c_naive = vec![0.0f32; m * n];
            for (dst, &v) in c_blocked.iter_mut().zip(init.data()) {
                *dst = v;
            }
            c_naive.copy_from_slice(&c_blocked);
            gemm(a.data(), b.data(), &mut c_blocked, m, k, n);
            gemm_naive(a.data(), b.data(), &mut c_naive, m, k, n);
            prop_assert_eq!(&c_blocked, &c_naive);
        }

        #[test]
        fn blocked_gemm_at_b_matches_reference(
            m in 0usize..26, k in 0usize..40, n in 0usize..34, seed in 0u64..1000,
        ) {
            let mut rng = stream_rng(seed, "gemm-atb-ref");
            let a = Tensor::randn(&[k, m], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut c_blocked = vec![0.0f32; m * n];
            let mut c_naive = vec![0.0f32; m * n];
            gemm_at_b(a.data(), b.data(), &mut c_blocked, m, k, n);
            gemm_at_b_naive(a.data(), b.data(), &mut c_naive, m, k, n);
            prop_assert_eq!(&c_blocked, &c_naive);
        }

        #[test]
        fn blocked_gemm_a_bt_matches_reference(
            m in 0usize..26, k in 0usize..40, n in 0usize..34, seed in 0u64..1000,
        ) {
            let mut rng = stream_rng(seed, "gemm-abt-ref");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[n, k], 1.0, &mut rng);
            let mut c_blocked = vec![0.0f32; m * n];
            let mut c_naive = vec![0.0f32; m * n];
            gemm_a_bt(a.data(), b.data(), &mut c_blocked, m, k, n);
            gemm_a_bt_naive(a.data(), b.data(), &mut c_naive, m, k, n);
            prop_assert_eq!(&c_blocked, &c_naive);
        }

        // Shapes big enough to engage both the packed path and (given
        // threads) the pool, exercised against the naive reference.
        #[test]
        fn packed_gemm_matches_reference_on_large_shapes(seed in 0u64..20) {
            let (m, k, n) = (37, 300, 41);
            let mut rng = stream_rng(seed, "gemm-packed");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let bt = b.transposed();
            let at = a.transposed();

            let mut c_ref = vec![0.0f32; m * n];
            gemm_naive(a.data(), b.data(), &mut c_ref, m, k, n);

            let mut c_packed = vec![0.0f32; m * n];
            gemm(a.data(), b.data(), &mut c_packed, m, k, n);
            prop_assert_eq!(&c_packed, &c_ref);

            let mut c_atb = vec![0.0f32; m * n];
            gemm_at_b(at.data(), b.data(), &mut c_atb, m, k, n);
            prop_assert_eq!(&c_atb, &c_ref);

            let mut c_abt = vec![0.0f32; m * n];
            gemm_a_bt(a.data(), bt.data(), &mut c_abt, m, k, n);
            prop_assert_eq!(&c_abt, &c_ref);
        }

        // Scalar and SIMD backends must agree bitwise (a ULP distance of
        // exactly zero) on every gemm variant — the SIMD kernels never
        // fuse or reassociate, they only evaluate independent `C` elements
        // in parallel lanes. Runs under either `sanitize-numerics` state;
        // passes trivially on CPUs without a SIMD backend.
        #[test]
        fn gemm_backends_are_bitwise_identical(
            m in 0usize..26, k in 0usize..40, n in 0usize..34, seed in 0u64..500,
        ) {
            let Some(simd) = mmhand_kernels::simd_kernels() else { return Ok(()); };
            let scalar = mmhand_kernels::scalar_kernels();
            let mut rng = stream_rng(seed, "gemm-backends");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let at = a.transposed();
            let bt = b.transposed();
            for (label, f) in [
                ("gemm", gemm_with as fn(&dyn Kernels, &[f32], &[f32], &mut [f32], usize, usize, usize)),
                ("gemm_at_b", gemm_at_b_with),
                ("gemm_a_bt", gemm_a_bt_with),
            ] {
                let (lhs, rhs) = match label {
                    "gemm_at_b" => (at.data(), b.data()),
                    "gemm_a_bt" => (a.data(), bt.data()),
                    _ => (a.data(), b.data()),
                };
                let mut c_sc = vec![0.0f32; m * n];
                let mut c_sd = vec![0.0f32; m * n];
                f(scalar, lhs, rhs, &mut c_sc, m, k, n);
                f(simd, lhs, rhs, &mut c_sd, m, k, n);
                for (i, (x, y)) in c_sc.iter().zip(&c_sd).enumerate() {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "{label} element {i}: scalar {x} != simd {y}"
                    );
                }
            }
        }

        // Large-enough shapes to cross the parallel threshold, so the
        // pool path itself is exercised (and must stay deterministic).
        #[test]
        fn parallel_gemm_is_deterministic(seed in 0u64..20) {
            let (m, k, n) = (32, 64, 48);
            let mut rng = stream_rng(seed, "gemm-par");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut c_par = vec![0.0f32; m * n];
            gemm(a.data(), b.data(), &mut c_par, m, k, n);
            let mut c_seq = vec![0.0f32; m * n];
            mmhand_parallel::sequential_scope(|| {
                gemm(a.data(), b.data(), &mut c_seq, m, k, n);
            });
            prop_assert_eq!(&c_par, &c_seq);
        }
    }
}
