//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the value type flowing through the autodiff tape: a flat
//! buffer plus a shape. Only the operations the mmHand architecture needs
//! are provided; all higher-level semantics (convolution, attention) live
//! in [`crate::tape`].

use mmhand_math::rng::standard_normal;
use rand::Rng;
use std::fmt;

// The GEMM kernels grew into their own module; the re-export keeps the
// long-standing `tensor::gemm*` import paths working.
pub use crate::gemm::{
    gemm, gemm_a_bt, gemm_a_bt_naive, gemm_a_bt_with, gemm_at_b, gemm_at_b_naive, gemm_at_b_with,
    gemm_naive, gemm_with,
};

/// A dense row-major tensor of `f32`.
///
/// # Examples
///
/// ```
/// use mmhand_nn::tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{}, {}, …])", self.data[0], self.data[1])
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![0.0; n], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![value; n], shape: shape.to_vec() }
    }

    /// Creates a tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length {} != shape product {n}", data.len());
        Tensor { data, shape: shape.to_vec() }
    }

    /// Creates a tensor of standard-normal samples scaled by `std`.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| standard_normal(rng) * std).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped view (same data, new shape).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(self.len(), n, "cannot reshape {:?} to {shape:?}", self.shape);
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|x| x * s).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Adds `rhs` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in add_assign");
        mmhand_kernels::kernels().axpy(&mut self.data, &rhs.data);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` when empty).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Matrix multiplication of 2-D tensors: `(m, k) · (k, n) → (m, n)`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dimensions.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0_f32; m * n];
        gemm(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0_f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { data: out, shape: vec![n, m] }
    }

    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "shape mismatch {:?} vs {:?}", self.shape, rhs.shape);
        Tensor {
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::stream_rng;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.sum(), 21.0);
        assert!((t.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_length() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(&a).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = stream_rng(1, "mm");
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let c = a.matmul(&eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = stream_rng(2, "t");
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let back = a.transposed().transposed();
        assert_eq!(a, back);
    }

    #[test]
    fn randn_respects_std() {
        let mut rng = stream_rng(4, "r");
        let t = Tensor::randn(&[100, 100], 0.5, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_addition(seed in 0u64..100) {
            let mut rng = stream_rng(seed, "prop");
            let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
            let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
            let c = Tensor::randn(&[4, 2], 1.0, &mut rng);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn reshape_preserves_data(seed in 0u64..50) {
            let mut rng = stream_rng(seed, "rs");
            let a = Tensor::randn(&[2, 6], 1.0, &mut rng);
            let b = a.reshaped(&[3, 4]);
            prop_assert_eq!(a.data(), b.data());
            prop_assert_eq!(b.shape(), &[3usize, 4]);
        }
    }
}
