//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the value type flowing through the autodiff tape: a flat
//! buffer plus a shape. Only the operations the mmHand architecture needs
//! are provided; all higher-level semantics (convolution, attention) live
//! in [`crate::tape`].

use mmhand_math::rng::standard_normal;
use rand::Rng;
use std::fmt;

/// A dense row-major tensor of `f32`.
///
/// # Examples
///
/// ```
/// use mmhand_nn::tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{}, {}, …])", self.data[0], self.data[1])
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![0.0; n], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![value; n], shape: shape.to_vec() }
    }

    /// Creates a tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length {} != shape product {n}", data.len());
        Tensor { data, shape: shape.to_vec() }
    }

    /// Creates a tensor of standard-normal samples scaled by `std`.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| standard_normal(rng) * std).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped view (same data, new shape).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(self.len(), n, "cannot reshape {:?} to {shape:?}", self.shape);
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|x| x * s).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Adds `rhs` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` when empty).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Matrix multiplication of 2-D tensors: `(m, k) · (k, n) → (m, n)`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dimensions.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0_f32; m * n];
        gemm(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0_f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { data: out, shape: vec![n, m] }
    }

    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "shape mismatch {:?} vs {:?}", self.shape, rhs.shape);
        Tensor {
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }
}

/// k-dimension tile: one tile of `B` (`KC·n` floats) stays hot in L1/L2
/// while a block of `C` rows accumulates against it.
const GEMM_KC: usize = 256;
/// Register rows: the main kernel computes 4 rows of `C` per pass over a
/// `B` row, so every `B` load is reused four times.
const GEMM_MR: usize = 4;
/// Below this many flops (`2·m·k·n`) the pool is not engaged; fixed costs
/// dominate and the sequential kernel wins.
const GEMM_PAR_FLOPS: usize = 1 << 17;

/// Bucket bounds for the GEMM problem-size histogram (flops per call).
const GEMM_FLOP_BUCKETS: &[f64] = &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];

/// GEMM telemetry handles, resolved once: every `gemm*` entry point counts
/// its calls and observes the problem size, so kernel-dispatch decisions
/// (like [`GEMM_PAR_FLOPS`]) can be tuned against real workload shapes.
fn gemm_metrics() -> &'static (mmhand_telemetry::Counter, mmhand_telemetry::Histogram) {
    static METRICS: std::sync::OnceLock<(mmhand_telemetry::Counter, mmhand_telemetry::Histogram)> =
        std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        (
            mmhand_telemetry::counter("nn.gemm.calls"),
            mmhand_telemetry::histogram_with("nn.gemm.flops", GEMM_FLOP_BUCKETS),
        )
    })
}

fn record_gemm(m: usize, k: usize, n: usize) {
    let (calls, flops) = gemm_metrics();
    calls.inc();
    flops.observe(2.0 * (m as f64) * (k as f64) * (n as f64));
}

/// `C += A·B` GEMM kernel: cache-blocked over k, 4-row register blocking,
/// and parallel over row bands of `C` on the `mmhand-parallel` pool.
///
/// Every element of `C` accumulates its k-products in ascending-k order
/// regardless of thread count, so results are bitwise identical at any
/// `MMHAND_THREADS` setting.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    record_gemm(m, k, n);
    let rows_per_task = gemm_rows_per_task(m, k, n);
    mmhand_parallel::par_chunks_mut(c, rows_per_task * n, |band, c_band| {
        gemm_band(a, b, c_band, band * rows_per_task, k, n);
    });
}

/// Picks the row-band height: the whole matrix when the problem is too
/// small to parallelise, otherwise an even split across the pool.
fn gemm_rows_per_task(m: usize, k: usize, n: usize) -> usize {
    let threads = mmhand_parallel::num_threads();
    if threads <= 1 || 2 * m * k * n < GEMM_PAR_FLOPS {
        m.max(1)
    } else {
        m.div_ceil(threads).max(1)
    }
}

/// Computes rows `[i0, i0 + c_band.len()/n)` of `C += A·B`.
fn gemm_band(a: &[f32], b: &[f32], c_band: &mut [f32], i0: usize, k: usize, n: usize) {
    for kb in (0..k).step_by(GEMM_KC) {
        let kend = (kb + GEMM_KC).min(k);
        for (group, c_group) in c_band.chunks_mut(GEMM_MR * n).enumerate() {
            let row = i0 + group * GEMM_MR;
            if c_group.len() == GEMM_MR * n {
                let (c0, rest) = c_group.split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                for kk in kb..kend {
                    let b_row = &b[kk * n..(kk + 1) * n];
                    let x0 = a[row * k + kk];
                    let x1 = a[(row + 1) * k + kk];
                    let x2 = a[(row + 2) * k + kk];
                    let x3 = a[(row + 3) * k + kk];
                    for (j, &bv) in b_row.iter().enumerate() {
                        c0[j] += x0 * bv;
                        c1[j] += x1 * bv;
                        c2[j] += x2 * bv;
                        c3[j] += x3 * bv;
                    }
                }
            } else {
                for (r, c_row) in c_group.chunks_mut(n).enumerate() {
                    let a_row = &a[(row + r) * k..(row + r + 1) * k];
                    for kk in kb..kend {
                        let x = a_row[kk];
                        let b_row = &b[kk * n..(kk + 1) * n];
                        for (cj, &bv) in c_row.iter_mut().zip(b_row) {
                            *cj += x * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `C += Aᵀ·B` without materialising the transpose: `A` is `(k, m)`.
///
/// Parallel over row bands of `C`; the strided column reads of `A` touch
/// one cache line per k-step per row, amortised by the same 4-row
/// register blocking as [`gemm`].
pub fn gemm_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    record_gemm(m, k, n);
    let rows_per_task = gemm_rows_per_task(m, k, n);
    mmhand_parallel::par_chunks_mut(c, rows_per_task * n, |band, c_band| {
        let i0 = band * rows_per_task;
        for kb in (0..k).step_by(GEMM_KC) {
            let kend = (kb + GEMM_KC).min(k);
            for (group, c_group) in c_band.chunks_mut(GEMM_MR * n).enumerate() {
                let row = i0 + group * GEMM_MR;
                if c_group.len() == GEMM_MR * n {
                    let (c0, rest) = c_group.split_at_mut(n);
                    let (c1, rest) = rest.split_at_mut(n);
                    let (c2, c3) = rest.split_at_mut(n);
                    for kk in kb..kend {
                        let b_row = &b[kk * n..(kk + 1) * n];
                        let a_col = &a[kk * m + row..kk * m + row + GEMM_MR];
                        let (x0, x1, x2, x3) = (a_col[0], a_col[1], a_col[2], a_col[3]);
                        for (j, &bv) in b_row.iter().enumerate() {
                            c0[j] += x0 * bv;
                            c1[j] += x1 * bv;
                            c2[j] += x2 * bv;
                            c3[j] += x3 * bv;
                        }
                    }
                } else {
                    for (r, c_row) in c_group.chunks_mut(n).enumerate() {
                        for kk in kb..kend {
                            let x = a[kk * m + row + r];
                            let b_row = &b[kk * n..(kk + 1) * n];
                            for (cj, &bv) in c_row.iter_mut().zip(b_row) {
                                *cj += x * bv;
                            }
                        }
                    }
                }
            }
        }
    });
}

/// `C += A·Bᵀ` without materialising the transpose: `B` is `(n, k)`.
///
/// Dot-product form, parallel over row bands of `C`, with a 4-wide unroll
/// over `B` rows so each `A` element is reused across four dot products.
pub fn gemm_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    record_gemm(m, k, n);
    let rows_per_task = gemm_rows_per_task(m, k, n);
    mmhand_parallel::par_chunks_mut(c, rows_per_task * n, |band, c_band| {
        let i0 = band * rows_per_task;
        for (r, c_row) in c_band.chunks_mut(n).enumerate() {
            let i = i0 + r;
            let a_row = &a[i * k..(i + 1) * k];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (kk, &av) in a_row.iter().enumerate() {
                    s0 += av * b0[kk];
                    s1 += av * b1[kk];
                    s2 += av * b2[kk];
                    s3 += av * b3[kk];
                }
                c_row[j] += s0;
                c_row[j + 1] += s1;
                c_row[j + 2] += s2;
                c_row[j + 3] += s3;
                j += 4;
            }
            for (jj, cij) in c_row.iter_mut().enumerate().skip(j) {
                let b_row = &b[jj * k..(jj + 1) * k];
                let mut acc = 0.0;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *cij += acc;
            }
        }
    });
}

/// Straightforward triple-loop `C += A·B` — the pre-optimisation kernel,
/// kept as the correctness reference for property tests and as the
/// before/after baseline in `cargo bench`.
pub fn gemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// Reference `C += Aᵀ·B` (`A` is `(k, m)`); see [`gemm_naive`].
pub fn gemm_at_b_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aki * bj;
            }
        }
    }
}

/// Reference `C += A·Bᵀ` (`B` is `(n, k)`); see [`gemm_naive`].
pub fn gemm_a_bt_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cij) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *cij += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::stream_rng;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.sum(), 21.0);
        assert!((t.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_length() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(&a).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = stream_rng(1, "mm");
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let c = a.matmul(&eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = stream_rng(2, "t");
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let back = a.transposed().transposed();
        assert_eq!(a, back);
    }

    #[test]
    fn gemm_variants_agree() {
        let mut rng = stream_rng(3, "g");
        let (m, k, n) = (5, 7, 4);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let reference = a.matmul(&b);

        let mut c1 = vec![0.0; m * n];
        gemm_at_b(a.transposed().data(), b.data(), &mut c1, m, k, n);
        for (x, y) in c1.iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }

        let mut c2 = vec![0.0; m * n];
        gemm_a_bt(a.data(), b.transposed().data(), &mut c2, m, k, n);
        for (x, y) in c2.iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn randn_respects_std() {
        let mut rng = stream_rng(4, "r");
        let t = Tensor::randn(&[100, 100], 0.5, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_addition(seed in 0u64..100) {
            let mut rng = stream_rng(seed, "prop");
            let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
            let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
            let c = Tensor::randn(&[4, 2], 1.0, &mut rng);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn reshape_preserves_data(seed in 0u64..50) {
            let mut rng = stream_rng(seed, "rs");
            let a = Tensor::randn(&[2, 6], 1.0, &mut rng);
            let b = a.reshaped(&[3, 4]);
            prop_assert_eq!(a.data(), b.data());
            prop_assert_eq!(b.shape(), &[3usize, 4]);
        }

        // Blocked/parallel kernels vs the straightforward reference, over
        // random shapes including k = 0, single rows/columns, non-square,
        // and sizes that are not multiples of the register blocking.
        #[test]
        fn blocked_gemm_matches_reference(
            m in 0usize..26, k in 0usize..40, n in 0usize..34, seed in 0u64..1000,
        ) {
            let mut rng = stream_rng(seed, "gemm-ref");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let init = Tensor::randn(&[m.max(1), n.max(1)], 1.0, &mut rng);
            let mut c_blocked = vec![0.0f32; m * n];
            let mut c_naive = vec![0.0f32; m * n];
            for (dst, &v) in c_blocked.iter_mut().zip(init.data()) {
                *dst = v;
            }
            c_naive.copy_from_slice(&c_blocked);
            gemm(a.data(), b.data(), &mut c_blocked, m, k, n);
            gemm_naive(a.data(), b.data(), &mut c_naive, m, k, n);
            for (x, y) in c_blocked.iter().zip(&c_naive) {
                prop_assert!((x - y).abs() < 1e-4, "gemm {x} vs {y}");
            }
        }

        #[test]
        fn blocked_gemm_at_b_matches_reference(
            m in 0usize..26, k in 0usize..40, n in 0usize..34, seed in 0u64..1000,
        ) {
            let mut rng = stream_rng(seed, "gemm-atb-ref");
            let a = Tensor::randn(&[k, m], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut c_blocked = vec![0.0f32; m * n];
            let mut c_naive = vec![0.0f32; m * n];
            gemm_at_b(a.data(), b.data(), &mut c_blocked, m, k, n);
            gemm_at_b_naive(a.data(), b.data(), &mut c_naive, m, k, n);
            for (x, y) in c_blocked.iter().zip(&c_naive) {
                prop_assert!((x - y).abs() < 1e-4, "gemm_at_b {x} vs {y}");
            }
        }

        #[test]
        fn blocked_gemm_a_bt_matches_reference(
            m in 0usize..26, k in 0usize..40, n in 0usize..34, seed in 0u64..1000,
        ) {
            let mut rng = stream_rng(seed, "gemm-abt-ref");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[n, k], 1.0, &mut rng);
            let mut c_blocked = vec![0.0f32; m * n];
            let mut c_naive = vec![0.0f32; m * n];
            gemm_a_bt(a.data(), b.data(), &mut c_blocked, m, k, n);
            gemm_a_bt_naive(a.data(), b.data(), &mut c_naive, m, k, n);
            for (x, y) in c_blocked.iter().zip(&c_naive) {
                prop_assert!((x - y).abs() < 1e-4, "gemm_a_bt {x} vs {y}");
            }
        }

        // Large-enough shapes to cross the parallel threshold, so the
        // pool path itself is exercised (and must stay deterministic).
        #[test]
        fn parallel_gemm_is_deterministic(seed in 0u64..20) {
            let (m, k, n) = (32, 64, 48);
            let mut rng = stream_rng(seed, "gemm-par");
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut c_par = vec![0.0f32; m * n];
            gemm(a.data(), b.data(), &mut c_par, m, k, n);
            let mut c_seq = vec![0.0f32; m * n];
            mmhand_parallel::sequential_scope(|| {
                gemm(a.data(), b.data(), &mut c_seq, m, k, n);
            });
            prop_assert_eq!(&c_par, &c_seq);
        }
    }
}
