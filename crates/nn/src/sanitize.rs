//! NaN/Inf poison detection for the training stack.
//!
//! With the `sanitize-numerics` cargo feature enabled, every tensor written
//! to the autodiff tape, every gradient routed through it, and every
//! gradient accumulated into a [`crate::param::ParamStore`] is scanned for
//! non-finite values; the first poisoned write panics naming the op or
//! parameter it came from, so a NaN is caught where it is *born* rather
//! than three layers later in an optimiser step. Without the feature,
//! [`check_finite`] compiles to a no-op and the release binaries pay
//! nothing.
//!
//! [`dead_params`] is the complementary structural check: after the first
//! backward pass it reports parameters that received no gradient flow at
//! all — usually a detached subgraph or a head that was wired up but never
//! reached by the loss.

use crate::param::ParamStore;

/// Panics if `data` contains a NaN or infinity, naming `context` and the
/// offending element. Compiled to a no-op without `sanitize-numerics`.
#[cfg(feature = "sanitize-numerics")]
pub fn check_finite(context: &str, data: &[f32]) {
    if let Some((i, v)) = data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
        // audit: allow(no_panic) — the sanitizer's whole job is to trap numeric poison at the write site
        panic!("numeric poison in {context}: element {i} is {v}");
    }
}

/// No-op stand-in compiled without the `sanitize-numerics` feature.
#[cfg(not(feature = "sanitize-numerics"))]
#[inline(always)]
pub fn check_finite(_context: &str, _data: &[f32]) {}

/// Names of parameters whose gradient accumulator is identically zero.
///
/// Run after the first backward pass of a fresh step: a parameter that
/// received no gradient at all is usually a detached subgraph (a head
/// that exists in the store but is never reached by the loss). Callers
/// decide whether a hit is expected (e.g. an alternative head disabled by
/// configuration) or a wiring bug.
pub fn dead_params(store: &ParamStore) -> Vec<String> {
    store
        .ids()
        .into_iter()
        // audit: allow(float_eq) — an accumulator no backward rule touched holds exact 0.0
        .filter(|&id| store.grad(id).data().iter().all(|&g| g == 0.0))
        .map(|id| store.name(id).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn dead_params_reports_untouched_parameters() {
        let mut store = ParamStore::new();
        let live = store.add("live", Tensor::zeros(&[2]));
        store.add("dead", Tensor::zeros(&[2]));
        store.accumulate_grad(live, &Tensor::from_vec(&[2], vec![0.5, 0.0]));
        assert_eq!(dead_params(&store), vec!["dead".to_string()]);
    }

    #[cfg(feature = "sanitize-numerics")]
    #[test]
    #[should_panic(expected = "numeric poison in test-buffer: element 1")]
    fn check_finite_traps_nan() {
        check_finite("test-buffer", &[1.0, f32::NAN, 3.0]);
    }

    #[cfg(feature = "sanitize-numerics")]
    #[test]
    #[should_panic(expected = "numeric poison")]
    fn check_finite_traps_infinity() {
        check_finite("test-buffer", &[f32::INFINITY]);
    }

    #[test]
    fn check_finite_accepts_finite_data() {
        check_finite("test-buffer", &[0.0, -1.5, f32::MAX, f32::MIN_POSITIVE]);
    }

    #[cfg(feature = "sanitize-numerics")]
    mod poison_properties {
        use crate::tape::Tape;
        use crate::tensor::Tensor;
        use proptest::prelude::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        proptest! {
            /// Wherever the poison lands in a tensor written to the tape,
            /// the write itself traps — not some later op.
            #[test]
            fn poisoned_tape_write_is_trapped_at_the_write(
                rows in 1usize..5,
                cols in 1usize..9,
                frac in 0.0f64..1.0,
                inf in 0usize..2,
            ) {
                let len = rows * cols;
                let pos = ((len - 1) as f64 * frac) as usize;
                let mut data = vec![0.25f32; len];
                data[pos] = if inf == 1 { f32::INFINITY } else { f32::NAN };
                let trapped = catch_unwind(AssertUnwindSafe(|| {
                    let mut tape = Tape::new();
                    tape.leaf(Tensor::from_vec(&[rows, cols], data.clone()));
                }));
                prop_assert!(trapped.is_err(), "poison at {pos}/{len} was not trapped");
            }

            /// A clean graph never trips the sanitizer.
            #[test]
            fn finite_graphs_pass_the_sanitizer(
                xs in proptest::collection::vec(-100.0f32..100.0, 4usize),
            ) {
                let mut tape = Tape::new();
                let a = tape.leaf(Tensor::from_vec(&[2, 2], xs.clone()));
                let b = tape.mul(a, a);
                let loss = tape.mean_all(b);
                let mut store = crate::param::ParamStore::new();
                tape.backward(loss, &mut store);
            }
        }
    }

    #[cfg(not(feature = "sanitize-numerics"))]
    #[test]
    fn without_the_sanitizer_poison_propagates_silently() {
        use crate::tape::Tape;

        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[1, 2], vec![f32::NAN, 1.0]));
        let y = tape.mul(x, x);
        let loss = tape.mean_all(y);
        assert!(tape.value(loss).data()[0].is_nan());
    }
}
