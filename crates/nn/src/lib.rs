//! # mmhand-nn
//!
//! A small, pure-Rust deep-learning framework — the substrate replacing the
//! paper's PyTorch/GPU training stack. It provides exactly what the mmHand
//! architecture needs:
//!
//! * [`tensor`] — dense row-major `f32` tensors and GEMM kernels,
//! * [`tape`] — define-by-run reverse-mode autodiff over an op set covering
//!   convolutions, the attention pooling/broadcast primitives, LSTM
//!   building blocks and layer norm,
//! * [`conv`] — im2col-based convolution/transposed-convolution kernels,
//! * [`param`] — parameter storage with gradient accumulation and
//!   checkpointing,
//! * [`layers`] — `Linear`, `Conv2d`, `ConvTranspose2d`, `LayerNorm`,
//!   `Lstm`,
//! * [`optim`] — Adam with cosine learning-rate decay (the paper's §VI-A
//!   training configuration).
//!
//! Every differentiable op is verified against finite differences in its
//! module tests.
//!
//! # Examples
//!
//! ```
//! use mmhand_nn::param::ParamStore;
//! use mmhand_nn::tape::Tape;
//! use mmhand_nn::tensor::Tensor;
//!
//! // Minimise (w − 2)² by hand.
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::from_vec(&[1], vec![0.0]));
//! for _ in 0..100 {
//!     store.zero_grad();
//!     let mut tape = Tape::new();
//!     let wv = tape.param(&store, w);
//!     let t = tape.leaf(Tensor::from_vec(&[1], vec![2.0]));
//!     let d = tape.sub(wv, t);
//!     let sq = tape.mul(d, d);
//!     let loss = tape.mean_all(sq);
//!     tape.backward(loss, &mut store);
//!     let g = store.grad(w).data()[0];
//!     store.value_mut(w).data_mut()[0] -= 0.1 * g;
//! }
//! assert!((store.value(w).data()[0] - 2.0).abs() < 0.05);
//! ```

pub mod conv;
pub mod gemm;
pub mod layers;
pub mod optim;
pub mod param;
pub mod quant;
pub mod sanitize;
pub mod shape;
pub mod tape;
pub mod tensor;

pub use conv::ConvSpec;
pub use layers::{Conv2d, ConvTranspose2d, LayerNorm, Linear, Lstm};
pub use optim::{Adam, CosineSchedule};
pub use param::{ParamId, ParamStore};
pub use quant::{Calibrator, QuantizedParamStore};
pub use shape::ShapeError;
pub use tape::{Tape, Var};
pub use tensor::Tensor;
