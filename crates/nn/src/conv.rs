//! Convolution primitives: im2col/col2im and the forward/backward kernels
//! shared by `Conv2d` and `ConvTranspose2d` tape ops.
//!
//! All functions operate on row-major `(N, C, H, W)` buffers. Transposed
//! convolution is implemented through the classic duality: its forward pass
//! is the data-gradient of a convolution and vice versa.

use crate::tensor::{gemm, gemm_a_bt, gemm_at_b, Tensor};
use mmhand_parallel::ScratchPool;

thread_local! {
    /// Per-thread scratch for im2col/col2im column matrices and gradient
    /// partials. Every worker (or the caller, when tasks run inline) reuses
    /// one steady-state buffer per shape across the per-sample loops, and
    /// pooled buffers come back zero-filled — exactly the state the old
    /// `vec![0.0; …]` allocations provided — so results are unchanged.
    static CONV_SCRATCH: ScratchPool<f32> = const { ScratchPool::new("nn.conv") };
}

/// Geometry of a 2-D convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvSpec {
    /// Output spatial size for an input of `h` (or `w`) pixels.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn out_size(&self, h: usize) -> usize {
        let padded = h + 2 * self.pad;
        assert!(padded >= self.kernel, "kernel {} larger than padded input {padded}", self.kernel);
        (padded - self.kernel) / self.stride + 1
    }

    /// Input spatial size a transposed convolution produces from `h` pixels:
    /// `(h − 1)·stride − 2·pad + kernel`.
    pub fn transpose_out_size(&self, h: usize) -> usize {
        (h - 1) * self.stride + self.kernel - 2 * self.pad
    }
}

/// Unfolds one sample `(C, H, W)` into a `(C·k·k, Ho·Wo)` column matrix.
#[allow(clippy::too_many_arguments)] // hot inner kernel; a struct would obscure it
fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &ConvSpec,
    ho: usize,
    wo: usize,
    cols: &mut [f32],
) {
    let k = spec.kernel;
    debug_assert_eq!(cols.len(), c * k * k * ho * wo);
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ((ch * k + ky) * k + kx) * (ho * wo);
                for oy in 0..ho {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    for ox in 0..wo {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            x[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        cols[row + oy * wo + ox] = v;
                    }
                }
            }
        }
    }
}

/// Folds a `(C·k·k, Ho·Wo)` column matrix back into `(C, H, W)`,
/// accumulating overlapping contributions.
#[allow(clippy::too_many_arguments)] // hot inner kernel; a struct would obscure it
fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &ConvSpec,
    ho: usize,
    wo: usize,
    x: &mut [f32],
) {
    let k = spec.kernel;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ((ch * k + ky) * k + kx) * (ho * wo);
                for oy in 0..ho {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        x[(ch * h + iy as usize) * w + ix as usize] +=
                            cols[row + oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// Convolution forward pass.
///
/// `x` is `(N, C, H, W)`, `weight` `(O, C, k, k)`, `bias` length `O` (or
/// empty for no bias). Returns `(N, O, Ho, Wo)`.
pub fn conv2d_forward(x: &Tensor, weight: &Tensor, bias: &[f32], spec: &ConvSpec) -> Tensor {
    let [n, c, h, w] = dims4(x);
    assert_eq!(c, spec.in_channels, "input channels");
    let (o, k) = (spec.out_channels, spec.kernel);
    assert_eq!(weight.shape(), &[o, c, k, k], "weight shape");
    let (ho, wo) = (spec.out_size(h), spec.out_size(w));
    let mut out = Tensor::zeros(&[n, o, ho, wo]);
    let x_data = x.data();
    // One task per batch sample; each owns its output slice and scratch
    // column buffer, so samples are fully independent.
    mmhand_parallel::par_chunks_mut(out.data_mut(), o * ho * wo, |s, out_s| {
        CONV_SCRATCH.with(|pool| {
            pool.with(c * k * k * ho * wo, |cols| {
                let xs = &x_data[s * c * h * w..(s + 1) * c * h * w];
                im2col(xs, c, h, w, spec, ho, wo, cols);
                gemm(weight.data(), cols, out_s, o, c * k * k, ho * wo);
            });
        });
        if !bias.is_empty() {
            for (oc, &b) in bias.iter().enumerate() {
                for v in &mut out_s[oc * ho * wo..(oc + 1) * ho * wo] {
                    *v += b;
                }
            }
        }
    });
    out
}

/// Convolution backward pass.
///
/// Returns `(dx, dweight, dbias)` for upstream gradient `dy`
/// of shape `(N, O, Ho, Wo)`.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    spec: &ConvSpec,
) -> (Tensor, Tensor, Vec<f32>) {
    let [n, c, h, w] = dims4(x);
    let (o, k) = (spec.out_channels, spec.kernel);
    let (ho, wo) = (spec.out_size(h), spec.out_size(w));
    assert_eq!(dy.shape(), &[n, o, ho, wo], "dy shape");

    let mut dx = Tensor::zeros(&[n, c, h, w]);
    let mut dw = Tensor::zeros(&[o, c, k, k]);
    // audit: pool-exempt — owned return value
    let mut db = vec![0.0_f32; o];

    // Each sample task owns its dx slice plus a private dW/db partial
    // stripe of one pooled buffer; partials are reduced on the caller in
    // ascending sample order, which reproduces the sequential accumulation
    // order exactly. Column scratch comes from the per-thread pool, so the
    // per-sample loop reuses one steady-state im2col buffer per worker
    // instead of allocating inside every task.
    let stripe = o * c * k * k + o;
    let x_data = x.data();
    let dy_data = dy.data();
    CONV_SCRATCH.with(|pool| {
        pool.with(n * stripe, |partials| {
            mmhand_parallel::scope(|sc| {
                for (s, (dxs, part)) in dx
                    .data_mut()
                    .chunks_mut(c * h * w)
                    .zip(partials.chunks_mut(stripe))
                    .enumerate()
                {
                    sc.spawn(move || {
                        let (dw_part, db_part) = part.split_at_mut(o * c * k * k);
                        let xs = &x_data[s * c * h * w..(s + 1) * c * h * w];
                        let dys = &dy_data[s * o * ho * wo..(s + 1) * o * ho * wo];
                        CONV_SCRATCH.with(|pool| {
                            pool.with(c * k * k * ho * wo, |cols| {
                                im2col(xs, c, h, w, spec, ho, wo, cols);
                                // dW_s = dY_s · colsᵀ  — (o, hw)·(hw, ckk)
                                gemm_a_bt(dys, cols, dw_part, o, ho * wo, c * k * k);
                            });
                            // dcols = Wᵀ · dY_s — (ckk, o)·(o, hw)
                            pool.with(c * k * k * ho * wo, |dcols| {
                                gemm_at_b(weight.data(), dys, dcols, c * k * k, o, ho * wo);
                                col2im(dcols, c, h, w, spec, ho, wo, dxs);
                            });
                        });
                        for oc in 0..o {
                            db_part[oc] +=
                                dys[oc * ho * wo..(oc + 1) * ho * wo].iter().sum::<f32>();
                        }
                    });
                }
            });
            for part in partials.chunks(stripe) {
                let (dw_part, db_part) = part.split_at(o * c * k * k);
                for (acc, v) in dw.data_mut().iter_mut().zip(dw_part) {
                    *acc += v;
                }
                for (acc, v) in db.iter_mut().zip(db_part) {
                    *acc += v;
                }
            }
        });
    });
    (dx, dw, db)
}

/// Transposed-convolution forward pass.
///
/// `x` is `(N, C_in, H, W)`; `weight` is `(C_in, C_out, k, k)` (the PyTorch
/// `ConvTranspose2d` layout); output is `(N, C_out, Ho, Wo)` with
/// `Ho = (H−1)·stride + k − 2·pad`. `spec.in_channels`/`out_channels` refer
/// to the *transposed* op's input/output.
pub fn conv_transpose2d_forward(
    x: &Tensor,
    weight: &Tensor,
    bias: &[f32],
    spec: &ConvSpec,
) -> Tensor {
    let [n, c_in, h, w] = dims4(x);
    assert_eq!(c_in, spec.in_channels, "input channels");
    let c_out = spec.out_channels;
    let k = spec.kernel;
    assert_eq!(weight.shape(), &[c_in, c_out, k, k], "weight shape");
    let (ho, wo) = (spec.transpose_out_size(h), spec.transpose_out_size(w));
    // Duality: convT forward == data-gradient of a conv mapping
    // (c_out → c_in) evaluated at dy = x.
    let dual = ConvSpec {
        in_channels: c_out,
        out_channels: c_in,
        kernel: k,
        stride: spec.stride,
        pad: spec.pad,
    };
    let mut out = Tensor::zeros(&[n, c_out, ho, wo]);
    let x_data = x.data();
    mmhand_parallel::par_chunks_mut(out.data_mut(), c_out * ho * wo, |s, out_s| {
        let xs = &x_data[s * c_in * h * w..(s + 1) * c_in * h * w];
        // dcols = Wᵀ·x with W viewed as (c_in, c_out·k·k).
        CONV_SCRATCH.with(|pool| {
            pool.with(c_out * k * k * h * w, |dcols| {
                gemm_at_b(weight.data(), xs, dcols, c_out * k * k, c_in, h * w);
                col2im(dcols, c_out, ho, wo, &dual, h, w, out_s);
            });
        });
        if !bias.is_empty() {
            for (oc, &b) in bias.iter().enumerate() {
                for v in &mut out_s[oc * ho * wo..(oc + 1) * ho * wo] {
                    *v += b;
                }
            }
        }
    });
    out
}

/// Transposed-convolution backward pass; returns `(dx, dweight, dbias)`.
pub fn conv_transpose2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    spec: &ConvSpec,
) -> (Tensor, Tensor, Vec<f32>) {
    let [n, c_in, h, w] = dims4(x);
    let c_out = spec.out_channels;
    let k = spec.kernel;
    let (ho, wo) = (spec.transpose_out_size(h), spec.transpose_out_size(w));
    assert_eq!(dy.shape(), &[n, c_out, ho, wo], "dy shape");
    let dual = ConvSpec {
        in_channels: c_out,
        out_channels: c_in,
        kernel: k,
        stride: spec.stride,
        pad: spec.pad,
    };

    let mut dx = Tensor::zeros(&[n, c_in, h, w]);
    let mut dw = Tensor::zeros(&[c_in, c_out, k, k]);
    // audit: pool-exempt — owned return value
    let mut db = vec![0.0_f32; c_out];

    // Same shape as conv2d_backward: per-sample tasks with private dW/db
    // partial stripes of one pooled buffer, reduced in ascending sample
    // order for determinism; column scratch from the per-thread pool.
    let stripe = c_in * c_out * k * k + c_out;
    let x_data = x.data();
    let dy_data = dy.data();
    CONV_SCRATCH.with(|pool| {
        pool.with(n * stripe, |partials| {
            mmhand_parallel::scope(|sc| {
                for (s, (dxs, part)) in dx
                    .data_mut()
                    .chunks_mut(c_in * h * w)
                    .zip(partials.chunks_mut(stripe))
                    .enumerate()
                {
                    sc.spawn(move || {
                        let (dw_part, db_part) = part.split_at_mut(c_in * c_out * k * k);
                        let dys = &dy_data[s * c_out * ho * wo..(s + 1) * c_out * ho * wo];
                        let xs = &x_data[s * c_in * h * w..(s + 1) * c_in * h * w];
                        // dx = conv_forward(dy) with the dual spec and weight
                        // (c_in, c_out·k·k).
                        CONV_SCRATCH.with(|pool| {
                            pool.with(c_out * k * k * h * w, |cols| {
                                im2col(dys, c_out, ho, wo, &dual, h, w, cols);
                                gemm(weight.data(), cols, dxs, c_in, c_out * k * k, h * w);
                                // dW_s = xs · colsᵀ  — (c_in, hw)·(hw, c_out·k·k).
                                gemm_a_bt(xs, cols, dw_part, c_in, h * w, c_out * k * k);
                            });
                        });
                        for oc in 0..c_out {
                            db_part[oc] +=
                                dys[oc * ho * wo..(oc + 1) * ho * wo].iter().sum::<f32>();
                        }
                    });
                }
            });
            for part in partials.chunks(stripe) {
                let (dw_part, db_part) = part.split_at(c_in * c_out * k * k);
                for (acc, v) in dw.data_mut().iter_mut().zip(dw_part) {
                    *acc += v;
                }
                for (acc, v) in db.iter_mut().zip(db_part) {
                    *acc += v;
                }
            }
        });
    });
    (dx, dw, db)
}

/// Extracts the 4 dimensions of an `(N, C, H, W)` tensor.
///
/// # Panics
///
/// Panics unless the tensor is 4-D.
pub fn dims4(x: &Tensor) -> [usize; 4] {
    let s = x.shape();
    assert_eq!(s.len(), 4, "expected 4-D tensor, got {s:?}");
    [s[0], s[1], s[2], s[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{gemm_a_bt_naive, gemm_at_b_naive, gemm_naive};
    use mmhand_math::rng::stream_rng;
    use proptest::prelude::*;

    fn finite_diff_conv(
        x: &Tensor,
        w: &Tensor,
        b: &[f32],
        spec: &ConvSpec,
        loss: impl Fn(&Tensor) -> f32,
        wrt_x: bool,
        idx: usize,
    ) -> f32 {
        let eps = 1e-2;
        let eval = |xp: &Tensor, wp: &Tensor| loss(&conv2d_forward(xp, wp, b, spec));
        if wrt_x {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            (eval(&xp, w) - eval(&xm, w)) / (2.0 * eps)
        } else {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            (eval(x, &wp) - eval(x, &wm)) / (2.0 * eps)
        }
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        // 1×1 kernel of value 1 with a single channel is identity.
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 1, stride: 1, pad: 0 };
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let y = conv2d_forward(&x, &w, &[], &spec);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_values_with_padding() {
        // 3×3 averaging kernel over a 3×3 input of ones, pad 1:
        // centre sees 9 ones, corners see 4.
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, pad: 1 };
        let x = Tensor::full(&[1, 1, 3, 3], 1.0);
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv2d_forward(&x, &w, &[], &spec);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.data()[4], 9.0);
        assert_eq!(y.data()[0], 4.0);
        assert_eq!(y.data()[1], 6.0);
    }

    #[test]
    fn conv_stride_two_halves_spatial_size() {
        let spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, pad: 1 };
        let mut rng = stream_rng(1, "c");
        let x = Tensor::randn(&[2, 2, 16, 16], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.1, &mut rng);
        let y = conv2d_forward(&x, &w, &[0.5, -0.5, 0.0], &spec);
        assert_eq!(y.shape(), &[2, 3, 8, 8]);
    }

    #[test]
    fn bias_shifts_every_output() {
        let spec = ConvSpec { in_channels: 1, out_channels: 1, kernel: 1, stride: 1, pad: 0 };
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let y = conv2d_forward(&x, &w, &[2.5], &spec);
        assert!(y.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let spec = ConvSpec { in_channels: 2, out_channels: 2, kernel: 3, stride: 2, pad: 1 };
        let mut rng = stream_rng(2, "g");
        let x = Tensor::randn(&[1, 2, 6, 6], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.5, &mut rng);
        let b = vec![0.1, -0.2];
        let y = conv2d_forward(&x, &w, &b, &spec);
        // Loss = sum(y²)/2 so dy = y.
        let (dx, dw, db) = conv2d_backward(&x, &w, &y, &spec);
        let loss = |y: &Tensor| 0.5 * y.data().iter().map(|v| v * v).sum::<f32>();
        for idx in [0usize, 7, 35, 71] {
            let num = finite_diff_conv(&x, &w, &b, &spec, loss, true, idx);
            assert!(
                (dx.data()[idx] - num).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{idx}] {} vs {num}",
                dx.data()[idx]
            );
        }
        for idx in [0usize, 5, 17, 35] {
            let num = finite_diff_conv(&x, &w, &b, &spec, loss, false, idx);
            assert!(
                (dw.data()[idx] - num).abs() < 2e-2 * (1.0 + num.abs()),
                "dw[{idx}] {} vs {num}",
                dw.data()[idx]
            );
        }
        // Bias gradient equals the sum of dy per channel.
        let hw = y.shape()[2] * y.shape()[3];
        let expect_db0: f32 = y.data()[..hw].iter().sum();
        assert!((db[0] - expect_db0).abs() < 1e-3);
    }

    #[test]
    fn transpose_conv_upsamples() {
        let spec = ConvSpec { in_channels: 3, out_channels: 2, kernel: 4, stride: 2, pad: 1 };
        let mut rng = stream_rng(3, "t");
        let x = Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 4, 4], 0.1, &mut rng);
        let y = conv_transpose2d_forward(&x, &w, &[], &spec);
        assert_eq!(y.shape(), &[1, 2, 16, 16]);
    }

    #[test]
    fn transpose_conv_is_adjoint_of_conv() {
        // <conv(x), y> == <x, convT(y)> when they share a weight.
        let mut rng = stream_rng(4, "adj");
        // 7×7 round-trips exactly under k = 3, s = 2, p = 1:
        // (7+2−3)/2+1 = 4 and (4−1)·2+3−2 = 7.
        let conv_spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, pad: 1 };
        let x = Tensor::randn(&[1, 2, 7, 7], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.3, &mut rng);
        let cx = conv2d_forward(&x, &w, &[], &conv_spec);
        let y = Tensor::randn(cx.shape(), 1.0, &mut rng);
        // convT with the dual layout: weight (3, 2, k, k) viewed as
        // (c_in=3 → c_out=2).
        let t_spec = ConvSpec { in_channels: 3, out_channels: 2, kernel: 3, stride: 2, pad: 1 };
        let ty = conv_transpose2d_forward(&y, &w, &[], &t_spec);
        let lhs: f32 = cx.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(ty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn transpose_conv_gradients_match_finite_differences() {
        let spec = ConvSpec { in_channels: 2, out_channels: 2, kernel: 4, stride: 2, pad: 1 };
        let mut rng = stream_rng(5, "tg");
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 2, 4, 4], 0.3, &mut rng);
        let y = conv_transpose2d_forward(&x, &w, &[], &spec);
        let (dx, dw, _db) = conv_transpose2d_backward(&x, &w, &y, &spec);
        let eps = 1e-2;
        let loss =
            |t: &Tensor| 0.5 * t.data().iter().map(|v| v * v).sum::<f32>();
        for idx in [0usize, 9, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&conv_transpose2d_forward(&xp, &w, &[], &spec))
                - loss(&conv_transpose2d_forward(&xm, &w, &[], &spec)))
                / (2.0 * eps);
            assert!(
                (dx.data()[idx] - num).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{idx}] {} vs {num}",
                dx.data()[idx]
            );
        }
        for idx in [0usize, 15, 40] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&conv_transpose2d_forward(&x, &wp, &[], &spec))
                - loss(&conv_transpose2d_forward(&x, &wm, &[], &spec)))
                / (2.0 * eps);
            assert!(
                (dw.data()[idx] - num).abs() < 3e-2 * (1.0 + num.abs()),
                "dw[{idx}] {} vs {num}",
                dw.data()[idx]
            );
        }
    }

    #[test]
    fn out_size_formulas() {
        let s = ConvSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 2, pad: 1 };
        assert_eq!(s.out_size(16), 8);
        let t = ConvSpec { in_channels: 1, out_channels: 1, kernel: 4, stride: 2, pad: 1 };
        assert_eq!(t.transpose_out_size(8), 16);
        // Round trip: down then up restores 16.
    }

    /// The pre-pool forward pass: sequential per-sample loop with fresh
    /// `vec!` scratch and naive GEMM — the allocating reference the pooled
    /// path must match bit for bit.
    fn conv2d_forward_alloc(x: &Tensor, weight: &Tensor, bias: &[f32], spec: &ConvSpec) -> Tensor {
        let [n, c, h, w] = dims4(x);
        let (o, k) = (spec.out_channels, spec.kernel);
        let (ho, wo) = (spec.out_size(h), spec.out_size(w));
        let mut out = Tensor::zeros(&[n, o, ho, wo]);
        for (s, out_s) in out.data_mut().chunks_mut(o * ho * wo).enumerate() {
            let mut cols = vec![0.0_f32; c * k * k * ho * wo];
            let xs = &x.data()[s * c * h * w..(s + 1) * c * h * w];
            im2col(xs, c, h, w, spec, ho, wo, &mut cols);
            gemm_naive(weight.data(), &cols, out_s, o, c * k * k, ho * wo);
            if !bias.is_empty() {
                for (oc, &b) in bias.iter().enumerate() {
                    for v in &mut out_s[oc * ho * wo..(oc + 1) * ho * wo] {
                        *v += b;
                    }
                }
            }
        }
        out
    }

    /// The pre-pool backward pass (fresh allocations, naive GEMMs,
    /// sequential ascending-sample reduction).
    fn conv2d_backward_alloc(
        x: &Tensor,
        weight: &Tensor,
        dy: &Tensor,
        spec: &ConvSpec,
    ) -> (Tensor, Tensor, Vec<f32>) {
        let [n, c, h, w] = dims4(x);
        let (o, k) = (spec.out_channels, spec.kernel);
        let (ho, wo) = (spec.out_size(h), spec.out_size(w));
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let mut dw = Tensor::zeros(&[o, c, k, k]);
        let mut db = vec![0.0_f32; o];
        for (s, dxs) in dx.data_mut().chunks_mut(c * h * w).enumerate() {
            let xs = &x.data()[s * c * h * w..(s + 1) * c * h * w];
            let dys = &dy.data()[s * o * ho * wo..(s + 1) * o * ho * wo];
            let mut cols = vec![0.0_f32; c * k * k * ho * wo];
            im2col(xs, c, h, w, spec, ho, wo, &mut cols);
            gemm_a_bt_naive(dys, &cols, dw.data_mut(), o, ho * wo, c * k * k);
            let mut dcols = vec![0.0_f32; c * k * k * ho * wo];
            gemm_at_b_naive(weight.data(), dys, &mut dcols, c * k * k, o, ho * wo);
            col2im(&dcols, c, h, w, spec, ho, wo, dxs);
            for oc in 0..o {
                db[oc] += dys[oc * ho * wo..(oc + 1) * ho * wo].iter().sum::<f32>();
            }
        }
        (dx, dw, db)
    }

    proptest! {
        // Pooled-scratch conv vs the allocating reference, bitwise, over
        // random shapes — run twice so the second pass exercises buffer
        // *reuse*, not just first-checkout allocation. The same suite runs
        // under both `sanitize-numerics` feature states in CI.
        #[test]
        fn pooled_conv_forward_is_bitwise_identical_to_allocating_path(
            n in 1usize..3, c in 1usize..4, o in 1usize..6,
            hw in 3usize..9, k in 1usize..4, stride in 1usize..3,
            seed in 0u64..200,
        ) {
            let pad = k / 2;
            let spec = ConvSpec { in_channels: c, out_channels: o, kernel: k, stride, pad };
            let mut rng = stream_rng(seed, "pconv");
            let x = Tensor::randn(&[n, c, hw, hw], 1.0, &mut rng);
            let w = Tensor::randn(&[o, c, k, k], 0.5, &mut rng);
            let bias: Vec<f32> = (0..o).map(|i| i as f32 * 0.1 - 0.2).collect();
            let reference = conv2d_forward_alloc(&x, &w, &bias, &spec);
            for pass in 0..2 {
                let pooled = conv2d_forward(&x, &w, &bias, &spec);
                prop_assert_eq!(pooled.data(), reference.data(), "pass {}", pass);
            }
        }

        #[test]
        fn pooled_conv_backward_is_bitwise_identical_to_allocating_path(
            n in 1usize..3, c in 1usize..4, o in 1usize..5,
            hw in 3usize..8, k in 1usize..4,
            seed in 0u64..200,
        ) {
            let pad = k / 2;
            let spec = ConvSpec { in_channels: c, out_channels: o, kernel: k, stride: 1, pad };
            let mut rng = stream_rng(seed, "pconvb");
            let x = Tensor::randn(&[n, c, hw, hw], 1.0, &mut rng);
            let w = Tensor::randn(&[o, c, k, k], 0.5, &mut rng);
            let y = conv2d_forward(&x, &w, &[], &spec);
            let (dx_ref, dw_ref, db_ref) = conv2d_backward_alloc(&x, &w, &y, &spec);
            for pass in 0..2 {
                let (dx, dw, db) = conv2d_backward(&x, &w, &y, &spec);
                prop_assert_eq!(dx.data(), dx_ref.data(), "dx pass {}", pass);
                prop_assert_eq!(dw.data(), dw_ref.data(), "dw pass {}", pass);
                prop_assert_eq!(&db, &db_ref, "db pass {}", pass);
            }
        }
    }
}
