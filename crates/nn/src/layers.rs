//! Layer building blocks: parameter containers with `forward` methods that
//! record onto a [`Tape`].
//!
//! Layers own [`ParamId`] handles into a shared [`ParamStore`]; the same
//! layer can therefore run on many tapes (one per training step) without
//! copying weights around.

use crate::conv::ConvSpec;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// Fully connected layer `y = x·W + b`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
}

impl Linear {
    /// Creates a layer with He-style initialisation.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        let w = store.add(
            &format!("{name}.w"),
            Tensor::randn(&[in_features, out_features], std, rng),
        );
        let b = store.add(&format!("{name}.b"), Tensor::zeros(&[out_features]));
        Linear { w, b, in_features, out_features }
    }

    /// Applies the layer to an `(N, in)` input.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let y = tape.matmul(x, w);
        tape.add_row_bias(y, b)
    }

    /// Handle of the weight parameter.
    pub fn weight_id(&self) -> ParamId {
        self.w
    }

    /// Handle of the bias parameter (useful for output-bias initialisation).
    pub fn bias_id(&self) -> ParamId {
        self.b
    }
}

/// 2-D convolution layer.
#[derive(Clone, Copy, Debug)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    /// Geometry of the convolution.
    pub spec: ConvSpec,
}

impl Conv2d {
    /// Creates a layer with He-style initialisation.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        spec: ConvSpec,
        rng: &mut R,
    ) -> Self {
        let fan_in = spec.in_channels * spec.kernel * spec.kernel;
        let std = (2.0 / fan_in as f32).sqrt();
        let w = store.add(
            &format!("{name}.w"),
            Tensor::randn(
                &[spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
                std,
                rng,
            ),
        );
        let b = store.add(&format!("{name}.b"), Tensor::zeros(&[spec.out_channels]));
        Conv2d { w, b, spec }
    }

    /// Applies the convolution to an `(N, C, H, W)` input.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.conv2d(x, w, Some(b), self.spec)
    }
}

/// 2-D transposed-convolution (deconvolution) layer.
#[derive(Clone, Copy, Debug)]
pub struct ConvTranspose2d {
    w: ParamId,
    b: ParamId,
    /// Geometry; `in_channels`/`out_channels` refer to this layer's
    /// input/output.
    pub spec: ConvSpec,
}

impl ConvTranspose2d {
    /// Creates a layer with He-style initialisation.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        spec: ConvSpec,
        rng: &mut R,
    ) -> Self {
        let fan_in = spec.in_channels * spec.kernel * spec.kernel;
        let std = (2.0 / fan_in as f32).sqrt();
        let w = store.add(
            &format!("{name}.w"),
            Tensor::randn(
                &[spec.in_channels, spec.out_channels, spec.kernel, spec.kernel],
                std,
                rng,
            ),
        );
        let b = store.add(&format!("{name}.b"), Tensor::zeros(&[spec.out_channels]));
        ConvTranspose2d { w, b, spec }
    }

    /// Applies the transposed convolution to an `(N, C, H, W)` input.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.conv_transpose2d(x, w, Some(b), self.spec)
    }
}

/// Layer normalisation with learned affine parameters.
#[derive(Clone, Copy, Debug)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    /// Normalised (last-dimension) feature count.
    pub features: usize,
}

impl LayerNorm {
    /// Creates a layer with γ = 1, β = 0.
    pub fn new(store: &mut ParamStore, name: &str, features: usize) -> Self {
        let gamma = store.add(&format!("{name}.gamma"), Tensor::full(&[features], 1.0));
        let beta = store.add(&format!("{name}.beta"), Tensor::zeros(&[features]));
        LayerNorm { gamma, beta, features }
    }

    /// Normalises the last dimension of `x`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let gamma = tape.param(store, self.gamma);
        let beta = tape.param(store, self.beta);
        tape.layer_norm(x, gamma, beta)
    }
}

/// A single-layer LSTM, the temporal model of the paper's hand-joint
/// regression (§IV-A, "Extracting Temporal Features based on LSTM").
///
/// Gates follow the standard formulation; the input/hidden projections are
/// fused into `(in+hidden, 4·hidden)` weight matrices ordered `[i, f, g, o]`.
#[derive(Clone, Copy, Debug)]
pub struct Lstm {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    /// Input feature count.
    pub in_features: usize,
    /// Hidden-state size.
    pub hidden: usize,
}

impl Lstm {
    /// Creates an LSTM with Xavier-style initialisation and forget-gate
    /// bias 1 (a standard trick for gradient flow).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let std_x = (1.0 / in_features as f32).sqrt();
        let std_h = (1.0 / hidden as f32).sqrt();
        let wx = store.add(
            &format!("{name}.wx"),
            Tensor::randn(&[in_features, 4 * hidden], std_x, rng),
        );
        let wh = store.add(
            &format!("{name}.wh"),
            Tensor::randn(&[hidden, 4 * hidden], std_h, rng),
        );
        let mut bias = Tensor::zeros(&[4 * hidden]);
        for i in hidden..2 * hidden {
            bias.data_mut()[i] = 1.0;
        }
        let b = store.add(&format!("{name}.b"), bias);
        Lstm { wx, wh, b, in_features, hidden }
    }

    /// Runs the LSTM over a sequence of `(N, in)` inputs, returning the
    /// hidden state after each step.
    pub fn forward_sequence(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        inputs: &[Var],
    ) -> Vec<Var> {
        assert!(!inputs.is_empty(), "LSTM needs at least one step");
        let n = tape.value(inputs[0]).shape()[0];
        let h0 = tape.leaf(Tensor::zeros(&[n, self.hidden]));
        let c0 = tape.leaf(Tensor::zeros(&[n, self.hidden]));
        let wx = tape.param(store, self.wx);
        let wh = tape.param(store, self.wh);
        let b = tape.param(store, self.b);

        let mut h = h0;
        let mut c = c0;
        let mut outputs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            (h, c) = self.step_with(tape, x, h, c, (wx, wh, b));
            outputs.push(h);
        }
        outputs
    }

    /// Advances the LSTM by one step from explicit `(h, c)` state, returning
    /// the new `(h, c)`.
    ///
    /// The op sequence is identical to one iteration of
    /// [`forward_sequence`](Self::forward_sequence), so stepping a stream
    /// frame-by-frame from zero state reproduces the whole-sequence forward
    /// bitwise.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        h: Var,
        c: Var,
    ) -> (Var, Var) {
        let wx = tape.param(store, self.wx);
        let wh = tape.param(store, self.wh);
        let b = tape.param(store, self.b);
        self.step_with(tape, x, h, c, (wx, wh, b))
    }

    fn step_with(
        &self,
        tape: &mut Tape,
        x: Var,
        h: Var,
        c: Var,
        (wx, wh, b): (Var, Var, Var),
    ) -> (Var, Var) {
        let zx = tape.matmul(x, wx);
        let zh = tape.matmul(h, wh);
        let z0 = tape.add(zx, zh);
        let z = tape.add_row_bias(z0, b);
        let hsz = self.hidden;
        let i_raw = tape.slice_cols(z, 0, hsz);
        let f_raw = tape.slice_cols(z, hsz, hsz);
        let g_raw = tape.slice_cols(z, 2 * hsz, hsz);
        let o_raw = tape.slice_cols(z, 3 * hsz, hsz);
        let i = tape.sigmoid(i_raw);
        let f = tape.sigmoid(f_raw);
        let g = tape.tanh(g_raw);
        let o = tape.sigmoid(o_raw);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_new = tape.add(fc, ig);
        let ct = tape.tanh(c_new);
        let h_new = tape.mul(o, ct);
        (h_new, c_new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use mmhand_math::rng::stream_rng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = stream_rng(1, "l");
        let lin = Linear::new(&mut store, "fc", 4, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[2, 4]));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), &[2, 3]);
        // Zero input → output equals bias (zeros initially).
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv_layers_compose_hourglass_shapes() {
        // stride-2 conv then stride-2 deconv restores 16×16 — the shape
        // contract of the paper's hourglass branch.
        let mut store = ParamStore::new();
        let mut rng = stream_rng(2, "c");
        let down = Conv2d::new(
            &mut store,
            "down",
            ConvSpec { in_channels: 4, out_channels: 8, kernel: 3, stride: 2, pad: 1 },
            &mut rng,
        );
        let up = ConvTranspose2d::new(
            &mut store,
            "up",
            ConvSpec { in_channels: 8, out_channels: 4, kernel: 4, stride: 2, pad: 1 },
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 4, 16, 16], 1.0, &mut rng));
        let mid = down.forward(&mut tape, &store, x);
        assert_eq!(tape.value(mid).shape(), &[1, 8, 8, 8]);
        let out = up.forward(&mut tape, &store, mid);
        assert_eq!(tape.value(out).shape(), &[1, 4, 16, 16]);
    }

    #[test]
    fn layer_norm_learns_affine() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]));
        let y = ln.forward(&mut tape, &store, x);
        let mean: f32 = tape.value(y).data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn lstm_shapes_and_state_propagation() {
        let mut store = ParamStore::new();
        let mut rng = stream_rng(3, "s");
        let lstm = Lstm::new(&mut store, "lstm", 6, 5, &mut rng);
        let mut tape = Tape::new();
        let xs: Vec<Var> = (0..3)
            .map(|_| tape.leaf(Tensor::randn(&[2, 6], 1.0, &mut rng)))
            .collect();
        let hs = lstm.forward_sequence(&mut tape, &store, &xs);
        assert_eq!(hs.len(), 3);
        for h in &hs {
            assert_eq!(tape.value(*h).shape(), &[2, 5]);
        }
        // Hidden states must evolve step to step.
        let h0 = tape.value(hs[0]).clone();
        let h2 = tape.value(hs[2]).clone();
        assert!(h0.sub(&h2).data().iter().any(|&d| d.abs() > 1e-4));
    }

    #[test]
    fn lstm_step_reproduces_forward_sequence_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = stream_rng(11, "step");
        let lstm = Lstm::new(&mut store, "lstm", 6, 5, &mut rng);
        let seq: Vec<Tensor> =
            (0..4).map(|_| Tensor::randn(&[3, 6], 1.0, &mut rng)).collect();

        let mut tape = Tape::new();
        let xs: Vec<Var> = seq.iter().map(|t| tape.leaf(t.clone())).collect();
        let whole: Vec<Tensor> =
            lstm.forward_sequence(&mut tape, &store, &xs).iter().map(|&h| tape.value(h).clone()).collect();

        // Re-run step-by-step on fresh tapes, carrying state as tensors.
        let mut h_state = Tensor::zeros(&[3, 5]);
        let mut c_state = Tensor::zeros(&[3, 5]);
        for (k, x) in seq.iter().enumerate() {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let hv = t.leaf(h_state.clone());
            let cv = t.leaf(c_state.clone());
            let (h_new, c_new) = lstm.step(&mut t, &store, xv, hv, cv);
            h_state = t.value(h_new).clone();
            c_state = t.value(c_new).clone();
            assert_eq!(h_state.data(), whole[k].data(), "step {k} diverged");
        }
    }

    #[test]
    fn lstm_learns_sequence_sum_sign() {
        // Tiny task: predict the mean of a 3-step scalar sequence. Checks
        // end-to-end gradient flow through time.
        let mut store = ParamStore::new();
        let mut rng = stream_rng(4, "t");
        let lstm = Lstm::new(&mut store, "lstm", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, &mut rng);
        let mut adam = Adam::new(0.02);
        let mut final_loss = f32::INFINITY;
        for step in 0..150 {
            store.zero_grad();
            let mut tape = Tape::new();
            // Deterministic mini-dataset regenerated per step.
            let mut data_rng = stream_rng(step as u64 % 10, "data");
            let seq: Vec<Tensor> =
                (0..3).map(|_| Tensor::randn(&[4, 1], 1.0, &mut data_rng)).collect();
            let mut target = Tensor::zeros(&[4, 1]);
            for s in &seq {
                target.add_assign(s);
            }
            let target = target.scale(1.0 / 3.0);
            let xs: Vec<Var> = seq.into_iter().map(|t| tape.leaf(t)).collect();
            let hs = lstm.forward_sequence(&mut tape, &store, &xs);
            let y = head.forward(&mut tape, &store, *hs.last().unwrap());
            let t = tape.leaf(target);
            let d = tape.sub(y, t);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
            final_loss = tape.value(loss).data()[0];
        }
        assert!(final_loss < 0.05, "LSTM failed to learn: loss {final_loss}");
    }

    #[test]
    fn conv_layer_trains_to_detect_pattern() {
        // A 1-channel conv should learn to amplify a fixed template.
        let mut store = ParamStore::new();
        let mut rng = stream_rng(5, "p");
        let conv = Conv2d::new(
            &mut store,
            "c",
            ConvSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, pad: 1 },
            &mut rng,
        );
        let template = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let mut adam = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            store.zero_grad();
            let mut tape = Tape::new();
            let x = tape.leaf(template.clone());
            let y = conv.forward(&mut tape, &store, x);
            // Target: reproduce the input (learn an identity-ish kernel).
            let t = tape.leaf(template.clone());
            let d = tape.sub(y, t);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut store);
            adam.step(&mut store);
            last = tape.value(loss).data()[0];
        }
        assert!(last < 0.01, "conv failed to fit: {last}");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_sequence_panics() {
        let mut store = ParamStore::new();
        let mut rng = stream_rng(6, "e");
        let lstm = Lstm::new(&mut store, "lstm", 2, 2, &mut rng);
        let mut tape = Tape::new();
        lstm.forward_sequence(&mut tape, &store, &[]);
    }
}
