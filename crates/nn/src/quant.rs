//! Post-training int8 quantization of matmul parameters.
//!
//! The inference-only counterpart of [`crate::param::ParamStore`]:
//! a [`QuantizedParamStore`] holds, for every parameter that appears as
//! the right-hand side of a [`crate::tape::Tape`] matmul (the `Linear`
//! weights and the LSTM input/recurrent kernels — never biases or conv
//! filters), a transposed int8 copy of the weights plus the scales needed
//! to run the product as `i8×i8→i32` and dequantize the output.
//!
//! # Scheme
//!
//! * **Weights** — per-output-channel symmetric scales: column `o` of a
//!   `(k, n)` weight gets `sw[o] = absmax(col o) / 127`, and the column is
//!   stored transposed (`(n, k)` row-major) so each output's dot product
//!   reads contiguous i8.
//! * **Activations** — one per-tensor symmetric scale from calibration:
//!   `sx = p99.9(|x|) / 127` over every activation the parameter saw during
//!   the calibration pass. Using the 99.9th percentile instead of the max
//!   trades the extreme tail (counted by `quant.calibration.clips`) for
//!   resolution over the bulk of the distribution.
//! * **Accumulation** — exact `i32`: `i8×i8` products are ≤ 127² = 16129,
//!   so tens of thousands of k-steps fit without overflow. Exactness is
//!   what makes the int8 path deterministic across kernel backends and
//!   batch shapes — integer addition is associative.
//! * **Dequantization** — at the matmul output: `y[o] = acc[o] · sx·sw[o]`,
//!   with the combined scale precomputed per channel. Everything downstream
//!   (biases, gates, the regression and mesh heads) stays f32.
//!
//! Activations that land outside ±127 at inference time are clamped and
//! counted in `quant.saturations`.
//!
//! Training never touches this module: quantization is computed once from
//! a trained store ([`Calibrator::finish`]) and consumed by inference tapes
//! built with [`crate::tape::Tape::with_quantized`].

use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use mmhand_parallel::ScratchPool;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread scratch for one quantized activation row.
    static QUANT_X: ScratchPool<i8> = const { ScratchPool::new("nn.quant.x") };
    /// Per-thread scratch for one row of i32 accumulators.
    static QUANT_ACC: ScratchPool<i32> = const { ScratchPool::new("nn.quant.acc") };
}

/// Quantization telemetry, resolved once: activation values clipped by the
/// calibration percentile, and runtime activations clamped to ±127.
fn quant_metrics() -> &'static (mmhand_telemetry::Counter, mmhand_telemetry::Counter) {
    static METRICS: OnceLock<(mmhand_telemetry::Counter, mmhand_telemetry::Counter)> =
        OnceLock::new();
    METRICS.get_or_init(|| {
        (
            mmhand_telemetry::counter("quant.calibration.clips"),
            mmhand_telemetry::counter("quant.saturations"),
        )
    })
}

/// Rounds to the nearest integer (half away from zero), clamps to ±127,
/// and reports whether the value saturated.
#[inline]
fn quantize_one(v: f32) -> (i8, bool) {
    let r = v.round();
    let sat = !(-127.0..=127.0).contains(&r);
    (r.clamp(-127.0, 127.0) as i8, sat)
}

/// One quantized parameter: transposed int8 weights plus dequant scales.
pub struct QuantizedParam {
    /// `(n, k)` row-major int8 weights — output channel `o`'s column stored
    /// contiguously at `wt[o·k .. (o+1)·k]`.
    wt: Vec<i8>,
    /// Inner (input) dimension.
    k: usize,
    /// Output channels.
    n: usize,
    /// Per-channel dequant scale `sx · sw[o]`.
    combined: Vec<f32>,
    /// `1 / sx` — multiplies activations before rounding to i8.
    inv_act_scale: f32,
}

/// Int8 copies of a model's matmul parameters, indexed by [`ParamId`].
///
/// Built once from a trained [`ParamStore`] by a [`Calibrator`]; shared
/// (behind an `Arc`) by every inference tape of a quantized pipeline.
#[derive(Default)]
pub struct QuantizedParamStore {
    /// Indexed by the parameter's store slot; `None` for parameters that
    /// were not observed as a matmul right-hand side.
    entries: Vec<Option<QuantizedParam>>,
}

impl QuantizedParamStore {
    /// `true` if `id` has a quantized copy.
    pub fn contains(&self, id: ParamId) -> bool {
        self.entries.get(id.0).is_some_and(Option::is_some)
    }

    pub(crate) fn get(&self, id: ParamId) -> Option<&QuantizedParam> {
        self.entries.get(id.0).and_then(Option::as_ref)
    }

    /// Number of parameters with a quantized copy.
    pub fn quantized_params(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// `true` when no parameter was quantized.
    pub fn is_empty(&self) -> bool {
        self.quantized_params() == 0
    }

    /// Bytes held by the quantized copies (i8 weights + f32 scales).
    pub fn quantized_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|q| q.wt.len() + (q.combined.len() + 1) * std::mem::size_of::<f32>())
            .sum()
    }

    /// Bytes the same parameters occupy in f32 — the memory the int8 path
    /// saves is `f32_bytes() − quantized_bytes()`.
    pub fn f32_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|q| q.wt.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// Collects per-parameter activation ranges during a calibration pass and
/// builds the [`QuantizedParamStore`].
///
/// Run a few representative forward passes on ordinary f32 tapes, harvest
/// each finished tape with [`crate::tape::Tape::observe_param_matmuls`]
/// into [`Calibrator::observe`], then call [`Calibrator::finish`].
#[derive(Default)]
pub struct Calibrator {
    /// `|x|` of every activation element each parameter saw, by store slot.
    samples: Vec<Vec<f32>>,
}

/// Calibration percentile for the per-tensor activation scale.
const ACT_PERCENTILE: f64 = 0.999;

impl Calibrator {
    /// Creates an empty calibrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the activations `x` fed to parameter `id` as a matmul
    /// left-hand side.
    pub fn observe(&mut self, id: ParamId, x: &Tensor) {
        if self.samples.len() <= id.0 {
            self.samples.resize_with(id.0 + 1, Vec::new);
        }
        self.samples[id.0].extend(x.data().iter().map(|v| v.abs()));
    }

    /// `true` if no activations have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.iter().all(Vec::is_empty)
    }

    /// Computes activation and per-channel weight scales and quantizes
    /// every observed parameter from `store`.
    ///
    /// # Panics
    ///
    /// Panics if an observed parameter is not a 2-D `(k, n)` matrix (only
    /// matmul right-hand sides are observable, so this indicates misuse of
    /// [`Calibrator::observe`]).
    pub fn finish(self, store: &ParamStore) -> QuantizedParamStore {
        let (clips, _) = quant_metrics();
        let mut entries: Vec<Option<QuantizedParam>> = Vec::with_capacity(self.samples.len());
        for (slot, mut abs) in self.samples.into_iter().enumerate() {
            if abs.is_empty() {
                entries.push(None);
                continue;
            }
            // Per-tensor activation scale from the calibration percentile.
            abs.sort_by(f32::total_cmp);
            let idx = (((abs.len() as f64) * ACT_PERCENTILE).ceil() as usize)
                .clamp(1, abs.len())
                - 1;
            let threshold = abs[idx];
            let clipped = abs.iter().skip(idx + 1).filter(|&&v| v > threshold).count();
            clips.add(clipped as u64);
            let sx = if threshold > 0.0 { threshold / 127.0 } else { 1.0 };

            // Per-output-channel symmetric weight scales, stored transposed.
            let id = ParamId(slot);
            let w = store.value(id);
            let (k, n) = match *w.shape() {
                [k, n] => (k, n),
                // audit: allow(no_panic) — unreachable invariant: the tape only observes 2-D matmul weights
                ref s => panic!(
                    "calibrated parameter `{}` has shape {s:?}; matmul weights are 2-D",
                    store.name(id)
                ),
            };
            let wd = w.data();
            let mut wt = vec![0i8; n * k];
            let mut combined = vec![0.0f32; n];
            for o in 0..n {
                let absmax = (0..k).map(|kk| wd[kk * n + o].abs()).fold(0.0f32, f32::max);
                let sw = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
                for kk in 0..k {
                    // absmax/sw == 127 exactly, so weights never saturate.
                    let (q, _) = quantize_one(wd[kk * n + o] / sw);
                    wt[o * k + kk] = q;
                }
                combined[o] = sx * sw;
            }
            entries.push(Some(QuantizedParam {
                wt,
                k,
                n,
                combined,
                inv_act_scale: 1.0 / sx,
            }));
        }
        QuantizedParamStore { entries }
    }
}

/// `(m, k) · (k, n)` matmul through the int8 path: each activation row is
/// quantized with the per-tensor scale, multiplied through the dispatched
/// [`mmhand_kernels::Kernels::qgemm_row_i8`] kernel with exact i32
/// accumulation, and dequantized with the per-channel combined scales.
pub(crate) fn matmul_i8(qp: &QuantizedParam, x: &Tensor) -> Tensor {
    let m = x.shape()[0];
    debug_assert_eq!(x.shape()[1], qp.k, "quantized matmul inner dimension");
    let kern = mmhand_kernels::kernels();
    let mut out = Tensor::zeros(&[m, qp.n]);
    let xs = x.data();
    let od = out.data_mut();
    let mut saturated = 0u64;
    QUANT_X.with(|xq_pool| {
        QUANT_ACC.with(|acc_pool| {
            xq_pool.with(qp.k, |xq| {
                acc_pool.with(qp.n, |acc| {
                    for i in 0..m {
                        let row = &xs[i * qp.k..(i + 1) * qp.k];
                        for (dst, &v) in xq.iter_mut().zip(row) {
                            let (q, sat) = quantize_one(v * qp.inv_act_scale);
                            saturated += sat as u64;
                            *dst = q;
                        }
                        kern.qgemm_row_i8(xq, &qp.wt, acc, qp.k, qp.n);
                        let orow = &mut od[i * qp.n..(i + 1) * qp.n];
                        for ((o, &a), &c) in orow.iter_mut().zip(acc.iter()).zip(&qp.combined) {
                            *o = a as f32 * c;
                        }
                    }
                })
            })
        })
    });
    if saturated > 0 {
        let (_, saturations) = quant_metrics();
        saturations.add(saturated);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::{standard_normal, stream_rng};

    fn randn(rng: &mut rand::rngs::StdRng, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|_| standard_normal(rng)).collect())
    }

    /// Builds a store with one (k, n) weight and a calibrator that saw `x`.
    fn quantize_single(w: Tensor, x: &Tensor) -> (ParamStore, ParamId, QuantizedParamStore) {
        let mut store = ParamStore::new();
        let id = store.add("w", w);
        let mut cal = Calibrator::new();
        cal.observe(id, x);
        let q = cal.finish(&store);
        (store, id, q)
    }

    #[test]
    fn quantize_one_rounds_half_away_and_saturates() {
        assert_eq!(quantize_one(0.5), (1, false));
        assert_eq!(quantize_one(-0.5), (-1, false));
        assert_eq!(quantize_one(126.4), (126, false));
        assert_eq!(quantize_one(127.0), (127, false));
        assert_eq!(quantize_one(127.6), (127, true));
        assert_eq!(quantize_one(-300.0), (-127, true));
    }

    #[test]
    fn small_known_case_tracks_f32() {
        let w = Tensor::from_vec(&[2, 2], vec![1.0, -2.0, 3.0, 4.0]);
        let x = Tensor::from_vec(&[1, 2], vec![2.0, -1.0]);
        let (store, id, q) = quantize_single(w, &x);
        let exact = x.matmul(store.value(id));
        let got = matmul_i8(q.get(id).unwrap(), &x);
        // One quantization step is sx·sw ≤ (2/127)·(4/127); with k=2 and
        // rounding the worst case stays well inside 0.1 here.
        for (a, b) in exact.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_matmul_tracks_f32_within_quantization_error() {
        let mut rng = stream_rng(7, "quant");
        let w = randn(&mut rng, &[24, 16]);
        let x = randn(&mut rng, &[5, 24]);
        let (store, id, q) = quantize_single(w, &x);
        let exact = x.matmul(store.value(id));
        let got = matmul_i8(q.get(id).unwrap(), &x);
        // Error budget: ~k·(sx·sw)/2 per output in the worst case; with
        // standard-normal data the observed error is far smaller.
        let mut max_err = 0.0f32;
        let mut scale = 0.0f32;
        for (a, b) in exact.data().iter().zip(got.data()) {
            max_err = max_err.max((a - b).abs());
            scale = scale.max(a.abs());
        }
        assert!(max_err < 0.05 * scale.max(1.0), "max_err={max_err} scale={scale}");
    }

    #[test]
    fn batched_rows_match_single_rows_bitwise() {
        // Row independence: quantizing and multiplying a batch must equal
        // running each row alone — the serve batched-vs-sequential identity
        // for the int8 path rests on this.
        let mut rng = stream_rng(11, "quant-rows");
        let w = randn(&mut rng, &[10, 6]);
        let batch = randn(&mut rng, &[4, 10]);
        let (_store, id, q) = quantize_single(w, &batch);
        let qp = q.get(id).unwrap();
        let full = matmul_i8(qp, &batch);
        for i in 0..4 {
            let row =
                Tensor::from_vec(&[1, 10], batch.data()[i * 10..(i + 1) * 10].to_vec());
            let alone = matmul_i8(qp, &row);
            for (a, b) in full.data()[i * 6..(i + 1) * 6].iter().zip(alone.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn unobserved_params_are_not_quantized() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(&[2, 2]));
        let b = store.add("b", Tensor::from_vec(&[1, 1], vec![1.0]));
        let mut cal = Calibrator::new();
        cal.observe(b, &Tensor::from_vec(&[1, 1], vec![1.0]));
        let q = cal.finish(&store);
        assert!(!q.contains(a));
        assert!(q.contains(b));
        assert_eq!(q.quantized_params(), 1);
        assert!(q.quantized_bytes() < q.f32_bytes() * 4);
    }

    #[test]
    fn zero_weight_column_is_safe() {
        // An all-zero output channel must quantize to zeros with a guarded
        // scale, not divide by zero.
        let w = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 1.0, 0.0]);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let (_store, id, q) = quantize_single(w, &x);
        let got = matmul_i8(q.get(id).unwrap(), &x);
        assert!(got.data()[1].abs() < 1e-6);
        assert!(got.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tape_intercepts_quantized_matmuls() {
        // End to end through the tape: calibrate via the observer, then a
        // `with_quantized` tape must produce exactly the int8-helper result
        // while tracking the f32 tape within quantization error.
        let mut store = ParamStore::new();
        let mut rng = stream_rng(5, "quant-tape");
        let w = store.add("w", randn(&mut rng, &[8, 4]));
        let x = randn(&mut rng, &[3, 8]);
        let mut tape = crate::tape::Tape::new();
        let xv = tape.leaf(x.clone());
        let wv = tape.param(&store, w);
        let y = tape.matmul(xv, wv);
        let f32_out = tape.value(y).clone();

        let mut cal = Calibrator::new();
        tape.observe_param_matmuls(|id, t| cal.observe(id, t));
        let q = std::sync::Arc::new(cal.finish(&store));
        assert!(q.contains(w));

        let mut qtape = crate::tape::Tape::with_quantized(q.clone());
        let xv = qtape.leaf(x.clone());
        let wv = qtape.param(&store, w);
        let y = qtape.matmul(xv, wv);
        let q_out = qtape.value(y).clone();

        let direct = matmul_i8(q.get(w).unwrap(), &x);
        for (a, b) in q_out.data().iter().zip(direct.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let worst = f32_out
            .data()
            .iter()
            .zip(q_out.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 0.2, "worst={worst}");
    }

    #[test]
    fn memory_win_is_roughly_4x() {
        let mut rng = stream_rng(3, "quant-mem");
        let w = randn(&mut rng, &[64, 32]);
        let x = randn(&mut rng, &[1, 64]);
        let (_store, _id, q) = quantize_single(w, &x);
        let ratio = q.f32_bytes() as f64 / q.quantized_bytes() as f64;
        assert!(ratio > 3.5, "ratio={ratio}");
    }
}
