//! Trainable-parameter storage.
//!
//! [`ParamStore`] owns every parameter tensor of a model together with its
//! gradient accumulator and Adam moment buffers. Layers hold [`ParamId`]
//! handles; the [`crate::tape::Tape`] routes gradients here during
//! `backward`, and [`crate::optim::Adam`] consumes them.

use crate::tensor::Tensor;

/// Handle to one parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Clone)]
struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    m: Tensor,
    v: Tensor,
}

/// Storage for all parameters of a model.
///
/// Cloning deep-copies every parameter (values, gradients, optimizer
/// moments), so a cloned model evolves independently — serve shards clone
/// one trained store per shard.
#[derive(Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Registers a parameter initialised to `value`; returns its handle.
    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        let shape = value.shape().to_vec();
        self.params.push(Param {
            name: name.to_string(),
            value,
            grad: Tensor::zeros(&shape),
            m: Tensor::zeros(&shape),
            v: Tensor::zeros(&shape),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The parameter's current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access to the parameter's value (e.g. for loading weights).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// The parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Adds `g` into the parameter's gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        #[cfg(feature = "sanitize-numerics")]
        crate::sanitize::check_finite(
            &format!("gradient of parameter `{}`", self.params[id.0].name),
            g.data(),
        );
        self.params[id.0].grad.add_assign(g);
    }

    /// Clears all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            for g in p.grad.data_mut() {
                *g = 0.0;
            }
        }
    }

    /// Global L2 norm of all gradients (for clipping / monitoring).
    ///
    /// Each tensor's squared sum uses the dispatched blocked reduction
    /// (`sq_sum_blocked`), and the per-tensor partials combine sequentially
    /// in registration order — the same bits on every backend.
    pub fn grad_norm(&self) -> f32 {
        let kern = mmhand_kernels::kernels();
        let mut total = 0.0f32;
        for p in &self.params {
            total += kern.sq_sum_blocked(p.grad.data());
        }
        total.sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= s;
                }
            }
        }
    }

    /// All parameter handles.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).map(ParamId).collect()
    }

    pub(crate) fn adam_buffers(
        &mut self,
        id: ParamId,
    ) -> (&mut Tensor, &Tensor, &mut Tensor, &mut Tensor) {
        let p = &mut self.params[id.0];
        (&mut p.value, &p.grad, &mut p.m, &mut p.v)
    }

    /// Serialises all parameter values into a flat byte-free `Vec<f32>`
    /// (concatenated in registration order) — a minimal checkpoint format.
    pub fn snapshot(&self) -> Vec<f32> {
        self.params.iter().flat_map(|p| p.value.data().iter().copied()).collect()
    }

    /// Restores values from a [`ParamStore::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `flat` has the wrong total length.
    pub fn restore(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.scalar_count(), "snapshot length");
        let mut off = 0;
        for p in &mut self.params {
            let n = p.value.len();
            p.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(&[2], vec![1.0, 2.0]));
        assert_eq!(s.value(id).data(), &[1.0, 2.0]);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.len(), 1);
        assert_eq!(s.scalar_count(), 2);
    }

    #[test]
    fn gradient_accumulation_and_zero() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(&[2]));
        s.accumulate_grad(id, &Tensor::from_vec(&[2], vec![1.0, -1.0]));
        s.accumulate_grad(id, &Tensor::from_vec(&[2], vec![0.5, 0.5]));
        assert_eq!(s.grad(id).data(), &[1.5, -0.5]);
        s.zero_grad();
        assert_eq!(s.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(&[2]));
        s.accumulate_grad(id, &Tensor::from_vec(&[2], vec![3.0, 4.0]));
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
        // Clipping below the threshold is a no-op.
        s.clip_grad_norm(10.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let b = s.add("b", Tensor::from_vec(&[1], vec![3.0]));
        let snap = s.snapshot();
        s.value_mut(a).data_mut()[0] = 99.0;
        s.value_mut(b).data_mut()[0] = 99.0;
        s.restore(&snap);
        assert_eq!(s.value(a).data(), &[1.0, 2.0]);
        assert_eq!(s.value(b).data(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "snapshot length")]
    fn restore_checks_length() {
        let mut s = ParamStore::new();
        s.add("a", Tensor::zeros(&[3]));
        s.restore(&[0.0; 2]);
    }
}
