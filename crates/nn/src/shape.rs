//! Graph-time shape inference for the autodiff tape.
//!
//! Every [`crate::tape::Tape`] op validates its operand shapes through the
//! rules in this module *before* executing the kernel, so a mismatched
//! graph is rejected at construction — as a typed [`ShapeError`] naming
//! the offending op from the fallible `Tape::try_*` builders, or as an
//! immediate panic carrying the same message from the infallible builders
//! — instead of surfacing as an index panic deep inside a GEMM band or
//! an im2col loop at epoch 40 of a sweep.
//!
//! Backward coverage: every backward rule on the tape computes gradient
//! shapes as a pure function of the forward operand shapes validated here
//! (`dA = dY·Bᵀ` for a checked `(m,k)·(k,n)` matmul, col2im of a checked
//! conv, …), so validating each op at push time validates the *entire*
//! forward/backward graph — there is no backward-only shape failure mode.

use std::error::Error;
use std::fmt;

use crate::conv::ConvSpec;

/// A shape mismatch detected while building the graph.
///
/// Carries the name of the offending op and a description of the violated
/// rule, with the operand shapes embedded in the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    message: String,
}

impl ShapeError {
    /// Creates an error for `op` with the given description.
    pub fn new(op: &'static str, message: impl Into<String>) -> Self {
        ShapeError { op, message: message.into() }
    }

    /// The tape op that rejected its operands (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The violated rule, with the operand shapes.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error in op `{}`: {}", self.op, self.message)
    }
}

impl Error for ShapeError {}

type Result2 = Result<Vec<usize>, ShapeError>;

fn err(op: &'static str, message: String) -> ShapeError {
    ShapeError { op, message }
}

/// Element-wise binary op: shapes must match exactly.
pub fn elementwise(op: &'static str, a: &[usize], b: &[usize]) -> Result2 {
    if a != b {
        return Err(err(op, format!("operand shapes {a:?} and {b:?} differ")));
    }
    Ok(a.to_vec())
}

/// `(m, k) · (k, n) → (m, n)`.
pub fn matmul(a: &[usize], b: &[usize]) -> Result2 {
    if a.len() != 2 || b.len() != 2 {
        return Err(err(
            "matmul",
            format!("operands must be 2-D, got {a:?} and {b:?}"),
        ));
    }
    if a[1] != b[0] {
        return Err(err(
            "matmul",
            format!("inner dimensions disagree: {a:?} · {b:?}"),
        ));
    }
    Ok(vec![a[0], b[1]])
}

/// `(N, F) + bias of F elements → (N, F)`.
pub fn add_row_bias(x: &[usize], bias: &[usize]) -> Result2 {
    if x.len() != 2 {
        return Err(err("add_row_bias", format!("input must be 2-D, got {x:?}")));
    }
    let blen: usize = bias.iter().product();
    if blen != x[1] {
        return Err(err(
            "add_row_bias",
            format!("bias of {blen} elements does not match row width of {x:?}"),
        ));
    }
    Ok(x.to_vec())
}

fn dims4(op: &'static str, x: &[usize]) -> Result<[usize; 4], ShapeError> {
    if x.len() != 4 {
        return Err(err(op, format!("input must be 4-D (N, C, H, W), got {x:?}")));
    }
    Ok([x[0], x[1], x[2], x[3]])
}

/// `(N, C, H, W) conv (O, C, k, k) → (N, O, Ho, Wo)`.
pub fn conv2d(x: &[usize], w: &[usize], bias_len: Option<usize>, spec: &ConvSpec) -> Result2 {
    const OP: &str = "conv2d";
    let [n, c, h, wd] = dims4(OP, x)?;
    if c != spec.in_channels {
        return Err(err(
            OP,
            format!("input {x:?} has {c} channels, spec expects {}", spec.in_channels),
        ));
    }
    let expect_w = [spec.out_channels, spec.in_channels, spec.kernel, spec.kernel];
    if w != expect_w {
        return Err(err(
            OP,
            format!("weight shape {w:?} does not match spec {expect_w:?}"),
        ));
    }
    if let Some(blen) = bias_len {
        if blen != spec.out_channels {
            return Err(err(
                OP,
                format!("bias of {blen} elements, spec has {} output channels", spec.out_channels),
            ));
        }
    }
    let (ho, wo) = (conv_out(OP, h, spec)?, conv_out(OP, wd, spec)?);
    Ok(vec![n, spec.out_channels, ho, wo])
}

fn conv_out(op: &'static str, h: usize, spec: &ConvSpec) -> Result<usize, ShapeError> {
    let padded = h + 2 * spec.pad;
    if spec.kernel == 0 || spec.stride == 0 {
        return Err(err(op, format!("kernel/stride must be positive, got {spec:?}")));
    }
    if padded < spec.kernel {
        return Err(err(
            op,
            format!("kernel {} does not fit padded extent {padded}", spec.kernel),
        ));
    }
    Ok((padded - spec.kernel) / spec.stride + 1)
}

/// `(N, C_in, H, W) convT (C_in, C_out, k, k) → (N, C_out, Ho, Wo)`.
pub fn conv_transpose2d(
    x: &[usize],
    w: &[usize],
    bias_len: Option<usize>,
    spec: &ConvSpec,
) -> Result2 {
    const OP: &str = "conv_transpose2d";
    let [n, c_in, h, wd] = dims4(OP, x)?;
    if c_in != spec.in_channels {
        return Err(err(
            OP,
            format!("input {x:?} has {c_in} channels, spec expects {}", spec.in_channels),
        ));
    }
    let expect_w = [spec.in_channels, spec.out_channels, spec.kernel, spec.kernel];
    if w != expect_w {
        return Err(err(
            OP,
            format!("weight shape {w:?} does not match spec {expect_w:?}"),
        ));
    }
    if let Some(blen) = bias_len {
        if blen != spec.out_channels {
            return Err(err(
                OP,
                format!("bias of {blen} elements, spec has {} output channels", spec.out_channels),
            ));
        }
    }
    let (ho, wo) = (
        transpose_out(OP, h, spec)?,
        transpose_out(OP, wd, spec)?,
    );
    Ok(vec![n, spec.out_channels, ho, wo])
}

fn transpose_out(op: &'static str, h: usize, spec: &ConvSpec) -> Result<usize, ShapeError> {
    if h == 0 {
        return Err(err(op, "input spatial extent is zero".to_string()));
    }
    let grown = (h - 1) * spec.stride + spec.kernel;
    if grown <= 2 * spec.pad {
        return Err(err(
            op,
            format!("padding {} swallows the whole {grown}-pixel output", spec.pad),
        ));
    }
    Ok(grown - 2 * spec.pad)
}

/// Global spatial pool `(N, C, H, W) → (N, C)`.
pub fn channel_pool(op: &'static str, x: &[usize]) -> Result2 {
    let [n, c, h, w] = dims4(op, x)?;
    if h * w == 0 {
        return Err(err(op, format!("cannot pool over empty spatial extent {x:?}")));
    }
    Ok(vec![n, c])
}

/// Grouped pool `(N, G·Cg, H, W) → (N, G)`.
pub fn group_pool(op: &'static str, x: &[usize], groups: usize) -> Result2 {
    let [n, c, h, w] = dims4(op, x)?;
    if groups == 0 {
        return Err(err(op, "group count must be positive".to_string()));
    }
    if c % groups != 0 {
        return Err(err(op, format!("channels {c} not divisible by groups {groups}")));
    }
    if (c / groups) * h * w == 0 {
        return Err(err(op, format!("cannot pool over empty group extent {x:?}")));
    }
    Ok(vec![n, groups])
}

/// Channel reduction `(N, C, H, W) → (N, 1, H, W)`.
pub fn over_channels(op: &'static str, x: &[usize]) -> Result2 {
    let [n, c, h, w] = dims4(op, x)?;
    if c == 0 {
        return Err(err(op, format!("cannot reduce over zero channels {x:?}")));
    }
    Ok(vec![n, 1, h, w])
}

/// Broadcast `(N, C, H, W) × (N, C) → (N, C, H, W)`.
pub fn mul_channel(x: &[usize], w: &[usize]) -> Result2 {
    const OP: &str = "mul_channel";
    let [n, c, _, _] = dims4(OP, x)?;
    if w != [n, c] {
        return Err(err(
            OP,
            format!("weights {w:?} do not match per-channel shape [{n}, {c}] of input {x:?}"),
        ));
    }
    Ok(x.to_vec())
}

/// Broadcast `(N, G·Cg, H, W) × (N, G) → (N, G·Cg, H, W)`.
pub fn mul_group(x: &[usize], w: &[usize], groups: usize) -> Result2 {
    const OP: &str = "mul_group";
    let [n, c, _, _] = dims4(OP, x)?;
    if groups == 0 || c % groups != 0 {
        return Err(err(OP, format!("channels {c} not divisible by groups {groups}")));
    }
    if w != [n, groups] {
        return Err(err(
            OP,
            format!("weights {w:?} do not match group shape [{n}, {groups}]"),
        ));
    }
    Ok(x.to_vec())
}

/// Broadcast `(N, C, H, W) × (N, 1, H, W) → (N, C, H, W)`.
pub fn mul_spatial(x: &[usize], w: &[usize]) -> Result2 {
    const OP: &str = "mul_spatial";
    let [n, _, h, wd] = dims4(OP, x)?;
    if w != [n, 1, h, wd] {
        return Err(err(
            OP,
            format!("spatial map {w:?} does not match [{n}, 1, {h}, {wd}] of input {x:?}"),
        ));
    }
    Ok(x.to_vec())
}

/// `(N, A) ⧺ (N, B) → (N, A+B)`.
pub fn concat_cols(a: &[usize], b: &[usize]) -> Result2 {
    const OP: &str = "concat_cols";
    if a.len() != 2 || b.len() != 2 {
        return Err(err(OP, format!("operands must be 2-D, got {a:?} and {b:?}")));
    }
    if a[0] != b[0] {
        return Err(err(OP, format!("row counts differ: {a:?} vs {b:?}")));
    }
    Ok(vec![a[0], a[1] + b[1]])
}

/// `(N, Ca, H, W) ⧺ (N, Cb, H, W) → (N, Ca+Cb, H, W)`.
pub fn concat_channels(a: &[usize], b: &[usize]) -> Result2 {
    const OP: &str = "concat_channels";
    let [n, ca, h, w] = dims4(OP, a)?;
    let [nb, cb, hb, wb] = dims4(OP, b)?;
    if (n, h, w) != (nb, hb, wb) {
        return Err(err(OP, format!("batch/spatial dims differ: {a:?} vs {b:?}")));
    }
    Ok(vec![n, ca + cb, h, w])
}

/// Columns `[start, start+len)` of `(N, F) → (N, len)`.
pub fn slice_cols(x: &[usize], start: usize, len: usize) -> Result2 {
    const OP: &str = "slice_cols";
    if x.len() != 2 {
        return Err(err(OP, format!("input must be 2-D, got {x:?}")));
    }
    if start + len > x[1] {
        return Err(err(
            OP,
            format!("slice {start}..{} exceeds row width of {x:?}", start + len),
        ));
    }
    Ok(vec![x[0], len])
}

/// Reshape: element counts must agree.
pub fn reshape(x: &[usize], new: &[usize]) -> Result2 {
    let from: usize = x.iter().product();
    let to: usize = new.iter().product();
    if from != to {
        return Err(err(
            "reshape",
            format!("cannot reshape {x:?} ({from} elements) to {new:?} ({to} elements)"),
        ));
    }
    Ok(new.to_vec())
}

/// Layer norm over the last dimension with affine params of that length.
pub fn layer_norm(x: &[usize], gamma: &[usize], beta: &[usize]) -> Result2 {
    const OP: &str = "layer_norm";
    let Some(&f) = x.last() else {
        return Err(err(OP, "input must be at least 1-D".to_string()));
    };
    let glen: usize = gamma.iter().product();
    let blen: usize = beta.iter().product();
    if glen != f || blen != f {
        return Err(err(
            OP,
            format!("gamma ({glen}) / beta ({blen}) do not match last dim {f} of {x:?}"),
        ));
    }
    Ok(x.to_vec())
}

/// External loss: the injected gradient must match the input's shape.
pub fn external_loss(x: &[usize], grad: &[usize]) -> Result2 {
    if x != grad {
        return Err(err(
            "external_loss",
            format!("gradient shape {grad:?} does not match input {x:?}"),
        ));
    }
    Ok(vec![1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_rules() {
        assert_eq!(matmul(&[3, 4], &[4, 2]).unwrap(), vec![3, 2]);
        let e = matmul(&[3, 4], &[5, 2]).unwrap_err();
        assert_eq!(e.op(), "matmul");
        assert!(e.to_string().contains("inner dimensions"));
        assert!(matmul(&[3], &[3, 2]).is_err());
    }

    #[test]
    fn conv_rules() {
        let spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, pad: 1 };
        assert_eq!(
            conv2d(&[1, 2, 8, 8], &[3, 2, 3, 3], None, &spec).unwrap(),
            vec![1, 3, 8, 8]
        );
        // Wrong channel count names the op.
        let e = conv2d(&[1, 4, 8, 8], &[3, 2, 3, 3], None, &spec).unwrap_err();
        assert_eq!(e.op(), "conv2d");
        // Kernel larger than padded input.
        let tiny = ConvSpec { in_channels: 2, out_channels: 3, kernel: 9, stride: 1, pad: 0 };
        assert!(conv2d(&[1, 2, 4, 4], &[3, 2, 9, 9], None, &tiny).is_err());
        // Bias length mismatch.
        assert!(conv2d(&[1, 2, 8, 8], &[3, 2, 3, 3], Some(4), &spec).is_err());
    }

    #[test]
    fn conv_transpose_rules() {
        let spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 4, stride: 2, pad: 1 };
        assert_eq!(
            conv_transpose2d(&[1, 2, 4, 4], &[2, 3, 4, 4], None, &spec).unwrap(),
            vec![1, 3, 8, 8]
        );
        let e = conv_transpose2d(&[1, 2, 4, 4], &[3, 2, 4, 4], None, &spec).unwrap_err();
        assert_eq!(e.op(), "conv_transpose2d");
        // Padding that swallows the output is rejected, not underflowed.
        let bad = ConvSpec { in_channels: 2, out_channels: 3, kernel: 1, stride: 1, pad: 4 };
        assert!(conv_transpose2d(&[1, 2, 1, 1], &[2, 3, 1, 1], None, &bad).is_err());
    }

    #[test]
    fn pool_and_broadcast_rules() {
        assert_eq!(channel_pool("channel_avg_pool", &[2, 4, 3, 3]).unwrap(), vec![2, 4]);
        assert!(channel_pool("channel_avg_pool", &[2, 4]).is_err());
        assert_eq!(group_pool("group_avg_pool", &[2, 6, 3, 3], 2).unwrap(), vec![2, 2]);
        assert!(group_pool("group_avg_pool", &[2, 6, 3, 3], 4).is_err());
        assert!(group_pool("group_avg_pool", &[2, 6, 3, 3], 0).is_err());
        assert_eq!(over_channels("mean_over_channels", &[2, 3, 4, 5]).unwrap(), vec![2, 1, 4, 5]);
        assert_eq!(mul_channel(&[2, 4, 3, 3], &[2, 4]).unwrap(), vec![2, 4, 3, 3]);
        assert!(mul_channel(&[2, 4, 3, 3], &[2, 3]).is_err());
        assert!(mul_group(&[2, 6, 3, 3], &[2, 3], 2).is_err());
        assert!(mul_spatial(&[2, 4, 3, 3], &[2, 1, 3, 4]).is_err());
    }

    #[test]
    fn concat_slice_reshape_rules() {
        assert_eq!(concat_cols(&[2, 3], &[2, 5]).unwrap(), vec![2, 8]);
        assert!(concat_cols(&[2, 3], &[3, 5]).is_err());
        assert_eq!(concat_channels(&[1, 2, 4, 4], &[1, 3, 4, 4]).unwrap(), vec![1, 5, 4, 4]);
        assert!(concat_channels(&[1, 2, 4, 4], &[1, 3, 4, 5]).is_err());
        assert_eq!(slice_cols(&[2, 6], 2, 3).unwrap(), vec![2, 3]);
        assert!(slice_cols(&[2, 6], 4, 3).is_err());
        assert_eq!(reshape(&[2, 6], &[3, 4]).unwrap(), vec![3, 4]);
        assert!(reshape(&[2, 6], &[3, 5]).is_err());
    }

    #[test]
    fn layer_norm_and_external_rules() {
        assert_eq!(layer_norm(&[3, 5], &[5], &[5]).unwrap(), vec![3, 5]);
        assert!(layer_norm(&[3, 5], &[4], &[5]).is_err());
        assert!(layer_norm(&[], &[1], &[1]).is_err());
        assert_eq!(external_loss(&[2, 3], &[2, 3]).unwrap(), vec![1]);
        assert!(external_loss(&[2, 3], &[3, 2]).is_err());
    }

    #[test]
    fn elementwise_rule() {
        assert_eq!(elementwise("add", &[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        let e = elementwise("mul", &[2, 3], &[3, 2]).unwrap_err();
        assert_eq!(e.op(), "mul");
    }

    #[test]
    fn display_names_the_op() {
        let e = ShapeError::new("conv2d", "kernel misfit");
        assert_eq!(e.to_string(), "shape error in op `conv2d`: kernel misfit");
        assert_eq!(e.message(), "kernel misfit");
    }
}
