//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation applied to [`Var`] handles during a
//! forward pass; [`Tape::backward`] replays the record in reverse, routing
//! gradients to every [`crate::param::ParamStore`] parameter that took
//! part. The op set is exactly what the mmHand architecture needs: dense
//! and convolutional linear algebra, the pooling/broadcast ops behind the
//! paper's two-stage channel attention and 3-D spatial attention, and the
//! point-wise nonlinearities.
//!
//! # Examples
//!
//! ```
//! use mmhand_nn::param::ParamStore;
//! use mmhand_nn::tape::Tape;
//! use mmhand_nn::tensor::Tensor;
//!
//! let mut store = ParamStore::new();
//! let w_id = store.add("w", Tensor::full(&[1, 1], 3.0));
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::full(&[1, 1], 2.0));
//! let w = tape.param(&store, w_id);
//! let y = tape.matmul(x, w); // y = 6
//! let loss = tape.mean_all(y);
//! tape.backward(loss, &mut store);
//! assert_eq!(store.grad(w_id).data(), &[2.0]); // dy/dw = x
//! ```

use crate::conv::{
    conv2d_backward, conv2d_forward, conv_transpose2d_backward, conv_transpose2d_forward,
    dims4, ConvSpec,
};
use crate::param::{ParamId, ParamStore};
use crate::quant::QuantizedParamStore;
use crate::shape::{self, ShapeError};
use crate::tensor::{gemm_a_bt, gemm_at_b, Tensor};
use mmhand_kernels::kernels;
use std::sync::Arc;

/// Unwraps a shape-checked graph builder — the standard delegating-wrapper
/// idiom: the fallible `try_*` builders return the typed [`ShapeError`];
/// the infallible builders keep the ergonomic API and surface the same
/// error (op name included) at construction time.
fn ok(r: Result<Var, ShapeError>) -> Var {
    r.expect("graph rejected at construction; the `try_*` builders return this as a typed ShapeError")
}

/// Handle to a tape node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    Leaf,
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Matmul(Var, Var),
    AddRowBias { x: Var, bias: Var },
    Conv2d { x: Var, w: Var, bias: Option<Var>, spec: ConvSpec },
    ConvT2d { x: Var, w: Var, bias: Option<Var>, spec: ConvSpec },
    ChannelAvgPool(Var),
    ChannelMaxPool { x: Var, argmax: Vec<usize> },
    GroupAvgPool { x: Var, groups: usize },
    GroupMaxPool { x: Var, argmax: Vec<usize> },
    MeanOverChannels(Var),
    MaxOverChannels { x: Var, argmax: Vec<usize> },
    MulChannel { x: Var, w: Var },
    MulGroup { x: Var, w: Var, groups: usize },
    MulSpatial { x: Var, w: Var },
    ConcatCols(Var, Var),
    ConcatChannels(Var, Var),
    SliceCols { x: Var, start: usize, len: usize },
    Reshape(Var),
    MeanAll(Var),
    LayerNorm { x: Var, gamma: Var, beta: Var, mean: Vec<f32>, rstd: Vec<f32> },
    External { x: Var, grad: Tensor },
}

#[cfg(feature = "sanitize-numerics")]
impl Op {
    /// The op's name as used in sanitizer diagnostics.
    fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Param(_) => "param",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::MulElem(..) => "mul",
            Op::Scale(..) => "scale",
            Op::Relu(_) => "relu",
            Op::Sigmoid(_) => "sigmoid",
            Op::Tanh(_) => "tanh",
            Op::Matmul(..) => "matmul",
            Op::AddRowBias { .. } => "add_row_bias",
            Op::Conv2d { .. } => "conv2d",
            Op::ConvT2d { .. } => "conv_transpose2d",
            Op::ChannelAvgPool(_) => "channel_avg_pool",
            Op::ChannelMaxPool { .. } => "channel_max_pool",
            Op::GroupAvgPool { .. } => "group_avg_pool",
            Op::GroupMaxPool { .. } => "group_max_pool",
            Op::MeanOverChannels(_) => "mean_over_channels",
            Op::MaxOverChannels { .. } => "max_over_channels",
            Op::MulChannel { .. } => "mul_channel",
            Op::MulGroup { .. } => "mul_group",
            Op::MulSpatial { .. } => "mul_spatial",
            Op::ConcatCols(..) => "concat_cols",
            Op::ConcatChannels(..) => "concat_channels",
            Op::SliceCols { .. } => "slice_cols",
            Op::Reshape(_) => "reshape",
            Op::MeanAll(_) => "mean_all",
            Op::LayerNorm { .. } => "layer_norm",
            Op::External { .. } => "external_loss",
        }
    }
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// The autodiff tape. Create one per forward/backward step.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// When set, matmuls whose right-hand side is a quantized parameter run
    /// through the int8 kernel path (see [`Tape::with_quantized`]).
    qstore: Option<Arc<QuantizedParamStore>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Creates a tape that evaluates matmuls against parameters present in
    /// `q` through the int8 path: quantize the input row-wise, multiply
    /// through the dispatched i8 kernel with exact i32 accumulation, and
    /// dequantize the output. Everything else — graph recording, every
    /// other op, and `backward` — is unchanged, so the same model code runs
    /// quantized with no edits; this is inference-only by construction
    /// (training tapes are built with [`Tape::new`] and never see `q`).
    pub fn with_quantized(q: Arc<QuantizedParamStore>) -> Self {
        Tape { nodes: Vec::new(), qstore: Some(q) }
    }

    /// Walks the finished graph and yields, for every matmul whose
    /// right-hand operand is a parameter, the parameter's id and the
    /// left-hand input's value. Calibration runs ordinary f32 forward
    /// passes and harvests activation ranges from the tapes through this
    /// observer — exactly the matmul-weight set the quantized path will
    /// later intercept.
    pub fn observe_param_matmuls(&self, mut f: impl FnMut(ParamId, &Tensor)) {
        for node in &self.nodes {
            if let Op::Matmul(a, b) = node.op {
                if let Op::Param(id) = self.nodes[b.0].op {
                    f(id, &self.nodes[a.0].value);
                }
            }
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        #[cfg(feature = "sanitize-numerics")]
        crate::sanitize::check_finite(
            &format!("output of tape op `{}`", op.name()),
            value.data(),
        );
        self.nodes.push(Node { op, value, grad: None });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The shape of a variable (shorthand used by the shape checks).
    fn shape_of(&self, v: Var) -> &[usize] {
        self.nodes[v.0].value.shape()
    }

    /// The accumulated gradient of a variable after [`Tape::backward`]
    /// (`None` if the variable did not influence the loss).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Registers a constant input (no gradient is propagated past it,
    /// but its gradient is still *recorded* and can be read back).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t)
    }

    /// Registers a trainable parameter from `store`.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(Op::Param(id), store.value(id).clone())
    }

    /// Element-wise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        ok(self.try_add(a, b))
    }

    /// Fallible [`Tape::add`].
    pub fn try_add(&mut self, a: Var, b: Var) -> Result<Var, ShapeError> {
        shape::elementwise("add", self.shape_of(a), self.shape_of(b))?;
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        Ok(self.push(Op::Add(a, b), v))
    }

    /// Element-wise difference. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        ok(self.try_sub(a, b))
    }

    /// Fallible [`Tape::sub`].
    pub fn try_sub(&mut self, a: Var, b: Var) -> Result<Var, ShapeError> {
        shape::elementwise("sub", self.shape_of(a), self.shape_of(b))?;
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        Ok(self.push(Op::Sub(a, b), v))
    }

    /// Element-wise product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        ok(self.try_mul(a, b))
    }

    /// Fallible [`Tape::mul`].
    pub fn try_mul(&mut self, a: Var, b: Var) -> Result<Var, ShapeError> {
        shape::elementwise("mul", self.shape_of(a), self.shape_of(b))?;
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        Ok(self.push(Op::MulElem(a, b), v))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        self.push(Op::Scale(a, s), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in v.data_mut() {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        self.push(Op::Relu(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in v.data_mut() {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        self.push(Op::Sigmoid(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in v.data_mut() {
            *x = x.tanh();
        }
        self.push(Op::Tanh(a), v)
    }

    /// 2-D matrix product `(m, k)·(k, n)`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        ok(self.try_matmul(a, b))
    }

    /// Fallible [`Tape::matmul`].
    pub fn try_matmul(&mut self, a: Var, b: Var) -> Result<Var, ShapeError> {
        shape::matmul(self.shape_of(a), self.shape_of(b))?;
        // Quantized interception: on tapes built with `with_quantized`, a
        // matmul against a quantized parameter runs i8×i8→i32 and
        // dequantizes at the output. The node is recorded as an ordinary
        // `Matmul` — the graph shape is identical either way, and
        // inference tapes never run `backward`.
        let quantized = match (&self.qstore, &self.nodes[b.0].op) {
            (Some(q), Op::Param(id)) => q
                .get(*id)
                .map(|qp| crate::quant::matmul_i8(qp, &self.nodes[a.0].value)),
            _ => None,
        };
        let v = match quantized {
            Some(v) => v,
            None => self.nodes[a.0].value.matmul(&self.nodes[b.0].value),
        };
        Ok(self.push(Op::Matmul(a, b), v))
    }

    /// Adds a length-`F` bias row-wise to an `(N, F)` matrix.
    pub fn add_row_bias(&mut self, x: Var, bias: Var) -> Var {
        ok(self.try_add_row_bias(x, bias))
    }

    /// Fallible [`Tape::add_row_bias`].
    pub fn try_add_row_bias(&mut self, x: Var, bias: Var) -> Result<Var, ShapeError> {
        shape::add_row_bias(self.shape_of(x), self.shape_of(bias))?;
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[bias.0].value;
        let (n, f) = (xv.shape()[0], xv.shape()[1]);
        let mut out = xv.clone();
        for row in 0..n {
            for (o, b) in out.data_mut()[row * f..(row + 1) * f]
                .iter_mut()
                .zip(bv.data())
            {
                *o += b;
            }
        }
        Ok(self.push(Op::AddRowBias { x, bias }, out))
    }

    /// 2-D convolution. `x` is `(N, C, H, W)`, `w` `(O, C, k, k)`.
    pub fn conv2d(&mut self, x: Var, w: Var, bias: Option<Var>, spec: ConvSpec) -> Var {
        ok(self.try_conv2d(x, w, bias, spec))
    }

    /// Fallible [`Tape::conv2d`].
    pub fn try_conv2d(
        &mut self,
        x: Var,
        w: Var,
        bias: Option<Var>,
        spec: ConvSpec,
    ) -> Result<Var, ShapeError> {
        let bias_len = bias.map(|b| self.nodes[b.0].value.len());
        shape::conv2d(self.shape_of(x), self.shape_of(w), bias_len, &spec)?;
        let bias_data: Vec<f32> = bias
            .map(|b| self.nodes[b.0].value.data().to_vec())
            .unwrap_or_default();
        let v = conv2d_forward(&self.nodes[x.0].value, &self.nodes[w.0].value, &bias_data, &spec);
        Ok(self.push(Op::Conv2d { x, w, bias, spec }, v))
    }

    /// 2-D transposed convolution. `x` is `(N, C_in, H, W)`,
    /// `w` `(C_in, C_out, k, k)`.
    pub fn conv_transpose2d(
        &mut self,
        x: Var,
        w: Var,
        bias: Option<Var>,
        spec: ConvSpec,
    ) -> Var {
        ok(self.try_conv_transpose2d(x, w, bias, spec))
    }

    /// Fallible [`Tape::conv_transpose2d`].
    pub fn try_conv_transpose2d(
        &mut self,
        x: Var,
        w: Var,
        bias: Option<Var>,
        spec: ConvSpec,
    ) -> Result<Var, ShapeError> {
        let bias_len = bias.map(|b| self.nodes[b.0].value.len());
        shape::conv_transpose2d(self.shape_of(x), self.shape_of(w), bias_len, &spec)?;
        let bias_data: Vec<f32> = bias
            .map(|b| self.nodes[b.0].value.data().to_vec())
            .unwrap_or_default();
        let v = conv_transpose2d_forward(
            &self.nodes[x.0].value,
            &self.nodes[w.0].value,
            &bias_data,
            &spec,
        );
        Ok(self.push(Op::ConvT2d { x, w, bias, spec }, v))
    }

    /// Global average pool over the spatial dims: `(N, C, H, W) → (N, C)`.
    pub fn channel_avg_pool(&mut self, x: Var) -> Var {
        ok(self.try_channel_avg_pool(x))
    }

    /// Fallible [`Tape::channel_avg_pool`].
    pub fn try_channel_avg_pool(&mut self, x: Var) -> Result<Var, ShapeError> {
        shape::channel_pool("channel_avg_pool", self.shape_of(x))?;
        let [n, c, h, w] = dims4(&self.nodes[x.0].value);
        let hw = h * w;
        let xd = self.nodes[x.0].value.data();
        let mut out = Tensor::zeros(&[n, c]);
        for i in 0..n * c {
            out.data_mut()[i] = xd[i * hw..(i + 1) * hw].iter().sum::<f32>() / hw as f32;
        }
        Ok(self.push(Op::ChannelAvgPool(x), out))
    }

    /// Global max pool over the spatial dims: `(N, C, H, W) → (N, C)`.
    pub fn channel_max_pool(&mut self, x: Var) -> Var {
        ok(self.try_channel_max_pool(x))
    }

    /// Fallible [`Tape::channel_max_pool`].
    pub fn try_channel_max_pool(&mut self, x: Var) -> Result<Var, ShapeError> {
        shape::channel_pool("channel_max_pool", self.shape_of(x))?;
        let [n, c, h, w] = dims4(&self.nodes[x.0].value);
        let hw = h * w;
        let xd = self.nodes[x.0].value.data();
        let mut out = Tensor::zeros(&[n, c]);
        let mut argmax = vec![0usize; n * c];
        for i in 0..n * c {
            let slice = &xd[i * hw..(i + 1) * hw];
            let (best, &val) = slice
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty spatial extent");
            out.data_mut()[i] = val;
            argmax[i] = i * hw + best;
        }
        Ok(self.push(Op::ChannelMaxPool { x, argmax }, out))
    }

    /// Average pool over channel groups and space:
    /// `(N, G·Cg, H, W) → (N, G)`. This is the paper's TGAP — the
    /// three-dimensional global average pooling over each frame's
    /// `V × D × A` sub-volume when frames are packed into channel groups.
    pub fn group_avg_pool(&mut self, x: Var, groups: usize) -> Var {
        ok(self.try_group_avg_pool(x, groups))
    }

    /// Fallible [`Tape::group_avg_pool`].
    pub fn try_group_avg_pool(&mut self, x: Var, groups: usize) -> Result<Var, ShapeError> {
        shape::group_pool("group_avg_pool", self.shape_of(x), groups)?;
        let [n, c, h, w] = dims4(&self.nodes[x.0].value);
        let per = (c / groups) * h * w;
        let xd = self.nodes[x.0].value.data();
        let mut out = Tensor::zeros(&[n, groups]);
        for i in 0..n * groups {
            out.data_mut()[i] = xd[i * per..(i + 1) * per].iter().sum::<f32>() / per as f32;
        }
        Ok(self.push(Op::GroupAvgPool { x, groups }, out))
    }

    /// Max pool over channel groups and space (the paper's TGMP):
    /// `(N, G·Cg, H, W) → (N, G)`.
    pub fn group_max_pool(&mut self, x: Var, groups: usize) -> Var {
        ok(self.try_group_max_pool(x, groups))
    }

    /// Fallible [`Tape::group_max_pool`].
    pub fn try_group_max_pool(&mut self, x: Var, groups: usize) -> Result<Var, ShapeError> {
        shape::group_pool("group_max_pool", self.shape_of(x), groups)?;
        let [n, c, h, w] = dims4(&self.nodes[x.0].value);
        let per = (c / groups) * h * w;
        let xd = self.nodes[x.0].value.data();
        let mut out = Tensor::zeros(&[n, groups]);
        let mut argmax = vec![0usize; n * groups];
        for i in 0..n * groups {
            let slice = &xd[i * per..(i + 1) * per];
            let (best, &val) = slice
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty group");
            out.data_mut()[i] = val;
            argmax[i] = i * per + best;
        }
        Ok(self.push(Op::GroupMaxPool { x, argmax }, out))
    }

    /// Mean across channels: `(N, C, H, W) → (N, 1, H, W)` (the MEAN of the
    /// paper's spatial attention, Eq. 6).
    pub fn mean_over_channels(&mut self, x: Var) -> Var {
        ok(self.try_mean_over_channels(x))
    }

    /// Fallible [`Tape::mean_over_channels`].
    pub fn try_mean_over_channels(&mut self, x: Var) -> Result<Var, ShapeError> {
        shape::over_channels("mean_over_channels", self.shape_of(x))?;
        let [n, c, h, w] = dims4(&self.nodes[x.0].value);
        let hw = h * w;
        let xd = self.nodes[x.0].value.data();
        let mut out = Tensor::zeros(&[n, 1, h, w]);
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * hw;
                for p in 0..hw {
                    out.data_mut()[s * hw + p] += xd[base + p];
                }
            }
        }
        let inv = 1.0 / c as f32;
        for v in out.data_mut() {
            *v *= inv;
        }
        Ok(self.push(Op::MeanOverChannels(x), out))
    }

    /// Max across channels: `(N, C, H, W) → (N, 1, H, W)` (the MAX of
    /// Eq. 6).
    pub fn max_over_channels(&mut self, x: Var) -> Var {
        ok(self.try_max_over_channels(x))
    }

    /// Fallible [`Tape::max_over_channels`].
    pub fn try_max_over_channels(&mut self, x: Var) -> Result<Var, ShapeError> {
        shape::over_channels("max_over_channels", self.shape_of(x))?;
        let [n, c, h, w] = dims4(&self.nodes[x.0].value);
        let hw = h * w;
        let xd = self.nodes[x.0].value.data();
        let mut out = Tensor::zeros(&[n, 1, h, w]);
        let mut argmax = vec![0usize; n * hw];
        for s in 0..n {
            for p in 0..hw {
                let mut best_c = 0;
                let mut best = f32::NEG_INFINITY;
                for ch in 0..c {
                    let v = xd[(s * c + ch) * hw + p];
                    if v > best {
                        best = v;
                        best_c = ch;
                    }
                }
                out.data_mut()[s * hw + p] = best;
                argmax[s * hw + p] = (s * c + best_c) * hw + p;
            }
        }
        Ok(self.push(Op::MaxOverChannels { x, argmax }, out))
    }

    /// Broadcast-multiplies `(N, C, H, W)` by per-channel weights `(N, C)`.
    pub fn mul_channel(&mut self, x: Var, w: Var) -> Var {
        ok(self.try_mul_channel(x, w))
    }

    /// Fallible [`Tape::mul_channel`].
    pub fn try_mul_channel(&mut self, x: Var, w: Var) -> Result<Var, ShapeError> {
        shape::mul_channel(self.shape_of(x), self.shape_of(w))?;
        let [n, c, h, wd] = dims4(&self.nodes[x.0].value);
        let hw = h * wd;
        let mut out = self.nodes[x.0].value.clone();
        let wv = self.nodes[w.0].value.data();
        for (i, &s) in wv.iter().enumerate().take(n * c) {
            for v in &mut out.data_mut()[i * hw..(i + 1) * hw] {
                *v *= s;
            }
        }
        Ok(self.push(Op::MulChannel { x, w }, out))
    }

    /// Broadcast-multiplies channel *groups* by weights `(N, G)` — the
    /// frame-channel weighting of the first attention stage (Eq. 3).
    pub fn mul_group(&mut self, x: Var, w: Var, groups: usize) -> Var {
        ok(self.try_mul_group(x, w, groups))
    }

    /// Fallible [`Tape::mul_group`].
    pub fn try_mul_group(&mut self, x: Var, w: Var, groups: usize) -> Result<Var, ShapeError> {
        shape::mul_group(self.shape_of(x), self.shape_of(w), groups)?;
        let [n, c, h, wd] = dims4(&self.nodes[x.0].value);
        let per = (c / groups) * h * wd;
        let mut out = self.nodes[x.0].value.clone();
        let wv = self.nodes[w.0].value.data();
        for (i, &s) in wv.iter().enumerate().take(n * groups) {
            for v in &mut out.data_mut()[i * per..(i + 1) * per] {
                *v *= s;
            }
        }
        Ok(self.push(Op::MulGroup { x, w, groups }, out))
    }

    /// Broadcast-multiplies `(N, C, H, W)` by a spatial map `(N, 1, H, W)`
    /// — the application of the spatial attention mask (Eq. 7).
    pub fn mul_spatial(&mut self, x: Var, w: Var) -> Var {
        ok(self.try_mul_spatial(x, w))
    }

    /// Fallible [`Tape::mul_spatial`].
    pub fn try_mul_spatial(&mut self, x: Var, w: Var) -> Result<Var, ShapeError> {
        shape::mul_spatial(self.shape_of(x), self.shape_of(w))?;
        let [n, c, h, wd] = dims4(&self.nodes[x.0].value);
        let hw = h * wd;
        let mut out = self.nodes[x.0].value.clone();
        let wv = self.nodes[w.0].value.data();
        for s in 0..n {
            for ch in 0..c {
                let o = &mut out.data_mut()[(s * c + ch) * hw..(s * c + ch + 1) * hw];
                for (v, m) in o.iter_mut().zip(&wv[s * hw..(s + 1) * hw]) {
                    *v *= m;
                }
            }
        }
        Ok(self.push(Op::MulSpatial { x, w }, out))
    }

    /// Concatenates two `(N, A)` / `(N, B)` matrices into `(N, A+B)`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        ok(self.try_concat_cols(a, b))
    }

    /// Fallible [`Tape::concat_cols`].
    pub fn try_concat_cols(&mut self, a: Var, b: Var) -> Result<Var, ShapeError> {
        shape::concat_cols(self.shape_of(a), self.shape_of(b))?;
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        let (n, fa) = (av.shape()[0], av.shape()[1]);
        let fb = bv.shape()[1];
        let mut out = Tensor::zeros(&[n, fa + fb]);
        for row in 0..n {
            out.data_mut()[row * (fa + fb)..row * (fa + fb) + fa]
                .copy_from_slice(&av.data()[row * fa..(row + 1) * fa]);
            out.data_mut()[row * (fa + fb) + fa..(row + 1) * (fa + fb)]
                .copy_from_slice(&bv.data()[row * fb..(row + 1) * fb]);
        }
        Ok(self.push(Op::ConcatCols(a, b), out))
    }

    /// Concatenates two 4-D tensors along the channel axis.
    pub fn concat_channels(&mut self, a: Var, b: Var) -> Var {
        ok(self.try_concat_channels(a, b))
    }

    /// Fallible [`Tape::concat_channels`].
    pub fn try_concat_channels(&mut self, a: Var, b: Var) -> Result<Var, ShapeError> {
        shape::concat_channels(self.shape_of(a), self.shape_of(b))?;
        let [n, ca, h, w] = dims4(&self.nodes[a.0].value);
        let cb = self.nodes[b.0].value.shape()[1];
        let hw = h * w;
        let mut out = Tensor::zeros(&[n, ca + cb, h, w]);
        for s in 0..n {
            let dst = &mut out.data_mut()[s * (ca + cb) * hw..(s + 1) * (ca + cb) * hw];
            dst[..ca * hw]
                .copy_from_slice(&self.nodes[a.0].value.data()[s * ca * hw..(s + 1) * ca * hw]);
            dst[ca * hw..]
                .copy_from_slice(&self.nodes[b.0].value.data()[s * cb * hw..(s + 1) * cb * hw]);
        }
        Ok(self.push(Op::ConcatChannels(a, b), out))
    }

    /// Takes columns `[start, start+len)` of an `(N, F)` matrix.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        ok(self.try_slice_cols(x, start, len))
    }

    /// Fallible [`Tape::slice_cols`].
    pub fn try_slice_cols(
        &mut self,
        x: Var,
        start: usize,
        len: usize,
    ) -> Result<Var, ShapeError> {
        shape::slice_cols(self.shape_of(x), start, len)?;
        let xv = &self.nodes[x.0].value;
        let (n, f) = (xv.shape()[0], xv.shape()[1]);
        let mut out = Tensor::zeros(&[n, len]);
        for row in 0..n {
            out.data_mut()[row * len..(row + 1) * len]
                .copy_from_slice(&xv.data()[row * f + start..row * f + start + len]);
        }
        Ok(self.push(Op::SliceCols { x, start, len }, out))
    }

    /// Reshapes without copying semantics (gradient reshapes back).
    pub fn reshape(&mut self, x: Var, shape: &[usize]) -> Var {
        ok(self.try_reshape(x, shape))
    }

    /// Fallible [`Tape::reshape`].
    pub fn try_reshape(&mut self, x: Var, new_shape: &[usize]) -> Result<Var, ShapeError> {
        shape::reshape(self.shape_of(x), new_shape)?;
        let v = self.nodes[x.0].value.reshaped(new_shape);
        Ok(self.push(Op::Reshape(x), v))
    }

    /// Mean of all elements → a `[1]`-shaped scalar (loss reduction).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let m = self.nodes[x.0].value.mean();
        self.push(Op::MeanAll(x), Tensor::from_vec(&[1], vec![m]))
    }

    /// Layer normalisation over the last dimension with affine parameters
    /// `gamma`/`beta` of that dimension's length.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        ok(self.try_layer_norm(x, gamma, beta))
    }

    /// Fallible [`Tape::layer_norm`].
    pub fn try_layer_norm(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
    ) -> Result<Var, ShapeError> {
        shape::layer_norm(
            self.shape_of(x),
            self.shape_of(gamma),
            self.shape_of(beta),
        )?;
        let xv = &self.nodes[x.0].value;
        let shape = xv.shape().to_vec();
        let f = shape[shape.len() - 1];
        let rows = xv.len() / f;
        let gv = self.nodes[gamma.0].value.data().to_vec();
        let bv = self.nodes[beta.0].value.data().to_vec();
        let mut out = xv.clone();
        let mut means = vec![0.0_f32; rows];
        let mut rstds = vec![0.0_f32; rows];
        for r in 0..rows {
            let row = &mut out.data_mut()[r * f..(r + 1) * f];
            let mean = row.iter().sum::<f32>() / f as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / f as f32;
            let rstd = 1.0 / (var + 1e-5).sqrt();
            means[r] = mean;
            rstds[r] = rstd;
            for (i, v) in row.iter_mut().enumerate() {
                *v = (*v - mean) * rstd * gv[i] + bv[i];
            }
        }
        Ok(self.push(
            Op::LayerNorm { x, gamma, beta, mean: means, rstd: rstds },
            out,
        ))
    }

    /// Injects an externally computed loss: `value` is the loss value and
    /// `grad` its gradient with respect to `x` (same shape as `x`). Used by
    /// the kinematic loss, whose analytic gradient is computed outside the
    /// tape.
    ///
    /// # Panics
    ///
    /// Panics if `grad`'s shape differs from `x`'s (use
    /// [`Tape::try_external_loss`] for the typed error).
    pub fn external_loss(&mut self, x: Var, value: f32, grad: Tensor) -> Var {
        ok(self.try_external_loss(x, value, grad))
    }

    /// Fallible [`Tape::external_loss`].
    pub fn try_external_loss(
        &mut self,
        x: Var,
        value: f32,
        grad: Tensor,
    ) -> Result<Var, ShapeError> {
        shape::external_loss(self.shape_of(x), grad.shape())?;
        Ok(self.push(Op::External { x, grad }, Tensor::from_vec(&[1], vec![value])))
    }

    fn add_grad(&mut self, v: Var, g: Tensor) {
        #[cfg(feature = "sanitize-numerics")]
        crate::sanitize::check_finite(
            &format!("gradient flowing into tape op `{}`", self.nodes[v.0].op.name()),
            g.data(),
        );
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs reverse-mode differentiation from `loss`, accumulating parameter
    /// gradients into `store`.
    ///
    /// The loss is seeded with a gradient of ones (it is normally a `[1]`
    /// scalar from [`Tape::mean_all`] or [`Tape::external_loss`]).
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        self.backward_with(loss, |id, g| store.accumulate_grad(id, g));
    }

    /// Like [`Tape::backward`], but routes each parameter gradient through
    /// `sink` instead of a [`ParamStore`]. This lets data-parallel training
    /// shards run backward on tapes that only hold a shared `&ParamStore`,
    /// collecting gradients locally for a deterministic fixed-order reduce.
    pub fn backward_with(&mut self, loss: Var, mut sink: impl FnMut(ParamId, &Tensor)) {
        let seed = Tensor::full(self.nodes[loss.0].value.shape(), 1.0);
        self.add_grad(loss, seed);

        for i in (0..self.nodes.len()).rev() {
            let Some(dy) = self.nodes[i].grad.clone() else { continue };
            // Each arm reads values it needs, then routes gradients.
            match &self.nodes[i].op {
                Op::Leaf | Op::Param(_) => {}
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.add_grad(a, dy.clone());
                    self.add_grad(b, dy);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    self.add_grad(a, dy.clone());
                    self.add_grad(b, dy.scale(-1.0));
                }
                Op::MulElem(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = dy.mul(&self.nodes[b.0].value);
                    let db = dy.mul(&self.nodes[a.0].value);
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    self.add_grad(a, dy.scale(s));
                }
                Op::Relu(a) => {
                    let a = *a;
                    let mut dx = dy;
                    kernels().relu_backward(dx.data_mut(), self.nodes[i].value.data());
                    self.add_grad(a, dx);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    let mut dx = dy;
                    kernels().sigmoid_backward(dx.data_mut(), self.nodes[i].value.data());
                    self.add_grad(a, dx);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let mut dx = dy;
                    kernels().tanh_backward(dx.data_mut(), self.nodes[i].value.data());
                    self.add_grad(a, dx);
                }
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let (m, k) = (av.shape()[0], av.shape()[1]);
                    let n = bv.shape()[1];
                    // dA = dY · Bᵀ ; dB = Aᵀ · dY
                    let mut da = Tensor::zeros(&[m, k]);
                    gemm_a_bt(dy.data(), bv.data(), da.data_mut(), m, n, k);
                    let mut db = Tensor::zeros(&[k, n]);
                    gemm_at_b(av.data(), dy.data(), db.data_mut(), k, m, n);
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::AddRowBias { x, bias } => {
                    let (x, bias) = (*x, *bias);
                    let f = self.nodes[bias.0].value.len();
                    let n = dy.len() / f;
                    let mut db = Tensor::zeros(&[f]);
                    for row in 0..n {
                        for (g, d) in db.data_mut().iter_mut().zip(&dy.data()[row * f..]) {
                            *g += d;
                        }
                    }
                    self.add_grad(x, dy);
                    self.add_grad(bias, db);
                }
                Op::Conv2d { x, w, bias, spec } => {
                    let (x, w, bias, spec) = (*x, *w, *bias, *spec);
                    let (dx, dw, db) = conv2d_backward(
                        &self.nodes[x.0].value,
                        &self.nodes[w.0].value,
                        &dy,
                        &spec,
                    );
                    self.add_grad(x, dx);
                    self.add_grad(w, dw);
                    if let Some(b) = bias {
                        let len = db.len();
                        self.add_grad(b, Tensor::from_vec(&[len], db));
                    }
                }
                Op::ConvT2d { x, w, bias, spec } => {
                    let (x, w, bias, spec) = (*x, *w, *bias, *spec);
                    let (dx, dw, db) = conv_transpose2d_backward(
                        &self.nodes[x.0].value,
                        &self.nodes[w.0].value,
                        &dy,
                        &spec,
                    );
                    self.add_grad(x, dx);
                    self.add_grad(w, dw);
                    if let Some(b) = bias {
                        let len = db.len();
                        self.add_grad(b, Tensor::from_vec(&[len], db));
                    }
                }
                Op::ChannelAvgPool(x) => {
                    let x = *x;
                    let [n, c, h, w] = dims4(&self.nodes[x.0].value);
                    let hw = h * w;
                    let mut dx = Tensor::zeros(&[n, c, h, w]);
                    for i in 0..n * c {
                        let g = dy.data()[i] / hw as f32;
                        for v in &mut dx.data_mut()[i * hw..(i + 1) * hw] {
                            *v = g;
                        }
                    }
                    self.add_grad(x, dx);
                }
                Op::ChannelMaxPool { x, argmax } => {
                    let x = *x;
                    let argmax = argmax.clone();
                    let mut dx = Tensor::zeros(self.nodes[x.0].value.shape());
                    for (i, &flat) in argmax.iter().enumerate() {
                        dx.data_mut()[flat] += dy.data()[i];
                    }
                    self.add_grad(x, dx);
                }
                Op::GroupAvgPool { x, groups } => {
                    let (x, groups) = (*x, *groups);
                    let [n, c, h, w] = dims4(&self.nodes[x.0].value);
                    let per = (c / groups) * h * w;
                    let mut dx = Tensor::zeros(&[n, c, h, w]);
                    for i in 0..n * groups {
                        let g = dy.data()[i] / per as f32;
                        for v in &mut dx.data_mut()[i * per..(i + 1) * per] {
                            *v = g;
                        }
                    }
                    self.add_grad(x, dx);
                }
                Op::GroupMaxPool { x, argmax } => {
                    let x = *x;
                    let argmax = argmax.clone();
                    let mut dx = Tensor::zeros(self.nodes[x.0].value.shape());
                    for (i, &flat) in argmax.iter().enumerate() {
                        dx.data_mut()[flat] += dy.data()[i];
                    }
                    self.add_grad(x, dx);
                }
                Op::MeanOverChannels(x) => {
                    let x = *x;
                    let [n, c, h, w] = dims4(&self.nodes[x.0].value);
                    let hw = h * w;
                    let inv = 1.0 / c as f32;
                    let mut dx = Tensor::zeros(&[n, c, h, w]);
                    for s in 0..n {
                        for ch in 0..c {
                            let dst = &mut dx.data_mut()[(s * c + ch) * hw..(s * c + ch + 1) * hw];
                            for (v, g) in dst.iter_mut().zip(&dy.data()[s * hw..(s + 1) * hw]) {
                                *v = g * inv;
                            }
                        }
                    }
                    self.add_grad(x, dx);
                }
                Op::MaxOverChannels { x, argmax } => {
                    let x = *x;
                    let argmax = argmax.clone();
                    let mut dx = Tensor::zeros(self.nodes[x.0].value.shape());
                    for (i, &flat) in argmax.iter().enumerate() {
                        dx.data_mut()[flat] += dy.data()[i];
                    }
                    self.add_grad(x, dx);
                }
                Op::MulChannel { x, w } => {
                    let (x, w) = (*x, *w);
                    let [n, c, h, wd] = dims4(&self.nodes[x.0].value);
                    let hw = h * wd;
                    let xv = self.nodes[x.0].value.clone();
                    let wv = self.nodes[w.0].value.clone();
                    let mut dx = dy.clone();
                    let mut dw = Tensor::zeros(&[n, c]);
                    for i in 0..n * c {
                        let s = wv.data()[i];
                        let mut acc = 0.0;
                        for (g, xval) in dx.data_mut()[i * hw..(i + 1) * hw]
                            .iter_mut()
                            .zip(&xv.data()[i * hw..(i + 1) * hw])
                        {
                            acc += *g * xval;
                            *g *= s;
                        }
                        dw.data_mut()[i] = acc;
                    }
                    self.add_grad(x, dx);
                    self.add_grad(w, dw);
                }
                Op::MulGroup { x, w, groups } => {
                    let (x, w, groups) = (*x, *w, *groups);
                    let [n, c, h, wd] = dims4(&self.nodes[x.0].value);
                    let per = (c / groups) * h * wd;
                    let xv = self.nodes[x.0].value.clone();
                    let wv = self.nodes[w.0].value.clone();
                    let mut dx = dy.clone();
                    let mut dw = Tensor::zeros(&[n, groups]);
                    for i in 0..n * groups {
                        let s = wv.data()[i];
                        let mut acc = 0.0;
                        for (g, xval) in dx.data_mut()[i * per..(i + 1) * per]
                            .iter_mut()
                            .zip(&xv.data()[i * per..(i + 1) * per])
                        {
                            acc += *g * xval;
                            *g *= s;
                        }
                        dw.data_mut()[i] = acc;
                    }
                    self.add_grad(x, dx);
                    self.add_grad(w, dw);
                }
                Op::MulSpatial { x, w } => {
                    let (x, w) = (*x, *w);
                    let [n, c, h, wd] = dims4(&self.nodes[x.0].value);
                    let hw = h * wd;
                    let xv = self.nodes[x.0].value.clone();
                    let wv = self.nodes[w.0].value.clone();
                    let mut dx = dy.clone();
                    let mut dw = Tensor::zeros(&[n, 1, h, wd]);
                    for s in 0..n {
                        for ch in 0..c {
                            let base = (s * c + ch) * hw;
                            for p in 0..hw {
                                let g = dy.data()[base + p];
                                dw.data_mut()[s * hw + p] += g * xv.data()[base + p];
                                dx.data_mut()[base + p] = g * wv.data()[s * hw + p];
                            }
                        }
                    }
                    self.add_grad(x, dx);
                    self.add_grad(w, dw);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let fa = self.nodes[a.0].value.shape()[1];
                    let fb = self.nodes[b.0].value.shape()[1];
                    let n = self.nodes[a.0].value.shape()[0];
                    let mut da = Tensor::zeros(&[n, fa]);
                    let mut db = Tensor::zeros(&[n, fb]);
                    for row in 0..n {
                        da.data_mut()[row * fa..(row + 1) * fa]
                            .copy_from_slice(&dy.data()[row * (fa + fb)..row * (fa + fb) + fa]);
                        db.data_mut()[row * fb..(row + 1) * fb].copy_from_slice(
                            &dy.data()[row * (fa + fb) + fa..(row + 1) * (fa + fb)],
                        );
                    }
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::ConcatChannels(a, b) => {
                    let (a, b) = (*a, *b);
                    let [n, ca, h, w] = dims4(&self.nodes[a.0].value);
                    let cb = self.nodes[b.0].value.shape()[1];
                    let hw = h * w;
                    let mut da = Tensor::zeros(&[n, ca, h, w]);
                    let mut db = Tensor::zeros(&[n, cb, h, w]);
                    for s in 0..n {
                        let src = &dy.data()[s * (ca + cb) * hw..(s + 1) * (ca + cb) * hw];
                        da.data_mut()[s * ca * hw..(s + 1) * ca * hw]
                            .copy_from_slice(&src[..ca * hw]);
                        db.data_mut()[s * cb * hw..(s + 1) * cb * hw]
                            .copy_from_slice(&src[ca * hw..]);
                    }
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::SliceCols { x, start, len } => {
                    let (x, start, len) = (*x, *start, *len);
                    let f = self.nodes[x.0].value.shape()[1];
                    let n = self.nodes[x.0].value.shape()[0];
                    let mut dx = Tensor::zeros(&[n, f]);
                    for row in 0..n {
                        dx.data_mut()[row * f + start..row * f + start + len]
                            .copy_from_slice(&dy.data()[row * len..(row + 1) * len]);
                    }
                    self.add_grad(x, dx);
                }
                Op::Reshape(x) => {
                    let x = *x;
                    let shape = self.nodes[x.0].value.shape().to_vec();
                    self.add_grad(x, dy.reshaped(&shape));
                }
                Op::MeanAll(x) => {
                    let x = *x;
                    let n = self.nodes[x.0].value.len();
                    let g = dy.data()[0] / n as f32;
                    self.add_grad(x, Tensor::full(self.nodes[x.0].value.shape(), g));
                }
                Op::LayerNorm { x, gamma, beta, mean, rstd } => {
                    let (x, gamma, beta) = (*x, *gamma, *beta);
                    let (mean, rstd) = (mean.clone(), rstd.clone());
                    let xv = self.nodes[x.0].value.clone();
                    let gv = self.nodes[gamma.0].value.clone();
                    let f = gv.len();
                    let rows = xv.len() / f;
                    let mut dx = Tensor::zeros(xv.shape());
                    let mut dgamma = Tensor::zeros(&[f]);
                    let mut dbeta = Tensor::zeros(&[f]);
                    let mut dxhat = vec![0.0_f32; f];
                    let kern = kernels();
                    for r in 0..rows {
                        let xr = &xv.data()[r * f..(r + 1) * f];
                        let dyr = &dy.data()[r * f..(r + 1) * f];
                        kern.layer_norm_backward_row(
                            xr,
                            dyr,
                            gv.data(),
                            mean[r],
                            rstd[r],
                            &mut dxhat,
                            &mut dx.data_mut()[r * f..(r + 1) * f],
                            dgamma.data_mut(),
                            dbeta.data_mut(),
                        );
                    }
                    self.add_grad(x, dx);
                    self.add_grad(gamma, dgamma);
                    self.add_grad(beta, dbeta);
                }
                Op::External { x, grad } => {
                    let x = *x;
                    let g = grad.scale(dy.data()[0]);
                    self.add_grad(x, g);
                }
            }
        }

        // Route parameter gradients to the sink in node order.
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                sink(*id, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::rng::stream_rng;

    /// Numeric gradient of `f` with respect to element `idx` of `x0`.
    fn numeric_grad(
        x0: &Tensor,
        idx: usize,
        f: impl Fn(&Tensor) -> f32,
    ) -> f32 {
        let eps = 1e-2;
        let mut xp = x0.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x0.clone();
        xm.data_mut()[idx] -= eps;
        (f(&xp) - f(&xm)) / (2.0 * eps)
    }

    /// Checks the tape gradient of a scalar function built by `build`
    /// against finite differences at a handful of coordinates.
    fn grad_check(x0: Tensor, build: impl Fn(&mut Tape, Var) -> Var) {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = build(&mut tape, x);
        assert_eq!(tape.value(loss).len(), 1, "loss must be scalar");
        tape.backward(loss, &mut store);
        let analytic = tape.grad(x).expect("input grad").clone();
        let eval = |xt: &Tensor| {
            let mut t = Tape::new();
            let v = t.leaf(xt.clone());
            let l = build(&mut t, v);
            t.value(l).data()[0]
        };
        let step = (x0.len() / 7).max(1);
        for idx in (0..x0.len()).step_by(step) {
            let num = numeric_grad(&x0, idx, eval);
            let ana = analytic.data()[idx];
            assert!(
                (ana - num).abs() < 3e-2 * (1.0 + num.abs()),
                "idx {idx}: analytic {ana} vs numeric {num}"
            );
        }
    }

    #[test]
    fn add_mul_scale_grads() {
        let mut rng = stream_rng(1, "g");
        let x0 = Tensor::randn(&[2, 3], 1.0, &mut rng);
        grad_check(x0, |t, x| {
            let y = t.mul(x, x); // x²
            let z = t.scale(y, 3.0);
            let w = t.add(z, x);
            t.mean_all(w)
        });
    }

    #[test]
    fn activation_grads() {
        let mut rng = stream_rng(2, "g");
        let x0 = Tensor::randn(&[3, 4], 1.0, &mut rng);
        grad_check(x0.clone(), |t, x| {
            let y = t.sigmoid(x);
            t.mean_all(y)
        });
        grad_check(x0.clone(), |t, x| {
            let y = t.tanh(x);
            t.mean_all(y)
        });
        grad_check(x0, |t, x| {
            let y = t.relu(x);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn matmul_grads() {
        let mut rng = stream_rng(3, "g");
        let x0 = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 2], 1.0, &mut rng);
        grad_check(x0, move |t, x| {
            let wv = t.leaf(w.clone());
            let y = t.matmul(x, wv);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn pooling_grads() {
        let mut rng = stream_rng(4, "g");
        let x0 = Tensor::randn(&[2, 4, 3, 3], 1.0, &mut rng);
        grad_check(x0.clone(), |t, x| {
            let y = t.channel_avg_pool(x);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
        grad_check(x0.clone(), |t, x| {
            let y = t.channel_max_pool(x);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
        grad_check(x0.clone(), |t, x| {
            let y = t.group_avg_pool(x, 2);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
        grad_check(x0, |t, x| {
            let y = t.group_max_pool(x, 2);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn channel_reduction_grads() {
        let mut rng = stream_rng(5, "g");
        let x0 = Tensor::randn(&[2, 3, 2, 2], 1.0, &mut rng);
        grad_check(x0.clone(), |t, x| {
            let y = t.mean_over_channels(x);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
        grad_check(x0, |t, x| {
            let y = t.max_over_channels(x);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn broadcast_mul_grads() {
        let mut rng = stream_rng(6, "g");
        let x0 = Tensor::randn(&[2, 4, 3, 3], 1.0, &mut rng);
        grad_check(x0.clone(), |t, x| {
            let w = t.channel_avg_pool(x);
            let ws = t.sigmoid(w);
            let y = t.mul_channel(x, ws);
            t.mean_all(y)
        });
        grad_check(x0.clone(), |t, x| {
            let w = t.group_avg_pool(x, 2);
            let ws = t.sigmoid(w);
            let y = t.mul_group(x, ws, 2);
            t.mean_all(y)
        });
        grad_check(x0, |t, x| {
            let m = t.mean_over_channels(x);
            let ms = t.sigmoid(m);
            let y = t.mul_spatial(x, ms);
            t.mean_all(y)
        });
    }

    #[test]
    fn conv_op_grads() {
        let mut rng = stream_rng(7, "g");
        let x0 = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.4, &mut rng);
        grad_check(x0.clone(), move |t, x| {
            let wv = t.leaf(w.clone());
            let spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, pad: 1 };
            let y = t.conv2d(x, wv, None, spec);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
        let wt = Tensor::randn(&[2, 3, 4, 4], 0.3, &mut rng);
        grad_check(x0, move |t, x| {
            let wv = t.leaf(wt.clone());
            let spec = ConvSpec { in_channels: 2, out_channels: 3, kernel: 4, stride: 2, pad: 1 };
            let y = t.conv_transpose2d(x, wv, None, spec);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn concat_slice_reshape_grads() {
        let mut rng = stream_rng(8, "g");
        let x0 = Tensor::randn(&[2, 6], 1.0, &mut rng);
        grad_check(x0.clone(), |t, x| {
            let a = t.slice_cols(x, 0, 3);
            let b = t.slice_cols(x, 3, 3);
            let ab = t.mul(a, b);
            let cat = t.concat_cols(ab, a);
            let sq = t.mul(cat, cat);
            t.mean_all(sq)
        });
        grad_check(x0.clone(), |t, x| {
            let r = t.reshape(x, &[2, 1, 2, 3]);
            let r2 = t.mul(r, r);
            t.mean_all(r2)
        });
        let x4 = Tensor::randn(&[1, 2, 2, 2], 1.0, &mut rng);
        grad_check(x4, |t, x| {
            let y = t.concat_channels(x, x);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn layer_norm_grads() {
        let mut rng = stream_rng(9, "g");
        let x0 = Tensor::randn(&[3, 5], 1.0, &mut rng);
        grad_check(x0, |t, x| {
            let gamma = t.leaf(Tensor::full(&[5], 1.3));
            let beta = t.leaf(Tensor::full(&[5], -0.2));
            let y = t.layer_norm(x, gamma, beta);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]));
        let gamma = tape.leaf(Tensor::full(&[4], 1.0));
        let beta = tape.leaf(Tensor::full(&[4], 0.0));
        let y = tape.layer_norm(x, gamma, beta);
        let data = tape.value(y).data();
        let mean: f32 = data.iter().sum::<f32>() / 4.0;
        let var: f32 = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn external_loss_injects_gradient() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let g = Tensor::from_vec(&[2], vec![0.5, -1.5]);
        let loss = tape.external_loss(x, 7.0, g.clone());
        assert_eq!(tape.value(loss).data(), &[7.0]);
        let scaled = tape.scale(loss, 2.0);
        tape.backward(scaled, &mut store);
        let dx = tape.grad(x).unwrap();
        assert_eq!(dx.data(), &[1.0, -3.0]);
    }

    #[test]
    fn param_gradients_accumulate_into_store() {
        let mut store = ParamStore::new();
        let w_id = store.add("w", Tensor::from_vec(&[2, 1], vec![1.0, -1.0]));
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[1, 2], vec![3.0, 4.0]));
        let w = tape.param(&store, w_id);
        let y = tape.matmul(x, w);
        let loss = tape.mean_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(store.grad(w_id).data(), &[3.0, 4.0]);
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // y = x + x ⇒ dy/dx = 2.
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[1], vec![5.0]));
        let y = tape.add(x, x);
        let loss = tape.mean_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(tape.grad(x).unwrap().data(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "external_loss")]
    fn external_loss_shape_checked() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[3]));
        tape.external_loss(x, 0.0, Tensor::zeros(&[2]));
    }

    #[test]
    fn mismatched_graph_rejected_at_construction() {
        // The fallible builders return a typed error naming the op; the
        // tape stays usable afterwards (the bad op pushed no node).
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(&[3, 4]));
        let b = tape.leaf(Tensor::zeros(&[5, 2]));
        let e = tape.try_matmul(a, b).unwrap_err();
        assert_eq!(e.op(), "matmul");
        assert!(e.to_string().contains("inner dimensions"), "{e}");

        let e = tape.try_add(a, b).unwrap_err();
        assert_eq!(e.op(), "add");

        let x = tape.leaf(Tensor::zeros(&[1, 2, 4, 4]));
        let w = tape.leaf(Tensor::zeros(&[3, 2, 3, 3]));
        let bad_spec =
            ConvSpec { in_channels: 4, out_channels: 3, kernel: 3, stride: 1, pad: 1 };
        let e = tape.try_conv2d(x, w, None, bad_spec).unwrap_err();
        assert_eq!(e.op(), "conv2d");

        // A good graph still builds on the same tape after rejections.
        let ok_spec =
            ConvSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, pad: 1 };
        let y = tape.try_conv2d(x, w, None, ok_spec).expect("valid graph");
        assert_eq!(tape.value(y).shape(), &[1, 3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn infallible_builder_panics_with_op_name() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(&[3, 4]));
        let b = tape.leaf(Tensor::zeros(&[5, 2]));
        tape.matmul(a, b);
    }
}
