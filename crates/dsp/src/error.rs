//! Typed errors for DSP operations.
//!
//! [`DspError`] is the crate-level error of the workspace's `MmHandError`
//! hierarchy; it currently wraps the filter-design error and covers
//! degenerate (empty) signal inputs for the fallible entry points.

use crate::filter::DesignFilterError;
use std::fmt;

/// An error from a DSP entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DspError {
    /// Filter design failed (invalid order, band edges, or an unstable
    /// result).
    Design(DesignFilterError),
    /// An operation received an empty signal.
    EmptySignal {
        /// The operation that rejected the input.
        op: &'static str,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::Design(e) => write!(f, "{e}"),
            DspError::EmptySignal { op } => write!(f, "{op}: empty input signal"),
        }
    }
}

impl std::error::Error for DspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DspError::Design(e) => Some(e),
            DspError::EmptySignal { .. } => None,
        }
    }
}

impl From<DesignFilterError> for DspError {
    fn from(e: DesignFilterError) -> Self {
        DspError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::ButterworthDesign;

    #[test]
    fn design_errors_convert_and_display() {
        let bad = ButterworthDesign {
            order: 7,
            low_hz: 1000.0,
            high_hz: 4000.0,
            sample_rate_hz: 20_000.0,
        };
        let e: DspError = bad.design().unwrap_err().into();
        assert!(matches!(e, DspError::Design(_)));
        assert!(e.to_string().contains("invalid filter design"));
    }

    #[test]
    fn empty_signal_names_the_op() {
        let e = DspError::EmptySignal { op: "fft" };
        assert!(e.to_string().contains("fft"));
    }
}
