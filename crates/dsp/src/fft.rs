//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! This is the workhorse behind the range-FFT, Doppler-FFT and angle-FFT of
//! the pre-processing pipeline. Sizes must be powers of two; callers that
//! have other lengths zero-pad with [`zero_pad_pow2`].
//!
//! Transforms execute against an [`FftPlan`]: twiddle factors and the
//! bit-reverse permutation are computed once per size and cached in a
//! process-wide table ([`plan`]), so the per-call cost is butterflies only.
//! The twiddle tables are generated with the exact multiply recurrence the
//! original on-the-fly loop used, which keeps planned transforms bitwise
//! identical to the unplanned reference (asserted by proptest below).
//!
//! The butterfly stages themselves execute through the process-wide
//! [`mmhand_kernels`] backend (scalar or SIMD). Both backends are bitwise
//! identical — the SIMD stage evaluates the same per-butterfly op sequence
//! in parallel lanes — so backend choice never changes a single output bit
//! (asserted by proptest below). Tests and benches can pin a backend with
//! [`FftPlan::forward_with`] / [`FftPlan::inverse_with`].

use mmhand_kernels::Kernels;
use mmhand_math::Complex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Returns the smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Zero-pads `x` to the next power-of-two length.
pub fn zero_pad_pow2(x: &[Complex]) -> Vec<Complex> {
    // audit: pool-exempt — owned return value; hot callers use zero_pad_pow2_into
    let mut out = Vec::with_capacity(next_pow2(x.len()));
    out.extend_from_slice(x);
    out.resize(out.capacity(), Complex::ZERO);
    out
}

/// Zero-pads `x` to the next power-of-two length into a caller-provided
/// (typically pooled) buffer, replacing its contents.
pub fn zero_pad_pow2_into(x: &[Complex], out: &mut Vec<Complex>) {
    out.clear();
    out.extend_from_slice(x);
    out.resize(next_pow2(x.len()), Complex::ZERO);
}

/// With `sanitize-numerics`, panics if an FFT output bin is non-finite —
/// which (since the butterflies are finite arithmetic) means the *input*
/// carried NaN/Inf, caught here at the first transform instead of after it
/// has smeared across the whole spectrum.
#[cfg(feature = "sanitize-numerics")]
fn check_finite(context: &str, x: &[Complex]) {
    for (i, c) in x.iter().enumerate() {
        if !c.re.is_finite() || !c.im.is_finite() {
            // audit: allow(no_panic) — the sanitizer's whole job is to trap numeric poison at the transform
            panic!("numeric poison in {context}: bin {i} is {}+{}i", c.re, c.im);
        }
    }
}

#[cfg(not(feature = "sanitize-numerics"))]
#[inline(always)]
fn check_finite(_context: &str, _x: &[Complex]) {}

/// A precomputed radix-2 FFT of one size: bit-reverse swap pairs plus
/// per-stage twiddle tables for both transform directions.
///
/// Forward and inverse twiddles are stored separately (not conjugated from
/// one table) and each table is filled by the same `w *= wlen` recurrence
/// the reference transform iterates, so a planned transform applies
/// bit-for-bit the same factors in the same order.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// `(i, j)` index pairs with `j > i`, applied as swaps.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, stages concatenated: `len/2` entries per stage.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two. Prefer [`plan`], which caches.
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n), "FFT length {n} is not a power of two");
        let mut swaps = Vec::new();
        if n > 1 {
            let bits = n.trailing_zeros();
            for i in 0..n {
                let j = i.reverse_bits() >> (usize::BITS - bits);
                if j > i {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        FftPlan { n, swaps, fwd: twiddles(n, false), inv: twiddles(n, true) }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the trivial length-1 plan (kept for the
    /// conventional `len`/`is_empty` pairing; length 0 is not planable).
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place forward FFT via the process-selected kernel backend.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan length.
    pub fn forward(&self, x: &mut [Complex]) {
        fft_points_histogram().observe(self.n as f64);
        self.forward_with(mmhand_kernels::kernels(), x);
    }

    /// In-place inverse FFT (including the `1/N` normalisation) via the
    /// process-selected kernel backend.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan length.
    pub fn inverse(&self, x: &mut [Complex]) {
        fft_points_histogram().observe(self.n as f64);
        self.inverse_with(mmhand_kernels::kernels(), x);
    }

    /// [`forward`](Self::forward) pinned to an explicit kernel backend —
    /// bitwise identical for every backend; used by cross-backend tests and
    /// per-backend microbenches.
    pub fn forward_with(&self, kern: &dyn Kernels, x: &mut [Complex]) {
        self.run(kern, x, &self.fwd);
        check_finite("forward FFT output", x);
    }

    /// [`inverse`](Self::inverse) pinned to an explicit kernel backend.
    pub fn inverse_with(&self, kern: &dyn Kernels, x: &mut [Complex]) {
        self.run(kern, x, &self.inv);
        let n = x.len() as f32;
        for v in x.iter_mut() {
            *v = *v / n;
        }
        check_finite("inverse FFT output", x);
    }

    fn run(&self, kern: &dyn Kernels, x: &mut [Complex], table: &[Complex]) {
        let n = self.n;
        assert!(x.len() == n, "FFT buffer length {} does not match plan length {n}", x.len());
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            x.swap(i as usize, j as usize);
        }
        let mut len = 2;
        let mut offset = 0;
        while len <= n {
            let half = len / 2;
            kern.fft_stage(x, &table[offset..offset + half], len);
            offset += half;
            len <<= 1;
        }
    }
}

/// Transform-size histogram suffixed with the active kernel backend
/// (`dsp.fft.points.scalar` / `dsp.fft.points.simd`), cached so the hot
/// path never formats a metric name.
fn fft_points_histogram() -> &'static mmhand_telemetry::Histogram {
    static H: OnceLock<mmhand_telemetry::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        mmhand_telemetry::size_histogram(&format!(
            "dsp.fft.points.{}",
            mmhand_kernels::backend_name()
        ))
    })
}

/// Concatenated per-stage twiddle tables for length `n`, filled with the
/// reference transform's exact recurrence (`w = ONE; w *= wlen; …`).
fn twiddles(n: usize, inverse: bool) -> Vec<Complex> {
    // audit: pool-exempt — one-time plan construction, cached per size
    let mut table = Vec::with_capacity(n.saturating_sub(1));
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::from_angle(ang);
        let mut w = Complex::ONE;
        for _ in 0..len / 2 {
            table.push(w);
            w *= wlen;
        }
        len <<= 1;
    }
    table
}

/// Returns the cached plan for length `n`, building it on first use.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn plan(n: usize) -> Arc<FftPlan> {
    static CACHE: OnceLock<RwLock<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(p) = cache.read().expect("FFT plan cache lock").get(&n) {
        plan_cache_metrics().hits.inc();
        return p.clone();
    }
    plan_cache_metrics().misses.inc();
    let built = Arc::new(FftPlan::new(n));
    let mut map = cache.write().expect("FFT plan cache lock");
    map.entry(n).or_insert(built).clone()
}

struct PlanCacheMetrics {
    hits: mmhand_telemetry::Counter,
    misses: mmhand_telemetry::Counter,
}

fn plan_cache_metrics() -> &'static PlanCacheMetrics {
    static METRICS: OnceLock<PlanCacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PlanCacheMetrics {
        hits: mmhand_telemetry::counter("dsp.fft.plan_cache.hits"),
        misses: mmhand_telemetry::counter("dsp.fft.plan_cache.misses"),
    })
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft_inplace(x: &mut [Complex]) {
    plan(x.len()).forward(x);
}

/// In-place inverse FFT (including the `1/N` normalisation).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn ifft_inplace(x: &mut [Complex]) {
    plan(x.len()).inverse(x);
}

/// Forward FFT into a caller-provided (typically pooled) buffer, replacing
/// its contents; the input is left untouched.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft_into(x: &[Complex], out: &mut Vec<Complex>) {
    out.clear();
    out.extend_from_slice(x);
    fft_inplace(out);
}

/// Inverse FFT into a caller-provided (typically pooled) buffer, replacing
/// its contents; the input is left untouched.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn ifft_into(x: &[Complex], out: &mut Vec<Complex>) {
    out.clear();
    out.extend_from_slice(x);
    ifft_inplace(out);
}

/// Forward FFT returning a new vector.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut out = Vec::new();
    fft_into(x, &mut out);
    out
}

/// Inverse FFT returning a new vector (including the `1/N` normalisation).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut out = Vec::new();
    ifft_into(x, &mut out);
    out
}

/// FFT of a real-valued signal (converts to complex then transforms).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft_real(x: &[f32]) -> Vec<Complex> {
    let mut buf: Vec<Complex> = x.iter().map(|&re| Complex::new(re, 0.0)).collect();
    fft_inplace(&mut buf);
    buf
}

/// Swaps the two halves of a spectrum so DC moves to the centre — the usual
/// presentation for Doppler and angle spectra where negative frequencies
/// (approaching motion / negative angles) sit to the left.
pub fn fft_shift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    // audit: pool-exempt — owned return value; hot callers use fft_shift_inplace
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// [`fft_shift`] as a pure in-place permutation (a `rotate_left` by
/// `⌈n/2⌉`), for hot paths that shift a pooled buffer.
pub fn fft_shift_inplace<T>(x: &mut [T]) {
    let half = x.len().div_ceil(2);
    x.rotate_left(half);
}

/// Magnitude of each bin.
pub fn magnitude(x: &[Complex]) -> Vec<f32> {
    x.iter().map(|c| c.abs()).collect()
}

/// Power (squared magnitude) of each bin.
pub fn power(x: &[Complex]) -> Vec<f32> {
    x.iter().map(|c| c.norm_sqr()).collect()
}

/// The original unplanned transform, kept as the bitwise reference the
/// plan-identity tests compare against.
#[cfg(test)]
fn transform(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(is_pow2(n), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }

    // Danielson–Lanczos butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for j in 0..len / 2 {
                let u = x[i + j];
                let v = x[i + j + len / 2] * w;
                x[i + j] = u + v;
                x[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TAU: f32 = 2.0 * std::f32::consts::PI;

    fn tone(n: usize, k: f32, amp: f32) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::from_polar(amp, TAU * k * i as f32 / n as f32))
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spec = fft(&x);
        for bin in spec {
            assert!((bin - Complex::ONE).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_in_bin_zero() {
        let x = vec![Complex::ONE; 16];
        let spec = fft(&x);
        assert!((spec[0].re - 16.0).abs() < 1e-4);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-4);
        }
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        let n = 128;
        for k in [1usize, 7, 31, 64, 100] {
            let spec = fft(&tone(n, k as f32, 2.0));
            let peak = (0..n)
                .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
                .unwrap();
            assert_eq!(peak, k, "tone bin {k}");
            assert!((spec[k].abs() - 2.0 * n as f32).abs() < 1e-2);
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a = tone(n, 3.0, 1.0);
        let b = tone(n, 9.0, 0.5);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fs = fft(&sum);
        for i in 0..n {
            assert!((fs[i] - (fa[i] + fb[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn fft_shift_even_and_odd() {
        assert_eq!(fft_shift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fft_shift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn fft_shift_inplace_matches_copying_shift() {
        for n in 0..9usize {
            let src: Vec<usize> = (0..n).collect();
            let mut inplace = src.clone();
            fft_shift_inplace(&mut inplace);
            assert_eq!(inplace, fft_shift(&src), "length {n}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_inplace(&mut x);
    }

    #[test]
    #[should_panic(expected = "does not match plan length")]
    fn plan_rejects_mismatched_buffer() {
        let p = FftPlan::new(8);
        let mut x = vec![Complex::ZERO; 4];
        p.forward(&mut x);
    }

    #[test]
    fn plan_cache_returns_shared_plans() {
        let a = plan(64);
        let b = plan(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn zero_pad_reaches_pow2() {
        let x = vec![Complex::ONE; 12];
        let padded = zero_pad_pow2(&x);
        assert_eq!(padded.len(), 16);
        assert_eq!(&padded[..12], &x[..]);
        assert!(padded[12..].iter().all(|c| *c == Complex::ZERO));

        let mut reused = vec![Complex::ONE; 3];
        zero_pad_pow2_into(&x, &mut reused);
        assert_eq!(reused, padded);
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        let xs: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
        let a = fft_real(&xs);
        let b = fft(&xs.iter().map(|&r| Complex::new(r, 0.0)).collect::<Vec<_>>());
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-6);
        }
    }

    #[cfg(not(feature = "sanitize-numerics"))]
    #[test]
    fn without_the_sanitizer_poison_propagates_silently() {
        let mut sig = tone(16, 3.0, 1.0);
        sig[5].re = f32::NAN;
        let spec = fft(&sig);
        assert!(spec.iter().any(|c| c.re.is_nan() || c.im.is_nan()));
    }

    proptest! {
        #[test]
        fn round_trip_recovers_signal(
            xs in proptest::collection::vec((-10f32..10.0, -10f32..10.0), 1..6usize)
        ) {
            // Build a power-of-two signal from arbitrary complex samples.
            let sig: Vec<Complex> = xs.iter().map(|&(r, i)| Complex::new(r, i)).collect();
            let sig = zero_pad_pow2(&sig);
            let back = ifft(&fft(&sig));
            for (a, b) in sig.iter().zip(&back) {
                prop_assert!((*a - *b).abs() < 1e-3);
            }
        }

        /// Planned transforms (twiddle tables + cached permutation) must be
        /// *bitwise* identical to the unplanned reference loop, both
        /// directions, all pooled-era sizes — under either
        /// `sanitize-numerics` state (the suite runs in both CI jobs).
        #[test]
        fn planned_fft_is_bitwise_identical_to_reference(
            log_n in 0u32..9,
            xs in proptest::collection::vec((-10f32..10.0, -10f32..10.0), 256usize),
            inverse_flag in 0usize..2,
        ) {
            let n = 1usize << log_n;
            let inverse = inverse_flag == 1;
            let sig: Vec<Complex> = xs[..n].iter().map(|&(r, i)| Complex::new(r, i)).collect();

            let mut reference = sig.clone();
            transform(&mut reference, inverse);

            let mut planned = sig;
            let p = plan(n);
            if inverse {
                p.inverse(&mut planned);
                let scale = n as f32;
                // The public path normalises; undo with the same op order.
                for v in reference.iter_mut() {
                    *v = *v / scale;
                }
            } else {
                p.forward(&mut planned);
            }

            for (i, (a, b)) in planned.iter().zip(&reference).enumerate() {
                prop_assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "bin {i}: planned {a:?} != reference {b:?}"
                );
            }
        }

        /// Scalar and SIMD butterfly stages must agree *bitwise* (a ULP
        /// distance of exactly zero) on whole transforms, both directions,
        /// under either `sanitize-numerics` state. Passes trivially on CPUs
        /// without a SIMD backend.
        #[test]
        fn fft_backends_are_bitwise_identical(
            log_n in 0u32..10,
            xs in proptest::collection::vec((-10f32..10.0, -10f32..10.0), 512usize),
            inverse_flag in 0usize..2,
        ) {
            let Some(simd) = mmhand_kernels::simd_kernels() else { return Ok(()); };
            let scalar = mmhand_kernels::scalar_kernels();
            let n = 1usize << log_n;
            let sig: Vec<Complex> = xs[..n].iter().map(|&(r, i)| Complex::new(r, i)).collect();
            let p = plan(n);
            let mut a = sig.clone();
            let mut b = sig;
            if inverse_flag == 1 {
                p.inverse_with(scalar, &mut a);
                p.inverse_with(simd, &mut b);
            } else {
                p.forward_with(scalar, &mut a);
                p.forward_with(simd, &mut b);
            }
            for (i, (u, v)) in a.iter().zip(&b).enumerate() {
                prop_assert!(
                    u.re.to_bits() == v.re.to_bits() && u.im.to_bits() == v.im.to_bits(),
                    "bin {i}: scalar {u:?} != simd {v:?}"
                );
            }
        }

        #[test]
        fn fft_into_matches_owned_fft(
            xs in proptest::collection::vec((-10f32..10.0, -10f32..10.0), 16usize),
        ) {
            let sig: Vec<Complex> = xs.iter().map(|&(r, i)| Complex::new(r, i)).collect();
            let owned = fft(&sig);
            let mut reused = vec![Complex::ONE; 3];
            fft_into(&sig, &mut reused);
            prop_assert_eq!(&owned, &reused);
            let owned_inv = ifft(&owned);
            ifft_into(&owned, &mut reused);
            prop_assert_eq!(owned_inv, reused);
        }

        #[cfg(feature = "sanitize-numerics")]
        #[test]
        fn poisoned_input_is_trapped_at_the_transform(
            bin in 0usize..16,
            inf in 0usize..2,
            imag in 0usize..2,
        ) {
            let mut sig = tone(16, 3.0, 1.0);
            let poison = if inf == 1 { f32::INFINITY } else { f32::NAN };
            if imag == 1 {
                sig[bin].im = poison;
            } else {
                sig[bin].re = poison;
            }
            let trapped =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fft(&sig)));
            prop_assert!(trapped.is_err(), "poison at bin {bin} was not trapped");
        }

        #[test]
        fn parseval_energy_is_preserved(
            xs in proptest::collection::vec((-5f32..5.0, -5f32..5.0), 8usize)
        ) {
            let sig: Vec<Complex> = xs.iter().map(|&(r, i)| Complex::new(r, i)).collect();
            let spec = fft(&sig);
            let time_energy: f32 = sig.iter().map(|c| c.norm_sqr()).sum();
            let freq_energy: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / sig.len() as f32;
            prop_assert!((time_energy - freq_energy).abs() < 1e-2 * (1.0 + time_energy));
        }
    }
}
