//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! This is the workhorse behind the range-FFT, Doppler-FFT and angle-FFT of
//! the pre-processing pipeline. Sizes must be powers of two; callers that
//! have other lengths zero-pad with [`zero_pad_pow2`].

use mmhand_math::Complex;

/// Returns the smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Zero-pads `x` to the next power-of-two length.
pub fn zero_pad_pow2(x: &[Complex]) -> Vec<Complex> {
    let mut out = x.to_vec();
    out.resize(next_pow2(x.len()), Complex::ZERO);
    out
}

/// With `sanitize-numerics`, panics if an FFT output bin is non-finite —
/// which (since the butterflies are finite arithmetic) means the *input*
/// carried NaN/Inf, caught here at the first transform instead of after it
/// has smeared across the whole spectrum.
#[cfg(feature = "sanitize-numerics")]
fn check_finite(context: &str, x: &[Complex]) {
    for (i, c) in x.iter().enumerate() {
        if !c.re.is_finite() || !c.im.is_finite() {
            // audit: allow(no_panic) — the sanitizer's whole job is to trap numeric poison at the transform
            panic!("numeric poison in {context}: bin {i} is {}+{}i", c.re, c.im);
        }
    }
}

#[cfg(not(feature = "sanitize-numerics"))]
#[inline(always)]
fn check_finite(_context: &str, _x: &[Complex]) {}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft_inplace(x: &mut [Complex]) {
    transform(x, false);
    check_finite("forward FFT output", x);
}

/// In-place inverse FFT (including the `1/N` normalisation).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn ifft_inplace(x: &mut [Complex]) {
    transform(x, true);
    let n = x.len() as f32;
    for v in x.iter_mut() {
        *v = *v / n;
    }
    check_finite("inverse FFT output", x);
}

/// Forward FFT returning a new vector.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut out = x.to_vec();
    fft_inplace(&mut out);
    out
}

/// Inverse FFT returning a new vector (including the `1/N` normalisation).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut out = x.to_vec();
    ifft_inplace(&mut out);
    out
}

/// FFT of a real-valued signal (converts to complex then transforms).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft_real(x: &[f32]) -> Vec<Complex> {
    let mut buf: Vec<Complex> = x.iter().map(|&re| Complex::new(re, 0.0)).collect();
    fft_inplace(&mut buf);
    buf
}

/// Swaps the two halves of a spectrum so DC moves to the centre — the usual
/// presentation for Doppler and angle spectra where negative frequencies
/// (approaching motion / negative angles) sit to the left.
pub fn fft_shift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Magnitude of each bin.
pub fn magnitude(x: &[Complex]) -> Vec<f32> {
    x.iter().map(|c| c.abs()).collect()
}

/// Power (squared magnitude) of each bin.
pub fn power(x: &[Complex]) -> Vec<f32> {
    x.iter().map(|c| c.norm_sqr()).collect()
}

fn transform(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(is_pow2(n), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }

    // Danielson–Lanczos butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for j in 0..len / 2 {
                let u = x[i + j];
                let v = x[i + j + len / 2] * w;
                x[i + j] = u + v;
                x[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TAU: f32 = 2.0 * std::f32::consts::PI;

    fn tone(n: usize, k: f32, amp: f32) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::from_polar(amp, TAU * k * i as f32 / n as f32))
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spec = fft(&x);
        for bin in spec {
            assert!((bin - Complex::ONE).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_in_bin_zero() {
        let x = vec![Complex::ONE; 16];
        let spec = fft(&x);
        assert!((spec[0].re - 16.0).abs() < 1e-4);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-4);
        }
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        let n = 128;
        for k in [1usize, 7, 31, 64, 100] {
            let spec = fft(&tone(n, k as f32, 2.0));
            let peak = (0..n)
                .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
                .unwrap();
            assert_eq!(peak, k, "tone bin {k}");
            assert!((spec[k].abs() - 2.0 * n as f32).abs() < 1e-2);
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a = tone(n, 3.0, 1.0);
        let b = tone(n, 9.0, 0.5);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fs = fft(&sum);
        for i in 0..n {
            assert!((fs[i] - (fa[i] + fb[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn fft_shift_even_and_odd() {
        assert_eq!(fft_shift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fft_shift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_inplace(&mut x);
    }

    #[test]
    fn zero_pad_reaches_pow2() {
        let x = vec![Complex::ONE; 12];
        let padded = zero_pad_pow2(&x);
        assert_eq!(padded.len(), 16);
        assert_eq!(&padded[..12], &x[..]);
        assert!(padded[12..].iter().all(|c| *c == Complex::ZERO));
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        let xs: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
        let a = fft_real(&xs);
        let b = fft(&xs.iter().map(|&r| Complex::new(r, 0.0)).collect::<Vec<_>>());
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-6);
        }
    }

    #[cfg(not(feature = "sanitize-numerics"))]
    #[test]
    fn without_the_sanitizer_poison_propagates_silently() {
        let mut sig = tone(16, 3.0, 1.0);
        sig[5].re = f32::NAN;
        let spec = fft(&sig);
        assert!(spec.iter().any(|c| c.re.is_nan() || c.im.is_nan()));
    }

    proptest! {
        #[test]
        fn round_trip_recovers_signal(
            xs in proptest::collection::vec((-10f32..10.0, -10f32..10.0), 1..6usize)
        ) {
            // Build a power-of-two signal from arbitrary complex samples.
            let sig: Vec<Complex> = xs.iter().map(|&(r, i)| Complex::new(r, i)).collect();
            let sig = zero_pad_pow2(&sig);
            let back = ifft(&fft(&sig));
            for (a, b) in sig.iter().zip(&back) {
                prop_assert!((*a - *b).abs() < 1e-3);
            }
        }

        #[cfg(feature = "sanitize-numerics")]
        #[test]
        fn poisoned_input_is_trapped_at_the_transform(
            bin in 0usize..16,
            inf in 0usize..2,
            imag in 0usize..2,
        ) {
            let mut sig = tone(16, 3.0, 1.0);
            let poison = if inf == 1 { f32::INFINITY } else { f32::NAN };
            if imag == 1 {
                sig[bin].im = poison;
            } else {
                sig[bin].re = poison;
            }
            let trapped =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fft(&sig)));
            prop_assert!(trapped.is_err(), "poison at bin {bin} was not trapped");
        }

        #[test]
        fn parseval_energy_is_preserved(
            xs in proptest::collection::vec((-5f32..5.0, -5f32..5.0), 8usize)
        ) {
            let sig: Vec<Complex> = xs.iter().map(|&(r, i)| Complex::new(r, i)).collect();
            let spec = fft(&sig);
            let time_energy: f32 = sig.iter().map(|c| c.norm_sqr()).sum();
            let freq_energy: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / sig.len() as f32;
            prop_assert!((time_energy - freq_energy).abs() < 1e-2 * (1.0 + time_energy));
        }
    }
}
