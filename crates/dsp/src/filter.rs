//! IIR Butterworth band-pass filtering.
//!
//! The paper removes environmental interference by running the raw IF signal
//! through an **8th-order band-pass Butterworth filter** that keeps only the
//! IF frequencies corresponding to the hand's range band (§III). This module
//! implements the classic design chain — analog low-pass prototype →
//! low-pass-to-band-pass transform → bilinear transform with pre-warping —
//! and realises the result as cascaded direct-form-II-transposed biquads.
//!
//! Design math runs in `f64` for numerical robustness; filtering runs in
//! `f32` to match the rest of the pipeline.
//!
//! Complex (two-plane) batch filtering executes through the process-wide
//! [`mmhand_kernels`] backend: the SIMD backend runs the real and imaginary
//! cascades in parallel lanes with the exact scalar op sequence per sample,
//! so backend choice never changes a single output bit (asserted by
//! proptest below).

use mmhand_kernels::{BiquadCoeffs, Kernels};
use std::fmt;

/// Error returned by [`ButterworthDesign::design`] for invalid parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DesignFilterError {
    message: String,
}

impl fmt::Display for DesignFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter design: {}", self.message)
    }
}

impl std::error::Error for DesignFilterError {}

/// f64 complex number used only during filter design.
#[derive(Clone, Copy, Debug, Default)]
struct C64 {
    re: f64,
    im: f64,
}

impl C64 {
    const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    fn from_angle(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: C64) -> C64 {
        C64::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    fn scale(self, s: f64) -> C64 {
        C64::new(self.re * s, self.im * s)
    }

    fn div(self, o: C64) -> C64 {
        let n = o.re * o.re + o.im * o.im;
        C64::new(
            (self.re * o.re + self.im * o.im) / n,
            (self.im * o.re - self.re * o.im) / n,
        )
    }

    fn sqrt(self) -> C64 {
        let r = (self.re * self.re + self.im * self.im).sqrt();
        let theta = self.im.atan2(self.re) * 0.5;
        C64::new(r.sqrt() * theta.cos(), r.sqrt() * theta.sin())
    }

    fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

/// One second-order IIR section with direct-form-II-transposed state.
///
/// Coefficients follow the convention
/// `y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f32; 3],
    /// Feedback coefficients `[a1, a2]` (a0 is normalised to 1).
    pub a: [f32; 2],
    s1: f32,
    s2: f32,
}

impl Biquad {
    /// Creates a section from normalised coefficients.
    pub fn new(b: [f32; 3], a: [f32; 2]) -> Self {
        Biquad { b, a, s1: 0.0, s2: 0.0 }
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f32) -> f32 {
        let y = self.b[0] * x + self.s1;
        self.s1 = self.b[1] * x - self.a[0] * y + self.s2;
        self.s2 = self.b[2] * x - self.a[1] * y;
        y
    }

    /// Clears the internal delay state.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }

    /// Returns `true` when both poles are strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury stability criterion for a quadratic: |a2| < 1 and |a1| < 1 + a2.
        let (a1, a2) = (self.a[0], self.a[1]);
        a2.abs() < 1.0 && a1.abs() < 1.0 + a2
    }
}

/// Butterworth band-pass design parameters.
///
/// # Examples
///
/// ```
/// use mmhand_dsp::filter::ButterworthDesign;
///
/// // The paper's hand-isolation filter: 8th order, pass 20–60 cm of range
/// // expressed as IF frequencies; here in plain Hz for illustration.
/// let filt = ButterworthDesign {
///     order: 8,
///     low_hz: 1_000.0,
///     high_hz: 4_000.0,
///     sample_rate_hz: 20_000.0,
/// }
/// .design()?;
/// assert!(filt.is_stable());
/// # Ok::<(), mmhand_dsp::filter::DesignFilterError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ButterworthDesign {
    /// Total band-pass filter order; must be even (prototype order is half).
    pub order: usize,
    /// Lower pass-band edge in Hz.
    pub low_hz: f64,
    /// Upper pass-band edge in Hz.
    pub high_hz: f64,
    /// Sampling rate in Hz.
    pub sample_rate_hz: f64,
}

impl ButterworthDesign {
    /// Designs the band-pass filter.
    ///
    /// # Errors
    ///
    /// Returns an error when the order is zero or odd, the band edges are
    /// not strictly increasing, or an edge is at/above Nyquist.
    pub fn design(self) -> Result<BandpassFilter, DesignFilterError> {
        let err = |m: &str| Err(DesignFilterError { message: m.to_string() });
        if self.order == 0 || !self.order.is_multiple_of(2) {
            return err("band-pass order must be a positive even number");
        }
        if !(self.low_hz > 0.0 && self.high_hz > self.low_hz) {
            return err("band edges must satisfy 0 < low < high");
        }
        let nyquist = self.sample_rate_hz / 2.0;
        if self.high_hz >= nyquist {
            return err("upper band edge must be below Nyquist");
        }

        let n = self.order / 2; // analog prototype order
        let fs = self.sample_rate_hz;
        // Pre-warped analog band edges.
        let warp = |f: f64| 2.0 * fs * (std::f64::consts::PI * f / fs).tan();
        let w1 = warp(self.low_hz);
        let w2 = warp(self.high_hz);
        let w0 = (w1 * w2).sqrt();
        let bw = w2 - w1;

        // Analog low-pass prototype poles on the unit circle's left half.
        let mut bp_poles: Vec<C64> = Vec::with_capacity(2 * n);
        for k in 0..n {
            let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * n as f64)
                + std::f64::consts::FRAC_PI_2;
            let p = C64::from_angle(theta);
            // Low-pass → band-pass: s_lp = p maps to two band-pass poles.
            let half_bw_p = p.scale(bw * 0.5);
            let disc = half_bw_p.mul(half_bw_p).sub(C64::new(w0 * w0, 0.0)).sqrt();
            bp_poles.push(half_bw_p.add(disc));
            bp_poles.push(half_bw_p.sub(disc));
        }

        // Bilinear transform: z = (1 + s/(2 fs)) / (1 - s/(2 fs)).
        let two_fs = 2.0 * fs;
        let z_poles: Vec<C64> = bp_poles
            .iter()
            .map(|&s| {
                C64::ONE
                    .add(s.scale(1.0 / two_fs))
                    .div(C64::ONE.sub(s.scale(1.0 / two_fs)))
            })
            .collect();

        // Pair conjugate poles into biquads; each biquad takes numerator
        // (z - 1)(z + 1) = z² - 1 (one zero from the n zeros at z = 1, one
        // from the n at z = -1, coming from the s-plane zeros at 0 and ∞).
        let sections = pair_into_biquads(&z_poles)?;

        let coeffs = sections
            .iter()
            .map(|s| BiquadCoeffs { b: s.b, a: s.a })
            .collect();
        let mut filter = BandpassFilter { sections, coeffs, gain: 1.0 };
        // Normalise |H| = 1 at the geometric-centre frequency.
        let f_center = (self.low_hz * self.high_hz).sqrt();
        let resp = filter.frequency_response(f_center, fs);
        if resp <= 0.0 || !resp.is_finite() {
            return err("degenerate centre-frequency response");
        }
        filter.gain = (1.0 / resp) as f32;
        if !filter.is_stable() {
            return err("designed filter is unstable (band too narrow for sample rate)");
        }
        Ok(filter)
    }
}

fn pair_into_biquads(z_poles: &[C64]) -> Result<Vec<Biquad>, DesignFilterError> {
    let mut upper: Vec<C64> = z_poles.iter().copied().filter(|p| p.im > 1e-9).collect();
    let mut reals: Vec<f64> = z_poles
        .iter()
        .copied()
        .filter(|p| p.im.abs() <= 1e-9)
        .map(|p| p.re)
        .collect();
    // Conjugates are implicit: each upper-half pole pairs with its mirror.
    let mut sections = Vec::new();
    for p in upper.drain(..) {
        let a1 = -2.0 * p.re;
        let a2 = p.re * p.re + p.im * p.im;
        sections.push(Biquad::new([1.0, 0.0, -1.0], [a1 as f32, a2 as f32]));
    }
    // Real poles pair among themselves (possible for very wide bands).
    while reals.len() >= 2 {
        let p1 = reals.pop().expect("loop condition guarantees len >= 2");
        let p2 = reals.pop().expect("loop condition guarantees len >= 2");
        sections.push(Biquad::new(
            [1.0, 0.0, -1.0],
            [(-(p1 + p2)) as f32, (p1 * p2) as f32],
        ));
    }
    if !reals.is_empty() {
        return Err(DesignFilterError {
            message: "odd number of real poles; cannot form biquads".to_string(),
        });
    }
    Ok(sections)
}

/// A designed band-pass filter: cascaded biquads plus an overall gain.
#[derive(Clone, Debug)]
pub struct BandpassFilter {
    sections: Vec<Biquad>,
    /// The sections' coefficients in kernel-backend form, mirrored at
    /// design time so batch filtering can dispatch without re-packing.
    coeffs: Vec<BiquadCoeffs>,
    gain: f32,
}

impl BandpassFilter {
    /// Number of biquad sections (order / 2).
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Returns `true` when every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(Biquad::is_stable)
    }

    /// Processes one sample through the cascade.
    #[inline]
    pub fn process(&mut self, x: f32) -> f32 {
        let mut y = x * self.gain;
        for s in &mut self.sections {
            y = s.process(y);
        }
        y
    }

    /// Clears all internal state.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Filters a whole real signal, starting from cleared state.
    pub fn filter_signal(&mut self, xs: &[f32]) -> Vec<f32> {
        let mut out = xs.to_vec();
        self.filter_signal_inplace(&mut out);
        out
    }

    /// Filters a whole real signal in place, starting from cleared state.
    ///
    /// Bitwise identical to [`filter_signal`](Self::filter_signal): the
    /// cascade reads each sample before overwriting it, so filtering a
    /// pooled buffer in place changes nothing but the allocation.
    pub fn filter_signal_inplace(&mut self, xs: &mut [f32]) {
        mmhand_telemetry::size_histogram("dsp.filter.batch_samples").observe(xs.len() as f64);
        self.reset();
        for x in xs.iter_mut() {
            *x = self.process(*x);
        }
    }

    /// Filters a complex signal by running the real and imaginary parts
    /// through identical cascades (the IF signal is complex after IQ mixing).
    pub fn filter_complex(&mut self, xs: &[mmhand_math::Complex]) -> Vec<mmhand_math::Complex> {
        let mut out = Vec::with_capacity(xs.len());
        let mut scratch = Vec::new();
        self.filter_complex_into(xs, &mut scratch, &mut out);
        out
    }

    /// [`filter_complex`](Self::filter_complex) into caller-provided
    /// (typically pooled) buffers: `scratch` holds the deinterleaved
    /// real/imaginary planes (`2 · xs.len()` floats), `out` receives the
    /// filtered signal. Both are replaced, and the processing — dispatched
    /// to the kernel backend — is bitwise identical to running the real
    /// plane then the imaginary plane through [`filter_signal_inplace`]
    /// (Self::filter_signal_inplace), whichever backend is active.
    pub fn filter_complex_into(
        &mut self,
        xs: &[mmhand_math::Complex],
        scratch: &mut Vec<f32>,
        out: &mut Vec<mmhand_math::Complex>,
    ) {
        self.filter_complex_into_with(mmhand_kernels::kernels(), xs, scratch, out);
    }

    /// [`filter_complex_into`](Self::filter_complex_into) pinned to an
    /// explicit kernel backend — bitwise identical for every backend; used
    /// by cross-backend tests and per-backend microbenches.
    pub fn filter_complex_into_with(
        &mut self,
        kern: &dyn Kernels,
        xs: &[mmhand_math::Complex],
        scratch: &mut Vec<f32>,
        out: &mut Vec<mmhand_math::Complex>,
    ) {
        let n = xs.len();
        scratch.clear();
        scratch.resize(2 * n, 0.0);
        let (re, im) = scratch.split_at_mut(n);
        for (k, c) in xs.iter().enumerate() {
            re[k] = c.re;
            im[k] = c.im;
        }
        if self.coeffs.len() <= mmhand_kernels::MAX_BIQUADS {
            // One batch-size observation per plane, matching the two
            // filter_signal_inplace calls of the fallback path.
            let hist = mmhand_telemetry::size_histogram("dsp.filter.batch_samples");
            hist.observe(n as f64);
            hist.observe(n as f64);
            self.reset();
            kern.iir_cascade_dual(&self.coeffs, self.gain, re, im);
        } else {
            // Cascades deeper than the kernel contract's MAX_BIQUADS (a
            // >32nd-order band-pass; never produced by the paper pipeline)
            // fall back to the per-sample scalar path.
            self.filter_signal_inplace(re);
            self.filter_signal_inplace(im);
        }
        out.clear();
        out.extend(
            re.iter()
                .zip(im.iter())
                .map(|(&r, &i)| mmhand_math::Complex::new(r, i)),
        );
    }

    /// Magnitude response at `freq_hz` for sampling rate `fs`.
    pub fn frequency_response(&self, freq_hz: f64, fs: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * freq_hz / fs;
        let z_inv = C64::from_angle(-w);
        let z_inv2 = z_inv.mul(z_inv);
        let mut h = C64::new(self.gain as f64, 0.0);
        for s in &self.sections {
            let num = C64::new(s.b[0] as f64, 0.0)
                .add(z_inv.scale(s.b[1] as f64))
                .add(z_inv2.scale(s.b[2] as f64));
            let den = C64::ONE
                .add(z_inv.scale(s.a[0] as f64))
                .add(z_inv2.scale(s.a[1] as f64));
            h = h.mul(num.div(den));
        }
        h.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_like_filter() -> BandpassFilter {
        ButterworthDesign {
            order: 8,
            low_hz: 1_000.0,
            high_hz: 4_000.0,
            sample_rate_hz: 20_000.0,
        }
        .design()
        .unwrap()
    }

    #[test]
    fn eighth_order_yields_four_sections() {
        assert_eq!(paper_like_filter().section_count(), 4);
    }

    #[test]
    fn pooled_filter_paths_are_bitwise_identical() {
        let mut f = paper_like_filter();
        let xs: Vec<f32> = (0..256).map(|i| (i as f32 * 0.21).sin()).collect();
        let owned = f.filter_signal(&xs);
        let mut inplace = xs.clone();
        f.filter_signal_inplace(&mut inplace);
        assert_eq!(owned, inplace);

        let cxs: Vec<mmhand_math::Complex> = xs
            .iter()
            .zip(xs.iter().rev())
            .map(|(&r, &i)| mmhand_math::Complex::new(r, i))
            .collect();
        let owned_c = f.filter_complex(&cxs);
        let mut scratch = vec![9.0_f32; 3];
        let mut out = Vec::new();
        f.filter_complex_into(&cxs, &mut scratch, &mut out);
        assert_eq!(owned_c, out);
    }

    #[test]
    fn passband_is_near_unity() {
        let f = paper_like_filter();
        let fs = 20_000.0;
        for freq in [1_800.0, 2_000.0, 2_500.0, 3_000.0] {
            let h = f.frequency_response(freq, fs);
            assert!(h > 0.7 && h < 1.2, "passband gain {h} at {freq} Hz");
        }
    }

    #[test]
    fn stopband_is_attenuated() {
        let f = paper_like_filter();
        let fs = 20_000.0;
        for freq in [50.0, 200.0, 8_000.0, 9_500.0] {
            let h = f.frequency_response(freq, fs);
            assert!(h < 0.05, "stopband gain {h} at {freq} Hz");
        }
    }

    #[test]
    fn dc_and_nyquist_are_blocked() {
        let mut f = paper_like_filter();
        // DC input settles to ~zero output.
        let y = f.filter_signal(&vec![1.0; 4000]);
        let tail_mean: f32 = y[3000..].iter().sum::<f32>() / 1000.0;
        assert!(tail_mean.abs() < 1e-3, "DC leak {tail_mean}");
        assert!(f.frequency_response(10_000.0 - 1e-6, 20_000.0) < 1e-3);
    }

    #[test]
    fn passband_tone_survives_stopband_tone_dies() {
        let mut f = paper_like_filter();
        let fs = 20_000.0_f32;
        let n = 4000;
        let tone = |freq: f32| -> Vec<f32> {
            (0..n)
                .map(|i| (2.0 * std::f32::consts::PI * freq * i as f32 / fs).sin())
                .collect()
        };
        let rms_tail = |xs: &[f32]| -> f32 {
            let tail = &xs[n / 2..];
            (tail.iter().map(|x| x * x).sum::<f32>() / tail.len() as f32).sqrt()
        };
        let pass = f.filter_signal(&tone(2_000.0));
        let stop = f.filter_signal(&tone(8_000.0));
        assert!(rms_tail(&pass) > 0.5, "passband rms {}", rms_tail(&pass));
        assert!(rms_tail(&stop) < 0.02, "stopband rms {}", rms_tail(&stop));
    }

    #[test]
    fn filter_is_stable_and_impulse_decays() {
        let mut f = paper_like_filter();
        assert!(f.is_stable());
        let mut impulse = vec![0.0_f32; 6000];
        impulse[0] = 1.0;
        let y = f.filter_signal(&impulse);
        let early: f32 = y[..100].iter().map(|x| x.abs()).sum();
        let late: f32 = y[5000..].iter().map(|x| x.abs()).sum();
        assert!(late < early * 1e-4, "impulse response does not decay");
    }

    #[test]
    fn invalid_designs_are_rejected() {
        let base = ButterworthDesign {
            order: 8,
            low_hz: 1000.0,
            high_hz: 4000.0,
            sample_rate_hz: 20_000.0,
        };
        assert!(ButterworthDesign { order: 7, ..base }.design().is_err());
        assert!(ButterworthDesign { order: 0, ..base }.design().is_err());
        assert!(ButterworthDesign { low_hz: 5000.0, ..base }.design().is_err());
        assert!(ButterworthDesign { high_hz: 11_000.0, ..base }.design().is_err());
        assert!(ButterworthDesign { low_hz: -3.0, ..base }.design().is_err());
    }

    #[test]
    fn complex_filtering_matches_componentwise() {
        use mmhand_math::Complex;
        let mut f = paper_like_filter();
        let xs: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f32 * 0.3).sin(), (i as f32 * 0.7).cos()))
            .collect();
        let y = f.filter_complex(&xs);
        let re: Vec<f32> = xs.iter().map(|c| c.re).collect();
        let expected_re = f.filter_signal(&re);
        for (a, b) in y.iter().zip(&expected_re) {
            assert!((a.re - b).abs() < 1e-6);
        }
    }

    #[test]
    fn kernel_batch_path_matches_per_plane_filtering() {
        use mmhand_math::Complex;
        let mut f = paper_like_filter();
        let xs: Vec<Complex> = (0..300)
            .map(|i| Complex::new((i as f32 * 0.13).sin(), (i as f32 * 0.41).cos()))
            .collect();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        f.filter_complex_into(&xs, &mut scratch, &mut out);

        // Reference: the pre-dispatch path — each plane through the
        // per-sample scalar cascade, real plane first.
        let mut re: Vec<f32> = xs.iter().map(|c| c.re).collect();
        let mut im: Vec<f32> = xs.iter().map(|c| c.im).collect();
        f.filter_signal_inplace(&mut re);
        f.filter_signal_inplace(&mut im);
        for (k, c) in out.iter().enumerate() {
            assert!(
                c.re.to_bits() == re[k].to_bits() && c.im.to_bits() == im[k].to_bits(),
                "sample {k}: batch {c:?} != per-plane ({}, {})",
                re[k],
                im[k]
            );
        }
    }

    proptest! {
        /// Scalar and SIMD cascades must agree *bitwise* (a ULP distance of
        /// exactly zero) on complex batch filtering, under either
        /// `sanitize-numerics` state. Passes trivially on CPUs without a
        /// SIMD backend.
        #[test]
        fn filter_backends_are_bitwise_identical(
            order in 1usize..5,
            xs in proptest::collection::vec((-3f32..3.0, -3f32..3.0), 0..200usize),
        ) {
            let Some(simd) = mmhand_kernels::simd_kernels() else { return Ok(()); };
            let scalar = mmhand_kernels::scalar_kernels();
            let mut f = ButterworthDesign {
                order: order * 2,
                low_hz: 1_000.0,
                high_hz: 4_000.0,
                sample_rate_hz: 20_000.0,
            }
            .design()
            .unwrap();
            let sig: Vec<mmhand_math::Complex> = xs
                .iter()
                .map(|&(r, i)| mmhand_math::Complex::new(r, i))
                .collect();
            let mut scratch = Vec::new();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            f.filter_complex_into_with(scalar, &sig, &mut scratch, &mut a);
            f.filter_complex_into_with(simd, &sig, &mut scratch, &mut b);
            for (k, (u, v)) in a.iter().zip(&b).enumerate() {
                prop_assert!(
                    u.re.to_bits() == v.re.to_bits() && u.im.to_bits() == v.im.to_bits(),
                    "sample {k}: scalar {u:?} != simd {v:?}"
                );
            }
        }

        // Any valid even-order design in a sane band must be stable with
        // bounded passband gain.
        #[test]
        fn designs_are_stable(order in 1usize..5, lo in 500f64..2000.0, width in 500f64..4000.0) {
            let d = ButterworthDesign {
                order: order * 2,
                low_hz: lo,
                high_hz: lo + width,
                sample_rate_hz: 20_000.0,
            };
            let f = d.design().unwrap();
            prop_assert!(f.is_stable());
            let centre = (d.low_hz * d.high_hz).sqrt();
            let h = f.frequency_response(centre, d.sample_rate_hz);
            prop_assert!((h - 1.0).abs() < 1e-6, "centre gain {h}");
        }
    }
}
