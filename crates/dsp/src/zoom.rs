//! Zoom-FFT: fine-resolution DFT evaluation over a narrow frequency band.
//!
//! The paper notes that plain angle-FFT resolution is insufficient and that
//! the hand only appears within ±30° of boresight, so mmHand evaluates the
//! angular spectrum over that band with a **refinement factor of 2**. With
//! only 8–12 virtual antenna elements a direct evaluation of the DFT on a
//! refined in-band grid is exact and cheap, which is what [`zoom_dft`] does;
//! [`refined_bin_count`] encodes the refinement-factor convention.

use mmhand_math::Complex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of output bins for a zoom transform over `band_fraction` of the
/// full spectrum with the given `refinement` factor, relative to a plain
/// `n`-point FFT.
///
/// A refinement factor of 2 doubles the bin density inside the band, which
/// is the configuration the paper uses for both azimuth and elevation.
pub fn refined_bin_count(n: usize, band_fraction: f32, refinement: usize) -> usize {
    ((n as f32 * band_fraction).ceil() as usize * refinement).max(1)
}

/// `(start, step)` of the evaluation grid shared by [`zoom_dft`] and
/// [`zoom_frequencies`].
///
/// With two or more bins the grid spans `[f_lo, f_hi]` inclusive. A single
/// bin degenerates to the **band midpoint** `(f_lo + f_hi) / 2` — the most
/// representative single frequency of the band — rather than `f_lo`; both
/// public functions use this helper so they can never disagree on where a
/// bin sits.
fn grid_params(f_lo: f32, f_hi: f32, bins: usize) -> (f32, f32) {
    if bins <= 1 {
        ((f_lo + f_hi) * 0.5, 0.0)
    } else {
        (f_lo, (f_hi - f_lo) / (bins - 1) as f32)
    }
}

/// A precomputed zoom-DFT: the `bins × len` steering table
/// `e^{-j·2π·f_b·i}` for one `(len, band, bins)` configuration.
///
/// Each table entry is built with the exact expression the direct
/// evaluation used (`Complex::from_angle(-tau * f * i)`), and
/// [`evaluate_into`](Self::evaluate_into) accumulates the bins in the same
/// ascending-sample order, so a planned transform is bitwise identical to
/// [`zoom_dft`] — only the per-call sin/cos work disappears.
#[derive(Debug)]
pub struct ZoomPlan {
    len: usize,
    bins: usize,
    /// Row-major `bins × len` steering vectors.
    twiddles: Vec<Complex>,
}

impl ZoomPlan {
    /// Builds a plan for `len`-sample inputs over `[f_lo, f_hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `f_lo > f_hi`.
    pub fn new(len: usize, f_lo: f32, f_hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "zoom_dft needs at least one bin");
        assert!(f_lo <= f_hi, "zoom_dft: f_lo {f_lo} > f_hi {f_hi}");
        let tau = 2.0 * std::f32::consts::PI;
        let (start, step) = grid_params(f_lo, f_hi, bins);
        let mut twiddles = Vec::with_capacity(bins * len);
        for b in 0..bins {
            let f = start + step * b as f32;
            for i in 0..len {
                twiddles.push(Complex::from_angle(-tau * f * i as f32));
            }
        }
        ZoomPlan { len, bins, twiddles }
    }

    /// The input length this plan was built for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for a zero-length input plan.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of output bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Evaluates the zoom transform of `x` into `out` (replacing its
    /// contents), typically a pooled buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan length.
    pub fn evaluate_into(&self, x: &[Complex], out: &mut Vec<Complex>) {
        assert!(
            x.len() == self.len,
            "zoom input length {} does not match plan length {}",
            x.len(),
            self.len
        );
        out.clear();
        for b in 0..self.bins {
            let tw = &self.twiddles[b * self.len..(b + 1) * self.len];
            let mut acc = Complex::ZERO;
            for (i, &s) in x.iter().enumerate() {
                acc += s * tw[i];
            }
            out.push(acc);
        }
    }

    /// Evaluates the zoom transform returning a new vector.
    pub fn evaluate(&self, x: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::with_capacity(self.bins);
        self.evaluate_into(x, &mut out);
        out
    }
}

/// Cached zoom plans, keyed by the full configuration. The cache holds at
/// most [`ZOOM_CACHE_CAP`] entries; past that an arbitrary entry is evicted
/// before inserting, so pathological callers (e.g. randomised tests) cannot
/// grow it unboundedly while steady-state configurations stay cached.
/// (Latency-critical callers such as the cube builder hold their `Arc`s
/// directly and never touch the cache per frame.)
const ZOOM_CACHE_CAP: usize = 64;

type ZoomKey = (usize, usize, u32, u32);

/// Returns the cached plan for this configuration, building it on first
/// use (frequencies are compared by bit pattern).
///
/// # Panics
///
/// Panics if `bins == 0` or `f_lo > f_hi`.
pub fn zoom_plan(len: usize, f_lo: f32, f_hi: f32, bins: usize) -> Arc<ZoomPlan> {
    // Validate before taking the lock so an invalid request's panic cannot
    // poison the cache for later callers.
    assert!(bins > 0, "zoom_dft needs at least one bin");
    assert!(f_lo <= f_hi, "zoom_dft: f_lo {f_lo} > f_hi {f_hi}");
    static CACHE: OnceLock<Mutex<HashMap<ZoomKey, Arc<ZoomPlan>>>> = OnceLock::new();
    let key = (len, bins, f_lo.to_bits(), f_hi.to_bits());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("zoom plan cache lock");
    if let Some(p) = map.get(&key) {
        return p.clone();
    }
    let built = Arc::new(ZoomPlan::new(len, f_lo, f_hi, bins));
    if map.len() >= ZOOM_CACHE_CAP {
        if let Some(&evict) = map.keys().next() {
            map.remove(&evict);
        }
    }
    map.insert(key, built.clone());
    built
}

/// Evaluates the DTFT of `x` on `bins` equally spaced normalised frequencies
/// spanning `[f_lo, f_hi]` (cycles per sample, so the full spectrum is
/// `[-0.5, 0.5)`). With `bins == 1` the single evaluation point is the band
/// midpoint (see [`zoom_frequencies`], which reports the same grid).
///
/// This is exact (no decimation approximation); cost is `O(len · bins)`
/// multiply-adds against a cached steering table (see [`ZoomPlan`]).
///
/// # Panics
///
/// Panics if `bins == 0` or `f_lo > f_hi`.
pub fn zoom_dft(x: &[Complex], f_lo: f32, f_hi: f32, bins: usize) -> Vec<Complex> {
    zoom_plan(x.len(), f_lo, f_hi, bins).evaluate(x)
}

/// The normalised frequencies corresponding to the bins of [`zoom_dft`].
pub fn zoom_frequencies(f_lo: f32, f_hi: f32, bins: usize) -> Vec<f32> {
    let (start, step) = grid_params(f_lo, f_hi, bins);
    (0..bins).map(|b| start + step * b as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;
    use proptest::prelude::*;

    const TAU: f32 = 2.0 * std::f32::consts::PI;

    fn tone(n: usize, f: f32) -> Vec<Complex> {
        (0..n).map(|i| Complex::from_angle(TAU * f * i as f32)).collect()
    }

    #[test]
    fn matches_fft_on_grid_frequencies() {
        let n = 32;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f32 * 0.2).sin(), (i as f32 * 0.37).cos()))
            .collect();
        let full = fft(&sig);
        // Evaluate the zoom transform exactly on FFT bins 0..n/2.
        let bins = n / 2;
        let zoomed = zoom_dft(&sig, 0.0, (bins - 1) as f32 / n as f32, bins);
        for k in 0..bins {
            assert!(
                (zoomed[k] - full[k]).abs() < 1e-3,
                "bin {k}: {} vs {}",
                zoomed[k],
                full[k]
            );
        }
    }

    #[test]
    fn refinement_localises_off_grid_tone() {
        // A tone between FFT bins is resolved to the nearest refined bin.
        let n = 16;
        let f_true = 3.5 / n as f32; // exactly between bins 3 and 4
        let sig = tone(n, f_true);
        let bins = refined_bin_count(n, 0.5, 2); // 16 bins over half the band
        let spec = zoom_dft(&sig, 0.0, 0.5, bins);
        let freqs = zoom_frequencies(0.0, 0.5, bins);
        let peak = (0..bins)
            .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
            .unwrap();
        assert!(
            (freqs[peak] - f_true).abs() < 0.5 / n as f32,
            "peak at {} expected {}",
            freqs[peak],
            f_true
        );
    }

    #[test]
    fn single_bin_evaluates_midpoint_start() {
        // The single bin sits at the band midpoint (0.125 + 0.25) / 2 =
        // 0.1875, so a tone exactly there aligns all terms: |X| == n.
        // (Previously zoom_dft evaluated one bin at f_lo while
        // zoom_frequencies reported the same point inconsistently.)
        let sig = tone(8, 0.1875);
        let one = zoom_dft(&sig, 0.125, 0.25, 1);
        assert_eq!(one.len(), 1);
        assert!((one[0].abs() - 8.0).abs() < 1e-3);
        assert_eq!(zoom_frequencies(0.125, 0.25, 1), vec![0.1875]);
        // A tone at f_lo no longer dominates the single-bin evaluation.
        let off = zoom_dft(&tone(8, 0.125), 0.125, 0.25, 1);
        assert!(off[0].abs() < 8.0 - 1e-3);
    }

    #[test]
    fn refined_bin_count_applies_factor() {
        assert_eq!(refined_bin_count(64, 0.5, 2), 64);
        assert_eq!(refined_bin_count(64, 0.25, 2), 32);
        assert_eq!(refined_bin_count(4, 0.01, 1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        zoom_dft(&[Complex::ONE], 0.0, 0.5, 0);
    }

    /// The pre-plan direct evaluation, kept as the bitwise reference.
    fn zoom_dft_reference(x: &[Complex], f_lo: f32, f_hi: f32, bins: usize) -> Vec<Complex> {
        let tau = 2.0 * std::f32::consts::PI;
        let (start, step) = grid_params(f_lo, f_hi, bins);
        (0..bins)
            .map(|b| {
                let f = start + step * b as f32;
                let mut acc = Complex::ZERO;
                for (i, &s) in x.iter().enumerate() {
                    acc += s * Complex::from_angle(-tau * f * i as f32);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn zoom_plan_cache_returns_shared_plans() {
        let a = zoom_plan(8, -0.2, 0.2, 4);
        let b = zoom_plan(8, -0.2, 0.2, 4);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((a.len(), a.bins()), (8, 4));
    }

    proptest! {
        /// Planned evaluation (cached steering table) must be *bitwise*
        /// identical to the direct per-call evaluation, under either
        /// `sanitize-numerics` state (the suite runs in both CI jobs).
        #[test]
        fn planned_zoom_is_bitwise_identical_to_reference(
            xs in proptest::collection::vec((-5f32..5.0, -5f32..5.0), 1..24usize),
            f_lo in -0.5f32..0.3,
            width in 0.0f32..0.2,
            bins in 1usize..24,
        ) {
            let sig: Vec<Complex> = xs.iter().map(|&(r, i)| Complex::new(r, i)).collect();
            let reference = zoom_dft_reference(&sig, f_lo, f_lo + width, bins);
            let planned = zoom_dft(&sig, f_lo, f_lo + width, bins);
            prop_assert_eq!(reference.len(), planned.len());
            for (k, (a, b)) in planned.iter().zip(&reference).enumerate() {
                prop_assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "bin {}: planned {:?} != reference {:?}", k, a, b
                );
            }
        }

        #[test]
        fn peak_frequency_recovered(f_true in 0.05f32..0.45, n_pow in 4u32..7) {
            let n = 1usize << n_pow;
            let sig = tone(n, f_true);
            let bins = 4 * n;
            let spec = zoom_dft(&sig, 0.0, 0.5, bins);
            let freqs = zoom_frequencies(0.0, 0.5, bins);
            let peak = (0..bins)
                .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
                .unwrap();
            // Peak must fall within one refined bin of the true frequency.
            prop_assert!((freqs[peak] - f_true).abs() < 1.0 / n as f32);
        }
    }
}
