//! # mmhand-dsp
//!
//! The digital-signal-processing substrate of the mmHand reproduction.
//! Everything the paper's *Signal Pre-processing* section (§III) needs is
//! implemented here from scratch:
//!
//! * [`mod@fft`] — iterative radix-2 complex FFT/IFFT plus helpers
//!   (`fft_shift`, zero-padding, real-input transform),
//! * [`window`] — Hann / Hamming / Blackman / rectangular windows,
//! * [`filter`] — IIR Butterworth band-pass design (the paper's 8th-order
//!   filter that isolates the hand's range band) as cascaded biquads,
//! * [`zoom`] — zoom-FFT / refined DFT used for angle estimation with a
//!   refinement factor of 2 over the ±30° field of view,
//! * [`spectrum`] — range-FFT, Doppler-FFT and angle-FFT wrappers, peak
//!   finding and spectrum utilities.
//!
//! # Examples
//!
//! Recovering a tone frequency with the FFT:
//!
//! ```
//! use mmhand_dsp::fft::fft;
//! use mmhand_math::Complex;
//!
//! let n = 64;
//! let tone: Vec<Complex> = (0..n)
//!     .map(|i| Complex::from_angle(2.0 * std::f32::consts::PI * 5.0 * i as f32 / n as f32))
//!     .collect();
//! let spec = fft(&tone);
//! let peak = (0..n).max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs())).unwrap();
//! assert_eq!(peak, 5);
//! ```

pub mod error;
pub mod fft;
pub mod filter;
pub mod spectrum;
pub mod window;
pub mod zoom;

pub use error::DspError;
pub use fft::{fft, fft_inplace, ifft};
pub use filter::{BandpassFilter, ButterworthDesign};
pub use window::Window;
