//! Range-, Doppler- and angle-spectrum computation plus peak utilities.
//!
//! These wrap the raw FFT/zoom primitives with radar semantics:
//!
//! * **Range-FFT** over the fast-time samples of one chirp: bin `k`
//!   corresponds to range `r = c · f_IF · T_c / (2B)` (paper §III).
//! * **Doppler-FFT** over slow time at a fixed range bin, shifted so zero
//!   velocity is centred.
//! * **Angle spectrum** over the virtual antenna array via [`zoom_dft`]
//!   restricted to ±30° with refinement factor 2, following the paper.

use crate::fft::{fft_inplace, fft_shift_inplace};
use crate::window::Window;
use crate::zoom::zoom_dft;
use mmhand_math::Complex;

/// Computes the range spectrum of one chirp's fast-time samples.
///
/// The samples are windowed and transformed; only the first half of the
/// spectrum is meaningful for real-valued IF data, but complex IQ data uses
/// all bins. Length must be a power of two.
///
/// # Panics
///
/// Panics if `samples.len()` is not a power of two.
pub fn range_fft(samples: &[Complex], window: Window) -> Vec<Complex> {
    let mut buf = samples.to_vec();
    window.apply_inplace(&mut buf);
    fft_inplace(&mut buf);
    buf
}

/// Computes the Doppler spectrum across slow-time (chirp-to-chirp) samples
/// at one range bin, centred with [`fft_shift_inplace`] so bin `n/2` is
/// zero velocity.
///
/// # Panics
///
/// Panics if `samples.len()` is not a power of two.
pub fn doppler_fft(samples: &[Complex], window: Window) -> Vec<Complex> {
    let mut buf = samples.to_vec();
    window.apply_inplace(&mut buf);
    fft_inplace(&mut buf);
    fft_shift_inplace(&mut buf);
    buf
}

/// Computes range spectra for a whole batch of chirps, fanned across the
/// `mmhand-parallel` pool (one task per chirp).
///
/// Accepts any slice of sample rows (`Vec<Complex>`, `&[Complex]`, …);
/// results are returned in input order, so the output is identical to
/// mapping [`range_fft`] sequentially at any thread count.
///
/// # Panics
///
/// Panics if any row's length is not a power of two.
pub fn range_fft_batch<S: AsRef<[Complex]> + Sync>(batch: &[S], window: Window) -> Vec<Vec<Complex>> {
    mmhand_telemetry::size_histogram("dsp.fft.range_batch_rows").observe(batch.len() as f64);
    mmhand_parallel::par_map(batch, |row| range_fft(row.as_ref(), window))
}

/// Computes centred Doppler spectra for a batch of slow-time rows, fanned
/// across the `mmhand-parallel` pool; see [`range_fft_batch`].
///
/// # Panics
///
/// Panics if any row's length is not a power of two.
pub fn doppler_fft_batch<S: AsRef<[Complex]> + Sync>(
    batch: &[S],
    window: Window,
) -> Vec<Vec<Complex>> {
    mmhand_telemetry::size_histogram("dsp.fft.doppler_batch_rows").observe(batch.len() as f64);
    mmhand_parallel::par_map(batch, |row| doppler_fft(row.as_ref(), window))
}

/// Computes the angular spectrum from per-virtual-antenna phasors.
///
/// `elements` holds one complex value per (half-wavelength-spaced) virtual
/// antenna. The spectrum is evaluated on `bins` points of `sin(θ)` spanning
/// `±sin(max_angle_rad)`; with the paper's settings (`max_angle` = 30°,
/// refinement factor 2 applied by the caller through `bins`) this is the
/// zoom-FFT angle estimation of §III. Bin `i` maps to angle
/// `asin(sin_theta_grid[i])`.
pub fn angle_spectrum(elements: &[Complex], max_angle_rad: f32, bins: usize) -> Vec<Complex> {
    // Half-wavelength spacing: spatial frequency f = sin(θ) / 2 cycles/element.
    let f_max = max_angle_rad.sin() * 0.5;
    zoom_dft(elements, -f_max, f_max, bins)
}

/// Returns the angles (radians) corresponding to [`angle_spectrum`] bins.
pub fn angle_grid(max_angle_rad: f32, bins: usize) -> Vec<f32> {
    let s_max = max_angle_rad.sin();
    let step = if bins <= 1 { 0.0 } else { 2.0 * s_max / (bins - 1) as f32 };
    (0..bins).map(|i| (-s_max + step * i as f32).asin()).collect()
}

/// A detected spectrum peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Bin index of the local maximum.
    pub index: usize,
    /// Magnitude at the peak.
    pub magnitude: f32,
}

/// Finds local maxima of `mag` that exceed `min_height`, keeping peaks at
/// least `min_distance` bins apart (strongest wins). Result is sorted by
/// index.
pub fn find_peaks(mag: &[f32], min_height: f32, min_distance: usize) -> Vec<Peak> {
    let n = mag.len();
    let mut candidates: Vec<Peak> = (0..n)
        .filter(|&i| {
            let left = if i == 0 { f32::NEG_INFINITY } else { mag[i - 1] };
            let right = if i + 1 == n { f32::NEG_INFINITY } else { mag[i + 1] };
            mag[i] >= min_height && mag[i] >= left && mag[i] > right
        })
        .map(|index| Peak { index, magnitude: mag[index] })
        .collect();
    // Strongest-first suppression of close neighbours.
    candidates.sort_by(|a, b| b.magnitude.total_cmp(&a.magnitude));
    let mut kept: Vec<Peak> = Vec::new();
    for c in candidates {
        if kept
            .iter()
            .all(|k| k.index.abs_diff(c.index) >= min_distance.max(1))
        {
            kept.push(c);
        }
    }
    kept.sort_by_key(|p| p.index);
    kept
}

/// Returns the first dominant peak — the lowest-index peak whose magnitude
/// is at least `dominance` × the global maximum.
///
/// The paper's observation is that the hand is the closest reflector during
/// interaction, so it sits in the *first* dominant range peak; this helper
/// implements that selection rule.
pub fn first_dominant_peak(mag: &[f32], dominance: f32, min_distance: usize) -> Option<Peak> {
    let global_max = mag.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !global_max.is_finite() || global_max <= 0.0 {
        return None;
    }
    find_peaks(mag, global_max * dominance, min_distance)
        .into_iter()
        .next()
}

/// Converts a range-FFT bin index to metres.
///
/// `bandwidth_hz` is the chirp sweep bandwidth `B`, `n_bins` the FFT length.
/// Derived from `r = c·f·T_c / (2B)` with `f = k·f_s/N` and `f_s·T_c =`
/// samples-per-chirp, giving `r = k · c / (2B) · (samples / N)`; when the
/// FFT length equals the sample count this is the familiar
/// `range_resolution = c / (2B)`.
pub fn range_bin_to_meters(bin: usize, n_bins: usize, samples_per_chirp: usize, bandwidth_hz: f64) -> f64 {
    let res = mmhand_math::SPEED_OF_LIGHT / (2.0 * bandwidth_hz);
    bin as f64 * res * samples_per_chirp as f64 / n_bins as f64
}

/// Converts a centred Doppler bin to radial velocity in m/s.
///
/// `wavelength_m` is the carrier wavelength λ, `chirp_period_s` the
/// chirp-to-chirp period `T_c` (per TX in TDM-MIMO), and `n_bins` the
/// Doppler FFT length; bin `n/2` is zero velocity, and the unambiguous
/// velocity span is `±λ / (4 T_c)` (from `v = λΔφ/(4πT_c)`, paper §III).
pub fn doppler_bin_to_mps(bin: usize, n_bins: usize, wavelength_m: f64, chirp_period_s: f64) -> f64 {
    let v_max = wavelength_m / (4.0 * chirp_period_s);
    let centred = bin as f64 - n_bins as f64 / 2.0;
    centred / (n_bins as f64 / 2.0) * v_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TAU: f32 = 2.0 * std::f32::consts::PI;

    #[test]
    fn range_fft_localises_if_tone() {
        let n = 64;
        let k = 9.0;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::from_angle(TAU * k * i as f32 / n as f32))
            .collect();
        let spec = range_fft(&sig, Window::Hann);
        let peak = (0..n)
            .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
            .unwrap();
        assert_eq!(peak, 9);
    }

    #[test]
    fn doppler_fft_zero_velocity_is_centred() {
        let n = 32;
        let sig = vec![Complex::ONE; n]; // static target: DC in slow time
        let spec = doppler_fft(&sig, Window::Rectangular);
        let peak = (0..n)
            .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
            .unwrap();
        assert_eq!(peak, n / 2);
    }

    #[test]
    fn moving_target_shifts_off_centre() {
        let n = 32;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::from_angle(TAU * 4.0 * i as f32 / n as f32))
            .collect();
        let spec = doppler_fft(&sig, Window::Rectangular);
        let peak = (0..n)
            .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
            .unwrap();
        assert_eq!(peak, n / 2 + 4);
    }

    #[test]
    fn angle_spectrum_peaks_at_source_angle() {
        // 8-element half-wavelength array, source at +20°.
        let n_el = 8;
        let theta = mmhand_math::deg_to_rad(20.0);
        let elements: Vec<Complex> = (0..n_el)
            .map(|m| Complex::from_angle(TAU * 0.5 * theta.sin() * m as f32))
            .collect();
        let bins = 33;
        let max_angle = mmhand_math::deg_to_rad(30.0);
        let spec = angle_spectrum(&elements, max_angle, bins);
        let grid = angle_grid(max_angle, bins);
        let peak = (0..bins)
            .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
            .unwrap();
        assert!(
            (grid[peak] - theta).abs() < mmhand_math::deg_to_rad(4.0),
            "angle peak at {}°",
            mmhand_math::rad_to_deg(grid[peak])
        );
    }

    #[test]
    fn angle_grid_is_symmetric() {
        let grid = angle_grid(mmhand_math::deg_to_rad(30.0), 17);
        assert!((grid[0] + grid[16]).abs() < 1e-6);
        assert!(grid[8].abs() < 1e-6);
    }

    #[test]
    fn find_peaks_basic() {
        let mag = [0.0, 1.0, 0.2, 3.0, 0.1, 2.0, 0.0];
        let peaks = find_peaks(&mag, 0.5, 1);
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![1, 3, 5]);
    }

    #[test]
    fn find_peaks_suppresses_close_neighbours() {
        let mag = [0.0, 2.0, 0.1, 3.0, 0.0];
        let peaks = find_peaks(&mag, 0.5, 3);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
    }

    #[test]
    fn first_dominant_peak_prefers_closest() {
        // Hand at bin 3 (mag 5), body at bin 10 (mag 8): hand is first
        // dominant with dominance 0.5.
        let mut mag = vec![0.0_f32; 16];
        mag[3] = 5.0;
        mag[10] = 8.0;
        let p = first_dominant_peak(&mag, 0.5, 2).unwrap();
        assert_eq!(p.index, 3);
        // With dominance 0.9 only the body peak qualifies.
        let p = first_dominant_peak(&mag, 0.9, 2).unwrap();
        assert_eq!(p.index, 10);
    }

    #[test]
    fn first_dominant_peak_empty_or_zero() {
        assert!(first_dominant_peak(&[], 0.5, 1).is_none());
        assert!(first_dominant_peak(&[0.0, 0.0], 0.5, 1).is_none());
    }

    #[test]
    fn range_bin_conversion_matches_resolution() {
        // 4 GHz bandwidth → 3.75 cm resolution, N == samples.
        let r1 = range_bin_to_meters(1, 64, 64, 4.0e9);
        assert!((r1 - 0.0375).abs() < 1e-4, "resolution {r1}");
        let r10 = range_bin_to_meters(10, 64, 64, 4.0e9);
        assert!((r10 - 0.375).abs() < 1e-3);
    }

    #[test]
    fn doppler_bin_conversion_is_antisymmetric() {
        let n = 16;
        let lambda = 0.0039; // ~77 GHz
        let tc = 240e-6; // 3 TX × 80 µs
        let v_lo = doppler_bin_to_mps(0, n, lambda, tc);
        let v_hi = doppler_bin_to_mps(n - 1, n, lambda, tc);
        assert!(v_lo < 0.0 && v_hi > 0.0);
        assert!(doppler_bin_to_mps(n / 2, n, lambda, tc).abs() < 1e-12);
        // Max unambiguous velocity λ/(4 Tc) ≈ 4.06 m/s.
        assert!((v_lo + lambda / (4.0 * tc)).abs() < 1e-9);
    }

    #[test]
    fn batch_ffts_match_sequential() {
        let rows: Vec<Vec<Complex>> = (0..12)
            .map(|r| {
                (0..32)
                    .map(|i| Complex::from_angle(TAU * (r as f32 + 1.0) * i as f32 / 32.0))
                    .collect()
            })
            .collect();
        let batched = range_fft_batch(&rows, Window::Hann);
        for (row, spec) in rows.iter().zip(&batched) {
            assert_eq!(spec, &range_fft(row, Window::Hann));
        }
        let batched = doppler_fft_batch(&rows, Window::Rectangular);
        for (row, spec) in rows.iter().zip(&batched) {
            assert_eq!(spec, &doppler_fft(row, Window::Rectangular));
        }
    }

    #[test]
    fn batch_sizes_are_recorded_in_telemetry() {
        let h = mmhand_telemetry::size_histogram("dsp.fft.range_batch_rows");
        let before = h.count();
        let rows: Vec<Vec<Complex>> = (0..5).map(|_| vec![Complex::ONE; 16]).collect();
        let _ = range_fft_batch(&rows, Window::Hann);
        assert!(h.count() > before, "range batch size observed");
        assert!(h.sum() >= 5.0);
    }

    proptest! {
        #[test]
        fn peaks_are_sorted_and_spaced(mag in proptest::collection::vec(0f32..10.0, 4..64),
                                       dist in 1usize..6) {
            let peaks = find_peaks(&mag, 1.0, dist);
            for w in peaks.windows(2) {
                prop_assert!(w[0].index < w[1].index);
                prop_assert!(w[1].index - w[0].index >= dist);
            }
            for p in &peaks {
                prop_assert!(p.magnitude >= 1.0);
            }
        }
    }
}
