//! Window functions applied before FFTs to control spectral leakage.
//!
//! The radar cube builder windows each chirp (range dimension) and each
//! slow-time sequence (Doppler dimension) before transforming.

/// A window function shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Window {
    /// No tapering (all ones).
    Rectangular,
    /// Hann window — the default for the range/Doppler FFTs.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (wider main lobe, lower sidelobes).
    Blackman,
}

impl Window {
    /// Evaluates the window coefficient at sample `i` of an `n`-point window.
    ///
    /// Returns `1.0` when `n < 2` (degenerate windows are all-pass).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` and `n >= 2`.
    pub fn coefficient(self, i: usize, n: usize) -> f32 {
        if n < 2 {
            return 1.0;
        }
        assert!(i < n, "window index {i} out of range for length {n}");
        let x = i as f32 / (n - 1) as f32;
        let tau = 2.0 * std::f32::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => {
                0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos()
            }
        }
    }

    /// Returns the full `n`-point window as a vector.
    pub fn coefficients(self, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Multiplies `signal` by the window in place.
    pub fn apply_inplace(self, signal: &mut [mmhand_math::Complex]) {
        let n = signal.len();
        for (i, s) in signal.iter_mut().enumerate() {
            *s = s.scale(self.coefficient(i, n));
        }
    }

    /// Coherent gain: the mean window coefficient, used to renormalise peak
    /// magnitudes after windowing.
    pub fn coherent_gain(self, n: usize) -> f32 {
        if n == 0 {
            return 1.0;
        }
        self.coefficients(n).iter().sum::<f32>() / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_math::Complex;
    use proptest::prelude::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&c| c == 1.0));
    }

    #[test]
    fn hann_endpoints_are_zero_and_centre_is_one() {
        let w = Window::Hann.coefficients(65);
        assert!(w[0].abs() < 1e-6);
        assert!(w[64].abs() < 1e-6);
        assert!((w[32] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.coefficients(33);
            for i in 0..w.len() {
                assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-6, "{win:?} not symmetric");
            }
        }
    }

    #[test]
    fn degenerate_lengths_are_all_pass() {
        assert_eq!(Window::Hann.coefficient(0, 1), 1.0);
        assert_eq!(Window::Blackman.coefficient(0, 0), 1.0);
    }

    #[test]
    fn two_point_hann_is_identically_zero() {
        // Both samples of a 2-point Hann window are endpoints, so the
        // window (and its coherent gain) is zero — callers must not window
        // 2-sample signals with Hann.
        assert_eq!(Window::Hann.coefficients(2), vec![0.0, 0.0]);
        assert_eq!(Window::Hann.coherent_gain(2), 0.0);
    }

    #[test]
    fn apply_inplace_scales_signal() {
        let mut sig = vec![Complex::ONE; 8];
        Window::Hann.apply_inplace(&mut sig);
        let w = Window::Hann.coefficients(8);
        for (s, c) in sig.iter().zip(&w) {
            assert!((s.re - c).abs() < 1e-6);
            assert!(s.im.abs() < 1e-6);
        }
    }

    #[test]
    fn hann_reduces_leakage_versus_rectangular() {
        // An off-grid tone leaks less into distant bins when Hann-windowed.
        use crate::fft::fft;
        let n = 64;
        let k = 10.37_f32; // deliberately between bins
        let tau = 2.0 * std::f32::consts::PI;
        let tone: Vec<Complex> = (0..n)
            .map(|i| Complex::from_angle(tau * k * i as f32 / n as f32))
            .collect();
        let rect = fft(&tone);
        let mut hann_sig = tone.clone();
        Window::Hann.apply_inplace(&mut hann_sig);
        let hann = fft(&hann_sig);
        // Compare energy far from the tone (bins 30..50).
        let far = |spec: &[Complex]| -> f32 { (30..50).map(|i| spec[i].norm_sqr()).sum() };
        assert!(far(&hann) < far(&rect) / 10.0);
    }

    proptest! {
        #[test]
        fn coefficients_bounded(n in 2usize..256, idx in 0usize..255) {
            prop_assume!(idx < n);
            for win in [Window::Rectangular, Window::Hann, Window::Hamming, Window::Blackman] {
                let c = win.coefficient(idx, n);
                prop_assert!((-0.01..=1.01).contains(&c), "{win:?} coefficient {c}");
            }
        }

        #[test]
        fn coherent_gain_in_unit_interval(n in 3usize..512) {
            // n = 2 is excluded: a 2-point Hann window is identically zero
            // (both samples are endpoints); see the unit test below.
            for win in [Window::Hann, Window::Hamming, Window::Blackman] {
                let g = win.coherent_gain(n);
                prop_assert!(g > 0.0 && g <= 1.0);
            }
        }
    }
}
