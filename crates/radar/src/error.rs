//! Typed errors for radar configuration and frame geometry.
//!
//! Part of the workspace-wide `MmHandError` hierarchy: downstream crates
//! (`mmhand-core`, `mmhand-serve`) wrap [`RadarError`] via `From`
//! conversions so malformed configurations and frames surface as `Err`
//! values instead of panics on the serving path.

use std::fmt;

/// An invalid radar configuration or a frame whose geometry does not match
/// the configuration it is being processed under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RadarError {
    /// A [`crate::ChirpConfig`] field violates a physical constraint.
    InvalidConfig {
        /// The offending field (or field group).
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A [`crate::RawFrame`] axis disagrees with the expected geometry.
    FrameGeometry {
        /// The mismatched axis (`"samples_per_chirp"`, `"tx_count"`, …).
        axis: &'static str,
        /// Expected extent from the configuration.
        expected: usize,
        /// Extent found on the frame.
        got: usize,
    },
}

impl fmt::Display for RadarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadarError::InvalidConfig { field, reason } => {
                write!(f, "invalid radar configuration ({field}): {reason}")
            }
            RadarError::FrameGeometry { axis, expected, got } => {
                write!(f, "frame geometry mismatch on {axis}: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for RadarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field_and_axis() {
        let e = RadarError::InvalidConfig { field: "tx_count", reason: "must be positive".into() };
        assert!(e.to_string().contains("tx_count"));
        let e = RadarError::FrameGeometry { axis: "rx_count", expected: 4, got: 3 };
        let s = e.to_string();
        assert!(s.contains("rx_count") && s.contains('4') && s.contains('3'));
    }
}
