//! TDM-MIMO virtual antenna array geometry.
//!
//! The IWR1443 forms a virtual array by cycling 3 TX antennas against 4
//! always-on RX antennas (paper §III). We reproduce the standard layout:
//! RX elements λ/2 apart along the azimuth axis; TX1 and TX3 spaced 2λ so
//! their virtual rows abut into an 8-element azimuth ULA; TX2 raised λ/2
//! to create an elevation-sensitive row. Positions are in the radar's
//! aperture plane: `x` = azimuth axis, `z` = elevation axis (the radar
//! looks along `+y`).

use crate::config::ChirpConfig;
use mmhand_math::Vec3;

/// One virtual element: the TX/RX pair and its effective phase centre.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VirtualElement {
    /// Transmit antenna index.
    pub tx: usize,
    /// Receive antenna index.
    pub rx: usize,
    /// Effective phase-centre position (sum of TX and RX positions), metres.
    pub position: Vec3,
}

/// The virtual antenna array.
#[derive(Clone, Debug)]
pub struct VirtualArray {
    tx_positions: Vec<Vec3>,
    rx_positions: Vec<Vec3>,
    elements: Vec<VirtualElement>,
    /// Indices (into `elements`) of the 2·rx azimuth ULA, sorted by x.
    azimuth_row: Vec<usize>,
    /// Indices of the elevated (TX2) row, sorted by x.
    elevated_row: Vec<usize>,
    /// Indices in the azimuth row that sit at the same x as the elevated
    /// row (used for elevation interferometry), sorted by x.
    azimuth_overlap: Vec<usize>,
    wavelength_m: f64,
}

impl VirtualArray {
    /// Builds the IWR1443-style array for a chirp configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not have 3 TX and 4 RX antennas;
    /// other MIMO layouts are not modelled.
    pub fn new(config: &ChirpConfig) -> Self {
        assert_eq!(config.tx_count, 3, "virtual array models the 3-TX IWR1443");
        assert_eq!(config.rx_count, 4, "virtual array models the 4-RX IWR1443");
        let lambda = config.wavelength_m() as f32;
        let half = lambda / 2.0;
        // RX ULA along x.
        let rx_positions: Vec<Vec3> =
            (0..4).map(|i| Vec3::new(i as f32 * half, 0.0, 0.0)).collect();
        // TX0 at origin, TX1 shifted 2λ (extends the azimuth ULA),
        // TX2 shifted λ in x and λ/2 up (elevation row).
        let tx_positions = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(4.0 * half, 0.0, 0.0),
            Vec3::new(2.0 * half, 0.0, half),
        ];
        let mut elements = Vec::with_capacity(12);
        for (ti, &t) in tx_positions.iter().enumerate() {
            for (ri, &r) in rx_positions.iter().enumerate() {
                elements.push(VirtualElement { tx: ti, rx: ri, position: t + r });
            }
        }
        let mut azimuth_row: Vec<usize> = elements
            .iter()
            .enumerate()
            // audit: allow(float_eq) — element positions at z = 0 are constructed exactly, not computed
            .filter(|(_, e)| e.position.z == 0.0)
            .map(|(i, _)| i)
            .collect();
        azimuth_row.sort_by(|&a, &b| {
            elements[a].position.x.total_cmp(&elements[b].position.x)
        });
        let mut elevated_row: Vec<usize> = elements
            .iter()
            .enumerate()
            .filter(|(_, e)| e.position.z > 0.0)
            .map(|(i, _)| i)
            .collect();
        elevated_row.sort_by(|&a, &b| {
            elements[a].position.x.total_cmp(&elements[b].position.x)
        });
        let azimuth_overlap: Vec<usize> = elevated_row
            .iter()
            .filter_map(|&e| {
                let x = elements[e].position.x;
                azimuth_row
                    .iter()
                    .copied()
                    .find(|&a| (elements[a].position.x - x).abs() < 1e-9)
            })
            .collect();
        VirtualArray {
            tx_positions,
            rx_positions,
            elements,
            azimuth_row,
            elevated_row,
            azimuth_overlap,
            wavelength_m: config.wavelength_m(),
        }
    }

    /// All virtual elements in `(tx, rx)` row-major order.
    pub fn elements(&self) -> &[VirtualElement] {
        &self.elements
    }

    /// Index of the `(tx, rx)` virtual element in [`VirtualArray::elements`].
    pub fn element_index(&self, tx: usize, rx: usize) -> usize {
        tx * self.rx_positions.len() + rx
    }

    /// The azimuth ULA element indices (8 elements, λ/2 spacing).
    pub fn azimuth_row(&self) -> &[usize] {
        &self.azimuth_row
    }

    /// The elevated-row element indices (4 elements at z = λ/2).
    pub fn elevated_row(&self) -> &[usize] {
        &self.elevated_row
    }

    /// Azimuth-row elements x-aligned with the elevated row.
    pub fn azimuth_overlap(&self) -> &[usize] {
        &self.azimuth_overlap
    }

    /// TX phase-centre positions.
    pub fn tx_positions(&self) -> &[Vec3] {
        &self.tx_positions
    }

    /// RX phase-centre positions.
    pub fn rx_positions(&self) -> &[Vec3] {
        &self.rx_positions
    }

    /// Carrier wavelength in metres.
    pub fn wavelength_m(&self) -> f64 {
        self.wavelength_m
    }

    /// Far-field steering phase (radians) of `element` toward unit
    /// direction `dir` (pointing from the radar to the target).
    pub fn steering_phase(&self, element: usize, dir: Vec3) -> f32 {
        let p = self.elements[element].position;
        2.0 * std::f32::consts::PI * p.dot(dir) / self.wavelength_m as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> VirtualArray {
        VirtualArray::new(&ChirpConfig::default())
    }

    #[test]
    fn twelve_virtual_elements() {
        let a = array();
        assert_eq!(a.elements().len(), 12);
        assert_eq!(a.azimuth_row().len(), 8);
        assert_eq!(a.elevated_row().len(), 4);
    }

    #[test]
    fn azimuth_row_is_uniform_half_wavelength() {
        let a = array();
        let half = (a.wavelength_m() / 2.0) as f32;
        let xs: Vec<f32> = a
            .azimuth_row()
            .iter()
            .map(|&i| a.elements()[i].position.x)
            .collect();
        for (k, w) in xs.windows(2).enumerate() {
            assert!(
                (w[1] - w[0] - half).abs() < 1e-9,
                "gap {} at {k}",
                w[1] - w[0]
            );
        }
    }

    #[test]
    fn elevated_row_overlaps_azimuth_row() {
        let a = array();
        assert_eq!(a.azimuth_overlap().len(), 4, "all elevated x positions overlap");
        for (&e, &z) in a.elevated_row().iter().zip(a.azimuth_overlap()) {
            assert!((a.elements()[e].position.x - a.elements()[z].position.x).abs() < 1e-9);
            assert!(a.elements()[e].position.z > 0.0);
            assert_eq!(a.elements()[z].position.z, 0.0);
        }
    }

    #[test]
    fn element_index_round_trips() {
        let a = array();
        for tx in 0..3 {
            for rx in 0..4 {
                let i = a.element_index(tx, rx);
                assert_eq!(a.elements()[i].tx, tx);
                assert_eq!(a.elements()[i].rx, rx);
            }
        }
    }

    #[test]
    fn steering_phase_progression_matches_angle() {
        // A source at azimuth θ puts a linear phase of π·sin(θ) per element
        // across the λ/2 ULA.
        let a = array();
        let theta = mmhand_math::deg_to_rad(18.0);
        let dir = Vec3::new(theta.sin(), theta.cos(), 0.0);
        let row = a.azimuth_row();
        let phases: Vec<f32> = row.iter().map(|&i| a.steering_phase(i, dir)).collect();
        let expected = std::f32::consts::PI * theta.sin();
        for w in phases.windows(2) {
            assert!((w[1] - w[0] - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn boresight_has_zero_phase_spread() {
        let a = array();
        let dir = Vec3::Y;
        for e in 0..12 {
            assert!(a.steering_phase(e, dir).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "3-TX")]
    fn wrong_tx_count_panics() {
        let cfg = ChirpConfig { tx_count: 2, ..ChirpConfig::default() };
        VirtualArray::new(&cfg);
    }
}
