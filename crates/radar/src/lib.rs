//! # mmhand-radar
//!
//! Physics-based FMCW mmWave radar simulator — the synthetic stand-in for
//! the paper's TI IWR1443 + DCA1000EVM capture rig.
//!
//! * [`config`] — chirp/frame parameters (77–81 GHz, 80 µs chirps,
//!   3 TX × 4 RX TDM-MIMO),
//! * [`mod@array`] — the IWR1443-style virtual antenna array,
//! * [`scene`] — point-target scenes: hand scatterers, body clutter,
//!   environments (playground / corridor / classroom),
//! * [`impairments`] — gloves, handheld objects, line-of-sight obstacles,
//! * [`synth`] — IF ADC-sample synthesis per paper Eq. 1,
//! * [`capture`] — end-to-end session recording with ground-truth labels.
//!
//! # Examples
//!
//! ```
//! use mmhand_radar::capture::{record_session, CaptureConfig};
//! use mmhand_hand::trajectory::GestureTrack;
//! use mmhand_hand::gesture::Gesture;
//! use mmhand_hand::user::UserProfile;
//! use mmhand_math::Vec3;
//!
//! let user = UserProfile::generate(1, 42);
//! let track = GestureTrack::from_gestures(
//!     &[Gesture::OpenPalm, Gesture::Fist],
//!     Vec3::new(0.0, 0.3, 0.0),
//!     0.4,
//!     0.4,
//! );
//! let session = record_session(&user, &track, 4, &CaptureConfig::default());
//! assert_eq!(session.len(), 4);
//! ```

pub mod array;
pub mod capture;
pub mod config;
pub mod error;
pub mod impairments;
pub mod scene;
pub mod synth;

pub use array::VirtualArray;
pub use capture::{record_session, CaptureConfig, CaptureSession};
pub use config::ChirpConfig;
pub use error::RadarError;
pub use scene::{BodyPlacement, Environment, PointTarget, Scene};
pub use synth::RawFrame;
