//! Test-condition impairments: gloves, handheld objects, and obstacles.
//!
//! The paper evaluates mmHand under gloves (§VI-G, Fig. 22), handheld
//! objects (§VI-H, Fig. 23) and line-of-sight obstacles (§VI-J, Fig. 25).
//! Each impairment here perturbs the scene the same way the physical
//! condition perturbs the real propagation channel:
//!
//! * **Gloves** add a displaced fabric scattering layer around the hand and
//!   attenuate/distort skin returns — the paper observes the glove material
//!   "captured by mmWave signals" causing distortion of the sensed hand.
//! * **Held objects** add their own reflectors — small palm objects mostly
//!   shadow the palm; a pen extends past the fingers (the paper notes it is
//!   mistaken for a finger); a power bank covers the whole hand.
//! * **Obstacles** attenuate the two-way hand path (material-dependent) and
//!   add a static reflection at the obstacle's own range.

use crate::scene::PointTarget;
use mmhand_hand::skeleton::Finger;
use mmhand_hand::surface::Scatterer;
use mmhand_math::rng::{normal, stream_rng};
use mmhand_math::Vec3;

/// Glove material worn over the hand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GloveMaterial {
    /// Thin silk glove: mild attenuation, thin fabric layer.
    Silk,
    /// Cotton glove: thicker layer, stronger distortion.
    Cotton,
}

impl GloveMaterial {
    /// Both materials evaluated by the paper.
    pub const ALL: [GloveMaterial; 2] = [GloveMaterial::Silk, GloveMaterial::Cotton];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GloveMaterial::Silk => "silk",
            GloveMaterial::Cotton => "cotton",
        }
    }

    /// Amplitude transmission through the fabric (one way).
    fn transmission(self) -> f32 {
        match self {
            GloveMaterial::Silk => 0.90,
            GloveMaterial::Cotton => 0.80,
        }
    }

    /// Fabric layer stand-off from the skin, metres.
    fn layer_offset(self) -> f32 {
        match self {
            GloveMaterial::Silk => 0.003,
            GloveMaterial::Cotton => 0.006,
        }
    }

    /// Fabric scattering strength relative to the skin return.
    fn layer_rcs(self) -> f32 {
        match self {
            GloveMaterial::Silk => 0.25,
            GloveMaterial::Cotton => 0.45,
        }
    }

    /// Applies the glove to hand scatterers: attenuates skin returns and
    /// adds a jittered fabric layer displaced along the radar line of sight.
    pub fn apply(self, hand: &[Scatterer], seed: u64) -> Vec<Scatterer> {
        let mut rng = stream_rng(seed, &format!("glove-{}", self.name()));
        let t2 = self.transmission() * self.transmission(); // two-way
        let mut out = Vec::with_capacity(hand.len() * 2);
        for s in hand {
            out.push(Scatterer { position: s.position, rcs: s.rcs * t2, region: s.region });
            // Fabric layer point: displaced toward the radar (at origin)
            // with positional jitter — this is what distorts the sensing.
            let toward_radar = (-s.position).normalized();
            let jitter = Vec3::new(
                normal(&mut rng, 0.0, 0.002),
                normal(&mut rng, 0.0, 0.002),
                normal(&mut rng, 0.0, 0.002),
            );
            out.push(Scatterer {
                position: s.position + toward_radar * self.layer_offset() + jitter,
                rcs: s.rcs * self.layer_rcs(),
                region: s.region,
            });
        }
        out
    }
}

/// Object held in the hand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeldObject {
    /// Table-tennis ball: small, sits in the palm.
    TableTennisBall,
    /// Headphone case: small box in the palm.
    HeadphoneCase,
    /// Pen: thin rod extending past the fingers.
    Pen,
    /// Power bank: large slab covering palm and finger bases.
    PowerBank,
}

impl HeldObject {
    /// The four objects of Fig. 23.
    pub const ALL: [HeldObject; 4] = [
        HeldObject::TableTennisBall,
        HeldObject::HeadphoneCase,
        HeldObject::Pen,
        HeldObject::PowerBank,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            HeldObject::TableTennisBall => "table_tennis_ball",
            HeldObject::HeadphoneCase => "headphone_case",
            HeldObject::Pen => "pen",
            HeldObject::PowerBank => "power_bank",
        }
    }

    /// `true` when the paper found the object disrupts finger estimation
    /// (pen and power bank); palm-confined objects are benign.
    pub fn affects_fingers(self) -> bool {
        matches!(self, HeldObject::Pen | HeldObject::PowerBank)
    }

    /// Generates the object's reflectors given the posed hand joints and
    /// palm normal, and the attenuation factor applied to *palm-region*
    /// skin returns it shadows.
    ///
    /// Returns `(object_targets, palm_shadow_factor, finger_shadow_factor)`.
    pub fn targets(
        self,
        joints: &[Vec3; 21],
        palm_normal: Vec3,
        velocity: Vec3,
    ) -> (Vec<PointTarget>, f32, f32) {
        let palm_centre = (joints[0]
            + joints[Finger::Index.base()]
            + joints[Finger::Pinky.base()])
            / 3.0
            + palm_normal * 0.02;
        match self {
            HeldObject::TableTennisBall => {
                let t = vec![PointTarget { position: palm_centre, velocity, rcs: 1.5 }];
                (t, 0.55, 0.95)
            }
            HeldObject::HeadphoneCase => {
                let mut t = Vec::new();
                for dx in [-0.02_f32, 0.02] {
                    t.push(PointTarget {
                        position: palm_centre + Vec3::new(dx, 0.0, 0.0),
                        velocity,
                        rcs: 1.6,
                    });
                }
                (t, 0.45, 0.9)
            }
            HeldObject::Pen => {
                // A rod from the palm out past the index fingertip — the
                // reflector the network mistakes for a finger.
                let tip_dir = (joints[Finger::Index.tip()] - joints[Finger::Index.base()])
                    .normalized();
                let mut t = Vec::new();
                for k in 0..5 {
                    let s = k as f32 / 4.0;
                    t.push(PointTarget {
                        position: palm_centre + tip_dir * (0.02 + s * 0.12),
                        velocity,
                        rcs: 0.8,
                    });
                }
                (t, 0.8, 0.6)
            }
            HeldObject::PowerBank => {
                // Large slab between the radar and most of the hand.
                let mut t = Vec::new();
                for dx in [-0.03_f32, 0.0, 0.03] {
                    for dz in [0.0_f32, 0.04, 0.08] {
                        t.push(PointTarget {
                            position: palm_centre
                                + Vec3::new(dx, -0.01, dz)
                                + palm_normal * 0.01,
                            velocity,
                            rcs: 2.2,
                        });
                    }
                }
                (t, 0.3, 0.35)
            }
        }
    }
}

/// Line-of-sight obstacle between the radar and the hand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObstacleMaterial {
    /// A4 paper sheet.
    Paper,
    /// A piece of cloth.
    Cloth,
    /// Thin wooden board.
    WoodBoard,
}

impl ObstacleMaterial {
    /// The three obstacles of Fig. 25.
    pub const ALL: [ObstacleMaterial; 3] = [
        ObstacleMaterial::Paper,
        ObstacleMaterial::Cloth,
        ObstacleMaterial::WoodBoard,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ObstacleMaterial::Paper => "paper",
            ObstacleMaterial::Cloth => "cloth",
            ObstacleMaterial::WoodBoard => "wood_board",
        }
    }

    /// One-way amplitude transmission at 77 GHz (approximate material
    /// properties: paper and cloth are nearly transparent, wood much less).
    pub fn transmission(self) -> f32 {
        match self {
            ObstacleMaterial::Paper => 0.92,
            ObstacleMaterial::Cloth => 0.88,
            ObstacleMaterial::WoodBoard => 0.60,
        }
    }

    /// The obstacle's own reflectivity (front-face RCS).
    fn reflection_rcs(self) -> f32 {
        match self {
            ObstacleMaterial::Paper => 0.8,
            ObstacleMaterial::Cloth => 1.2,
            ObstacleMaterial::WoodBoard => 6.0,
        }
    }

    /// Two-way power attenuation applied to targets behind the obstacle.
    pub fn two_way_power_factor(self) -> f32 {
        let t = self.transmission();
        t * t * t * t // amplitude² per pass, two passes
    }

    /// Generates the obstacle's own reflectors: a small panel of static
    /// targets at `range_m` on boresight.
    pub fn targets(self, range_m: f32) -> Vec<PointTarget> {
        let mut out = Vec::new();
        for dx in [-0.05_f32, 0.05] {
            for dz in [-0.05_f32, 0.05] {
                out.push(PointTarget::fixed(
                    Vec3::new(dx, range_m, dz),
                    self.reflection_rcs() / 4.0,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_hand::gesture::Gesture;
    use mmhand_hand::shape::HandShape;
    use mmhand_hand::surface::{sample_scatterers, SurfaceConfig};

    fn hand_scatterers() -> Vec<Scatterer> {
        let pose = Gesture::OpenPalm.pose();
        let shape = HandShape::default();
        sample_scatterers(
            &pose.joints(&shape),
            pose.palm_normal(),
            &shape,
            &SurfaceConfig::default(),
        )
    }

    #[test]
    fn gloves_attenuate_and_add_layer() {
        let hand = hand_scatterers();
        for m in GloveMaterial::ALL {
            let gloved = m.apply(&hand, 4);
            assert_eq!(gloved.len(), hand.len() * 2);
            // Skin returns attenuated.
            for (g, h) in gloved.iter().step_by(2).zip(&hand) {
                assert!(g.rcs < h.rcs);
                assert_eq!(g.position, h.position);
            }
        }
    }

    #[test]
    fn cotton_distorts_more_than_silk() {
        let hand = hand_scatterers();
        let silk = GloveMaterial::Silk.apply(&hand, 4);
        let cotton = GloveMaterial::Cotton.apply(&hand, 4);
        let layer_rcs = |v: &[Scatterer]| -> f32 {
            v.iter().skip(1).step_by(2).map(|s| s.rcs).sum()
        };
        assert!(layer_rcs(&cotton) > layer_rcs(&silk));
    }

    #[test]
    fn pen_extends_past_fingertips() {
        let pose = Gesture::Point.pose();
        let shape = HandShape::default();
        let joints = pose.joints(&shape);
        let (targets, _, finger_factor) =
            HeldObject::Pen.targets(&joints, pose.palm_normal(), Vec3::ZERO);
        let tip = joints[Finger::Index.tip()];
        let wrist = joints[0];
        let farthest = targets
            .iter()
            .map(|t| t.position.distance(wrist))
            .fold(0.0_f32, f32::max);
        assert!(farthest > tip.distance(wrist), "pen does not extend past tip");
        assert!(finger_factor < 1.0);
        assert!(HeldObject::Pen.affects_fingers());
    }

    #[test]
    fn ball_shadows_palm_not_fingers() {
        let pose = Gesture::OpenPalm.pose();
        let shape = HandShape::default();
        let joints = pose.joints(&shape);
        let (_, palm_f, finger_f) =
            HeldObject::TableTennisBall.targets(&joints, pose.palm_normal(), Vec3::ZERO);
        assert!(palm_f < finger_f, "ball should shadow palm more");
        assert!(!HeldObject::TableTennisBall.affects_fingers());
    }

    #[test]
    fn power_bank_is_most_disruptive() {
        let pose = Gesture::OpenPalm.pose();
        let shape = HandShape::default();
        let joints = pose.joints(&shape);
        let factors: Vec<f32> = HeldObject::ALL
            .iter()
            .map(|o| {
                let (_, p, f) = o.targets(&joints, pose.palm_normal(), Vec3::ZERO);
                p * f
            })
            .collect();
        let pb = factors[3];
        assert!(factors[..3].iter().all(|&x| x > pb), "{factors:?}");
    }

    #[test]
    fn wood_attenuates_most_and_reflects_most() {
        let p = ObstacleMaterial::Paper;
        let c = ObstacleMaterial::Cloth;
        let w = ObstacleMaterial::WoodBoard;
        assert!(w.two_way_power_factor() < c.two_way_power_factor());
        assert!(c.two_way_power_factor() < p.two_way_power_factor());
        let rcs = |m: ObstacleMaterial| -> f32 { m.targets(0.15).iter().map(|t| t.rcs).sum() };
        assert!(rcs(w) > rcs(p));
    }

    #[test]
    fn obstacle_panel_sits_at_requested_range() {
        for t in ObstacleMaterial::Cloth.targets(0.12) {
            assert!((t.position.y - 0.12).abs() < 1e-6);
            assert_eq!(t.velocity, Vec3::ZERO);
        }
    }
}
