//! IF-signal synthesis: the simulated ADC output of the radar front end.
//!
//! For each scatterer the synthesiser applies the FMCW IF model of paper
//! Eq. 1: a beat tone whose frequency encodes range, a carrier phase that
//! evolves chirp-to-chirp with radial velocity (Doppler), and a per-virtual-
//! antenna steering phase that encodes azimuth/elevation. TDM-MIMO timing
//! is modelled explicitly — the three TX antennas fire in turn, so chirp
//! `l` of TX `t` occurs at time `(l·3 + t)·T_c`.

use crate::array::VirtualArray;
use crate::config::ChirpConfig;
use crate::error::RadarError;
use crate::scene::Scene;
use mmhand_math::rng::normal;
use mmhand_math::Complex;
use rand::Rng;

/// One frame of raw ADC data, indexed `[tx][chirp][rx][sample]`.
#[derive(Clone, Debug)]
pub struct RawFrame {
    data: Vec<Complex>,
    tx: usize,
    rx: usize,
    chirps: usize,
    samples: usize,
}

impl RawFrame {
    /// Allocates a zeroed frame for a configuration.
    pub fn zeroed(config: &ChirpConfig) -> Self {
        let (tx, rx) = (config.tx_count, config.rx_count);
        let (chirps, samples) = (config.chirps_per_tx, config.samples_per_chirp);
        RawFrame {
            data: vec![Complex::ZERO; tx * rx * chirps * samples],
            tx,
            rx,
            chirps,
            samples,
        }
    }

    #[inline]
    fn offset(&self, tx: usize, chirp: usize, rx: usize) -> usize {
        debug_assert!(tx < self.tx && chirp < self.chirps && rx < self.rx);
        ((tx * self.chirps + chirp) * self.rx + rx) * self.samples
    }

    /// The ADC samples of one chirp on one TX/RX pair.
    pub fn chirp_samples(&self, tx: usize, rx: usize, chirp: usize) -> &[Complex] {
        let o = self.offset(tx, chirp, rx);
        &self.data[o..o + self.samples]
    }

    /// Mutable access to one chirp's samples.
    pub fn chirp_samples_mut(&mut self, tx: usize, rx: usize, chirp: usize) -> &mut [Complex] {
        let o = self.offset(tx, chirp, rx);
        &mut self.data[o..o + self.samples]
    }

    /// Samples per chirp.
    pub fn samples_per_chirp(&self) -> usize {
        self.samples
    }

    /// Chirps per TX antenna.
    pub fn chirps_per_tx(&self) -> usize {
        self.chirps
    }

    /// Number of TX antennas.
    pub fn tx_count(&self) -> usize {
        self.tx
    }

    /// Number of RX antennas.
    pub fn rx_count(&self) -> usize {
        self.rx
    }

    /// The full interleaved sample buffer, ordered
    /// `((tx · chirps + chirp) · rx + rx_idx) · samples + sample` — the
    /// layout [`RawFrame::from_parts`] accepts, used by the serve wire
    /// codec to move frames across a socket without per-chirp copies.
    pub fn data(&self) -> &[Complex] {
        &self.data
    }

    /// Rebuilds a frame from its axis extents and an interleaved sample
    /// buffer in [`RawFrame::data`] order.
    ///
    /// # Errors
    ///
    /// Returns [`RadarError::FrameGeometry`] when `data.len()` disagrees
    /// with `tx · rx · chirps · samples`.
    pub fn from_parts(
        tx: usize,
        rx: usize,
        chirps: usize,
        samples: usize,
        data: Vec<Complex>,
    ) -> Result<Self, RadarError> {
        let expected = tx * rx * chirps * samples;
        if data.len() != expected {
            return Err(RadarError::FrameGeometry {
                axis: "samples",
                expected,
                got: data.len(),
            });
        }
        Ok(RawFrame { data, tx, rx, chirps, samples })
    }

    /// Root-mean-square magnitude over all samples (signal level probe).
    pub fn rms(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|c| c.norm_sqr()).sum::<f32>() / self.data.len() as f32).sqrt()
    }

    /// Returns `true` if any sample is NaN/infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|c| c.is_non_finite())
    }
}

/// Transmit-power-like scale factor calibrated so a hand at 30 cm produces
/// O(1) sample amplitudes.
const AMPLITUDE_SCALE: f32 = 0.01;

/// Synthesises the IF samples of one frame for `scene`.
///
/// `rng` supplies the thermal noise. Targets behind the radar plane
/// (`y <= 0.01`) are skipped.
pub fn synthesize_frame<R: Rng + ?Sized>(
    config: &ChirpConfig,
    array: &VirtualArray,
    scene: &Scene,
    rng: &mut R,
) -> RawFrame {
    let mut frame = RawFrame::zeroed(config);
    let lambda = config.wavelength_m();
    let fs = config.sample_rate_hz();
    let tau = std::f32::consts::PI * 2.0;

    for target in &scene.targets {
        if target.position.y <= 0.01 || target.rcs <= 0.0 {
            continue;
        }
        for chirp in 0..config.chirps_per_tx {
            for tx in 0..config.tx_count {
                // TDM timing: TX antennas fire in sequence.
                let t_chirp = ((chirp * config.tx_count + tx) as f64)
                    * config.chirp_duration_s;
                let pos = target.position + target.velocity * t_chirp as f32;
                let r = pos.norm() as f64;
                if r < 1e-3 {
                    continue;
                }
                let dir = pos / (r as f32);
                // Two-way R⁴ power law → amplitude ∝ 1/r².
                let amp = AMPLITUDE_SCALE * target.rcs.sqrt() / (r * r) as f32;
                // Beat frequency encodes range (paper §III).
                let f_beat = config.beat_frequency_hz(r);
                // Carrier phase: round trip plus Doppler evolution.
                let carrier = (tau as f64 * 2.0 * r / lambda) % (tau as f64);
                let step = Complex::from_angle((tau as f64 * f_beat / fs) as f32);
                for rx in 0..config.rx_count {
                    let element = array.element_index(tx, rx);
                    let steer = array.steering_phase(element, dir);
                    let mut phasor =
                        Complex::from_polar(amp, carrier as f32 + steer);
                    let samples = frame.chirp_samples_mut(tx, rx, chirp);
                    for s in samples.iter_mut() {
                        *s += phasor;
                        phasor *= step;
                    }
                }
            }
        }
    }

    // Thermal noise.
    if scene.noise_sigma > 0.0 {
        for s in frame.data.iter_mut() {
            *s += Complex::new(
                normal(rng, 0.0, scene.noise_sigma),
                normal(rng, 0.0, scene.noise_sigma),
            );
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::PointTarget;
    use mmhand_dsp::fft::magnitude;
    use mmhand_dsp::spectrum::{doppler_fft, range_fft};
    use mmhand_dsp::window::Window;
    use mmhand_math::rng::stream_rng;
    use mmhand_math::Vec3;

    fn setup() -> (ChirpConfig, VirtualArray) {
        let c = ChirpConfig::default();
        let a = VirtualArray::new(&c);
        (c, a)
    }

    fn peak_bin(mag: &[f32]) -> usize {
        (0..mag.len())
            .max_by(|&a, &b| mag[a].total_cmp(&mag[b]))
            .unwrap()
    }

    #[test]
    fn single_target_lands_in_correct_range_bin() {
        let (cfg, arr) = setup();
        let mut rng = stream_rng(1, "synth");
        for range in [0.25_f32, 0.4, 0.6] {
            let mut scene = Scene::new(0.0);
            scene.add_targets([PointTarget::fixed(Vec3::new(0.0, range, 0.0), 1.0)]);
            let frame = synthesize_frame(&cfg, &arr, &scene, &mut rng);
            let spec = range_fft(frame.chirp_samples(0, 0, 0), Window::Hann);
            let half = cfg.samples_per_chirp / 2;
            let peak = peak_bin(&magnitude(&spec[..half]));
            let expected =
                (range as f64 / cfg.range_resolution_m()).round() as usize;
            assert!(
                peak.abs_diff(expected) <= 1,
                "range {range}: bin {peak} expected {expected}"
            );
        }
    }

    #[test]
    fn closer_targets_are_stronger() {
        let (cfg, arr) = setup();
        let mut rng = stream_rng(2, "synth");
        let frame_at = |r: f32, rng: &mut rand::rngs::StdRng| {
            let mut scene = Scene::new(0.0);
            scene.add_targets([PointTarget::fixed(Vec3::new(0.0, r, 0.0), 1.0)]);
            synthesize_frame(&cfg, &arr, &scene, rng).rms()
        };
        let near = frame_at(0.2, &mut rng);
        let far = frame_at(0.8, &mut rng);
        // 1/r² amplitude: 4× range → 16× weaker.
        assert!(near / far > 10.0, "near {near} far {far}");
    }

    #[test]
    fn moving_target_shows_doppler_shift() {
        let (cfg, arr) = setup();
        let mut rng = stream_rng(3, "synth");
        let mut scene = Scene::new(0.0);
        // Radial velocity +1.5 m/s (receding along boresight).
        scene.add_targets([PointTarget {
            position: Vec3::new(0.0, 0.4, 0.0),
            velocity: Vec3::new(0.0, 1.5, 0.0),
            rcs: 1.0,
        }]);
        let frame = synthesize_frame(&cfg, &arr, &scene, &mut rng);
        // Slow-time samples at the target's range bin.
        let range_bin = (0.4 / cfg.range_resolution_m()).round() as usize;
        let slow: Vec<Complex> = (0..cfg.chirps_per_tx)
            .map(|chirp| {
                let spec = range_fft(frame.chirp_samples(0, 0, chirp), Window::Hann);
                spec[range_bin]
            })
            .collect();
        let dop = doppler_fft(&slow, Window::Hann);
        let peak = peak_bin(&magnitude(&dop));
        let centre = cfg.chirps_per_tx / 2;
        assert!(peak != centre, "moving target stuck at zero-velocity bin");
        // Receding target: positive beat drift ⇒ peak above centre.
        let v = mmhand_dsp::spectrum::doppler_bin_to_mps(
            peak,
            cfg.chirps_per_tx,
            cfg.wavelength_m(),
            cfg.tdm_chirp_period_s(),
        );
        assert!((v - 1.5).abs() < 1.0, "estimated v {v}");
    }

    #[test]
    fn static_target_is_at_zero_doppler() {
        let (cfg, arr) = setup();
        let mut rng = stream_rng(4, "synth");
        let mut scene = Scene::new(0.0);
        scene.add_targets([PointTarget::fixed(Vec3::new(0.0, 0.4, 0.0), 1.0)]);
        let frame = synthesize_frame(&cfg, &arr, &scene, &mut rng);
        let range_bin = (0.4 / cfg.range_resolution_m()).round() as usize;
        let slow: Vec<Complex> = (0..cfg.chirps_per_tx)
            .map(|chirp| {
                let spec = range_fft(frame.chirp_samples(0, 0, chirp), Window::Hann);
                spec[range_bin]
            })
            .collect();
        let dop = doppler_fft(&slow, Window::Hann);
        assert_eq!(peak_bin(&magnitude(&dop)), cfg.chirps_per_tx / 2);
    }

    #[test]
    fn angled_target_produces_linear_array_phase() {
        let (cfg, arr) = setup();
        let mut rng = stream_rng(5, "synth");
        let theta = mmhand_math::deg_to_rad(15.0);
        let mut scene = Scene::new(0.0);
        scene.add_targets([PointTarget::fixed(
            Vec3::new(0.4 * theta.sin(), 0.4 * theta.cos(), 0.0),
            1.0,
        )]);
        let frame = synthesize_frame(&cfg, &arr, &scene, &mut rng);
        let range_bin = (0.4 / cfg.range_resolution_m()).round() as usize;
        // Phasor per azimuth-row element at the range bin.
        let phasors: Vec<Complex> = arr
            .azimuth_row()
            .iter()
            .map(|&e| {
                let el = arr.elements()[e];
                let spec =
                    range_fft(frame.chirp_samples(el.tx, el.rx, 0), Window::Hann);
                spec[range_bin]
            })
            .collect();
        let spec = mmhand_dsp::spectrum::angle_spectrum(
            &phasors,
            mmhand_math::deg_to_rad(30.0),
            33,
        );
        let grid = mmhand_dsp::spectrum::angle_grid(mmhand_math::deg_to_rad(30.0), 33);
        let peak = peak_bin(&magnitude(&spec));
        assert!(
            (grid[peak] - theta).abs() < mmhand_math::deg_to_rad(5.0),
            "angle {}° expected {}°",
            mmhand_math::rad_to_deg(grid[peak]),
            mmhand_math::rad_to_deg(theta)
        );
    }

    #[test]
    fn noise_only_frame_has_expected_level() {
        let (cfg, arr) = setup();
        let mut rng = stream_rng(6, "synth");
        let scene = Scene::new(0.05);
        let frame = synthesize_frame(&cfg, &arr, &scene, &mut rng);
        // Complex noise with σ per component ⇒ RMS ≈ σ·√2.
        assert!((frame.rms() - 0.05 * 2.0_f32.sqrt()).abs() < 0.005);
        assert!(!frame.has_non_finite());
    }

    #[test]
    fn targets_behind_radar_are_ignored() {
        let (cfg, arr) = setup();
        let mut rng = stream_rng(7, "synth");
        let mut scene = Scene::new(0.0);
        scene.add_targets([PointTarget::fixed(Vec3::new(0.0, -0.5, 0.0), 5.0)]);
        let frame = synthesize_frame(&cfg, &arr, &scene, &mut rng);
        assert_eq!(frame.rms(), 0.0);
    }

    #[test]
    fn frame_layout_accessors_are_consistent() {
        let cfg = ChirpConfig::default();
        let mut frame = RawFrame::zeroed(&cfg);
        frame.chirp_samples_mut(2, 3, 7)[5] = Complex::new(9.0, 0.0);
        assert_eq!(frame.chirp_samples(2, 3, 7)[5].re, 9.0);
        assert_eq!(frame.chirp_samples(0, 0, 0)[5].re, 0.0);
        assert_eq!(frame.samples_per_chirp(), cfg.samples_per_chirp);
        assert_eq!(frame.chirps_per_tx(), cfg.chirps_per_tx);
    }
}
