//! Radar scenes: everything that reflects millimetre waves.
//!
//! A [`Scene`] is a set of moving point targets: the hand's scatterers plus
//! *clutter* — the user's body, furniture, walls, and other people. The
//! paper evaluates in three environments (playground, corridor, classroom,
//! Fig. 24) and two body placements (Figs. 20–21); [`Environment`] and
//! [`BodyPlacement`] model those conditions.

use mmhand_hand::surface::Scatterer;
use mmhand_math::rng::{normal, stream_rng};
use mmhand_math::Vec3;
use rand::Rng;

/// One moving point reflector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointTarget {
    /// Position in the radar frame (radar at origin, +y boresight), metres.
    pub position: Vec3,
    /// Velocity, m/s (used for intra-frame Doppler phase evolution).
    pub velocity: Vec3,
    /// Radar cross-section (relative, linear power units).
    pub rcs: f32,
}

impl PointTarget {
    /// A static target.
    pub fn fixed(position: Vec3, rcs: f32) -> Self {
        PointTarget { position, velocity: Vec3::ZERO, rcs }
    }
}

/// A complete scene for one radar frame.
#[derive(Clone, Debug, Default)]
pub struct Scene {
    /// All reflectors visible this frame.
    pub targets: Vec<PointTarget>,
    /// Thermal-noise standard deviation added per ADC sample.
    pub noise_sigma: f32,
}

impl Scene {
    /// Creates an empty scene with the given noise floor.
    pub fn new(noise_sigma: f32) -> Self {
        Scene { targets: Vec::new(), noise_sigma }
    }

    /// Adds hand scatterers with a common velocity and an RCS scale.
    pub fn add_hand(&mut self, scatterers: &[Scatterer], velocities: &[Vec3], rcs_scale: f32) {
        assert_eq!(
            scatterers.len(),
            velocities.len(),
            "one velocity per scatterer"
        );
        for (s, &v) in scatterers.iter().zip(velocities) {
            self.targets.push(PointTarget {
                position: s.position,
                velocity: v,
                rcs: s.rcs * rcs_scale,
            });
        }
    }

    /// Adds arbitrary targets.
    pub fn add_targets(&mut self, targets: impl IntoIterator<Item = PointTarget>) {
        self.targets.extend(targets);
    }
}

/// Where the user's body stands relative to the radar (paper §VI-F).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BodyPlacement {
    /// Type 1: the user stands in front of the radar, hand outstretched
    /// toward it — the body is *behind* the hand on boresight.
    #[default]
    Front,
    /// Type 2: the user stands beside the radar and reaches the hand in
    /// front of it — the body is off-axis.
    Side,
}

/// Generates torso/arm scatterers for a user.
///
/// `hand_position` anchors the geometry: the body stands ~0.45 m behind the
/// hand ([`BodyPlacement::Front`]) or displaced ~0.5 m sideways
/// ([`BodyPlacement::Side`]). `height_m` and `body_rcs` come from the user
/// profile. Returned targets include slow torso sway so the body is not a
/// perfect static reflector.
pub fn body_targets(
    hand_position: Vec3,
    placement: BodyPlacement,
    height_m: f32,
    body_rcs: f32,
    seed: u64,
) -> Vec<PointTarget> {
    let mut rng = stream_rng(seed, "body");
    let centre = match placement {
        BodyPlacement::Front => hand_position + Vec3::new(0.0, 0.45, -0.25),
        BodyPlacement::Side => hand_position + Vec3::new(0.55, 0.30, -0.25),
    };
    let n = 14;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let frac = i as f32 / (n - 1) as f32;
        let z = (frac - 0.35) * height_m * 0.55;
        let pos = centre
            + Vec3::new(
                normal(&mut rng, 0.0, 0.10),
                normal(&mut rng, 0.0, 0.05),
                z,
            );
        let sway = Vec3::new(normal(&mut rng, 0.0, 0.01), normal(&mut rng, 0.0, 0.015), 0.0);
        out.push(PointTarget {
            position: pos,
            velocity: sway,
            rcs: body_rcs * 2.0 / n as f32 * 8.0,
        });
    }
    out
}

/// Experimental environment (paper Fig. 24).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Environment {
    /// Large empty outdoor area — almost no clutter.
    Playground,
    /// Empty static background with a few passers-by.
    Corridor,
    /// Complex static background plus dynamic people (the default indoor
    /// case used throughout the evaluation).
    #[default]
    Classroom,
}

impl Environment {
    /// All environments.
    pub const ALL: [Environment; 3] =
        [Environment::Playground, Environment::Corridor, Environment::Classroom];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Environment::Playground => "playground",
            Environment::Corridor => "corridor",
            Environment::Classroom => "classroom",
        }
    }

    /// Number of static clutter reflectors (walls, furniture).
    fn static_count(self) -> usize {
        match self {
            Environment::Playground => 1,
            Environment::Corridor => 6,
            Environment::Classroom => 14,
        }
    }

    /// Number of moving people in the background.
    fn dynamic_count(self) -> usize {
        match self {
            Environment::Playground => 0,
            Environment::Corridor => 1,
            Environment::Classroom => 3,
        }
    }

    /// Generates this environment's clutter. `frame_time_s` drives the
    /// motion of dynamic clutter so successive frames are coherent.
    pub fn clutter_targets(self, seed: u64, frame_time_s: f32) -> Vec<PointTarget> {
        let mut rng = stream_rng(seed, &format!("env-{}", self.name()));
        let mut out = Vec::new();
        for _ in 0..self.static_count() {
            let pos = Vec3::new(
                rng.gen_range(-1.5_f32..1.5),
                rng.gen_range(1.2_f32..4.0),
                rng.gen_range(-0.8_f32..1.2),
            );
            out.push(PointTarget::fixed(pos, rng.gen_range(0.5_f32..4.0)));
        }
        for p in 0..self.dynamic_count() {
            // A person walking a slow sinusoidal path across the room.
            let phase = p as f32 * 2.1;
            let speed = 0.6;
            let x0 = rng.gen_range(-1.2_f32..1.2);
            let y0 = rng.gen_range(1.5_f32..3.5);
            let x = x0 + (frame_time_s * speed + phase).sin() * 0.8;
            let vx = (frame_time_s * speed + phase).cos() * 0.8 * speed;
            out.push(PointTarget {
                position: Vec3::new(x, y0, 0.0),
                velocity: Vec3::new(vx, 0.0, 0.0),
                rcs: rng.gen_range(3.0_f32..8.0),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhand_hand::surface::Scatterer;

    #[test]
    fn add_hand_checks_lengths() {
        let mut scene = Scene::new(0.01);
        let s = [Scatterer { position: Vec3::Y, rcs: 1.0, region: Default::default() }];
        scene.add_hand(&s, &[Vec3::ZERO], 1.0);
        assert_eq!(scene.targets.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one velocity per scatterer")]
    fn mismatched_velocities_panic() {
        let mut scene = Scene::new(0.01);
        let s = [Scatterer { position: Vec3::Y, rcs: 1.0, region: Default::default() }];
        scene.add_hand(&s, &[], 1.0);
    }

    #[test]
    fn body_sits_behind_hand_for_front_placement() {
        let hand = Vec3::new(0.0, 0.3, 0.0);
        let body = body_targets(hand, BodyPlacement::Front, 1.75, 1.0, 1);
        assert!(!body.is_empty());
        let mean_y: f32 =
            body.iter().map(|t| t.position.y).sum::<f32>() / body.len() as f32;
        assert!(mean_y > hand.y + 0.2, "body mean y {mean_y}");
        let mean_x: f32 =
            body.iter().map(|t| t.position.x).sum::<f32>() / body.len() as f32;
        assert!(mean_x.abs() < 0.2);
    }

    #[test]
    fn side_placement_moves_body_off_axis() {
        let hand = Vec3::new(0.0, 0.3, 0.0);
        let body = body_targets(hand, BodyPlacement::Side, 1.75, 1.0, 1);
        let mean_x: f32 =
            body.iter().map(|t| t.position.x).sum::<f32>() / body.len() as f32;
        assert!(mean_x > 0.3, "body mean x {mean_x}");
    }

    #[test]
    fn environment_clutter_density_ordering() {
        let p = Environment::Playground.clutter_targets(5, 0.0).len();
        let c = Environment::Corridor.clutter_targets(5, 0.0).len();
        let k = Environment::Classroom.clutter_targets(5, 0.0).len();
        assert!(p < c && c < k, "{p} {c} {k}");
    }

    #[test]
    fn clutter_stays_beyond_hand_range() {
        // Static clutter must be farther than the 0.2–0.8 m hand band so the
        // band-pass filter can reject it.
        for env in Environment::ALL {
            for t in env.clutter_targets(9, 0.5) {
                assert!(t.position.y > 1.0, "{} clutter at {}", env.name(), t.position);
            }
        }
    }

    #[test]
    fn dynamic_clutter_is_coherent_across_frames() {
        let a = Environment::Classroom.clutter_targets(3, 0.00);
        let b = Environment::Classroom.clutter_targets(3, 0.05);
        // Same static positions...
        assert_eq!(a[0].position, b[0].position);
        // ...but moving people advanced.
        let last_a = a.last().unwrap().position;
        let last_b = b.last().unwrap().position;
        assert!(last_a.distance(last_b) > 1e-5);
    }

    #[test]
    fn clutter_is_deterministic_per_seed() {
        let a = Environment::Corridor.clutter_targets(7, 0.1);
        let b = Environment::Corridor.clutter_targets(7, 0.1);
        assert_eq!(a, b);
        let c = Environment::Corridor.clutter_targets(8, 0.1);
        assert_ne!(a, c);
    }
}
